"""Kernel-consistency invariants for the interleaving explorer.

:func:`check_invariants` inspects one kernel's bookkeeping — scheduler
queues, process table, fd tables, page-table share notes, physical
frame refcounts — and returns a list of violation strings (empty ==
consistent).  The explorer calls it at *every* preemption point of
every explored schedule; the autouse conftest fixture calls the
cheaper :func:`leak_report` after every test in the suite.

:func:`frame_baseline` / :func:`check_end_state` add the end-of-run
leak check: once every scenario process has exited and been reaped,
physical memory must be back to its post-boot level and no scenario
pids may linger — the cross-strategy generalization of the rollback
bookkeeping ``test_fork_rollback`` checks for aborted forks.

Everything here is read-only: checks never mutate kernel state, so the
explorer can probe mid-syscall states without perturbing them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core.strategies import iter_share_notes
from repro.kernel.task import TaskState


def check_invariants(os_: Any) -> List[str]:
    """Full structural audit of one kernel; list of violations."""
    violations: List[str] = []
    violations += _check_scheduler(os_)
    violations += _check_processes(os_)
    violations += _check_fd_refcounts(os_)
    violations += _check_share_notes(os_)
    violations += _check_frames(os_.machine)
    violations += _check_cap_flow(os_)
    return violations


def leak_report(os_: Any) -> List[str]:
    """The between-tests subset: bookkeeping that must be clean after
    *any* test, even ones that deliberately leave processes running."""
    violations: List[str] = []
    violations += _check_scheduler(os_)
    violations += _check_processes(os_)
    violations += _check_share_notes(os_)
    violations += _check_frames(os_.machine)
    return violations


# ---------------------------------------------------------------------------
# Individual audits
# ---------------------------------------------------------------------------

def _check_scheduler(os_: Any) -> List[str]:
    violations: List[str] = []
    queued = os_.sched.queued_tasks()
    for task in queued:
        if task.state is TaskState.EXITED:
            violations.append(
                f"scheduler: exited task tid={task.tid} "
                f"(pid={task.process.pid}) still queued")
        if task.process.pid not in os_.procs and task.process.alive:
            violations.append(
                f"scheduler: queued task tid={task.tid} belongs to "
                f"unknown pid {task.process.pid}")
    return violations


def _check_processes(os_: Any) -> List[str]:
    violations: List[str] = []
    seen_tids: Dict[int, int] = {}
    for proc in os_.procs.all():
        for task in proc.tasks:
            if task.tid in seen_tids and seen_tids[task.tid] != proc.pid:
                violations.append(
                    f"procs: tid {task.tid} claimed by pids "
                    f"{seen_tids[task.tid]} and {proc.pid}")
            seen_tids[task.tid] = proc.pid
            if task.process is not proc:
                violations.append(
                    f"procs: task tid={task.tid} back-references "
                    f"pid {task.process.pid}, owned by {proc.pid}")
        if not proc.alive:
            if proc.fdtable is not None and len(proc.fdtable) > 0:
                violations.append(
                    f"procs: exited pid {proc.pid} still holds "
                    f"{len(proc.fdtable)} fds")
            for task in proc.tasks:
                if task.state is not TaskState.EXITED:
                    violations.append(
                        f"procs: exited pid {proc.pid} has live task "
                        f"tid={task.tid} ({task.state.name})")
    return violations


def _check_fd_refcounts(os_: Any) -> List[str]:
    """Every file description's refcount must equal the number of fd
    slots (across all processes) that reference it — descriptions are
    owned by fd tables and nothing else."""
    violations: List[str] = []
    slots: Dict[int, int] = {}
    sample: Dict[int, Any] = {}
    for proc in os_.procs.all():
        if proc.fdtable is None:
            continue
        for _fd, desc in proc.fdtable.items():
            slots[id(desc)] = slots.get(id(desc), 0) + 1
            sample[id(desc)] = desc
    for key, count in slots.items():
        desc = sample[key]
        if desc.refcount != count:
            violations.append(
                f"fds: description {desc.obj.__class__.__name__} has "
                f"refcount {desc.refcount} but {count} referencing slots")
    return violations


def _check_share_notes(os_: Any) -> List[str]:
    violations: List[str] = []
    spaces = []
    for proc in os_.procs.alive():
        try:
            space = os_.space_of(proc)
        except Exception:
            continue
        if all(space is not seen for seen in spaces):
            spaces.append(space)
    for space in spaces:
        for vpn, pte, note in iter_share_notes(space):
            if note.role not in ("parent", "child"):
                violations.append(
                    f"share: vpn {vpn:#x} has unknown role {note.role!r}")
            if os_.machine.phys.refcount(pte.frame) <= 0:
                violations.append(
                    f"share: vpn {vpn:#x} notes freed frame {pte.frame}")
            if pte.perms & ~note.orig_perms:
                violations.append(
                    f"share: vpn {vpn:#x} perms {pte.perms!r} wider than "
                    f"pre-share {note.orig_perms!r}")
    return violations


def _check_cap_flow(os_: Any) -> List[str]:
    """The security invariant (docs/SECURITY.md): no live register or
    tagged granule holds a capability whose provenance crosses a
    μprocess boundary.  Running it at every preemption point turns the
    interleaving search into an isolation-violation hunt."""
    from repro.sec.auditor import audit_cap_flow
    return audit_cap_flow(os_)


def _check_frames(machine: Any) -> List[str]:
    violations: List[str] = []
    for number, frame in machine.phys.frames_items():
        if frame.refcount <= 0:
            violations.append(
                f"frames: frame {number} allocated with refcount "
                f"{frame.refcount}")
    return violations


# ---------------------------------------------------------------------------
# End-of-run leak check
# ---------------------------------------------------------------------------

def frame_baseline(os_: Any) -> Tuple[int, int]:
    """Snapshot (allocated_frames, live_procs) right after boot/spawn,
    before the scenario body runs."""
    return os_.machine.phys.allocated_frames, len(os_.procs.alive())


def check_end_state(os_: Any, baseline: Tuple[int, int]) -> List[str]:
    """After every scenario process has exited and been reaped: frames
    and the process table must be back at the baseline."""
    violations: List[str] = []
    frames, procs = baseline
    now_frames = os_.machine.phys.allocated_frames
    if now_frames > frames:
        violations.append(
            f"end: {now_frames - frames} frames leaked "
            f"({now_frames} allocated, baseline {frames})")
    now_procs = len(os_.procs.alive())
    if now_procs > procs:
        violations.append(
            f"end: {now_procs - procs} processes outlive the scenario")
    return violations

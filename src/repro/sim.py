"""Discrete-event concurrency models for the multicore experiments.

The kernel simulation is single-threaded and charges one global clock,
which is exact for latency experiments but cannot express Figs 6 and 7,
where work overlaps across cores.  The approach (mirroring how the
paper's own numbers arise): **measure** per-request cost components on
the real kernel simulation — fork latency on the coordinator, child
execution time, request CPU vs device-wait time — then feed them into
the small event-driven models here to get steady-state throughput on N
cores / N workers.

Two models:

* :func:`simulate_fork_pipeline` — the FaaS zygote (Fig 6): one
  coordinator core forks sequentially; children execute on worker cores.
* :func:`simulate_closed_workers` — Nginx (Fig 7): W blocking workers on
  C cores; each request holds a core for its CPU phase and releases it
  during device I/O (why extra workers help even on one core), with an
  optional big-kernel-lock fraction serializing kernel-side CPU time.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple


class EventSim:
    """A minimal discrete-event engine."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.now = 0

    def schedule(self, at: int, action: Callable[[], None]) -> None:
        if at < self.now:
            raise ValueError("cannot schedule in the past")
        heapq.heappush(self._queue, (at, next(self._seq), action))

    def run_until(self, deadline: int) -> None:
        while self._queue and self._queue[0][0] <= deadline:
            at, _seq, action = heapq.heappop(self._queue)
            self.now = at
            action()
        self.now = max(self.now, deadline)


class _Cores:
    """A pool of cores tracked by their busy-until times."""

    def __init__(self, count: int) -> None:
        self.busy_until = [0] * count

    def acquire(self, at: int, duration: int) -> int:
        """Run ``duration`` on the earliest-available core; returns the
        completion time."""
        index = min(range(len(self.busy_until)),
                    key=lambda i: self.busy_until[i])
        start = max(at, self.busy_until[index])
        end = start + duration
        self.busy_until[index] = end
        return end


@dataclass
class PipelineResult:
    completions: int
    duration_ns: int

    @property
    def throughput_per_s(self) -> float:
        if self.duration_ns == 0:
            return 0.0
        return self.completions * 1_000_000_000 / self.duration_ns


def simulate_fork_pipeline(fork_ns: int, child_ns: int, worker_cores: int,
                           duration_ns: int = 10_000_000_000,
                           queue_depth: Optional[int] = None) -> PipelineResult:
    """The zygote pipeline (Fig 6).

    The coordinator thread forks children back-to-back (each fork
    occupies the coordinator for ``fork_ns``); each child then occupies
    a worker core for ``child_ns`` (function execution + exit).  The
    coordinator stops issuing when the backlog reaches ``queue_depth``
    (default: one in flight per worker core, like a request queue).

    Throughput is therefore ``min(1/fork, cores/child)`` shaped, with
    the exact crossover emerging from the event schedule.
    """
    if queue_depth is None:
        queue_depth = worker_cores * 2
    cores = _Cores(worker_cores)
    t_coordinator = 0
    completions = 0
    completion_times: List[int] = []
    while True:
        # backpressure: wait until the backlog drains below the cap
        pending = [t for t in completion_times if t > t_coordinator]
        if len(pending) >= queue_depth:
            t_coordinator = min(pending)
        t_coordinator += fork_ns
        if t_coordinator > duration_ns:
            break
        end = cores.acquire(t_coordinator, child_ns)
        completion_times.append(end)
        if end <= duration_ns:
            completions += 1
        # keep the list small
        if len(completion_times) > 4 * queue_depth:
            completion_times = [
                t for t in completion_times if t > t_coordinator
            ]
    return PipelineResult(completions=completions, duration_ns=duration_ns)


@dataclass
class WorkerResult:
    completions: int
    duration_ns: int

    @property
    def throughput_per_s(self) -> float:
        if self.duration_ns == 0:
            return 0.0
        return self.completions * 1_000_000_000 / self.duration_ns


def simulate_closed_workers(cpu_ns: int, io_ns: int, workers: int,
                            cores: int,
                            duration_ns: int = 10_000_000_000,
                            kernel_lock_fraction: float = 0.0) -> WorkerResult:
    """Closed-loop blocking workers (Fig 7).

    Each worker repeats: run ``cpu_ns`` on a core (of which
    ``kernel_lock_fraction`` additionally requires the global kernel
    lock — Unikraft's big kernel lock, §4.5), then wait ``io_ns`` off
    the core (device latency), then complete one request.
    """
    sim = EventSim()
    core_busy = [0] * cores
    lock_free_at = 0
    completions = 0

    def worker_step(worker_id: int) -> None:
        nonlocal completions, lock_free_at
        locked_ns = int(cpu_ns * kernel_lock_fraction)
        unlocked_ns = cpu_ns - locked_ns
        index = min(range(cores), key=lambda i: core_busy[i])
        start = max(sim.now, core_busy[index])
        end_cpu = start + unlocked_ns
        if locked_ns:
            lock_start = max(end_cpu, lock_free_at)
            end_cpu = lock_start + locked_ns
            lock_free_at = end_cpu
        core_busy[index] = end_cpu  # the core is held through the lock
        done = end_cpu + io_ns
        if done <= duration_ns:
            completions += 1
            sim.schedule(done, lambda: worker_step(worker_id))

    for worker_id in range(workers):
        sim.schedule(0, lambda wid=worker_id: worker_step(wid))
    sim.run_until(duration_ns)
    return WorkerResult(completions=completions, duration_ns=duration_ns)

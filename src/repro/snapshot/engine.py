"""Checkpoint/restore engine: fork's dual, over the same machinery.

``checkpoint`` walks a quiesced process's region exactly like μFork's
page loop walks the parent — tag scan per page, logical capture of
every tagged granule — but emits bytes instead of mapping a child.
``restore`` replays the recorded state into a freshly reserved region
(on the checkpoint machine or a brand-new one): raw page bytes first,
then each recorded capability re-minted through
:func:`~repro.core.relocate.relocate_cap` with a
:class:`~repro.core.relocate.RegionPair` spanning old → new region —
the identical five-rule path fork uses, so sealed syscall-gate sentries
are preserved, in-region capabilities are rebased and clamped, and
anything pointing outside the μprocess comes back invalid.

Restore is **transactional**, extending the fork rollback guarantees: a
restore that dies mid-flight (an injected ``core.snapshot.abort.*``
fault, frame exhaustion, ...) unwinds every frame, PTE, VA reservation,
PID and fd it claimed, and re-raises injected faults as the retriable
:class:`~repro.chaos.faults.InjectedRestoreFailure`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.faults import InjectedRestoreFailure
from repro.chaos.recovery import Transaction
from repro.cheri.capability import Capability, OTYPE_SENTRY, Perm
from repro.core.relocate import RegionPair, record_flow, relocate_cap
from repro.core.strategies import ShareNote, resolve_all_pending
from repro.errors import KernelError
from repro.hw.paging import AddressSpace, PagePerm
from repro.kernel.fdtable import FDTable, FileDescription
from repro.kernel.ipc import Pipe, PipeEnd
from repro.kernel.signals import SignalState
from repro.kernel.task import Process
from repro.mem.allocator import GuestAllocator
from repro.mem.layout import ProgramImage, SegmentMap
from repro.snapshot.format import (SCHEMA, SnapshotFormatError, decode,
                                   encode)


class SnapshotError(KernelError):
    """The process (or blob) is outside what repro.snapshot/v1 covers."""

    errno_name = "EINVAL"


# ---------------------------------------------------------------------------
# Checkpoint
# ---------------------------------------------------------------------------

def checkpoint(os: Any, proc: Process, *, incremental: bool = False) -> bytes:
    """Serialize ``proc`` (quiesced at a syscall boundary) to a
    ``repro.snapshot/v1`` blob.

    A full snapshot first force-resolves any still-pending CoA/CoPA
    sharing of the process's own pages (the same stabilization fork
    performs), so every recorded capability is a single-hop relocation
    away from any future region.  An ``incremental`` snapshot instead
    captures only CoW-divergent pages — frames mapped by this process
    alone — *without* disturbing the sharing, which is what lets cluster
    migration ship exactly a worker's divergence from its zygote.
    """
    machine = os.machine
    space = os.space_of(proc)
    config = machine.config
    page = config.page_size
    _check_supported(proc)
    machine.charge(machine.costs.snapshot_fixed_ns, "snapshot_fixed")

    lo = proc.region_base // page
    hi = proc.region_top // page
    if incremental:
        # CoW-divergent pages only: frames this process maps alone
        items = [item for item in space.mapped_items(lo, hi)
                 if machine.phys.refcount(item[1]) == 1]
    else:
        resolve_all_pending(space, proc.region_base, proc.region_top)
        items = space.mapped_items(lo, hi)

    pages: List[Dict[str, Any]] = []
    payload = bytearray()
    for vpn, frame_no, perms_int, cow, note in items:
        machine.charge(machine.costs.page_scan_ns(page, config.granule),
                       "snapshot_scan")
        frame = machine.phys.frame(frame_no)
        # record the *logical* permissions: what the page grants once
        # any fork-sharing (ShareNote) or classic CoW resolves
        if isinstance(note, ShareNote):
            perms = note.orig_perms
        elif cow:
            perms = PagePerm(perms_int) | PagePerm.WRITE
        else:
            perms = PagePerm(perms_int)
        caps = []
        for offset in frame.tagged_granules():
            cap = frame.load_cap(offset, machine.codec)
            if cap.valid:
                caps.append([offset, cap.base, cap.length, cap.cursor,
                             int(cap.perms), cap.otype])
        pages.append({"vpn": vpn, "perms": int(perms), "caps": caps})
        payload += bytes(frame.data)
        machine.charge(machine.costs.page_copy_ns(page), "snapshot_copy")

    fds, pipes = _fd_manifest(proc, machine)
    manifest = {
        "schema": SCHEMA,
        "os": os.kind,
        "incremental": bool(incremental),
        "name": proc.name,
        "image": _image_manifest(proc.layout.image),
        "page_size": page,
        "granule": config.granule,
        "region_base": proc.region_base,
        "region_top": proc.region_top,
        "mmap_offset": getattr(proc, "mmap_offset", 0),
        "pages": pages,
        "registers": _registers_manifest(proc),
        "allocator": _allocator_manifest(proc),
        "fds": fds,
        "pipes": pipes,
        "signals": _signals_manifest(proc),
    }
    blob = encode(manifest, bytes(payload))
    machine.counters.add("checkpoint")
    machine.obs.count("core.snapshot.checkpoints")
    machine.obs.count("core.snapshot.pages_captured", len(pages))
    machine.trace("checkpoint", pid=proc.pid, pages=len(pages),
                  incremental=bool(incremental))
    return blob


def _check_supported(proc: Process) -> None:
    if len(proc.tasks) != 1:
        raise SnapshotError(
            f"snapshot/v1 covers single-threaded processes; pid "
            f"{proc.pid} has {len(proc.tasks)} tasks")
    if getattr(proc, "shm_vpns", None):
        raise SnapshotError(
            f"snapshot/v1 cannot capture MAP_SHARED memory (pid "
            f"{proc.pid}); unmap shared objects before checkpointing")
    if getattr(proc.layout.image, "shared_libs", ()):
        raise SnapshotError(
            "snapshot/v1 does not capture dynamic shared-library "
            "mappings")


def _image_manifest(image: ProgramImage) -> Dict[str, Any]:
    fields = dataclasses.asdict(image)
    fields["shared_libs"] = list(fields.get("shared_libs", ()))
    return fields


def _registers_manifest(proc: Process) -> List[List[Any]]:
    records: List[List[Any]] = []
    for name, value in proc.main_task().registers.items():
        if isinstance(value, Capability):
            records.append([name, "cap", value.base, value.length,
                            value.cursor, int(value.perms), value.otype,
                            bool(value.valid)])
        else:
            records.append([name, "int", int(value)])
    records.sort(key=lambda record: record[0])
    return records


def _allocator_manifest(proc: Process) -> Optional[Dict[str, Any]]:
    if proc.allocator is None:
        return None
    return {"max_blocks": proc.allocator.max_blocks}


def _fd_manifest(proc: Process,
                 machine: Any) -> Tuple[List[List[Any]], List[Dict[str, Any]]]:
    """fd policy + the local pipes it references.

    Descriptions referenced by several fds (dup) keep their sharing via
    a description-group index.  Non-pipe objects (files, sockets) are
    recorded by kind and dropped at restore — v1 captures one process,
    and only pipe state lives wholly inside it.
    """
    fds: List[List[Any]] = []
    pipes: List[Dict[str, Any]] = []
    pipe_index: Dict[int, int] = {}
    desc_groups: Dict[int, int] = {}
    for fd, desc in sorted(proc.fdtable.items()):
        group = desc_groups.setdefault(id(desc), len(desc_groups))
        obj = desc.obj
        if isinstance(obj, PipeEnd):
            index = pipe_index.get(id(obj.pipe))
            if index is None:
                index = len(pipes)
                pipe_index[id(obj.pipe)] = index
                pipes.append({
                    "data": bytes(obj.pipe._buffer).hex(),
                    "read_open": obj.pipe.read_open,
                    "write_open": obj.pipe.write_open,
                    "capacity": obj.pipe.capacity,
                })
            fds.append([fd, "pipe", group, index, bool(obj.readable),
                        bool(desc.readable), bool(desc.writable),
                        desc.offset])
        else:
            fds.append([fd, "dropped", group, type(obj).__name__])
    return fds, pipes


def _signals_manifest(proc: Process) -> Dict[str, Any]:
    state = getattr(proc, "signal_state", None)
    handlers: Dict[str, str] = {}
    pending: List[int] = []
    if state is not None:
        for signum, disposition in state.handlers.items():
            # only the string dispositions (SIG_DFL / SIG_IGN) are
            # serializable; Python-callable handlers are a host-side
            # driver artifact and revert to default on restore
            if isinstance(disposition, str):
                handlers[str(signum)] = disposition
        pending = [int(signum) for signum in state.pending]
    return {"handlers": handlers, "pending": pending}


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------

def restore(os: Any, blob: bytes, *, name: Optional[str] = None,
            parent: Optional[Process] = None) -> Process:
    """Materialize a full snapshot as a new runnable process on ``os``.

    Works on the checkpoint machine or a freshly booted one: the region
    is reserved anew and every capability is re-minted for it, so no
    machine-local state (frame numbers, codec interning, PIDs) leaks
    through the blob.  With ``parent`` the restored process becomes a
    waitable child (the FaaS restore-into-running-gateway pattern).
    """
    manifest, payload = decode(blob)
    machine = os.machine
    if manifest["incremental"]:
        raise SnapshotError(
            "incremental snapshots lack unmodified pages; apply them "
            "with restore_into() onto a process forked from the image")
    _check_geometry(machine, manifest)
    _check_manifest(os, manifest)
    tx = Transaction()
    with machine.locks.fork.held():
        try:
            child = _restore_phases(os, manifest, payload, name, parent, tx)
        except Exception as exc:
            tx.rollback()
            machine.counters.add("restore_rollbacks")
            machine.obs.count("core.snapshot.restore_rollbacks")
            machine.trace("restore_rollback", reason=type(exc).__name__)
            point = getattr(exc, "point", None)
            if point is not None:
                machine.chaos.note_recovery(point)
            if getattr(exc, "injected", False) and \
                    not isinstance(exc, InjectedRestoreFailure):
                raise InjectedRestoreFailure(
                    f"restore aborted by injected fault ({exc})") from exc
            raise
        tx.commit()
    return child


def _check_geometry(machine: Any, manifest: Dict[str, Any]) -> None:
    config = machine.config
    if manifest["page_size"] != config.page_size or \
            manifest["granule"] != config.granule:
        raise SnapshotError(
            f"snapshot geometry (page {manifest['page_size']}, granule "
            f"{manifest['granule']}) does not match this machine "
            f"(page {config.page_size}, granule {config.granule})")


#: permissions no user-level snapshot capability can legitimately carry
_PRIVILEGED_PERMS = Perm.SYSTEM | Perm.SEAL | Perm.UNSEAL


def _check_cap_record(os: Any, manifest: Dict[str, Any], base: int,
                      length: int, cursor: int, perms: int,
                      otype: int) -> None:
    """Reject capability records that would mint authority the
    checkpointed μprocess never had.

    A blob is attacker-editable bytes (docs/SECURITY.md): without this
    check a tampered record could re-enter the kernel's re-minting path
    carrying privileged permissions or spans outside the snapshot's own
    region.  Tampering must *fail the restore* — relocation clamping is
    a second line of defense, not the contract.
    """
    if otype == OTYPE_SENTRY:
        gate = getattr(os, "syscall_gate", None)
        if gate is None or (base, length, cursor) != (
                gate.base, gate.length, gate.cursor):
            raise SnapshotFormatError(
                "sentry capability record does not match the target "
                "kernel's syscall gate")
        return
    if Perm(perms) & _PRIVILEGED_PERMS:
        raise SnapshotFormatError(
            "capability record carries privileged permissions "
            "(SYSTEM/SEAL/UNSEAL)")
    if not (manifest["region_base"] <= base
            and base + length <= manifest["region_top"]):
        raise SnapshotFormatError(
            "capability record escapes the snapshot's own region")


def _check_manifest(os: Any, manifest: Dict[str, Any]) -> None:
    """Structural + authority validation of an untrusted manifest.

    Runs before any target-kernel state is touched, so a tampered blob
    is rejected with a typed error while the kernel is still pristine —
    no mid-loop failure can strand a half-materialized page.
    """
    for key in ("region_base", "region_top", "pages", "registers"):
        if key not in manifest:
            raise SnapshotFormatError(
                f"manifest lacks required field {key!r}")
    for entry in manifest["pages"]:
        for key in ("vpn", "perms", "caps"):
            if key not in entry:
                raise SnapshotFormatError(
                    f"page record lacks required field {key!r}")
        for record in entry["caps"]:
            if len(record) != 6:
                raise SnapshotFormatError(
                    f"malformed capability record {record!r}")
            _offset, base, length, cursor, perms, otype = record
            _check_cap_record(os, manifest, base, length, cursor, perms,
                              otype)
    for record in manifest["registers"]:
        if len(record) < 2:
            raise SnapshotFormatError(
                f"malformed register record {record!r}")
        if record[1] == "int":
            continue
        if len(record) != 8:
            raise SnapshotFormatError(
                f"malformed register record {record!r}")
        _name, _kind, base, length, cursor, perms, otype, valid = record
        if valid:
            _check_cap_record(os, manifest, base, length, cursor, perms,
                              otype)


def _abort_point(machine: Any, point: str) -> None:
    """Fire one chaos restore-abort boundary (phase-transition check)."""
    chaos = machine.chaos
    if chaos.enabled and chaos.should_fire(point):
        failure = InjectedRestoreFailure(
            f"injected restore abort at {point}")
        failure.point = point
        raise failure


def _restore_phases(os: Any, manifest: Dict[str, Any], payload: memoryview,
                    name: Optional[str], parent: Optional[Process],
                    tx: Transaction) -> Process:
    machine = os.machine
    page = machine.config.page_size
    machine.charge(machine.costs.restore_fixed_ns, "restore_fixed")

    image_fields = dict(manifest["image"])
    image_fields["shared_libs"] = tuple(image_fields.get("shared_libs", ()))
    image = ProgramImage(**image_fields)
    old_base = manifest["region_base"]
    old_top = manifest["region_top"]
    size = old_top - old_base

    # 1. reserve the region and create the kernel-side process object.
    # The SASOS reserves a fresh area of the shared space; the
    # monolithic baseline gets its own address space at the same base
    # it always loads at (delta 0 — relocation rules leave in-child
    # capabilities alone, so the one path covers both).
    sasos = getattr(os, "vspace", None) is not None
    if sasos:
        new_base = os.vspace.reserve(size)
        tx.on_abort(lambda: os.vspace.release(new_base))
        space = os.space
    else:
        new_base = old_base
        space = AddressSpace(machine, f"as-restore-{manifest['name']}")
        from repro.baselines.monolithic import handle_cow_fault
        space.fault_handler = handle_cow_fault

    child = Process(os.pids.allocate(), name or manifest["name"], parent)
    if parent is not None:
        tx.on_abort(lambda: parent.children.remove(child))
    child.layout = SegmentMap(image, new_base, page)
    child.region_base = new_base
    child.region_top = new_base + size
    child.mmap_offset = manifest["mmap_offset"]
    if not sasos:
        child.space = space
    child.syscall_gate = os.syscall_gate
    _restore_fds(machine, child, manifest, tx)
    child.signal_state = _restore_signals(manifest)
    _abort_point(machine, "core.snapshot.abort.reserve")

    # 2. materialize pages: raw bytes first, then re-minted capabilities
    # (byte writes clear granule tags, so the order preserves the exact
    # recorded tag set — no more, no less).
    regions = RegionPair(
        parent_base=old_base, parent_top=old_top,
        child_base=child.region_base, child_top=child.region_top,
    )
    delta_pages = (child.region_base - old_base) // page
    mapped: List[int] = []
    tx.on_abort(lambda: _undo_restore_pages(space, mapped))
    offset = 0
    for entry in manifest["pages"]:
        data = bytes(payload[offset:offset + page])
        offset += page
        frame_number = machine.phys.alloc(zero=False, charge=False)
        frame = machine.phys.frame(frame_number)
        frame.write(0, data)
        machine.charge(machine.costs.page_copy_ns(page), "restore_copy")
        for granule_offset, base, length, cursor, perms, otype \
                in entry["caps"]:
            cap = Capability(base, length, cursor, Perm(perms), otype, True)
            moved = relocate_cap(cap, regions)
            frame.store_cap(granule_offset, moved, machine.codec)
            if moved is not cap:
                machine.charge(machine.costs.cap_relocate_ns, "reloc_cap")
        new_vpn = entry["vpn"] + delta_pages
        space.map_page(new_vpn, frame_number, PagePerm(entry["perms"]))
        mapped.append(new_vpn)
    machine.obs.count("core.snapshot.pages_restored",
                      len(manifest["pages"]))
    _abort_point(machine, "core.snapshot.abort.pages")

    # 3. the register file: integers verbatim, capabilities re-minted
    # (sealed sentry gates reconstruct bit-equal to the target's gate)
    task = child.add_task()
    _restore_registers(machine, task.registers, manifest, regions)
    _abort_point(machine, "core.snapshot.abort.registers")

    # 4. allocator: re-attach to the metadata now living in the restored
    # pages (never format — that would wipe the live heap)
    if manifest["allocator"] is not None:
        heap_cap = (
            os.kernel_root
            .set_bounds(child.layout.base("heap"), child.layout.size("heap"))
            .with_cursor(child.layout.base("heap"))
            .and_perms(Perm.data_rw())
        )
        child.allocator = GuestAllocator(
            machine, space, heap_cap,
            max_blocks=manifest["allocator"]["max_blocks"],
        )
        child.allocator.attach_lazy()
    _abort_point(machine, "core.snapshot.abort.allocator")

    # 5. publish (nothing below can fail, mirroring fork)
    register_demand_heap = getattr(os, "_register_demand_heap", None)
    if register_demand_heap is not None:
        register_demand_heap(child)
    os.procs.add(child)
    os.sched.add(task)
    machine.counters.add("restore")
    machine.obs.count("core.snapshot.restores")
    machine.trace("restore", pid=child.pid, pages=len(manifest["pages"]))
    record_flow(machine, "restore", parent.pid if parent else 0, child.pid,
                child.region_base, child.region_top)
    return child


def _undo_restore_pages(space: AddressSpace, mapped: List[int]) -> None:
    for vpn in mapped:
        if vpn in space.page_table:
            space.unmap_page(vpn)


def _restore_fds(machine: Any, child: Process, manifest: Dict[str, Any],
                 tx: Transaction) -> None:
    child.fdtable = FDTable()
    tx.on_abort(child.fdtable.close_all)
    pipes: List[Pipe] = []
    for spec in manifest["pipes"]:
        pipe = Pipe(machine, spec["capacity"])
        pipe._buffer.extend(bytes.fromhex(spec["data"]))
        pipe.read_open = spec["read_open"]
        pipe.write_open = spec["write_open"]
        pipes.append(pipe)
    groups: Dict[int, FileDescription] = {}
    for entry in manifest["fds"]:
        if entry[1] != "pipe":
            machine.obs.count("core.snapshot.dropped_fds")
            continue
        fd, _kind, group, index, end_readable, readable, writable, \
            file_offset = entry
        desc = groups.get(group)
        if desc is None:
            end = PipeEnd(pipes[index], readable=bool(end_readable))
            desc = FileDescription(end, readable=bool(readable),
                                   writable=bool(writable))
            desc.offset = file_offset
            groups[group] = desc
        else:
            desc.incref()
        child.fdtable._slots[fd] = desc
        machine.charge(machine.costs.fd_dup_ns, "fd_dup")


def _restore_signals(manifest: Dict[str, Any]) -> SignalState:
    state = SignalState()
    state.handlers = {
        int(signum): disposition
        for signum, disposition in manifest["signals"]["handlers"].items()
    }
    state.pending = list(manifest["signals"]["pending"])
    return state


def _restore_registers(machine: Any, registers: Any,
                       manifest: Dict[str, Any],
                       regions: RegionPair) -> None:
    for record in manifest["registers"]:
        reg_name, kind = record[0], record[1]
        if kind == "int":
            registers.set(reg_name, record[2])
            continue
        base, length, cursor, perms, otype, valid = record[2:]
        cap = Capability(base, length, cursor, Perm(perms), otype,
                         bool(valid))
        moved = relocate_cap(cap, regions)
        registers.set(reg_name, moved)
        if moved is not cap:
            machine.charge(machine.costs.cap_relocate_ns, "reloc_reg")


# ---------------------------------------------------------------------------
# Incremental apply (cluster migration)
# ---------------------------------------------------------------------------

def restore_into(os: Any, proc: Process, blob: bytes) -> int:
    """Apply an incremental snapshot onto ``proc``.

    ``proc`` must have been created from the same program image
    (typically forked from the target shard's zygote); the snapshot's
    divergent pages replace the corresponding pages of ``proc``'s
    region — real page bytes on the wire, with every capability
    re-minted for the target region — and the recorded register file is
    re-minted on top.  Returns the number of pages applied.
    """
    manifest, payload = decode(blob)
    machine = os.machine
    page = machine.config.page_size
    _check_geometry(machine, manifest)
    _check_manifest(os, manifest)
    space = os.space_of(proc)
    old_base = manifest["region_base"]
    old_top = manifest["region_top"]
    if proc.region_top - proc.region_base != old_top - old_base:
        raise SnapshotError(
            f"target region size {proc.region_top - proc.region_base:#x} "
            f"does not match snapshot region {old_top - old_base:#x}")
    regions = RegionPair(
        parent_base=old_base, parent_top=old_top,
        child_base=proc.region_base, child_top=proc.region_top,
    )
    delta_pages = (proc.region_base - old_base) // page
    offset = 0
    for entry in manifest["pages"]:
        data = bytes(payload[offset:offset + page])
        offset += page
        vpn = entry["vpn"] + delta_pages
        if vpn in space.page_table:
            # drop the target's page (a zygote-shared frame simply loses
            # one reference; the zygote side's ShareNote self-heals)
            space.unmap_page(vpn)
        frame_number = machine.phys.alloc(zero=False, charge=False)
        frame = machine.phys.frame(frame_number)
        frame.write(0, data)
        machine.charge(machine.costs.page_copy_ns(page), "restore_copy")
        for granule_offset, base, length, cursor, perms, otype \
                in entry["caps"]:
            cap = Capability(base, length, cursor, Perm(perms), otype, True)
            moved = relocate_cap(cap, regions)
            frame.store_cap(granule_offset, moved, machine.codec)
            if moved is not cap:
                machine.charge(machine.costs.cap_relocate_ns, "reloc_cap")
        space.map_page(vpn, frame_number, PagePerm(entry["perms"]))
    _restore_registers(machine, proc.main_task().registers, manifest,
                       regions)
    machine.counters.add("restore_into")
    machine.obs.count("core.snapshot.pages_applied",
                      len(manifest["pages"]))
    machine.trace("restore_into", pid=proc.pid,
                  pages=len(manifest["pages"]))
    return len(manifest["pages"])

"""μprocess loading (paper §3.7, §4.2).

Loading a program creates a μprocess: a contiguous region of the single
address space is reserved, segments are mapped per the PIC/PIE layout of
Figure 1, the GOT and a handful of pointer globals are initialized (so
there are genuine absolute references for fork to relocate), the static
heap is formatted, and the task's capability registers are derived —
bounded to the region, without the SYSTEM permission.

The segment-mapping and image-initialization helpers are OS-agnostic
(they take an explicit machine/space/root) so the monolithic baseline —
also a pure-capability system, like CheriBSD — loads its processes
through the same code paths.
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from repro.cheri.capability import Capability, Perm
from repro.cheri.codec import CAP_SIZE
from repro.cheri.regfile import CGP, CSP, CTP, DDC, PCC
from repro.core.got import init_got
from repro.core.isolation import derive_uprocess_roots
from repro.core.relocate import record_flow
from repro.hw.paging import AddressSpace
from repro.mem.allocator import GuestAllocator
from repro.mem.layout import ProgramImage, SegmentMap
from repro.kernel.fdtable import FDTable
from repro.kernel.task import Process

#: number of pointer globals planted in the data segment at load; these
#: exercise the *lazy* relocation path (the GOT exercises the eager one)
DATA_POINTER_GLOBALS = 8


# ---------------------------------------------------------------------------
# OS-agnostic image helpers (shared with the baselines)
# ---------------------------------------------------------------------------

def map_image_segments(machine: Any, space: AddressSpace,
                       layout: SegmentMap,
                       demand_heap: bool = False) -> None:
    """Allocate frames and install PTEs for every segment (the mmap
    window stays unmapped: it is a demand area).

    With ``demand_heap`` and an image carrying ``heap_initial``, only
    that prefix of the heap is mapped; the tail is left for demand-zero
    paging (dynamic heaps, §4.2).
    """
    page = machine.config.page_size
    for spec, base, size in layout.iter_segments():
        if spec.name == "mmap":
            continue
        top = base + size
        if (demand_heap and spec.name == "heap"
                and layout.image.heap_initial is not None):
            initial = min(size, max(0, layout.image.heap_initial))
            top = base + (initial + page - 1) // page * page
        for vpn in range(base // page, top // page):
            frame = machine.phys.alloc(zero=True, charge=False)
            space.map_page(vpn, frame, spec.page_perms)


def init_image_contents(machine: Any, space: AddressSpace,
                        layout: SegmentMap, region_cap: Capability) -> None:
    """Fill code/rodata with recognizable patterns, plant pointer
    globals, and populate the GOT."""
    _init_code_and_rodata(machine, space, layout)
    _init_data_globals(space, layout, region_cap)
    init_got(
        space, layout.base("got"), layout.image.got_entries, region_cap,
        data_base=layout.base("data"), data_size=layout.size("data"),
        rodata_base=layout.base("rodata"), rodata_size=layout.size("rodata"),
    )


def make_heap_allocator(machine: Any, space: AddressSpace,
                        layout: SegmentMap,
                        region_cap: Capability) -> GuestAllocator:
    heap_cap = (
        region_cap
        .set_bounds(layout.base("heap"), layout.size("heap"))
        .with_cursor(layout.base("heap"))
        .and_perms(Perm.data_rw())
    )
    allocator = GuestAllocator(machine, space, heap_cap)
    allocator.format()
    return allocator


def initial_registers(layout: SegmentMap,
                      region_cap: Capability) -> Dict[str, Capability]:
    """Derive the initial capability register file (all bounded to the
    region, none carrying SYSTEM)."""
    code_base, code_top = layout.span("code")
    stack_base, stack_top = layout.span("stack")
    got_base, _got_top = layout.span("got")
    tls_base, _tls_top = layout.span("tls")
    return {
        DDC: region_cap,
        PCC: region_cap.set_bounds(code_base, code_top - code_base)
                       .with_cursor(code_base)
                       .and_perms(Perm.code()),
        CSP: region_cap.set_bounds(stack_base, stack_top - stack_base)
                       .with_cursor(stack_top - CAP_SIZE)
                       .and_perms(Perm.data_rw()),
        CGP: region_cap.set_bounds(got_base, layout.size("got"))
                       .with_cursor(got_base)
                       .and_perms(Perm.data_ro()),
        CTP: region_cap.set_bounds(tls_base, layout.size("tls"))
                       .with_cursor(tls_base)
                       .and_perms(Perm.data_rw()),
    }


def _init_code_and_rodata(machine: Any, space: AddressSpace,
                          layout: SegmentMap) -> None:
    """One deterministic marker per page: cheap, but copy bugs shuffle
    data visibly in tests."""
    page = machine.config.page_size
    for name in ("code", "rodata"):
        base, top = layout.span(name)
        for addr in range(base, top, page):
            marker = struct.pack(
                "<QQ", 0xC0DE if name == "code" else 0x0DA7A, addr
            )
            space.write(addr, marker, privileged=True, charge=False)


def _init_data_globals(space: AddressSpace, layout: SegmentMap,
                       region_cap: Capability) -> None:
    """Plant pointer globals in the data segment.

    Real programs keep pointers in static storage (e.g. ``char *head``);
    these are the absolute references μFork must find via tags when the
    child touches the page (Figure 1 ②).
    """
    data_base = layout.base("data")
    rodata_base = layout.base("rodata")
    for index in range(DATA_POINTER_GLOBALS):
        target = rodata_base + index * 64
        cap = (
            region_cap
            .set_bounds(target, 64)
            .with_cursor(target)
            .and_perms(Perm.data_ro())
        )
        space.store_cap(data_base + index * CAP_SIZE, cap, privileged=True)


# ---------------------------------------------------------------------------
# SASOS loading
# ---------------------------------------------------------------------------

def load_uprocess(os: Any, image: ProgramImage, name: str,
                  parent: Process = None) -> Process:
    """Create and map a fresh μprocess on a :class:`UForkOS`."""
    machine = os.machine
    page = machine.config.page_size

    region_base = os.vspace.reserve(image.region_size(page))
    layout = SegmentMap(image, region_base, page)

    proc = Process(os.pids.allocate(), name, parent)
    proc.region_base = layout.region_base
    proc.region_top = layout.region_top
    proc.layout = layout
    proc.fdtable = FDTable()

    map_image_segments(machine, os.space, layout,
                       demand_heap=image.heap_initial is not None)
    # demand-zero paging must be live before the allocator formats its
    # metadata (which may land beyond the initially mapped prefix)
    os._register_demand_heap(proc)

    region_cap = derive_uprocess_roots(
        os.kernel_root, layout.region_base, layout.region_size
    )
    init_image_contents(machine, os.space, layout, region_cap)
    proc.allocator = make_heap_allocator(machine, os.space, layout,
                                         region_cap)
    proc.syscall_gate = os.syscall_gate

    task = proc.add_task()
    for reg_name, value in initial_registers(layout, region_cap).items():
        task.registers.set(reg_name, value)
    os.procs.add(proc)
    os.sched.add(task)
    machine.counters.add("uprocess_loaded")
    record_flow(machine, "spawn", parent.pid if parent else 0, proc.pid,
                proc.region_base, proc.region_top)
    return proc

"""Tests for the unified observability layer (repro.obs)."""

import json
import os

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.clock import SimClock
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.machine import Machine
from repro.obs import (
    DEFAULT_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
    Observability,
    SCHEMA,
    check_metric_name,
    merge_exports,
    obs_session,
    to_json,
    validate_export,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def boot_ufork():
    os_ = UForkOS(machine=Machine(),
                  copy_strategy=CopyStrategy.COPA,
                  isolation=IsolationConfig.fault())
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "app"))
    return os_, ctx


def run_hello_forks(os_, ctx, n=3):
    for _ in range(n):
        child = ctx.fork()
        child.exit(0)
        ctx.wait(child.pid)


# ---------------------------------------------------------------------------
# Naming contract
# ---------------------------------------------------------------------------

class TestMetricNames:
    def test_valid_names(self):
        for name in ("hw.tlb.flush", "kernel.syscall.entries",
                     "span.syscall.fork", "a.b", "x_1.y_2"):
            assert check_metric_name(name) == name

    @pytest.mark.parametrize("bad", [
        "single", "Upper.case", "has.space bad", "has..empty",
        "trailing.", ".leading", "has-dash.x", "",
    ])
    def test_invalid_names_raise(self, bad):
        with pytest.raises(ValueError):
            check_metric_name(bad)

    def test_registry_rejects_kind_rebinding(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.histogram("a.b")


# ---------------------------------------------------------------------------
# Counters and gauges
# ---------------------------------------------------------------------------

class TestCounters:
    def test_monotonic_accumulation(self):
        registry = MetricsRegistry()
        counter = registry.counter("hw.tlb.flush")
        counter.inc()
        counter.inc(4)
        assert registry.counters() == {"hw.tlb.flush": 5}
        # get-or-create returns the same metric
        assert registry.counter("hw.tlb.flush") is counter

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("hw.tlb.flush")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("kernel.sched.runqueue_depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_default_bucket_layout(self):
        # 1-2-5 decade series, 1 ns .. 5e9 ns, strictly increasing
        assert DEFAULT_BUCKETS_NS[0] == 1
        assert DEFAULT_BUCKETS_NS[-1] == 5 * 10 ** 9
        assert len(DEFAULT_BUCKETS_NS) == 30
        assert list(DEFAULT_BUCKETS_NS) == sorted(set(DEFAULT_BUCKETS_NS))

    def test_value_on_bound_lands_in_that_bucket(self):
        hist = Histogram("span.syscall.fork")
        for bound in (1, 2, 5, 10, 200, 5 * 10 ** 9):
            hist.observe(bound)
        exported = dict(
            (le, n) for le, n in hist.export()["buckets"])
        assert exported == {1: 1, 2: 1, 5: 1, 10: 1, 200: 1,
                            5 * 10 ** 9: 1}

    def test_between_bounds_rounds_up(self):
        hist = Histogram("span.syscall.fork")
        hist.observe(3)          # 2 < 3 <= 5
        assert hist.export()["buckets"] == [[5, 1]]

    def test_overflow_bucket(self):
        hist = Histogram("span.syscall.fork")
        hist.observe(5 * 10 ** 9 + 1)
        assert hist.overflow == 1
        assert hist.export()["buckets"] == [[None, 1]]

    def test_summary_stats(self):
        hist = Histogram("span.syscall.fork")
        for value in (10, 30, 20):
            hist.observe(value)
        export = hist.export()
        assert export["count"] == 3
        assert export["sum"] == 60
        assert export["min"] == 10
        assert export["max"] == 30

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("a.b", bounds=(5, 2, 10))


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_nested_attribution(self):
        clock = SimClock()
        obs = Observability(clock).enable()
        with obs.span("syscall.fork"):
            with obs.span("copy_pages"):
                clock.advance(640, "page_copy")
            clock.advance(100, "fork_fixed")
        clock.advance(60)   # outside any span -> root self time

        root = obs.span_tree.root
        fork = obs.span_tree.node("syscall.fork")
        copy = obs.span_tree.node("syscall.fork.copy_pages")
        assert copy.self_ns == 640
        assert fork.self_ns == 100
        assert fork.total_ns == 740
        assert root.self_ns == 60
        assert root.total_ns == clock.now_ns == 800

    def test_span_duration_recorded_as_histogram(self):
        clock = SimClock()
        obs = Observability(clock).enable()
        with obs.span("syscall.fork"):
            clock.advance(1234)
        hist = obs.registry.histograms()["span.syscall.fork"]
        assert hist.count == 1
        assert hist.sum == 1234

    def test_reentry_aggregates(self):
        clock = SimClock()
        obs = Observability(clock).enable()
        for _ in range(3):
            with obs.span("syscall.fork"):
                clock.advance(10)
        node = obs.span_tree.node("syscall.fork")
        assert node.count == 3
        assert node.self_ns == 30

    def test_out_of_order_close_raises(self):
        obs = Observability(SimClock()).enable()
        outer = obs.span_tree.open("a")
        obs.span_tree.open("b")
        with pytest.raises(RuntimeError):
            obs.span_tree.close(outer)

    def test_time_mirrored_to_bucket_counters(self):
        clock = SimClock()
        obs = Observability(clock).enable()
        clock.advance(500, "fork_fixed")
        clock.advance(250, "fork_fixed")
        assert obs.registry.counters()["time.fork_fixed"] == 750


# ---------------------------------------------------------------------------
# Disabled path: zero overhead, zero simulated-time impact
# ---------------------------------------------------------------------------

class TestDisabledPath:
    def test_disabled_records_nothing(self):
        obs = Observability(SimClock())
        obs.count("a.b")
        obs.gauge_set("a.c", 1)
        obs.observe("a.d", 5)
        with obs.span("a.e"):
            pass
        assert obs.registry.export() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert obs.span_tree.root.total_ns == 0

    def test_machine_obs_disabled_by_default(self):
        machine = Machine()
        assert machine.obs.enabled is False
        assert machine.clock.observer is None

    def test_workload_leaves_disabled_registry_empty(self):
        os_, ctx = boot_ufork()
        run_hello_forks(os_, ctx, n=2)
        assert os_.machine.obs.registry.export() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_enabling_does_not_change_simulated_results(self):
        os_a, ctx_a = boot_ufork()
        run_hello_forks(os_a, ctx_a, n=3)

        os_b, ctx_b = boot_ufork()
        os_b.machine.obs.enable()
        run_hello_forks(os_b, ctx_b, n=3)

        assert os_a.machine.clock.now_ns == os_b.machine.clock.now_ns
        assert (os_a.machine.counters.snapshot()
                == os_b.machine.counters.snapshot())
        assert os_a.machine.clock.buckets == os_b.machine.clock.buckets


# ---------------------------------------------------------------------------
# Root invariant on a real workload
# ---------------------------------------------------------------------------

class TestWorkloadAttribution:
    def test_root_total_equals_observed_clock_time(self):
        os_, ctx = boot_ufork()
        obs = os_.machine.obs.enable()
        start = os_.machine.clock.now_ns
        run_hello_forks(os_, ctx, n=3)
        elapsed = os_.machine.clock.now_ns - start
        assert obs.span_tree.root.total_ns == elapsed
        export = obs.export()
        assert export["observed_ns"] == elapsed
        validate_export(export)

    def test_fork_phases_nest_under_syscall_fork(self):
        os_, ctx = boot_ufork()
        obs = os_.machine.obs.enable()
        run_hello_forks(os_, ctx, n=1)
        fork = obs.span_tree.node("syscall.fork")
        assert fork is not None
        assert set(fork.children) >= {"fixed", "copy_pages", "registers"}

    def test_instrumented_counters_fire(self):
        os_, ctx = boot_ufork()
        obs = os_.machine.obs.enable()
        run_hello_forks(os_, ctx, n=1)
        counters = obs.registry.counters()
        assert counters["core.ufork.forks"] == 1
        assert counters["kernel.syscall.entries"] >= 3
        assert counters["hw.phys.frames_copied"] >= 1
        assert counters["core.relocate.frames_scanned"] >= 1


# ---------------------------------------------------------------------------
# Export / merge / golden file
# ---------------------------------------------------------------------------

def golden_scenario_export():
    """A deterministic, hand-auditable scenario (no machine involved)."""
    clock = SimClock()
    obs = Observability(clock).enable()
    with obs.span("syscall.fork"):
        with obs.span("copy_pages"):
            clock.advance(640, "page_copy")
            clock.advance(640, "page_copy")
        with obs.span("registers"):
            clock.advance(60, "reloc_reg")
        clock.advance(500, "fork_fixed")
    obs.count("hw.tlb.flush")
    obs.count("core.ufork.forks")
    obs.gauge_set("kernel.sched.runqueue_depth", 2)
    obs.observe("kernel.ipc.msg_bytes", 4096)
    clock.advance(100)
    return obs.export()


class TestExport:
    def test_golden_file(self):
        export = golden_scenario_export()
        validate_export(export)
        path = os.path.join(GOLDEN_DIR, "obs_export.json")
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == export

    def test_to_json_is_deterministic(self):
        a = to_json(golden_scenario_export())
        b = to_json(golden_scenario_export())
        assert a == b
        assert json.loads(a)["schema"] == SCHEMA

    def test_merge_sums_counters_and_spans(self):
        first = golden_scenario_export()
        second = golden_scenario_export()
        merged = merge_exports([first, second])
        validate_export(merged)
        assert merged["observed_ns"] == 2 * first["observed_ns"]
        assert merged["metrics"]["counters"]["hw.tlb.flush"] == 2
        # gauges keep the maximum
        assert merged["metrics"]["gauges"][
            "kernel.sched.runqueue_depth"] == 2
        assert merged["spans"]["total_ns"] == 2 * first["spans"]["total_ns"]

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(ValueError):
            merge_exports([{"schema": "something/else"}])

    def test_validate_rejects_inconsistent_span_totals(self):
        export = golden_scenario_export()
        export["spans"]["total_ns"] += 1
        with pytest.raises(ValueError):
            validate_export(export)


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------

class TestSession:
    def test_session_adopts_and_merges_machines(self):
        with obs_session() as session:
            os_a, ctx_a = boot_ufork()
            run_hello_forks(os_a, ctx_a, n=1)
            os_b, ctx_b = boot_ufork()
            run_hello_forks(os_b, ctx_b, n=1)
        assert os_a.machine.obs.enabled
        assert os_b.machine.obs.enabled
        assert len(session.observabilities) == 2
        merged = session.export()
        validate_export(merged)
        assert merged["metrics"]["counters"]["core.ufork.forks"] == 2
        assert merged["observed_ns"] == (os_a.machine.clock.now_ns
                                         + os_b.machine.clock.now_ns)

    def test_machines_outside_session_stay_disabled(self):
        with obs_session():
            pass
        machine = Machine()
        assert machine.obs.enabled is False


# ---------------------------------------------------------------------------
# The obs-report harness entry point
# ---------------------------------------------------------------------------

class TestObsReport:
    def test_report_runs_and_exports(self, tmp_path, capsys):
        from repro.harness.obsreport import obs_report
        json_path = str(tmp_path / "profile.json")
        exports = obs_report(samples=2, json_path=json_path)
        assert set(exports) == {"ufork", "cheribsd", "nephele"}
        for export in exports.values():
            validate_export(export)
            assert export["spans"]["total_ns"] == export["observed_ns"]
        out = capsys.readouterr().out
        assert "syscall.fork" in out
        with open(json_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["workload"] == "fig8_hello_fork"
        assert set(document["systems"]) == {"ufork", "cheribsd", "nephele"}

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.harness.__main__ import main
        assert main(["obs-report"]) == 0
        assert "syscall.fork" in capsys.readouterr().out

    def test_cli_obs_dir_sidecar(self, tmp_path, capsys):
        from repro.harness.__main__ import main
        obs_dir = str(tmp_path)
        assert main(["--only", "fig8", "--obs-dir", obs_dir]) == 0
        path = tmp_path / "fig8.obs.json"
        with open(path, encoding="utf-8") as handle:
            export = json.load(handle)
        validate_export(export)
        assert export["spans"]["total_ns"] == export["observed_ns"]

"""The promoted isolation module (:mod:`repro.conform.isolated`): the
non-blocking :class:`IsolatedProcess` the farm builds on, the shim that
keeps ``tests/isolated.py`` imports working, and proof that a group
kill actually reaches orphaned grandchildren.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

import repro.conform.isolated as promoted
import tests.isolated as shim
from repro.conform.isolated import (
    REPO_SRC,
    IsolatedProcess,
    run_isolated,
)


def test_shim_reexports_the_promoted_implementation():
    """tests/isolated.py is a pure re-export: same objects, one
    implementation, so farm workers and tests can never drift."""
    assert shim.IsolatedProcess is promoted.IsolatedProcess
    assert shim.IsolatedResult is promoted.IsolatedResult
    assert shim.run_isolated is promoted.run_isolated
    assert shim.REPO_SRC == promoted.REPO_SRC


def test_repo_src_points_at_the_importable_tree():
    assert os.path.isdir(os.path.join(REPO_SRC, "repro", "conform"))


def test_code_and_argv_are_mutually_exclusive():
    with pytest.raises(ValueError):
        IsolatedProcess()
    with pytest.raises(ValueError):
        IsolatedProcess(code="pass", argv=[sys.executable, "-c", "pass"])


def test_argv_mode_runs_a_module_with_repro_on_path():
    proc = IsolatedProcess(
        argv=[sys.executable, "-c",
              "import repro.conform.farm as farm; "
              "print(farm.DEFAULT_DEPTH)"])
    result = proc.wait()
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "5"
    assert result.crash_reason == "exited with code 0"


def test_deadline_is_measured_from_spawn():
    """remaining() counts down from construction, so a coordinator that
    waits on workers sequentially shares one wall clock with them."""
    proc = IsolatedProcess(code="pass", timeout=30.0)
    try:
        assert proc.remaining() <= 30.0
        time.sleep(0.05)
        assert proc.remaining() < 30.0
    finally:
        assert proc.wait().returncode == 0


def test_explicit_group_kill_is_reported_as_a_crash():
    proc = IsolatedProcess(code="import time; time.sleep(600)",
                           timeout=60.0)
    proc.kill_group()
    result = proc.wait()
    assert result.crashed and not result.timed_out
    assert "SIGKILL" in result.crash_reason


def test_group_kill_reaches_orphaned_grandchildren():
    """The payload forks a grandchild and lets its parent exit, so the
    sleeper is reparented to init — outside the child's process *tree*
    but still inside its process *group*, which is what the deadline
    kill targets."""
    code = (
        "import os, time\n"
        "pid = os.fork()\n"
        "if pid == 0:\n"
        "    gpid = os.fork()\n"
        "    if gpid == 0:\n"
        "        time.sleep(600)\n"
        "    print(gpid, flush=True)\n"
        "    os._exit(0)\n"
        "os.waitpid(pid, 0)\n"
        "time.sleep(600)\n"
    )
    start = time.monotonic()
    result = run_isolated(code, timeout=1.0)
    assert result.timed_out
    assert result.crash_reason == "timed out (process group killed)"
    assert time.monotonic() - start < 10
    grandchild = int(result.stdout.strip())
    # the orphan must be dead: either fully gone, or a zombie awaiting
    # init's reap — never still sleeping
    try:
        with open(f"/proc/{grandchild}/stat", "r") as handle:
            fields = handle.read()
        state = fields.rsplit(")", 1)[1].split()[0]
        assert state in ("Z", "X"), f"grandchild survived in state {state}"
    except FileNotFoundError:
        pass  # already reaped — even better

"""Figure 6: FaaS (Zygote) function throughput on 1-3 cores.

Paper: the benchmark is fork-latency bound; μFork handles 24% more
requests than CheriBSD; both scale with cores, CheriBSD flattening as
its coordinator fork becomes the bottleneck; TOCTTOU cost is
negligible (no syscalls in the function body).
"""

from conftest import run_once

from repro.harness.experiments import fig6_faas_throughput


def test_fig6_faas_throughput(benchmark, record_figure):
    rows = run_once(benchmark, fig6_faas_throughput, core_counts=(1, 2, 3))
    record_figure(
        "fig6_faas_throughput", rows,
        "Figure 6: FaaS function throughput (functions/s)",
    )
    by_cores = {row["cores"]: row for row in rows}

    # throughput grows with cores for both systems
    for name in ("ufork_per_s", "cheribsd_per_s"):
        series = [by_cores[c][name] for c in (1, 2, 3)]
        assert series == sorted(series)

    # μFork's advantage at 3 cores is in the paper's ballpark (+24%)
    advantage = (by_cores[3]["ufork_per_s"]
                 / by_cores[3]["cheribsd_per_s"]) - 1
    assert 0.10 < advantage < 0.60

    # μFork scales near-linearly 1 -> 3
    assert by_cores[3]["ufork_per_s"] > 2.7 * by_cores[1]["ufork_per_s"]

    # TOCTTOU protection is negligible here (paper: "negligible since
    # the experiment is not system-call intensive")
    for cores in (1, 2, 3):
        row = by_cores[cores]
        assert row["ufork_tocttou_per_s"] > 0.97 * row["ufork_per_s"]

"""Cross-shard μprocess migration: rebalancing a hot shard.

Because every serving worker is a μFork fork of a shard-local zygote
(:mod:`repro.cluster.pool`), a worker's identity splits cleanly into
two parts: the warm runtime state it *shares* with the zygote — present
on every shard already — and the CoW-divergent pages it has written
since fork.  Migration therefore only puts the divergent pages on the
wire, and since this repo grew :mod:`repro.snapshot` those pages travel
as a real ``repro.snapshot/v1`` incremental blob, not an estimate:

1. the source shard checkpoints the worker incrementally — exactly its
   refcount-1 pages, capability tags recorded logically — and the blob
   is audited against the page set the pool reported *before* the
   checkpoint (the capture must neither resolve shared pages nor miss
   a divergent one);
2. the worker retires through the real exit/reap path (frames, PTEs
   and the PID are released by the kernel, verified by the leak
   auditor), and the blob's bytes are charged at the cluster wire rate
   on top of ``migration_fixed_ns`` (docs/COSTMODEL.md);
3. the target shard fast-forks a replacement from *its* zygote and
   applies the blob with :func:`repro.snapshot.restore_into` — every
   transferred capability re-minted by the same μFork relocation
   machinery as any fork, against the twin's region on the target
   machine.

This zygote-anchored scheme is the cluster-scale payoff of the paper's
fast-fork path: moving a worker costs one reap, one fork, and the wire
time of only its private state — and the replacement now *computes as*
the migrated worker, not merely as a fresh fork.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster.params import ClusterCosts


def migrate_worker(source: Any, target: Any,
                   costs: ClusterCosts) -> Dict[str, int]:
    """Move one worker from ``source`` to ``target`` shard.

    Returns the migration record for the ``repro.cluster/v1`` report:
    the divergent bytes transferred and the simulated cost
    ``migration_ns = migration_fixed_ns + bytes × wire_ns_per_byte``.
    The new worker is not serviceable until that cost has elapsed —
    the runner adds it to the target's capacity at ``now + ns``.
    """
    from repro.snapshot import checkpoint, decode, restore_into

    pool = source.pool
    worker = pool.workers[-1]
    expected_vpns = pool.divergent_vpns(worker)
    blob = checkpoint(source.session.os, worker.proc, incremental=True)
    manifest, _payload = decode(blob)
    captured = {page["vpn"] for page in manifest["pages"]}
    assert captured == expected_vpns, (
        f"incremental checkpoint drifted from the pool's divergence "
        f"audit on shard {source.index}: "
        f"{sorted(captured ^ expected_vpns)[:8]}")
    divergent = len(manifest["pages"]) * manifest["page_size"]

    pool.retire(worker)
    source.session.machine.obs.count("cluster.migrate.out")

    twin = target.pool.fork_worker()
    applied = restore_into(target.session.os, twin.proc, blob)
    assert applied == len(manifest["pages"])
    target.session.machine.obs.count("cluster.migrate.in")
    return {
        "from": source.index,
        "to": target.index,
        "divergent_bytes": divergent,
        "ns": costs.migration_ns(divergent),
    }

"""repro.conform — differential POSIX conformance + interleaving explorer.

The simulated kernel claims POSIX fork semantics; this package checks
that claim two ways:

* **Differentially**: every scenario in :mod:`repro.conform.scenarios`
  runs on the simulated kernel under all four fork strategies
  (monolithic / full / coa / copa) at 1, 2 and 4 CPUs *and* on the real
  host kernel (``os.fork`` in a sandboxed subprocess), and the logical
  traces must match.
* **Exhaustively (bounded)**: :mod:`repro.conform.explorer` replays
  each scenario under hundreds of permuted scheduler decision
  sequences, asserting kernel invariants (no leaked frames, PTEs, pids
  or fds; tag validity; refcount consistency) at every preemption
  point, with sleep-set pruning to skip equivalent interleavings.

``python -m repro.harness conform`` drives both and emits a
``repro.conform/v1`` JSON report plus a ``repro.obs`` sidecar.  Every
run is deterministic from its seed; a violation is reported as the
(seed, schedule) pair that replays it.

This package root stays import-light (DSL only); the executors pull in
the OS stack lazily.
"""

from repro.conform.dsl import (
    READ_END,
    SIG_NAMES,
    WRITE_END,
    Scenario,
    diff_traces,
    normalize_trace,
    trace_sha256,
)

#: schema tag of the report ``python -m repro.harness conform`` writes
SCHEMA = "repro.conform/v1"

__all__ = [
    "READ_END",
    "SCHEMA",
    "SIG_NAMES",
    "Scenario",
    "WRITE_END",
    "diff_traces",
    "normalize_trace",
    "trace_sha256",
]

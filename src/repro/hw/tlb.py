"""A minimal TLB cost model.

The reproduction does not simulate TLB *contents*; what matters for the
paper's lightweightness argument (§2.2) is the *cost* of TLB shootdowns
and flushes that multi-address-space OSes pay on every context switch —
and that the single-address-space design avoids entirely.
"""

from __future__ import annotations

from typing import Any


class TLB:
    """Tracks flushes and charges their cost to the simulated clock.

    Each CPU core owns a *private* TLB (``machine.cores[i].tlb``);
    ``machine.tlb`` aliases CPU 0's instance, so single-CPU call sites
    keep their historical behavior.  Cross-core invalidation goes
    through the ack-based shootdown protocol in :mod:`repro.smp.ipi`,
    whose broadcast cost is **per recipient** — see
    :meth:`~repro.params.CostModel.shootdown_ns`.
    """

    def __init__(self, machine: Any, cpu_id: int = 0) -> None:
        self._machine = machine
        self.cpu_id = cpu_id
        self.flush_count = 0

    def flush(self) -> None:
        """Full flush — paid by the monolithic OS on address-space switch.

        Observable as the ``hw.tlb.flush`` counter.  Under chaos the
        ``hw.tlb.shootdown_loss`` point models a lost shootdown IPI:
        the ack timeout detects it and the flush is re-issued (paid
        again), so correctness never depends on the first IPI landing.
        """
        self._do_flush()
        machine = self._machine
        if machine.chaos.enabled and \
                machine.chaos.should_fire("hw.tlb.shootdown_loss"):
            self._do_flush()
            machine.chaos.note_recovery("hw.tlb.shootdown_loss")

    def _do_flush(self) -> None:
        self.flush_count += 1
        self._machine.translation_gen += 1
        self._machine.clock.advance(self._machine.costs.tlb_flush_ns, "tlb_flush")
        self._machine.counters.add("tlb_flush")
        self._machine.obs.count("hw.tlb.flush")

    def remote_invalidate(self) -> None:
        """Shootdown recipient side: invalidate stale translations in
        response to a ``tlb_shootdown`` IPI.  Charged once per
        recipient — this is the f(online CPUs) term of the broadcast
        cost formula (docs/COSTMODEL.md).  Also bumps the machine's
        translation generation, which drops every host-side page-walk
        cache (see :mod:`repro.perf`) exactly as the simulated
        invalidation would on hardware."""
        self.flush_count += 1
        machine = self._machine
        machine.translation_gen += 1
        machine.clock.advance(machine.costs.tlb_flush_ns, "tlb_shootdown")
        machine.counters.add("tlb_remote_invalidate")
        machine.obs.count("smp.tlb.remote_invalidate")

"""§5.2 ablation: CoPA vs CoA vs synchronous full copy on one Redis
snapshot workload.

Paper @100 MB: full copy takes 23.2 ms and 144 MB; CoA 283 μs and
101 MB; CoPA 260 μs and 6 MB.
"""

from conftest import run_once

from repro.harness.experiments import copa_ablation
from repro.mem.layout import MiB


def test_copa_ablation(benchmark, record_figure):
    rows = run_once(benchmark, copa_ablation, db_bytes=10 * MiB)
    record_figure(
        "copa_ablation", rows,
        "CoPA vs CoA vs full copy (Redis snapshot, 10 MB database)",
    )
    by_name = {row["strategy"]: row for row in rows}
    full = by_name["full_copy"]
    coa = by_name["coa"]
    copa = by_name["copa"]

    # fork latency: CoPA <= CoA << full (paper: up to 89x vs full)
    assert copa["fork_latency_us"] <= coa["fork_latency_us"]
    assert full["fork_latency_us"] > 5 * copa["fork_latency_us"]

    # memory: CoPA << CoA < full (paper: 6 / 101 / 144 MB)
    assert copa["memory_mb"] < 0.3 * coa["memory_mb"]
    assert coa["memory_mb"] < full["memory_mb"]

    # page copies tell the same story mechanistically
    assert copa["page_copies"] < coa["page_copies"] <= full["page_copies"]

    # overall save time: CoPA is never worse
    assert copa["save_ms"] <= coa["save_ms"]
    assert copa["save_ms"] <= full["save_ms"]

"""The CHERI capability value type.

A :class:`Capability` is an immutable fat pointer: an address (cursor)
plus the bounds ``[base, base+length)`` and permissions of the object it
refers to.  The two properties μFork's security argument rests on are
enforced here:

* **monotonicity** — every deriving operation (:meth:`set_bounds`,
  :meth:`and_perms`) can only shrink authority; attempts to grow it raise
  :class:`~repro.errors.MonotonicityFault`;
* **unforgeability** — capabilities in simulated memory are only valid
  when their granule's tag is set; any byte store clears the tag (see
  :mod:`repro.hw.phys`).  A capability object whose ``valid`` flag is
  False cannot authorize anything.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntFlag

from repro.errors import (
    BoundsFault,
    MonotonicityFault,
    PermissionFault,
    SealFault,
    TagFault,
)

#: object type of an unsealed capability
OTYPE_UNSEALED = -1
#: object type of a "sentry" (sealed entry) capability: invoking it jumps
#: to a fixed target and unseals it, the mechanism behind μFork's
#: trapless system calls (§4.4)
OTYPE_SENTRY = -2


class Perm(IntFlag):
    """Capability permission bits (subset of the Morello set)."""

    NONE = 0
    LOAD = 1 << 0
    STORE = 1 << 1
    EXECUTE = 1 << 2
    LOAD_CAP = 1 << 3
    STORE_CAP = 1 << 4
    SEAL = 1 << 5
    UNSEAL = 1 << 6
    #: authorizes privileged (system-register) operations; user
    #: capabilities never carry it (§4.4, second principle)
    SYSTEM = 1 << 7
    GLOBAL = 1 << 8

    @classmethod
    def data_rw(cls) -> "Perm":
        return cls.LOAD | cls.STORE | cls.LOAD_CAP | cls.STORE_CAP | cls.GLOBAL

    @classmethod
    def data_ro(cls) -> "Perm":
        return cls.LOAD | cls.LOAD_CAP | cls.GLOBAL

    @classmethod
    def code(cls) -> "Perm":
        return cls.LOAD | cls.EXECUTE | cls.GLOBAL

    @classmethod
    def all_perms(cls) -> "Perm":
        value = cls.NONE
        for perm in cls:
            value |= perm
        return value


@dataclass(frozen=True)
class Capability:
    """An immutable CHERI capability."""

    base: int
    length: int
    cursor: int
    perms: Perm
    otype: int = OTYPE_UNSEALED
    valid: bool = True

    # -- constructors ---------------------------------------------------

    @classmethod
    def root(cls, size: int) -> "Capability":
        """The almighty root capability the machine boots with."""
        return cls(base=0, length=size, cursor=0, perms=Perm.all_perms())

    @classmethod
    def null(cls) -> "Capability":
        return cls(base=0, length=0, cursor=0, perms=Perm.NONE, valid=False)

    # -- basic queries ----------------------------------------------------

    @property
    def top(self) -> int:
        return self.base + self.length

    @property
    def is_sealed(self) -> bool:
        return self.otype != OTYPE_UNSEALED

    @property
    def is_sentry(self) -> bool:
        return self.otype == OTYPE_SENTRY

    @property
    def offset(self) -> int:
        return self.cursor - self.base

    def in_bounds(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.top

    def spans(self, base: int, top: int) -> bool:
        """True if this capability's bounds lie entirely inside [base, top)."""
        return base <= self.base and self.top <= top

    def has_perm(self, perm: Perm) -> bool:
        return (self.perms & perm) == perm

    # -- deriving (monotonic) operations ------------------------------------

    def _require_mutable(self) -> None:
        if self.is_sealed:
            raise SealFault(f"cannot modify sealed capability {self!r}")

    def with_cursor(self, cursor: int) -> "Capability":
        """Move the cursor.  Out-of-bounds cursors are representable (as
        on Morello); the fault happens at dereference time."""
        self._require_mutable()
        return replace(self, cursor=cursor)

    def add(self, offset: int) -> "Capability":
        return self.with_cursor(self.cursor + offset)

    def set_bounds(self, base: int, length: int) -> "Capability":
        """Shrink bounds to ``[base, base+length)``; growing faults."""
        self._require_mutable()
        if length < 0:
            raise BoundsFault(f"negative capability length {length}")
        if base < self.base or base + length > self.top:
            raise MonotonicityFault(
                f"set_bounds [{base:#x},{base + length:#x}) exceeds "
                f"[{self.base:#x},{self.top:#x})"
            )
        cursor = min(max(self.cursor, base), base + length)
        return replace(self, base=base, length=length, cursor=cursor)

    def and_perms(self, perms: Perm) -> "Capability":
        """Intersect permissions (can only clear bits)."""
        self._require_mutable()
        return replace(self, perms=self.perms & perms)

    def without_perms(self, perms: Perm) -> "Capability":
        self._require_mutable()
        return replace(self, perms=self.perms & ~perms)

    def invalidated(self) -> "Capability":
        """Return the same bit pattern with the tag cleared."""
        return replace(self, valid=False)

    # -- sealing ---------------------------------------------------------

    def sealed(self, otype: int) -> "Capability":
        if self.is_sealed:
            raise SealFault("capability is already sealed")
        if otype == OTYPE_UNSEALED:
            raise SealFault("cannot seal with the unsealed otype")
        return replace(self, otype=otype)

    def unsealed(self) -> "Capability":
        if not self.is_sealed:
            raise SealFault("capability is not sealed")
        return replace(self, otype=OTYPE_UNSEALED)

    # -- checked dereference ------------------------------------------------

    def check_access(self, perm: Perm, size: int = 1, addr: int | None = None) -> int:
        """Validate a dereference; returns the effective address.

        Raises the same fault classes Morello would deliver: tag, seal,
        permission, then bounds.
        """
        if not self.valid:
            raise TagFault(f"dereference of untagged capability {self!r}")
        if self.is_sealed:
            raise SealFault(f"dereference of sealed capability {self!r}")
        if not self.has_perm(perm):
            raise PermissionFault(
                f"capability lacks {perm!r}: has {self.perms!r}"
            )
        effective = self.cursor if addr is None else addr
        if not self.in_bounds(effective, size):
            raise BoundsFault(
                f"access [{effective:#x},{effective + size:#x}) outside "
                f"[{self.base:#x},{self.top:#x})"
            )
        return effective

    # -- relocation support (μFork §4.2) -------------------------------------

    def rebased(self, delta: int) -> "Capability":
        """Shift base and cursor by ``delta``.

        This is a *kernel-only* operation: it is not monotonic and models
        the relocation the μFork kernel (which holds the root capability)
        performs when copying a page into the child μprocess.
        """
        return replace(
            self, base=self.base + delta, cursor=self.cursor + delta
        )

    def clamped_to(self, base: int, top: int) -> "Capability":
        """Restrict bounds to intersect [base, top) (kernel-only)."""
        new_base = max(self.base, base)
        new_top = min(self.top, top)
        if new_top < new_base:
            new_base = new_top = base
        return replace(self, base=new_base, length=new_top - new_base)

    def __repr__(self) -> str:
        seal = "" if not self.is_sealed else f" sealed:{self.otype}"
        tag = "" if self.valid else " INVALID"
        return (
            f"Cap[{self.base:#x}+{self.length:#x} @{self.cursor:#x} "
            f"{self.perms!r}{seal}{tag}]"
        )

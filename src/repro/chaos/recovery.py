"""Survival machinery: bounded retry-with-backoff and undo transactions.

The fault half of ``repro.chaos`` (engine.py) provokes; this module is
the half that survives.  Two primitives:

* :func:`retry_syscall` — the syscall layer's bounded
  retry-with-exponential-backoff loop.  It retries **only** faults that
  are both injected and flagged retriable (raised before any handler
  side effect, or after a transaction rolled the side effects back), so
  genuine kernel errors and partial-state failures always propagate.
* :class:`Transaction` — a LIFO undo stack for multi-step kernel
  operations.  μFork's fork registers an undo per mutation (VA
  reservation, child mappings, parent PTE write-protection, fd-table
  duplication, parent/child linkage); if any step dies the rollback
  leaves no orphaned frames, PIDs, or fd-table entries
  (tests/test_fork_rollback.py is the contract).
"""

from __future__ import annotations

from typing import Any, Callable, List, TypeVar

#: how many times a retriable injected fault is retried before it
#: escapes to the caller
RETRY_MAX_ATTEMPTS = 4
#: simulated backoff before attempt n+1: BASE * 2**(n-1) ns
RETRY_BACKOFF_BASE_NS = 2_000.0

T = TypeVar("T")


def is_retriable_injection(exc: BaseException) -> bool:
    """True for chaos-injected faults that are safe to retry."""
    return bool(getattr(exc, "injected", False)
                and getattr(exc, "retriable", False))


def retry_syscall(machine: Any, fn: Callable[[], T],
                  max_attempts: int = RETRY_MAX_ATTEMPTS) -> T:
    """Run a syscall handler, absorbing retriable injected faults.

    Charges exponential backoff (``chaos_backoff`` clock bucket) between
    attempts and counts ``chaos.retry.{attempts,successes,exhausted}``.
    The last attempt's fault propagates unchanged.
    """
    attempt = 1
    while True:
        try:
            result = fn()
        except Exception as exc:
            if not is_retriable_injection(exc) or attempt >= max_attempts:
                if is_retriable_injection(exc):
                    machine.obs.count("chaos.retry.exhausted")
                raise
            machine.charge(RETRY_BACKOFF_BASE_NS * 2 ** (attempt - 1),
                           "chaos_backoff")
            machine.obs.count("chaos.retry.attempts")
            attempt += 1
        else:
            if attempt > 1:
                machine.obs.count("chaos.retry.successes")
            return result


class Transaction:
    """A LIFO undo stack: register an undo per mutation, ``commit`` on
    success, ``rollback`` runs the undos newest-first on failure."""

    def __init__(self) -> None:
        self._undo: List[Callable[[], None]] = []

    def on_abort(self, undo: Callable[[], None]) -> None:
        self._undo.append(undo)

    def commit(self) -> None:
        self._undo.clear()

    def rollback(self) -> None:
        while self._undo:
            self._undo.pop()()

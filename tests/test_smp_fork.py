"""Cross-core fork tier: the fork transaction stays leak-free when a
fork is aborted mid-flight on one CPU while sibling μprocesses are
actively running on the other CPUs — for every copy strategy × abort
boundary (mirrors tests/test_fork_rollback.py at ``num_cpus=4``)."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.chaos import ChaosEngine, FaultMix, InjectedForkFailure
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.core.strategies import ShareNote
from repro.machine import Machine
from repro.smp.exec import SmpExecutor

ABORT_POINTS = [
    "core.ufork.abort.reserve",
    "core.ufork.abort.copy_pages",
    "core.ufork.abort.registers",
    "core.ufork.abort.allocator",
]
STRATEGIES = [CopyStrategy.FULL_COPY, CopyStrategy.COA, CopyStrategy.COPA]
NUM_CPUS = 4


def boot_smp(strategy, spec="default=0.0", seed=7, siblings=3):
    """An SMP machine with one fork-target parent plus ``siblings``
    independent μprocesses to keep the other CPUs busy."""
    machine = Machine(seed=seed, num_cpus=NUM_CPUS)
    machine.obs.enable()
    engine = ChaosEngine(seed=seed, mix=FaultMix.parse(spec))
    engine.attach(machine)
    with engine.paused():
        os_ = UForkOS(machine=machine, copy_strategy=strategy,
                      isolation=IsolationConfig.fault())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "parent"))
        cap = ctx.malloc(256)
        ctx.store(cap, b"precious parent state")
        ctx.store_cap(cap, cap, offset=32)
        others = [
            GuestContext(os_, os_.spawn(hello_world_image(), f"sib{i}"))
            for i in range(siblings)
        ]
    return os_, ctx, engine, cap, others


def kernel_snapshot(os_, ctx):
    """Everything a leaky fork could perturb (sibling steps below are
    pure compute, so this must be invariant across the executor run
    except for the aborted fork's own rollback)."""
    machine = os_.machine
    ptes = {
        vpn: (pte.frame, pte.perms, type(pte.note).__name__,
              machine.phys.refcount(pte.frame))
        for vpn, pte in os_.space.page_table.entries()
    }
    descs = {fd: desc.refcount
             for fd, desc in ctx.proc.fdtable._slots.items()}
    return {
        "frames": machine.phys.allocated_frames,
        "ptes": ptes,
        "reserved": sorted(os_.vspace.reserved_areas()),
        "alive_pids": sorted(p.pid for p in os_.procs.alive()),
        "children": [c.pid for c in ctx.proc.children],
        "fd_refcounts": descs,
    }


@pytest.mark.parametrize("strategy", STRATEGIES,
                         ids=lambda s: s.value)
@pytest.mark.parametrize("point", ABORT_POINTS,
                         ids=lambda p: p.rsplit(".", 1)[-1])
def test_abort_with_siblings_running_leaks_nothing(strategy, point):
    os_, ctx, engine, cap, others = boot_smp(strategy, spec=f"{point}=1.0")
    machine = os_.machine
    before = kernel_snapshot(os_, ctx)
    outcome = {}

    ex = SmpExecutor(os_)
    # siblings: pure compute, several rounds each, spread across CPUs
    def make_sibling(sib, rounds=3):
        def step():
            sib.compute(40_000)
            if rounds > step.__dict__.setdefault("done", 0) + 1:
                step.done += 1
                ex.submit(sib.proc.main_task(), step)
            return None
        return step

    def fork_step():
        try:
            os_.fork(ctx.proc)
        except InjectedForkFailure as exc:
            outcome["failure"] = exc
        return None

    for sib in others:
        ex.submit(sib.proc.main_task(), make_sibling(sib))
    ex.submit(ctx.proc.main_task(), fork_step)
    ex.run()

    assert isinstance(outcome.get("failure"), InjectedForkFailure)
    # siblings genuinely ran elsewhere while the fork died
    assert sum(1 for cpu in machine.cpus if cpu.steps > 0) > 1

    assert kernel_snapshot(os_, ctx) == before
    assert machine.counters.snapshot().get("fork_rollbacks") == 1
    assert machine.obs.registry.counters()["core.ufork.fork_rollbacks"] == 1
    assert engine.recovered.get(point) == 1
    for _vpn, pte in os_.space.page_table.entries():
        assert not isinstance(pte.note, ShareNote)

    # the spinlocks are all released and the parent still forks fine
    assert machine.irq_depth == 0
    assert os_.machine.locks.fork.owner is None
    assert ctx.load(cap, 21) == b"precious parent state"
    engine.disable()
    child = ctx.fork()
    child_cap = cap.rebased(child.proc.region_base - ctx.proc.region_base)
    assert child.load(child_cap, 21) == b"precious parent state"
    assert child.load_cap(child_cap, offset=32).base == child_cap.base
    child.exit(0)
    ctx.wait(child.pid)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
def test_cross_core_fork_succeeds_with_siblings(strategy):
    """The happy path at 4 CPUs: fork runs on one core while siblings
    compute on others; the child is correctly relocated and reaped."""
    os_, ctx, engine, cap, others = boot_smp(strategy)
    ex = SmpExecutor(os_)
    result = {}

    def fork_step():
        child = ctx.fork()
        child_cap = cap.rebased(child.proc.region_base
                                - ctx.proc.region_base)
        result["data"] = child.load(child_cap, 21)
        result["cap_ok"] = (child.load_cap(child_cap, offset=32).base
                            == child_cap.base)
        child.exit(0)
        ctx.wait(child.pid)
        return None

    for sib in others:
        ex.submit(sib.proc.main_task(), lambda s=sib: s.compute(80_000))
    ex.submit(ctx.proc.main_task(), fork_step)
    ex.run()

    assert result["data"] == b"precious parent state"
    assert result["cap_ok"]
    assert os_.machine.counters.get("fork") == 1


def test_footprint_shootdown_covers_migrated_threads():
    """A parent whose threads ran on several CPUs has a wider TLB
    footprint — μFork's fork must interrupt exactly those CPUs (minus
    the initiator), still never the full broadcast."""
    os_, ctx, engine, cap, others = boot_smp(CopyStrategy.COPA)
    machine = os_.machine
    # simulate a second parent thread that last ran on CPU 2
    extra = ctx.proc.add_task()
    extra.registers.copy_from(ctx.proc.main_task().registers)
    extra.last_cpu = 2
    assert ctx.proc.cpu_footprint() == {0, 2}

    before = machine.counters.get("tlb_shootdown_ipis")
    child = ctx.fork()          # initiator is CPU 0
    assert machine.counters.get("tlb_shootdown_ipis") - before == 1
    child.exit(0)
    ctx.wait(child.pid)

"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs
the experiment on the simulated systems, prints the same rows/series
the paper reports (visible with ``-s``), writes them to
``benchmarks/results/``, and asserts the figure's *shape* — who wins,
by roughly what factor — so a regression in the reproduction fails the
suite.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.report import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_figure():
    """Save + print a figure's rows; returns the formatted text."""

    def _record(name: str, rows, title: str, columns=None) -> str:
        text = format_table(rows, columns=columns, title=title)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}")
        return text

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are deterministic simulations — their cost is host
    time, not noise — so a single round is both sufficient and honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)

"""The harness command line: one subcommand per artifact.

Usage::

    python -m repro.harness                     # = figures (scaled sweep)
    python -m repro.harness figures --full      # paper-scale sweep
    python -m repro.harness figures --only fig8
    python -m repro.harness figures --obs-dir out/   # + .obs.json sidecars
    python -m repro.harness obs-report               # fork-cost profile
    python -m repro.harness obs-report --json profile.json
    python -m repro.harness chaos --seed 7 --iterations 200
    python -m repro.harness chaos --fault-mix "default=0.01,core.ufork.abort.*=0.2"
    python -m repro.harness smp --cpus 4 --seed 7    # one SMP run
    python -m repro.harness smp                      # 1/2/4/8 sweep
    python -m repro.harness conform --budget 100 --no-host
    python -m repro.harness conform-farm --workers 4 --depth 5 --seed 0
    python -m repro.harness conform-farm --workers 2 --depth 4 --chaos
    python -m repro.harness bench                    # writes BENCH_hotpath.json
    python -m repro.harness bench --only fault_storm --json out.json
    python -m repro.harness cluster --seed 42        # 1M-request cluster run
    python -m repro.harness cluster --shards 2 --requests 50000 --json out.json
    python -m repro.harness snapshot --strategy copa --obs-dir out/
    python -m repro.harness snapshot --incremental   # migration payload demo
    python -m repro.harness sec                      # full attack matrix
    python -m repro.harness sec --strategies copa --cpus-list 1 --modes clean

Every subcommand owns exactly its own flags (``figures --depth-bound``
is an error, not silence) and shares the common ``--seed``, ``--cpus``,
``--obs-dir`` and ``--json`` options through one parent parser.  A bare
flag list (``python -m repro.harness --only fig8``) keeps meaning the
historical default command, ``figures``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

#: every subcommand; the first is the implied default for bare flags
SUBCOMMANDS = ("figures", "obs-report", "chaos", "smp", "conform",
               "conform-farm", "bench", "cluster", "snapshot", "sec")

#: default output path for the bench report (the BENCH_* trajectory)
BENCH_REPORT = "BENCH_hotpath.json"


def _common_parent() -> argparse.ArgumentParser:
    """The options shared by every subcommand (one parent parser, so
    help text and defaults cannot drift between commands)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("common options")
    group.add_argument("--seed", type=int, default=7,
                       help="deterministic seed (machine randomness, "
                            "fault schedules, explorer ordering)")
    group.add_argument("--cpus", type=int, default=None,
                       help="online CPU count; commands that sweep "
                            "(smp, conform) treat the default as "
                            "'use the command's sweep list'")
    group.add_argument("--obs-dir", metavar="DIR", default=None,
                       help="write repro.obs/v1 metric sidecars (and "
                            "the command's own report) into DIR")
    group.add_argument("--json", metavar="PATH", default=None,
                       help="write the command's JSON report to PATH")
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the μFork paper's tables, figures and "
                    "auxiliary reports.")
    parent = _common_parent()
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")

    figures = sub.add_parser(
        "figures", parents=[parent],
        help="print the paper's tables and figures (the default)")
    figures.add_argument("--full", action="store_true",
                         help="run the paper-scale 100 KB-100 MB sweep")
    figures.add_argument("--only", metavar="NAME", default=None,
                         help="run a single experiment "
                              "(table1, fig3..fig9, ablation, compat)")

    obs_report = sub.add_parser(
        "obs-report", parents=[parent],
        help="hierarchical fork-cost profile on all three systems")
    obs_report.add_argument("--samples", type=int, default=10,
                            help="observed fork/exit/wait cycles per "
                                 "system")

    chaos = sub.add_parser(
        "chaos", parents=[parent],
        help="fault-injection workload (docs/CHAOS.md)")
    chaos.add_argument("--iterations", type=int, default=200,
                       help="number of workload operations")
    chaos.add_argument("--fault-mix", metavar="SPEC", default=None,
                       help="pattern=rate,... injection rates "
                            "(see docs/CHAOS.md)")

    smp = sub.add_parser(
        "smp", parents=[parent],
        help="multi-core workload (docs/SMP.md); sweeps 1/2/4/8 "
             "cores unless --cpus pins one count")
    smp.add_argument("--requests", type=int, default=64,
                     help="number of workload requests")
    smp.add_argument("--workload", default="faas",
                     choices=["faas", "nginx", "forkbench"],
                     help="which workload to drive")
    smp.add_argument("--fault-mix", metavar="SPEC", default=None,
                     help="optional chaos injection rates")

    conform = sub.add_parser(
        "conform", parents=[parent],
        help="differential POSIX conformance suite "
             "(docs/CONFORMANCE.md)")
    conform.add_argument("--depth-bound", type=int, default=3,
                         help="max schedule deviations per explored "
                              "interleaving")
    conform.add_argument("--budget", type=int, default=600,
                         help="max schedules explored per scenario")
    conform.add_argument("--strategies", metavar="LIST", default=None,
                         help="comma-separated fork strategies "
                              "(default: monolithic,full,coa,copa)")
    conform.add_argument("--scenario", action="append", default=None,
                         help="run only this scenario (repeatable)")
    conform.add_argument("--no-host", action="store_true",
                         help="skip the host-POSIX oracle and diff "
                              "strategies against each other")

    conform_farm = sub.add_parser(
        "conform-farm", parents=[parent],
        help="parallel exploration farm: the interleaving explorer "
             "sharded over OS worker processes (docs/CONFORMANCE.md)")
    conform_farm.add_argument("--workers", type=int, default=4,
                              help="OS worker processes (each its own "
                                   "session/process group)")
    conform_farm.add_argument("--depth", type=int, default=5,
                              help="max schedule deviations per explored "
                                   "interleaving")
    conform_farm.add_argument("--budget", type=int, default=None,
                              help="schedules explored per "
                                   "(scenario, strategy, cpus) unit")
    conform_farm.add_argument("--chaos", action="store_true",
                              help="inject faults during exploration "
                                   "(deterministic per (seed, schedule))")
    conform_farm.add_argument("--chaos-mix", metavar="SPEC", default=None,
                              help="override the --chaos injection rates "
                                   "(pattern=rate,...; implies --chaos)")
    conform_farm.add_argument("--scenario", action="append", default=None,
                              help="run only this scenario (repeatable)")
    conform_farm.add_argument("--strategies", metavar="LIST", default=None,
                              help="comma-separated fork strategies "
                                   "(default: monolithic,full,coa,copa)")
    conform_farm.add_argument("--cpus-list", metavar="LIST", default=None,
                              help="comma-separated CPU counts per unit "
                                   "(default: 1,2,4,8; --cpus pins one)")
    conform_farm.add_argument("--timeout", type=float, default=None,
                              help="per-worker wall-clock deadline in "
                                   "seconds before group SIGKILL")
    conform_farm.add_argument("--work-dir", metavar="DIR", default=None,
                              help="keep per-worker spec/result shard "
                                   "files in DIR (CI artifact material)")

    bench = sub.add_parser(
        "bench", parents=[parent],
        help="host-time microbenchmarks of the repro.perf hot paths; "
             f"writes {BENCH_REPORT}")
    bench.add_argument("--only", action="append", default=None,
                       metavar="NAME",
                       help="run only this microbenchmark (repeatable; "
                            "fork_full_copy, fault_storm, "
                            "pipe_pingpong, conform_explorer, "
                            "snapshot_restore)")
    bench.add_argument("--diff", metavar="PATH", default=None,
                       help="with --check, also write a before/after "
                            "diff of the two reports (per benchmark: "
                            "previous vs current host times and the "
                            "speedup delta) — CI uploads this as the "
                            "review artifact")
    bench.add_argument("--check", metavar="BASELINE", default=None,
                       help="also gate against a previous report at "
                            "this path (>25%% slowdown on any "
                            "benchmark fails)")

    cluster = sub.add_parser(
        "cluster", parents=[parent],
        help="sharded multi-machine serving cluster (docs/CLUSTER.md); "
             "emits a deterministic repro.cluster/v1 report")
    cluster.add_argument("--shards", type=int, default=4,
                         help="number of shard machines")
    cluster.add_argument("--workers", type=int, default=4,
                         help="warm-pool workers per shard")
    cluster.add_argument("--requests", type=int, default=1_000_000,
                         help="simulated requests in the synthesized "
                              "trace")
    cluster.add_argument("--keys", type=int, default=16_384,
                         help="key universe size (Zipf ranks)")
    cluster.add_argument("--users", type=int, default=4_000_000,
                         help="simulated user population")
    cluster.add_argument("--audit", type=int, default=16,
                         help="requests per shard re-executed on the "
                              "real machine (0 disables auditing)")
    cluster.add_argument("--max-migrations", type=int, default=8,
                         help="cap on cross-shard worker migrations")

    snapshot = sub.add_parser(
        "snapshot", parents=[parent],
        help="checkpoint/restore demo (docs/SNAPSHOT.md); restores a "
             "blob into a fresh machine and diffs the logical traces")
    snapshot.add_argument("--strategy", default="copa",
                          choices=["full", "coa", "copa", "monolithic"],
                          help="fork strategy of the donor and target OS")
    snapshot.add_argument("--incremental", action="store_true",
                          help="capture only CoW-divergent pages and "
                               "apply them onto a fork twin (the "
                               "cluster-migration payload)")

    sec = sub.add_parser(
        "sec", parents=[parent],
        help="adversarial capability-security matrix (docs/SECURITY.md); "
             "emits a deterministic repro.sec/v1 report")
    sec.add_argument("--strategies", metavar="LIST", default=None,
                     help="comma-separated fork strategies "
                          "(default: full,coa,copa,monolithic)")
    sec.add_argument("--cpus-list", metavar="LIST", default=None,
                     help="comma-separated CPU counts per cell "
                          "(default: 1,2,4; --cpus pins one)")
    sec.add_argument("--modes", metavar="LIST", default=None,
                     help="comma-separated run modes from clean,chaos "
                          "(default: both)")
    sec.add_argument("--attack", action="append", default=None,
                     help="run only this attack (repeatable)")
    sec.add_argument("--fault-mix", metavar="SPEC", default=None,
                     help="injection rates for the chaos half of the "
                          "matrix (pattern=rate,...)")

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_obs_report(args) -> int:
    from repro.harness.obsreport import obs_report
    obs_report(samples=args.samples, json_path=args.json)
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos.runner import DEFAULT_MIX, format_summary, run_chaos
    summary = run_chaos(seed=args.seed, iterations=args.iterations,
                        mix=args.fault_mix or DEFAULT_MIX,
                        obs_dir=args.obs_dir)
    print(format_summary(summary))
    if args.json:
        from repro.harness.reportio import write_report
        write_report(summary, args.json)
    if args.obs_dir:
        print(f"[sidecars: {args.obs_dir}/chaos-{args.seed}"
              f".obs.json + .chaos.json]")
    return 0


def _cmd_conform(args) -> int:
    from repro.conform.runner import DEFAULT_CPUS, format_summary, run_conform
    from repro.conform.simrun import STRATEGIES
    strategies = (args.strategies.split(",") if args.strategies
                  else list(STRATEGIES))
    cpus = [args.cpus] if args.cpus is not None else list(DEFAULT_CPUS)
    report = run_conform(seed=args.seed, cpus=cpus,
                         strategies=strategies,
                         depth_bound=args.depth_bound,
                         budget=args.budget,
                         scenario_names=args.scenario,
                         host=not args.no_host,
                         obs_dir=args.obs_dir)
    print(format_summary(report))
    if args.json:
        from repro.harness.reportio import write_report
        write_report(report, args.json)
    if args.obs_dir:
        print(f"[sidecars: {args.obs_dir}/conform-{args.seed}"
              f".obs.json + .conform.json]")
    return 0 if report["verdict"] == "conformant" else 1


def _cmd_conform_farm(args) -> int:
    from repro.conform.farm import (
        DEFAULT_BUDGET,
        DEFAULT_CPUS,
        DEFAULT_TIMEOUT,
        format_farm_summary,
        run_farm,
    )
    strategies = args.strategies.split(",") if args.strategies else None
    if args.cpus is not None:
        cpus = [args.cpus]
    elif args.cpus_list:
        cpus = [int(n) for n in args.cpus_list.split(",")]
    else:
        cpus = list(DEFAULT_CPUS)
    report = run_farm(seed=args.seed, workers=args.workers,
                      depth_bound=args.depth,
                      budget=(args.budget if args.budget is not None
                              else DEFAULT_BUDGET),
                      chaos=args.chaos, chaos_mix=args.chaos_mix,
                      scenario_names=args.scenario,
                      strategies=strategies, cpus=cpus,
                      timeout=(args.timeout if args.timeout is not None
                               else DEFAULT_TIMEOUT),
                      work_dir=args.work_dir)
    print(format_farm_summary(report))
    from repro.harness.reportio import write_report
    if args.json:
        write_report(report, args.json)
        print(f"[wrote {args.json}]")
    if args.obs_dir:
        import os as _os
        write_report(report, _os.path.join(
            args.obs_dir, f"conform-farm-{args.seed}.farm.json"))
        print(f"[sidecar: {args.obs_dir}/conform-farm-{args.seed}"
              f".farm.json]")
    return 0 if report["verdict"] == "conformant" else 1


def _cmd_smp(args) -> int:
    from repro.smp.runner import DEFAULT_SWEEP, format_summary, run_smp
    sweep = [args.cpus] if args.cpus is not None else list(DEFAULT_SWEEP)
    summaries = []
    for index, cpus in enumerate(sweep):
        if index:
            print()
        summary = run_smp(seed=args.seed, num_cpus=cpus,
                          requests=args.requests,
                          workload=args.workload,
                          mix=args.fault_mix,
                          obs_dir=args.obs_dir)
        summaries.append(summary)
        print(format_summary(summary))
        if args.obs_dir:
            print(f"[sidecars: {args.obs_dir}/smp-{args.seed}"
                  f"-c{cpus}.obs.json + .smp.json]")
    if args.json:
        from repro.harness.reportio import write_report
        write_report({"runs": summaries}, args.json)
    return 0


def _cmd_bench(args) -> int:
    from repro.harness.reportio import load_report, write_report
    from repro.perf.bench import (
        CROSS_RUN_RATIO,
        check_gate,
        diff_reports,
        run_benchmarks,
    )

    report = run_benchmarks(names=args.only)
    failures = check_gate(report)
    if args.check:
        previous = load_report(args.check)
        prior = {row["name"]: row["host"]["optimized_s"]
                 for row in previous.get("benchmarks", [])}
        for row in report["benchmarks"]:
            before = prior.get(row["name"])
            now = row["host"]["optimized_s"]
            if before is not None and now > before * CROSS_RUN_RATIO:
                failures.append(
                    f"{row['name']}: optimized {now:.3f}s regressed "
                    f">{CROSS_RUN_RATIO}x vs previous report "
                    f"({before:.3f}s in {args.check})")
        if args.diff:
            write_report(diff_reports(previous, report), args.diff)
            print(f"[wrote {args.diff}]")
    path = args.json or BENCH_REPORT
    write_report(report, path)
    print(f"[wrote {path}]")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_cluster(args) -> int:
    from repro.cluster.runner import format_summary, run_cluster
    report = run_cluster(seed=args.seed, shards=args.shards,
                         workers=args.workers, requests=args.requests,
                         keys=args.keys, users=args.users,
                         cpus=args.cpus or 1, audit=args.audit,
                         max_migrations=args.max_migrations,
                         obs_dir=args.obs_dir)
    print(format_summary(report))
    if args.json:
        from repro.harness.reportio import write_report
        write_report(report, args.json)
        print(f"[wrote {args.json}]")
    if args.obs_dir:
        print(f"[sidecars: {args.obs_dir}/cluster-{args.seed}"
              f".obs.json + .cluster.json]")
    return 0


def _cmd_snapshot(args) -> int:
    from repro.snapshot.report import format_summary, run_snapshot
    summary = run_snapshot(seed=args.seed, cpus=args.cpus or 1,
                           strategy=args.strategy,
                           incremental=args.incremental,
                           obs_dir=args.obs_dir)
    print(format_summary(summary))
    if args.json:
        from repro.harness.reportio import write_report
        write_report(summary, args.json)
        print(f"[wrote {args.json}]")
    if args.obs_dir:
        print(f"[sidecars: {args.obs_dir}/snapshot-{args.seed}"
              f".obs.json + .snapshot.json]")
    return 0 if summary["verdict"] == "identical" else 1


def _cmd_sec(args) -> int:
    from repro.sec.runner import (
        DEFAULT_CPUS,
        DEFAULT_FAULT_MIX,
        MODES,
        format_summary,
        run_sec,
    )
    from repro.sec.attacks import STRATEGIES
    strategies = (args.strategies.split(",") if args.strategies
                  else list(STRATEGIES))
    if args.cpus is not None:
        cpus_list = [args.cpus]
    elif args.cpus_list:
        cpus_list = [int(n) for n in args.cpus_list.split(",")]
    else:
        cpus_list = list(DEFAULT_CPUS)
    modes = args.modes.split(",") if args.modes else list(MODES)
    report = run_sec(seed=args.seed, strategies=strategies,
                     cpus_list=cpus_list, modes=modes,
                     fault_mix=args.fault_mix or DEFAULT_FAULT_MIX,
                     attacks=args.attack, obs_dir=args.obs_dir)
    print(format_summary(report))
    if args.json:
        from repro.harness.reportio import write_report
        write_report(report, args.json)
        print(f"[wrote {args.json}]")
    if args.obs_dir:
        print(f"[sidecar: {args.obs_dir}/sec-{args.seed}.sec.json]")
    return 0 if report["verdict"] == "defeated" else 1


def _cmd_figures(args, parser: argparse.ArgumentParser) -> int:
    from repro.harness.experiments import (
        DEFAULT_DB_SIZES,
        FULL_DB_SIZES,
        copa_ablation,
        fig3_redis_save,
        fig4_redis_fork_latency,
        fig5_redis_memory,
        fig6_faas_throughput,
        fig7_nginx_throughput,
        fig8_hello_fork,
        fig9_unixbench,
    )
    from repro.harness.report import print_table
    from repro.harness.table1 import table1_rows
    from repro.mem.layout import MiB

    sizes = FULL_DB_SIZES if args.full else DEFAULT_DB_SIZES
    ablation_db = 100 * MiB if args.full else 10 * MiB
    ctx1_fraction = 0.1 if args.full else 0.05

    def _print_compat() -> None:
        from repro.harness.compat import matrix_rows
        print_table(matrix_rows(),
                    title="App x syscall compatibility matrix "
                          "(Loupe-style)")

    experiments = {
        "table1": lambda: print_table(
            table1_rows(), title="Table 1: SASOS fork systems"),
        "fig3": lambda: print_table(
            fig3_redis_save(sizes=sizes),
            title="Figure 3: Redis DB overall save times (ms)"),
        "fig4": lambda: print_table(
            fig4_redis_fork_latency(sizes=sizes),
            title="Figure 4: Redis fork latency (us)"),
        "fig5": lambda: print_table(
            fig5_redis_memory(sizes=sizes),
            title="Figure 5: Redis forked-process memory (MB)"),
        "fig6": lambda: print_table(
            fig6_faas_throughput(),
            title="Figure 6: FaaS function throughput (functions/s)"),
        "fig7": lambda: print_table(
            fig7_nginx_throughput(),
            title="Figure 7: Nginx throughput (requests/s)"),
        "fig8": lambda: print_table(
            fig8_hello_fork(),
            title="Figure 8: hello-world fork latency (us) / memory (MB)"),
        "fig9": lambda: print_table(
            fig9_unixbench(measured_fraction=ctx1_fraction),
            title="Figure 9: Unixbench Spawn / Context1 (ms)"),
        "ablation": lambda: print_table(
            copa_ablation(db_bytes=ablation_db),
            title=f"CoPA vs CoA vs full copy "
                  f"({ablation_db // MiB} MB database)"),
        "compat": lambda: _print_compat(),
    }

    names = [args.only] if args.only else list(experiments)
    unknown = [name for name in names if name not in experiments]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; "
                     f"choose from {list(experiments)}")

    started = time.time()
    for index, name in enumerate(names):
        if index:
            print()
        if args.obs_dir:
            _run_with_sidecar(experiments[name], name, args.obs_dir)
        else:
            experiments[name]()
    print(f"\n[{time.time() - started:.1f}s host time]")
    return 0


def _run_with_sidecar(experiment, name: str, obs_dir: str) -> None:
    """Run one experiment under an observability session and write the
    merged ``repro.obs/v1`` export next to its printed table."""
    import os

    from repro.obs import obs_session, write_export

    os.makedirs(obs_dir, exist_ok=True)
    with obs_session() as session:
        experiment()
    path = os.path.join(obs_dir, f"{name}.obs.json")
    write_export(session.export(), path)
    print(f"[obs sidecar: {path}]")


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # back-compat: a bare option list ran the figures sweep before the
    # CLI grew subcommands, and still does
    if not argv or (argv[0] not in SUBCOMMANDS
                    and argv[0] not in ("-h", "--help")):
        argv.insert(0, "figures")
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "figures":
        return _cmd_figures(args, parser)
    handlers = {
        "obs-report": _cmd_obs_report,
        "chaos": _cmd_chaos,
        "smp": _cmd_smp,
        "conform": _cmd_conform,
        "conform-farm": _cmd_conform_farm,
        "bench": _cmd_bench,
        "cluster": _cmd_cluster,
        "snapshot": _cmd_snapshot,
        "sec": _cmd_sec,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

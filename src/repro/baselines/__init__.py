"""The comparison systems of the paper's evaluation (§5).

* :class:`MonolithicOS` — a CheriBSD-like multi-address-space OS:
  page-table-copy fork with classic copy-on-write, trap-based syscalls,
  TLB flushes on context switch.
* :class:`VMCloneOS` — a Nephele-like "OS-as-a-process" design: fork is
  implemented by the hypervisor cloning the whole unikernel VM.
* :class:`IsoUnikOS` — an Iso-Unik-like design: multiple page tables
  retrofitted into a unikernel (beyond the paper's measured baselines;
  covers Table 1's remaining class).
"""

from repro.baselines.monolithic import MonolithicOS
from repro.baselines.vmclone import VMCloneOS
from repro.baselines.isounik import IsoUnikOS

__all__ = ["MonolithicOS", "VMCloneOS", "IsoUnikOS"]

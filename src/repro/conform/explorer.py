"""Bounded interleaving explorer for conformance scenarios.

Replays one scenario under systematically permuted scheduler decisions,
asserting the kernel invariants of :mod:`repro.conform.invariants` at
every preemption point of every schedule.

A *schedule* is a sparse map ``{decision_point: choice_index}`` of
deviations from the canonical newest-first policy; every unlisted
point takes choice 0.  Exploration is depth-bounded (at most
``depth_bound`` deviations per schedule) and canonical: a schedule is
only extended at points strictly after its last deviation, so each
deviation set is generated exactly once.  Sleep-set pruning drops a
deviation when the op it would run and the op the canonical choice
would run have disjoint static footprints (:meth:`Scenario.op_footprint`)
— swapping two commuting ops cannot reach a new state, and the swapped
order is reachable via a later deviation anyway.

Determinism: the frontier is prioritized with
:func:`repro.chaos.deterministic_draw`, the same keyed-hash machinery
the chaos engine replays faults with, so a violation reports the exact
``(seed, schedule)`` pair that reproduces it — byte-identically, on
any machine.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos import deterministic_draw
from repro.conform.dsl import Scenario, diff_traces
from repro.conform.invariants import (
    check_end_state,
    check_invariants,
    frame_baseline,
)
from repro.conform.simrun import ConformError, DeadlockError, run_sim

Schedule = Dict[int, int]


def _schedule_key(schedule: Schedule) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted(schedule.items()))


class _Watcher:
    """on_step callback: invariants at every preemption point, stopping
    at the first violation (the kernel state is already broken; later
    checks would only echo it)."""

    def __init__(self, os_: Any) -> None:
        self.os_ = os_
        self.violations: List[str] = []
        self.steps = 0

    def __call__(self, os_: Any, run: Any) -> None:
        self.steps += 1
        if not self.violations:
            self.violations = check_invariants(self.os_)


def _run_schedule(scenario: Scenario, strategy: str, num_cpus: int,
                  seed: int, schedule: Schedule
                  ) -> Tuple[Optional[Dict[str, Any]], Dict[str, Any],
                             List[Dict[str, Any]]]:
    """Execute one schedule; returns (trace|None, meta, violations)."""
    violations: List[Dict[str, Any]] = []
    watcher: Optional[_Watcher] = None
    baseline = None

    def decision(point: int, offered: List[Tuple[str, Any]]) -> int:
        return schedule.get(point, 0)

    # run_sim boots inside, so capture the os via the first on_step call
    def on_step(os_: Any, run: Any) -> None:
        nonlocal watcher, baseline
        if watcher is None:
            watcher = _Watcher(os_)
            baseline = frame_baseline(os_)
        watcher(os_, run)

    def record(kind: str, detail: str) -> None:
        violations.append({
            "kind": kind,
            "detail": detail,
            "seed": seed,
            "schedule": {str(k): v for k, v in sorted(schedule.items())},
        })

    try:
        trace, meta = run_sim(scenario, strategy=strategy,
                              num_cpus=num_cpus, seed=seed,
                              decision=decision, on_step=on_step)
    except DeadlockError as exc:
        record("deadlock", str(exc))
        return None, {"points": []}, violations
    except ConformError as exc:
        record("scenario-error", str(exc))
        return None, {"points": []}, violations

    if watcher is not None and watcher.violations:
        for detail in watcher.violations:
            record("invariant", detail)
    os_ = meta["os"]
    for detail in check_invariants(os_):
        record("invariant", f"end: {detail}")
    if baseline is not None:
        # every scenario process has exited by now; memory must be
        # back to the (post-boot, pre-fork) baseline captured at the
        # first preemption point
        for detail in check_end_state(os_, baseline):
            record("leak", detail)
    return trace, meta, violations


def explore(scenario: Scenario, strategy: str = "copa", num_cpus: int = 2,
            seed: int = 0, depth_bound: int = 3, budget: int = 600
            ) -> Dict[str, Any]:
    """Explore up to ``budget`` distinct schedules of one scenario.

    Returns a JSON-ready summary: schedules run, prunes, the decision-
    point count of the canonical run, and every violation found —
    each with the (seed, schedule) pair that replays it.
    """
    result: Dict[str, Any] = {
        "scenario": scenario.name,
        "strategy": strategy,
        "num_cpus": num_cpus,
        "seed": seed,
        "depth_bound": depth_bound,
        "budget": budget,
        "schedules": 0,
        "pruned": 0,
        "violations": [],
    }

    base_trace, base_meta, base_violations = _run_schedule(
        scenario, strategy, num_cpus, seed, {})
    result["schedules"] = 1
    result["violations"].extend(base_violations)
    result["decision_points"] = len(base_meta["points"])

    seen = {_schedule_key({})}
    #: (priority, tiebreak, schedule, points-of-generating-run)
    frontier: List[Tuple[float, int, Schedule, List[Any]]] = []
    counter = 0

    def push_extensions(schedule: Schedule, points: List[Any]) -> None:
        nonlocal counter
        if len(schedule) >= depth_bound:
            return
        last = max(schedule) if schedule else -1
        for index in range(last + 1, len(points)):
            offered = points[index]
            canonical_op = offered[0][1]
            for choice in range(1, len(offered)):
                if scenario.ops_independent(offered[choice][1],
                                            canonical_op):
                    # commuting ops: the swapped order is reachable via
                    # a later deviation; skip this branch entirely
                    result["pruned"] += 1
                    continue
                extended = dict(schedule)
                extended[index] = choice
                key = _schedule_key(extended)
                if key in seen:
                    continue
                seen.add(key)
                counter += 1
                priority = deterministic_draw(
                    seed, f"conform.explore.{scenario.name}", counter)
                heapq.heappush(frontier,
                               (priority, counter, extended, []))

    push_extensions({}, base_meta["points"])

    while frontier and result["schedules"] < budget:
        _prio, _tie, schedule, _ = heapq.heappop(frontier)
        trace, meta, violations = _run_schedule(
            scenario, strategy, num_cpus, seed, schedule)
        result["schedules"] += 1
        result["violations"].extend(violations)
        if trace is not None and scenario.schedule_invariant \
                and base_trace is not None:
            diffs = diff_traces(trace, base_trace)
            if diffs:
                result["violations"].append({
                    "kind": "schedule-divergence",
                    "detail": "; ".join(diffs[:5]),
                    "seed": seed,
                    "schedule": {str(k): v
                                 for k, v in sorted(schedule.items())},
                })
        push_extensions(schedule, meta["points"])

    result["frontier_left"] = len(frontier)
    return result

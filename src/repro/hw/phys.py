"""Tagged physical memory.

Physical memory is a pool of page-sized :class:`Frame` objects.  Each
frame carries, next to its data bytes, one validity-tag bit per 16-byte
granule — the CHERI tagged memory μFork's relocation scan relies on
(§3.4, building block 3).  The tag invariants enforced here:

* a granule's tag is set only by a legitimate capability store;
* **any** raw byte store overlapping a granule clears its tag;
* copying a frame through the kernel's capability-aware copy preserves
  tags; byte-wise copies do not.

Frames are reference counted so copy-on-write style sharing (all three
μFork strategies, and the monolithic baseline's classic CoW) can be
accounted precisely — the proportional-resident-set numbers in Figs 5
and 8 come straight from these refcounts.

Two storage representations back the same :class:`Frame` surface
(docs/ARCHITECTURE.md "Vectorized engine"):

* **banked flat store** (the default, ``REPRO_PERF=1``): data bytes and
  granule tags live in machine-wide per-bank ``bytearray`` arenas
  (:data:`BANK_FRAMES` frames per bank) and each ``Frame`` holds
  ``memoryview`` windows into its bank, so frame copies, tag clears and
  the relocation scan are C-level slice/``find`` operations over the
  flat tag bitmap, and :meth:`PhysicalMemory.copy_frames` can batch a
  whole fork's page copies into one accounting pass;
* **self-contained frames** (``REPRO_PERF=0``): every frame owns its
  own ``bytearray`` buffers — the pre-vectorization representation,
  kept intact as the bench baseline and bisection escape hatch.

Both representations produce byte-identical simulated results: the
clock charges, counters, observability streams and tag/data contents
are the same; only the host-side layout differs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro import perf as _perf
from repro.cheri.capability import Capability
from repro.cheri.codec import CAP_SIZE, CapabilityCodec
from repro.clock import EventCounters, SimClock
from repro.errors import AlignmentFault, OutOfMemory
from repro.params import CostModel, MachineConfig

#: shared immutable zero-run used for batched tag clears
_ZEROS = bytes(4096)

#: frames per storage bank in the flat representation; banks are
#: allocated on demand and **never resized** (resizing would invalidate
#: the outstanding ``memoryview`` windows)
BANK_FRAMES = 512


def _zeros(count: int) -> bytes:
    return _ZEROS[:count] if count <= len(_ZEROS) else bytes(count)


class Frame:
    """One physical page: data bytes plus per-granule validity tags.

    ``data`` and ``tags`` are either owned ``bytearray`` buffers (the
    ``REPRO_PERF=0`` representation) or ``memoryview`` windows into the
    machine-wide banked store; every access method works identically on
    both.  ``_tag_store``/``_tag_base`` address this frame's granule
    run inside the flat tag bitmap so the relocation scan can use the
    underlying ``bytearray.find`` (memchr) even through a view.
    """

    __slots__ = ("data", "tags", "refcount", "version", "_tag_store",
                 "_tag_base", "_perf")

    def __init__(self, page_size: int, granules: int,
                 perf: Optional[bool] = None) -> None:
        self.data = bytearray(page_size)
        self.tags = bytearray(granules)
        self.refcount = 1
        #: content generation: bumped by every mutation of ``data`` or
        #: ``tags`` (including the inlined stores in
        #: :mod:`repro.hw.paging` and the free-time scrub), so content
        #: memos — the fork-time relocated-page cache — can key on
        #: ``(number, version)`` and never serve stale bytes
        self.version = 0
        self._tag_store = self.tags
        self._tag_base = 0
        self._perf = _perf.ENABLED if perf is None else bool(perf)

    @classmethod
    def _bank_view(cls, data_view, tags_view, tag_store: bytearray,
                   tag_base: int) -> "Frame":
        """A frame windowing the banked store (flat representation)."""
        frame = object.__new__(cls)
        frame.data = data_view
        frame.tags = tags_view
        frame.refcount = 1
        frame.version = 0
        frame._tag_store = tag_store
        frame._tag_base = tag_base
        frame._perf = True
        return frame

    # -- byte access ---------------------------------------------------

    def read(self, offset: int, size: int) -> bytes:
        return bytes(self.data[offset:offset + size])

    def write(self, offset: int, data: bytes) -> None:
        """Raw byte store: clears tags of every overlapped granule.

        The batched path (:mod:`repro.perf`) clears the whole
        overlapped granule run with one C-level slice store instead of
        a Python loop; the cleared set is identical.
        """
        self.version += 1
        self.data[offset:offset + len(data)] = data
        first = offset // CAP_SIZE
        last = (offset + len(data) - 1) // CAP_SIZE
        if self._perf:
            count = last + 1 - first
            if count > 0:
                self.tags[first:last + 1] = _zeros(count)
            return
        for granule in range(first, last + 1):
            self.tags[granule] = 0

    # -- capability access -----------------------------------------------

    def load_cap(self, offset: int, codec: CapabilityCodec) -> Capability:
        if offset % CAP_SIZE:
            raise AlignmentFault(f"capability load at offset {offset:#x}")
        raw = bytes(self.data[offset:offset + CAP_SIZE])
        valid = bool(self.tags[offset // CAP_SIZE])
        return codec.decode(raw, valid)

    def store_cap(self, offset: int, cap: Capability,
                  codec: CapabilityCodec) -> None:
        if offset % CAP_SIZE:
            raise AlignmentFault(f"capability store at offset {offset:#x}")
        self.version += 1
        self.data[offset:offset + CAP_SIZE] = codec.encode(cap)
        self.tags[offset // CAP_SIZE] = 1 if cap.valid else 0

    def write_granule(self, offset: int, raw: bytes, tag: int) -> None:
        """Store one already-encoded granule plus its validity tag.

        The relocation sweep's write-back primitive: unlike
        :meth:`store_cap` it takes the 16 raw bytes (the memoised
        encoder output) so bulk rewrites skip re-encoding.
        """
        if offset % CAP_SIZE:
            raise AlignmentFault(f"granule store at offset {offset:#x}")
        self.version += 1
        self.data[offset:offset + CAP_SIZE] = raw
        self.tags[offset // CAP_SIZE] = 1 if tag else 0

    def tagged_granules(self) -> List[int]:
        """Offsets of granules currently holding valid capabilities.

        The batched path scans the flat tag bitmap with
        ``bytearray.find`` (a C memchr loop) instead of a Python
        ``enumerate`` pass — on the common mostly-untagged frame this
        is the relocation scan's hot loop.
        """
        if self._perf:
            out: List[int] = []
            store = self._tag_store
            base = self._tag_base
            end = base + len(self.tags)
            index = store.find(1, base, end)
            while index >= 0:
                out.append((index - base) * CAP_SIZE)
                index = store.find(1, index + 1, end)
            return out
        return [
            index * CAP_SIZE
            for index, tag in enumerate(self.tags)
            if tag
        ]

    def clear_tags_range(self, lo_offset: int, hi_offset: int) -> None:
        """Clear the tags of every granule overlapping [lo, hi)."""
        if hi_offset <= lo_offset:
            return
        self.version += 1
        first = lo_offset // CAP_SIZE
        last = (hi_offset - 1) // CAP_SIZE
        count = last + 1 - first
        self.tags[first:last + 1] = _zeros(count)

    def snapshot_content(self) -> Tuple[bytes, bytes]:
        """Immutable ``(data, tags)`` copy of the whole page.

        The content-memo primitive: paired with :meth:`restore_content`
        it lets fork's relocated-page cache replay a page without ever
        reaching into the frame's storage representation.
        """
        return bytes(self.data), bytes(self.tags)

    def restore_content(self, data: bytes, tags: bytes) -> None:
        """Overwrite the whole page's bytes and granule tags."""
        self.version += 1
        self.data[:] = data
        self.tags[:] = tags

    def copy_from(self, other: "Frame", preserve_tags: bool = True) -> None:
        """Copy another frame's contents (kernel capability-aware copy)."""
        self.version += 1
        self.data[:] = other.data
        if preserve_tags:
            self.tags[:] = other.tags
        elif self._perf:
            count = len(self.tags)
            self.tags[:] = _zeros(count)
        else:
            for index in range(len(self.tags)):
                self.tags[index] = 0


class PhysicalMemory:
    """Frame allocator with refcounting and allocation accounting.

    Observability: allocation/copy/free events are counted under
    ``hw.phys.*`` and the live frame count is kept in the
    ``hw.phys.allocated_frames`` gauge (see docs/OBSERVABILITY.md).

    ``perf`` picks the storage representation (see module docstring);
    ``None`` resolves the :mod:`repro.perf` master switch at
    construction time — :class:`repro.machine.Machine` passes its own
    resolved flag through so one machine never mixes representations.
    """

    def __init__(self, config: MachineConfig, costs: CostModel,
                 clock: SimClock, counters: EventCounters,
                 obs=None, perf: Optional[bool] = None) -> None:
        from repro.chaos.engine import NULL_CHAOS
        from repro.obs import NULL_OBS
        self._config = config
        self._costs = costs
        self._clock = clock
        self._counters = counters
        self._obs = obs if obs is not None else NULL_OBS
        #: fault injection hook (ChaosEngine.attach replaces the null)
        self.chaos = NULL_CHAOS
        self._perf = _perf.enabled() if perf is None else bool(perf)
        self._frames: Dict[int, Frame] = {}
        self._free: List[int] = []
        self._next_frame = 1
        self._capacity_frames = config.dram_bytes // config.page_size
        # flat representation: per-bank data/tag arenas plus hoisted
        # memoryviews (slicing a memoryview is cheaper than taking a
        # fresh view of the bytearray per frame)
        self._data_banks: List[bytearray] = []
        self._tag_banks: List[bytearray] = []
        self._data_views: List[memoryview] = []
        self._tag_views: List[memoryview] = []
        # frame-object reuse pool: a freed number's Frame keeps its
        # (immutable) bank-window views, so realloc of the same number
        # can revive the object instead of re-slicing the views
        self._frame_pool: Dict[int, Frame] = {}
        # deferred scrub: freeing leaves the slot's stale bytes in the
        # bank (listed here) and the scrub happens only on a later
        # ``zero=True`` allocation of the same number.  Sound because
        # ``alloc(zero=False)`` content is *unspecified* — every caller
        # (frame copy, snapshot restore) fully overwrites data and tags
        # before the frame is readable — and a freed frame is
        # unreachable (not in ``_frames``) until realloc'd.
        self._stale: set = set()
        #: pre-rounded integral per-page copy charge for the bulk path
        self._page_copy_int = int(round(costs.page_copy_ns(config.page_size)))

    # -- allocation ------------------------------------------------------

    def _make_frame(self, number: int) -> Frame:
        if not self._perf:
            return Frame(self._config.page_size,
                         self._config.granules_per_page, perf=False)
        pooled = self._frame_pool.get(number)
        if pooled is not None:
            pooled.refcount = 1
            return pooled
        page_size = self._config.page_size
        granules = self._config.granules_per_page
        bank, slot = divmod(number - 1, BANK_FRAMES)
        while bank >= len(self._data_banks):
            self._data_banks.append(bytearray(BANK_FRAMES * page_size))
            self._tag_banks.append(bytearray(BANK_FRAMES * granules))
            self._data_views.append(memoryview(self._data_banks[-1]))
            self._tag_views.append(memoryview(self._tag_banks[-1]))
        d0 = slot * page_size
        t0 = slot * granules
        frame = Frame._bank_view(
            self._data_views[bank][d0:d0 + page_size],
            self._tag_views[bank][t0:t0 + granules],
            self._tag_banks[bank], t0,
        )
        self._frame_pool[number] = frame
        return frame

    def alloc(self, zero: bool = True, charge: bool = True) -> int:
        """Allocate one frame; returns its frame number."""
        if len(self._frames) >= self._capacity_frames:
            raise OutOfMemory("physical memory exhausted")
        if self.chaos.enabled and self.chaos.should_fire("hw.phys.alloc_fail"):
            from repro.chaos.faults import InjectedAllocFailure
            raise InjectedAllocFailure("injected frame-allocation failure")
        if self._free:
            number = self._free.pop()
        else:
            number = self._next_frame
            self._next_frame += 1
        frame = self._make_frame(number)
        self._frames[number] = frame
        if zero and number in self._stale:
            # deferred free-time scrub lands here: the caller asked for
            # a zeroed frame and this slot still holds freed content
            frame.version += 1
            frame.data[:] = _zeros(len(frame.data))
            frame.tags[:] = _zeros(len(frame.tags))
            self._stale.discard(number)
        if zero and charge:
            self._clock.advance(self._costs.page_zero_ns, "page_zero")
        self._counters.add("frames_allocated")
        if self._obs.enabled:
            self._obs.count("hw.phys.frames_allocated")
            self._obs.gauge_set("hw.phys.allocated_frames",
                                len(self._frames))
        return number

    def frame(self, number: int) -> Frame:
        frame = self._frames.get(number)
        if frame is None:
            raise KeyError(f"no such frame {number}")
        return frame

    def incref(self, number: int) -> None:
        self.frame(number).refcount += 1

    def decref(self, number: int) -> None:
        frame = self.frame(number)
        frame.refcount -= 1
        if frame.refcount == 0:
            if self._perf:
                # the scrub is deferred to a later zero-allocation of
                # this number (see ``_stale``)
                self._stale.add(number)
            del self._frames[number]
            self._free.append(number)
            self._counters.add("frames_freed")
            if self._obs.enabled:
                self._obs.count("hw.phys.frames_freed")
                self._obs.gauge_set("hw.phys.allocated_frames",
                                    len(self._frames))
        elif frame.refcount < 0:  # pragma: no cover - invariant guard
            raise AssertionError(f"frame {number} refcount underflow")

    def decref_many(self, numbers: Sequence[int]) -> None:
        """:meth:`decref` for a batch, in order (fork teardown's path).

        Identical refcount/free-list evolution; the freed-frame counter
        and gauge updates are batched into sum-equal / last-value-equal
        updates.  When :meth:`decref` has been overridden (fault
        injection, instrumented subclasses) the batch defers to it
        per number so the override observes every release.
        """
        if not self._perf or type(self).decref is not _BASE_DECREF:
            for number in numbers:
                self.decref(number)
            return
        frames = self._frames
        free = self._free
        stale = self._stale
        freed = 0
        for number in numbers:
            frame = frames.get(number)
            if frame is None:
                raise KeyError(f"no such frame {number}")
            rc = frame.refcount - 1
            frame.refcount = rc
            if rc == 0:
                stale.add(number)
                del frames[number]
                free.append(number)
                freed += 1
            elif rc < 0:  # pragma: no cover - invariant guard
                raise AssertionError(f"frame {number} refcount underflow")
        if freed:
            self._counters.add("frames_freed", freed)
            if self._obs.enabled:
                self._obs.count("hw.phys.frames_freed", freed)
                self._obs.gauge_set("hw.phys.allocated_frames",
                                    len(frames))

    def refcount(self, number: int) -> int:
        return self.frame(number).refcount

    def free_frames(self) -> int:
        """Frames still allocatable before :class:`OutOfMemory`."""
        return self._capacity_frames - len(self._frames)

    # -- kernel copy -------------------------------------------------------

    def copy_frame(self, src: int, preserve_tags: bool = True,
                   charge: bool = True) -> int:
        """Allocate a new frame and copy ``src`` into it."""
        dst = self.alloc(zero=False, charge=False)
        self.frame(dst).copy_from(self.frame(src), preserve_tags)
        if charge:
            # pre-rounded in __init__; advance re-rounds idempotently,
            # so the charge is bit-equal to rounding page_copy_ns here
            self._clock.advance(self._page_copy_int, "page_copy")
        if preserve_tags and self.chaos.enabled and \
                self.chaos.should_fire("hw.phys.tag_clear"):
            self._recover_tag_clear(src, dst, charge)
        self._counters.add("frames_copied")
        if self._obs.enabled:
            self._obs.count("hw.phys.frames_copied")
        return dst

    def cow_copy(self, src: int) -> int:
        """:meth:`copy_frame` ``(src, preserve_tags=True)`` with the
        allocation inlined — the CoW-break fast path.  Identical
        accounting (capacity check, charge, counters, gauge); chaos or
        the self-contained representation fall back to the layered
        call so injected faults fire exactly as before.
        """
        if not self._perf or self.chaos.enabled:
            return self.copy_frame(src, preserve_tags=True)
        frames = self._frames
        if len(frames) >= self._capacity_frames:
            raise OutOfMemory("physical memory exhausted")
        free = self._free
        if free:
            number = free.pop()
        else:
            number = self._next_frame
            self._next_frame += 1
        frame = self._frame_pool.get(number)
        if frame is None:
            frame = self._make_frame(number)
        else:
            frame.refcount = 1
        frames[number] = frame
        frame.copy_from(frames[src], True)
        self._clock.advance(self._page_copy_int, "page_copy")
        counters = self._counters
        counters.add("frames_allocated")
        counters.add("frames_copied")
        if self._obs.enabled:
            self._obs.count("hw.phys.frames_allocated")
            self._obs.count("hw.phys.frames_copied")
            self._obs.gauge_set("hw.phys.allocated_frames", len(frames))
        return number

    def copy_frames(self, srcs: Sequence[int], preserve_tags: bool = True,
                    charge: bool = True) -> List[int]:
        """Bulk :meth:`copy_frame`: one accounting pass for a whole run.

        The copies, refcounts, capacity checks, clock charges and
        counter/observability totals are identical to calling
        :meth:`copy_frame` once per source; only the per-page Python
        accounting is hoisted out of the loop.  With chaos enabled (or
        the self-contained representation) it *is* that per-page loop,
        so injected alloc failures and tag-clear faults fire with
        exactly the per-page draw sequence.
        """
        if not self._perf or self.chaos.enabled:
            return [self.copy_frame(src, preserve_tags, charge)
                    for src in srcs]
        frames = self._frames
        capacity = self._capacity_frames
        free = self._free
        dsts: List[int] = []
        try:
            for src in srcs:
                if len(frames) >= capacity:
                    raise OutOfMemory("physical memory exhausted")
                if free:
                    number = free.pop()
                else:
                    number = self._next_frame
                    self._next_frame += 1
                dst_frame = self._make_frame(number)
                frames[number] = dst_frame
                dst_frame.copy_from(frames[src], preserve_tags)
                dsts.append(number)
        except OutOfMemory:
            # match the per-page sequence: the first k copies were
            # charged and counted before the (k+1)th alloc raised; the
            # caller never saw the k frames, so free them here (the
            # per-page caller's rollback would unmap-and-decref them)
            self._settle_bulk_copy(len(dsts), charge)
            for number in dsts:
                self.decref(number)
            raise
        self._settle_bulk_copy(len(dsts), charge)
        return dsts

    def _settle_bulk_copy(self, count: int, charge: bool) -> None:
        if count == 0:
            return
        if charge:
            self._clock.advance(self._page_copy_int * count, "page_copy")
        self._counters.add("frames_allocated", count)
        self._counters.add("frames_copied", count)
        if self._obs.enabled:
            self._obs.count("hw.phys.frames_allocated", count)
            self._obs.count("hw.phys.frames_copied", count)
            self._obs.gauge_set("hw.phys.allocated_frames",
                                len(self._frames))

    def _recover_tag_clear(self, src: int, dst: int, charge: bool) -> None:
        """Injected spurious tag loss on a tag-preserving copy: the copy
        engine dropped the validity bits.  The kernel's verify-after-copy
        compares tag vectors and redoes the copy when they differ (a
        frame with no tags loses nothing, so nothing to recover)."""
        dst_frame = self.frame(dst)
        dst_frame.version += 1
        for index in range(len(dst_frame.tags)):
            dst_frame.tags[index] = 0
        src_frame = self.frame(src)
        if bytes(dst_frame.tags) != bytes(src_frame.tags):
            dst_frame.copy_from(src_frame, preserve_tags=True)
            if charge:
                self._clock.advance(
                    self._costs.page_copy_ns(self._config.page_size),
                    "page_copy"
                )
            self.chaos.note_recovery("hw.phys.tag_clear")

    # -- narrow iteration/scan interface --------------------------------------

    def frames_items(self) -> Iterator[Tuple[int, Frame]]:
        """Stable (frame-number-sorted) iteration over allocated frames.

        The sanctioned way for auditors (:mod:`repro.conform.invariants`)
        to sweep physical memory — callers must not touch ``_frames``.
        """
        return iter(sorted(self._frames.items()))

    def scan_tagged(self, number: int) -> List[int]:
        """Offsets of tagged granules in frame ``number`` (bulk scan)."""
        return self.frame(number).tagged_granules()

    def clear_tags_range(self, number: int, lo_offset: int,
                         hi_offset: int) -> None:
        """Clear the tags of granules overlapping [lo, hi) of a frame."""
        self.frame(number).clear_tags_range(lo_offset, hi_offset)

    # -- accounting -----------------------------------------------------------

    @property
    def allocated_frames(self) -> int:
        return len(self._frames)

    @property
    def allocated_bytes(self) -> int:
        return len(self._frames) * self._config.page_size

    def contains(self, number: int) -> bool:
        return number in self._frames


# the pristine release routine: batch paths compare against this to
# detect overridden/monkeypatched ``decref`` and fall back per-number
_BASE_DECREF = PhysicalMemory.decref

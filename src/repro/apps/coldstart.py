"""FaaS cold start three ways: boot, zygote fork, snapshot restore.

The serverless provisioning question behind μFork §U4/U5 and the
snapshot subsystem: when a request arrives and no warm worker exists,
how long until the first request is served?  Three answers, each run
for real on its own machine and measured in simulated nanoseconds:

* **cold boot** — spawn the runtime image and warm it from scratch
  (module loading/compilation), then serve.  The baseline every FaaS
  platform wants to avoid.
* **zygote fork** — a pre-warmed zygote already lives on the machine;
  serving is one μFork fast fork.  The paper's prefork pattern — but it
  needs a warm zygote *on this machine* already.
* **snapshot restore** — no warm process anywhere on the machine: a
  ``repro.snapshot/v1`` blob of a warmed zygote (checkpointed once,
  elsewhere, earlier) is restored, capabilities re-minted for this
  machine, then serving forks from the revived zygote.  Cold
  infrastructure plus one blob equals a warm start — the
  CRIU/Firecracker-style answer, built on :mod:`repro.snapshot`.

Used by the ``snapshot_restore`` microbenchmark in
:mod:`repro.perf.bench` and the docs/SNAPSHOT.md walkthrough.
"""

from __future__ import annotations

from typing import Any, Dict

#: schema tag of the comparison dict
RUN_SCHEMA = "repro.apps.coldstart/v1"


def _boot(seed: int):
    from repro.core import CopyStrategy, UForkOS
    from repro.machine import Machine

    machine = Machine(seed=seed)
    return UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)


def _spawn(os_: Any, name: str):
    from repro.apps.faas import faas_image
    from repro.apps.guest import GuestContext

    return GuestContext(os_, os_.spawn(faas_image(), name))


def make_zygote_blob(seed: int = 7) -> bytes:
    """Checkpoint a freshly warmed zygote on a donor machine.

    The donor is torn down afterwards; only the blob survives — the
    artifact a FaaS platform would bake at deploy time and ship to
    every cold host.
    """
    from repro.apps.faas import ZygoteRuntime
    from repro.snapshot import checkpoint

    os_ = _boot(seed)
    ctx = _spawn(os_, "zygote-donor")
    ZygoteRuntime(ctx).warm()
    blob = checkpoint(os_, ctx.proc)
    ctx.exit(0)
    return blob


def coldstart_comparison(seed: int = 7,
                         function: str = "float_operation"
                         ) -> Dict[str, Any]:
    """Measure time-to-first-response for all three provisioning paths.

    Each path runs on its own fresh machine; the clock interval covers
    exactly the work a request's arrival would trigger (the zygote-fork
    path's warm zygote pre-exists by construction and is excluded).
    Every serve is asserted to have actually worked.
    """
    from repro.apps.faas import ZygoteRuntime
    from repro.snapshot import decode, restore

    blob = make_zygote_blob(seed)

    # -- cold boot: warm the runtime from nothing, then serve ----------
    os_cold = _boot(seed + 1)
    clock = os_cold.machine.clock
    started = clock.now_ns
    ctx = _spawn(os_cold, "cold")
    runtime = ZygoteRuntime(ctx)
    runtime.warm()
    assert runtime.handle_request(function=function).ok
    cold_ns = clock.now_ns - started

    # -- zygote fork: the warm zygote already exists, serve is a fork --
    os_fork = _boot(seed + 2)
    zygote = _spawn(os_fork, "zygote")
    warm_runtime = ZygoteRuntime(zygote)
    warm_runtime.warm()
    clock = os_fork.machine.clock
    started = clock.now_ns
    assert warm_runtime.handle_request(function=function).ok
    fork_ns = clock.now_ns - started

    # -- snapshot restore: cold machine + blob, then serve -------------
    from repro.apps.guest import GuestContext
    os_restore = _boot(seed + 3)
    clock = os_restore.machine.clock
    started = clock.now_ns
    revived = GuestContext(os_restore, restore(os_restore, blob))
    revived_runtime = ZygoteRuntime.attach(revived)
    assert revived_runtime.handle_request(function=function).ok
    restore_ns = clock.now_ns - started

    return {
        "schema": RUN_SCHEMA,
        "seed": seed,
        "function": function,
        "blob_bytes": len(blob),
        "blob_pages": len(decode(blob)[0]["pages"]),
        "cold_boot_ns": cold_ns,
        "zygote_fork_ns": fork_ns,
        "snapshot_restore_ns": restore_ns,
        #: restore pays page materialization but skips warm-up compute;
        #: the interesting ratios for docs/SNAPSHOT.md
        "restore_vs_cold": round(cold_ns / restore_ns, 3),
        "fork_vs_restore": round(restore_ns / fork_ns, 3),
    }

"""Recovery-path tier: every survival mechanism has a dedicated test,
and every registered injection point demonstrably fires at its real
site."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.chaos import (
    INJECTION_POINTS,
    ChaosEngine,
    FaultMix,
    InjectedInterrupt,
    retry_syscall,
)
from repro.chaos.recovery import RETRY_MAX_ATTEMPTS
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.errors import Interrupted, InvalidArgument
from repro.machine import Machine


def chaos_os(spec, seed=7, **os_kwargs):
    machine = Machine(seed=seed)
    machine.obs.enable()
    engine = ChaosEngine(seed=seed, mix=FaultMix.parse(spec))
    engine.attach(machine)
    with engine.paused():
        os_ = UForkOS(machine=machine,
                      isolation=IsolationConfig.fault(), **os_kwargs)
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "victim"))
    return os_, ctx, engine


# ----------------------------------------------------------------------
# Bounded retry
# ----------------------------------------------------------------------

class TestRetry:
    def test_transient_injection_retried_to_success(self):
        machine = Machine()
        machine.obs.enable()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedInterrupt("injected")
            return "ok"

        assert retry_syscall(machine, flaky) == "ok"
        assert len(attempts) == 3
        counters = machine.obs.registry.counters()
        assert counters["chaos.retry.attempts"] == 2
        assert counters["chaos.retry.successes"] == 1

    def test_backoff_charged_to_chaos_bucket(self):
        machine = Machine()
        before = machine.clock.now_ns
        calls = []

        def once():
            if not calls:
                calls.append(1)
                raise InjectedInterrupt("injected")
            return 1

        retry_syscall(machine, once)
        assert machine.clock.buckets.get("chaos_backoff", 0) > 0
        assert machine.clock.now_ns > before

    def test_budget_exhaustion_reraises(self):
        machine = Machine()
        machine.obs.enable()
        with pytest.raises(InjectedInterrupt):
            retry_syscall(machine, lambda: (_ for _ in ()).throw(
                InjectedInterrupt("always")))
        counters = machine.obs.registry.counters()
        assert counters["chaos.retry.attempts"] == RETRY_MAX_ATTEMPTS - 1
        assert counters["chaos.retry.exhausted"] == 1

    def test_genuine_faults_never_retried(self):
        machine = Machine()
        attempts = []

        def genuine():
            attempts.append(1)
            raise Interrupted("a real EINTR")

        with pytest.raises(Interrupted):
            retry_syscall(machine, genuine)
        assert len(attempts) == 1               # no blind retry of real faults

    def test_syscall_entry_faults_invisible_to_guest(self):
        os_, ctx, engine = chaos_os("kernel.syscall.eintr=0.2")
        for _ in range(40):
            assert ctx.syscall("getpid") == ctx.pid
        assert engine.fired["kernel.syscall.eintr"] > 0
        counters = os_.machine.obs.registry.counters()
        assert counters["chaos.retry.successes"] > 0


# ----------------------------------------------------------------------
# Hardware-layer recovery
# ----------------------------------------------------------------------

class TestHardwareRecovery:
    def test_tag_clear_detected_and_recopied(self):
        machine = Machine()
        machine.obs.enable()
        engine = ChaosEngine(seed=7,
                             mix=FaultMix.parse("hw.phys.tag_clear=1.0"))
        engine.attach(machine)
        src = machine.phys.alloc()
        from repro.cheri.capability import Capability, Perm
        cap = Capability(base=0, length=64, cursor=0, perms=Perm.data_rw())
        machine.phys.frame(src).store_cap(0, cap, machine.codec)
        dst = machine.phys.copy_frame(src, preserve_tags=True)
        # despite the injected tag loss, the verify-after-copy restored them
        assert machine.phys.frame(dst).tagged_granules() == \
            machine.phys.frame(src).tagged_granules()
        assert engine.fired["hw.phys.tag_clear"] == 1
        assert engine.recovered["hw.phys.tag_clear"] == 1

    def test_lost_tlb_shootdown_reissued(self):
        machine = Machine()
        engine = ChaosEngine(
            seed=7, mix=FaultMix.parse("hw.tlb.shootdown_loss=1.0"))
        engine.attach(machine)
        before = machine.tlb.flush_count
        machine.tlb.flush()
        assert machine.tlb.flush_count == before + 2   # flush + re-issue
        assert engine.recovered["hw.tlb.shootdown_loss"] == 1


# ----------------------------------------------------------------------
# Short I/O survival (POSIX caller loops)
# ----------------------------------------------------------------------

class TestShortIO:
    def test_pipe_round_trip_survives_short_writes(self):
        os_, ctx, engine = chaos_os("kernel.ipc.short_write=1.0")
        read_fd, write_fd = ctx.syscall("pipe")
        payload = bytes(range(256)) * 8
        assert ctx.write_bytes(write_fd, payload) == len(payload)
        assert ctx.read_bytes(read_fd, len(payload)) == payload
        assert engine.fired["kernel.ipc.short_write"] > 1   # halved repeatedly

    def test_socket_round_trip_survives_short_sends(self):
        os_, ctx, engine = chaos_os("kernel.net.short_send=1.0")
        listen_fd = ctx.syscall("listen", 80)
        client_fd = ctx.syscall("connect", 80)
        server_fd = ctx.syscall("accept", listen_fd)
        payload = b"chaos!" * 64
        assert ctx.send_bytes(client_fd, payload) == len(payload)
        got = b""
        while len(got) < len(payload):
            got += ctx.recv_bytes(server_fd, len(payload) - len(got))
        assert got == payload
        assert engine.fired["kernel.net.short_send"] > 1


# ----------------------------------------------------------------------
# Forced preemption
# ----------------------------------------------------------------------

class TestPreemption:
    def test_preempt_switches_and_workload_survives(self):
        os_, ctx, engine = chaos_os("kernel.sched.preempt=1.0")
        with engine.paused():
            other = ctx.fork()
        switches_before = os_.sched.switches
        assert ctx.syscall("getpid") == ctx.pid
        assert other.syscall("getpid") == other.pid
        assert engine.fired["kernel.sched.preempt"] >= 2
        assert os_.sched.switches > switches_before
        with engine.paused():
            other.exit(0)
            ctx.wait(other.pid)


# ----------------------------------------------------------------------
# Degradation ladder (CoPA → CoA → eager copy)
# ----------------------------------------------------------------------

class TestDegradation:
    def _storm(self, ctx, engine):
        """One fork + child capability load, which under CoPA faults and
        (at rate 1.0) is hit by an injected storm."""
        cap = ctx.malloc(64)
        ctx.store_cap(cap, cap)
        child = ctx.fork()
        child_cap = cap.rebased(child.proc.region_base
                                - ctx.proc.region_base)
        child.load_cap(child_cap)          # CAP_LOAD break → storm point
        with engine.paused():
            child.exit(0)
            ctx.wait(child.pid)
        ctx.free(cap)

    def test_storms_degrade_copa_to_coa_then_eager(self):
        os_, ctx, engine = chaos_os(
            "core.strategies.cap_fault_storm=1.0",
            copy_strategy=CopyStrategy.COPA, eager_copy=False)
        engine.degrade_after = 2
        machine = os_.machine
        assert os_._effective_strategy(engine) is CopyStrategy.COPA
        while engine.degrade_tiers() < 1:
            self._storm(ctx, engine)
        assert os_._effective_strategy(engine) is CopyStrategy.COA
        while engine.degrade_tiers() < 2:
            self._storm(ctx, engine)
        assert os_._effective_strategy(engine) is CopyStrategy.FULL_COPY
        counters = machine.obs.registry.counters()
        assert counters["core.ufork.degraded_forks"] >= 1
        assert counters["core.strategies.cap_fault_storm_repeats"] >= 3
        assert engine.recovered["core.strategies.cap_fault_storm"] >= 2
        # a degraded (eager) fork still works and needs no lazy faults
        child = ctx.fork()
        with engine.paused():
            child.exit(0)
            ctx.wait(child.pid)

    def test_degradation_never_climbs_past_ladder_end(self):
        os_, ctx, engine = chaos_os(
            "default=0.0", copy_strategy=CopyStrategy.FULL_COPY)
        engine.fired["core.strategies.cap_fault_storm"] = 100
        assert os_._effective_strategy(engine) is CopyStrategy.FULL_COPY


# ----------------------------------------------------------------------
# Acceptance: every registered point fires at its real site
# ----------------------------------------------------------------------

def _exercise_smp(point):
    """SMP points need a multi-CPU machine, not a full OS."""
    machine = Machine(seed=7, num_cpus=2)
    machine.obs.enable()
    engine = ChaosEngine(seed=7, mix=FaultMix.parse(f"{point}=1.0"))
    engine.attach(machine)
    if point == "smp.ipi.drop":
        machine.ipi.send(0, 1, "resched")
    elif point == "smp.tlb.stale_storm":
        machine.tlb_shootdown([0, 1])
    elif point == "smp.steal.abort":
        from repro.smp.sched import SmpScheduler
        sched = SmpScheduler(machine, True)
        assert sched.steal_into(1) is None
    else:  # pragma: no cover - catalog grew without a coverage driver
        raise AssertionError(f"no exercise driver for {point}")
    assert engine.fired.get(point, 0) >= 1, \
        f"{point} never fired at its instrumentation site"


def _exercise_sec(point):
    """sec.* points fire inside the security-matrix runner's cells."""
    from repro.sec.attacks import ATTACKS
    from repro.sec.runner import run_cell
    attack_name = ("snapshot_magic_tamper"
                   if point == "sec.snapshot.bitflip" else "bounds_widen")
    attack, body = ATTACKS[attack_name]
    cell = run_cell(attack, body, "copa", 1, "chaos", 7,
                    f"default=0.0,{point}=1.0")
    assert cell["verdict"] == "defeated"
    if point == "sec.attack.replay":
        assert cell["replayed"]
    assert cell["chaos_fired"].get(point, 0) >= 1, \
        f"{point} never fired at its instrumentation site"


def _exercise(point):
    """Drive the one workload fragment that hits ``point``'s site."""
    if point.startswith("smp."):
        _exercise_smp(point)
        return
    if point.startswith("sec."):
        _exercise_sec(point)
        return
    os_, ctx, engine = chaos_os(f"{point}=1.0", eager_copy=False)
    if point == "hw.phys.alloc_fail":
        with pytest.raises(Exception):
            os_.machine.phys.alloc()
    elif point == "hw.phys.tag_clear":
        src = os_.machine.phys.alloc()
        os_.machine.phys.copy_frame(src, preserve_tags=True)
    elif point == "hw.tlb.shootdown_loss":
        os_.machine.tlb.flush()
    elif point.startswith("kernel.syscall."):
        with pytest.raises(Exception):
            ctx.syscall("getpid")              # rate 1.0: budget exhausts
    elif point == "kernel.sched.preempt":
        ctx.syscall("getpid")
    elif point == "kernel.ipc.short_write":
        read_fd, write_fd = ctx.syscall("pipe")
        ctx.write_bytes(write_fd, b"pings" * 10)
    elif point == "kernel.net.short_send":
        listen_fd = ctx.syscall("listen", 80)
        client_fd = ctx.syscall("connect", 80)
        ctx.send_bytes(client_fd, b"pings" * 10)
    elif point.startswith("core.ufork.abort."):
        with pytest.raises(Exception):
            os_.fork(ctx.proc)
    elif point.startswith("core.snapshot.abort."):
        from repro.snapshot import checkpoint, restore
        with engine.paused():
            blob = checkpoint(os_, ctx.proc)
        with pytest.raises(Exception):
            restore(os_, blob)
    elif point == "core.strategies.cap_fault_storm":
        cap = ctx.malloc(64)
        ctx.store_cap(cap, cap)
        child = ctx.fork()
        child.load_cap(cap.rebased(child.proc.region_base
                                   - ctx.proc.region_base))
    else:  # pragma: no cover - catalog grew without a coverage driver
        raise AssertionError(f"no exercise driver for {point}")
    assert engine.fired.get(point, 0) >= 1, \
        f"{point} never fired at its instrumentation site"


@pytest.mark.parametrize("point", sorted(INJECTION_POINTS))
def test_every_registered_point_fires_at_its_site(point):
    _exercise(point)

"""Tests for MiniRedis, including BGSAVE correctness across fork on
every OS and under every copy strategy."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.baselines import MonolithicOS, VMCloneOS
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.mem.layout import KiB, MiB


def boot_redis(os_cls=UForkOS, db_bytes=2 * MiB, **kwargs):
    os_ = os_cls(machine=Machine(), **kwargs)
    proc = os_.spawn(redis_image(db_bytes), "redis")
    ctx = GuestContext(os_, proc)
    return os_, MiniRedis(ctx, nbuckets=256)


class TestCommands:
    def test_set_get(self):
        _os, store = boot_redis()
        store.set(b"k1", b"value-1")
        assert store.get(b"k1") == b"value-1"

    def test_get_missing(self):
        _os, store = boot_redis()
        assert store.get(b"nope") is None

    def test_overwrite(self):
        _os, store = boot_redis()
        store.set(b"k", b"first")
        store.set(b"k", b"second-longer-value")
        assert store.get(b"k") == b"second-longer-value"
        assert store.size() == 1

    def test_delete(self):
        _os, store = boot_redis()
        store.set(b"k", b"v")
        assert store.delete(b"k")
        assert store.get(b"k") is None
        assert store.size() == 0
        assert not store.delete(b"k")

    def test_many_keys_with_collisions(self):
        _os, store = boot_redis()
        items = {b"key-%03d" % i: b"val-%03d" % i for i in range(300)}
        for key, value in items.items():
            store.set(key, value)
        assert store.size() == 300
        for key, value in items.items():
            assert store.get(key) == value

    def test_delete_middle_of_chain(self):
        _os, store = boot_redis()
        # nbuckets=256; craft collisions by brute force
        import zlib
        keys = []
        target = None
        i = 0
        while len(keys) < 3:
            key = b"c%06d" % i
            i += 1
            slot = zlib.crc32(key) % 256
            if target is None:
                target = slot
                keys.append(key)
            elif slot == target:
                keys.append(key)
        for key in keys:
            store.set(key, b"val:" + key)
        assert store.delete(keys[1])
        assert store.get(keys[0]) == b"val:" + keys[0]
        assert store.get(keys[1]) is None
        assert store.get(keys[2]) == b"val:" + keys[2]

    def test_items_iterates_everything(self):
        _os, store = boot_redis()
        store.set(b"a", b"1")
        store.set(b"b", b"2")
        assert dict(store.items()) == {b"a": b"1", b"b": b"2"}

    def test_populate_sizes(self):
        _os, store = boot_redis(db_bytes=1 * MiB)
        count = populate(store, 512 * KiB, value_size=64 * KiB)
        assert count == 8
        assert store.size() == 8


class TestSnapshotCorrectness:
    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_bgsave_snapshot_exact(self, strategy):
        os_, store = boot_redis(UForkOS, copy_strategy=strategy)
        expected = {}
        for index in range(40):
            key = b"key-%02d" % index
            value = bytes([index]) * (1024 + index)
            store.set(key, value)
            expected[key] = value

        metrics = store.bgsave("/dump.rdb")
        raw = bytes(os_.ramdisk.open("/dump.rdb").node.data)
        assert MiniRedis.parse_dump(raw) == expected
        assert metrics.bytes_written == len(raw)
        assert metrics.fork_latency_ns > 0
        assert metrics.save_total_ns >= metrics.fork_latency_ns

    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_parent_mutations_during_save_do_not_corrupt(self, strategy):
        """The child's snapshot is point-in-time: parent writes that
        happen after the fork are invisible to it (U4 semantics)."""
        os_, store = boot_redis(UForkOS, copy_strategy=strategy)
        for index in range(20):
            store.set(b"k%02d" % index, b"snapshot-value-%02d" % index)

        ctx = store.ctx
        child_ctx = ctx.fork()
        child_store = MiniRedis.attach(child_ctx)

        # parent mutates aggressively before the child serializes
        for index in range(20):
            store.set(b"k%02d" % index, b"MUTATED" * 10)
        store.set(b"brand-new", b"not-in-snapshot")
        store.delete(b"k00")

        child_store.save_to("/snap.rdb")
        child_ctx.exit(0)
        ctx.wait(child_ctx.pid)

        raw = bytes(os_.ramdisk.open("/snap.rdb").node.data)
        dump = MiniRedis.parse_dump(raw)
        assert len(dump) == 20
        assert b"brand-new" not in dump
        for index in range(20):
            assert dump[b"k%02d" % index] == b"snapshot-value-%02d" % index

    @pytest.mark.parametrize("os_cls", [MonolithicOS, VMCloneOS])
    def test_bgsave_on_baselines(self, os_cls):
        os_, store = boot_redis(os_cls)
        store.set(b"alpha", b"A" * 2000)
        store.set(b"beta", b"B" * 100)
        store.bgsave("/dump.rdb")
        raw = bytes(os_.ramdisk.open("/dump.rdb").node.data)
        assert MiniRedis.parse_dump(raw) == {
            b"alpha": b"A" * 2000, b"beta": b"B" * 100,
        }

    def test_parent_keeps_serving_after_save(self):
        _os, store = boot_redis()
        store.set(b"k", b"v1")
        store.bgsave("/d.rdb")
        store.set(b"k", b"v2")
        store.set(b"k2", b"new")
        assert store.get(b"k") == b"v2"
        assert store.get(b"k2") == b"new"

    def test_two_consecutive_bgsaves(self):
        os_, store = boot_redis()
        store.set(b"k", b"v1")
        store.bgsave("/one.rdb")
        store.set(b"k", b"v2")
        store.bgsave("/two.rdb")
        one = MiniRedis.parse_dump(bytes(os_.ramdisk.open("/one.rdb").node.data))
        two = MiniRedis.parse_dump(bytes(os_.ramdisk.open("/two.rdb").node.data))
        assert one == {b"k": b"v1"}
        assert two == {b"k": b"v2"}


class TestSnapshotCosts:
    def test_copa_copies_less_than_coa(self):
        results = {}
        for strategy in (CopyStrategy.COPA, CopyStrategy.COA):
            os_, store = boot_redis(UForkOS, db_bytes=2 * MiB,
                                    copy_strategy=strategy)
            populate(store, 1 * MiB, value_size=64 * KiB)
            metrics = store.bgsave("/d.rdb")
            results[strategy] = metrics
        assert results[CopyStrategy.COPA].child_extra_bytes < \
            results[CopyStrategy.COA].child_extra_bytes
        assert results[CopyStrategy.COPA].page_copies < \
            results[CopyStrategy.COA].page_copies

    def test_full_copy_latency_dominates(self):
        lat = {}
        for strategy in (CopyStrategy.COPA, CopyStrategy.FULL_COPY):
            os_, store = boot_redis(UForkOS, db_bytes=2 * MiB,
                                    copy_strategy=strategy)
            populate(store, 1 * MiB, value_size=64 * KiB)
            lat[strategy] = store.bgsave("/d.rdb").fork_latency_ns
        # paper §5.2: CoPA reduces fork latency by up to 89x vs a
        # synchronous copy; at this small scale we assert a wide gap
        assert lat[CopyStrategy.FULL_COPY] > 5 * lat[CopyStrategy.COPA]

    def test_ufork_fork_latency_beats_monolithic(self):
        lat = {}
        for os_cls in (UForkOS, MonolithicOS):
            os_, store = boot_redis(os_cls, db_bytes=4 * MiB)
            populate(store, 2 * MiB, value_size=64 * KiB)
            lat[os_cls] = store.bgsave("/d.rdb").fork_latency_ns
        assert lat[UForkOS] < lat[MonolithicOS]

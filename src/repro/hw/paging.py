"""Page tables, address spaces, and fault dispatch.

An :class:`AddressSpace` is a page table bound to the machine's physical
memory.  The SASOS owns exactly one (kernel and every μprocess live in
it); the monolithic baseline creates one per process.

Faults are the extension point that makes the μFork copy strategies
work: when an access violates page permissions (or hits an unmapped
page) the address space charges the fault cost and calls the registered
fault handler.  CoW, CoA and CoPA are all implemented as fault handlers
(:mod:`repro.core.strategies`); the dedicated *capability-load* access
kind models CHERI's fault-on-capability-load page permission that CoPA
requires (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntFlag, auto
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.cheri.capability import Capability
from repro.cheri.codec import CAP_SIZE
from repro.errors import (
    ProtectionError,
    UnmappedAddressError,
)
from repro.hw.phys import Frame


class PagePerm(IntFlag):
    """Page-table permission bits."""

    NONE = 0
    READ = 1 << 0
    WRITE = 1 << 1
    EXEC = 1 << 2
    #: CHERI page permission: when absent, *loading a capability* from
    #: the page faults even though plain data loads succeed.  This is
    #: the hardware hook CoPA is built on.
    LOAD_CAP = 1 << 3

    @classmethod
    def rwc(cls) -> "PagePerm":
        return cls.READ | cls.WRITE | cls.LOAD_CAP

    @classmethod
    def read_only(cls) -> "PagePerm":
        return cls.READ | cls.LOAD_CAP

    @classmethod
    def rx(cls) -> "PagePerm":
        return cls.READ | cls.EXEC | cls.LOAD_CAP


class AccessKind(Enum):
    READ = auto()
    WRITE = auto()
    EXEC = auto()
    #: a capability (tagged, 16-byte) load — distinct so the CoPA
    #: fault-on-capability-load bit can be modeled
    CAP_LOAD = auto()

    @property
    def is_write(self) -> bool:
        return self is AccessKind.WRITE


_REQUIRED_PERM = {
    AccessKind.READ: PagePerm.READ,
    AccessKind.WRITE: PagePerm.WRITE,
    AccessKind.EXEC: PagePerm.EXEC,
    AccessKind.CAP_LOAD: PagePerm.READ | PagePerm.LOAD_CAP,
}

_ACCESS_NAME = {
    AccessKind.READ: "read",
    AccessKind.WRITE: "write",
    AccessKind.EXEC: "exec",
    AccessKind.CAP_LOAD: "cap_load",
}


@dataclass
class PTE:
    """One page-table entry."""

    frame: int
    perms: PagePerm
    #: classic copy-on-write marker (monolithic baseline)
    cow: bool = False
    #: free-form slot for the owning OS (μFork strategies stash the
    #: fork-sharing record here)
    note: Any = None


class PageTable:
    """A sparse vpn → PTE map (no multi-level radix detail needed)."""

    def __init__(self) -> None:
        self._entries: Dict[int, PTE] = {}

    def get(self, vpn: int) -> Optional[PTE]:
        return self._entries.get(vpn)

    def set(self, vpn: int, pte: PTE) -> None:
        self._entries[vpn] = pte

    def remove(self, vpn: int) -> PTE:
        return self._entries.pop(vpn)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[Tuple[int, PTE]]:
        return iter(self._entries.items())

    def vpns(self) -> Iterator[int]:
        return iter(self._entries.keys())


#: fault handler: (space, vaddr, kind) -> True if resolved (retry access)
FaultHandler = Callable[["AddressSpace", int, AccessKind], bool]


class AddressSpace:
    """A page table plus access methods with fault dispatch.

    ``machine`` is any object exposing ``config``, ``costs``, ``clock``,
    ``counters``, ``phys`` and ``codec`` (see :class:`repro.machine.Machine`).
    """

    def __init__(self, machine: Any, name: str = "as") -> None:
        self.machine = machine
        self.name = name
        self.page_table = PageTable()
        self.fault_handler: Optional[FaultHandler] = None
        self._page_size = machine.config.page_size

    # -- mapping ------------------------------------------------------------

    def map_page(self, vpn: int, frame: int, perms: PagePerm,
                 incref: bool = False, cow: bool = False,
                 note: Any = None) -> PTE:
        if vpn in self.page_table:
            raise ValueError(f"vpn {vpn:#x} already mapped in {self.name}")
        if incref:
            self.machine.phys.incref(frame)
        pte = PTE(frame=frame, perms=perms, cow=cow, note=note)
        self.page_table.set(vpn, pte)
        return pte

    def unmap_page(self, vpn: int, decref: bool = True) -> int:
        pte = self.page_table.remove(vpn)
        if decref:
            self.machine.phys.decref(pte.frame)
        return pte.frame

    def protect_page(self, vpn: int, perms: PagePerm) -> None:
        pte = self.page_table.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        pte.perms = perms

    def replace_frame(self, vpn: int, frame: int, decref_old: bool = True) -> None:
        """Point an existing mapping at a different frame (CoW break)."""
        pte = self.page_table.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        if decref_old:
            self.machine.phys.decref(pte.frame)
        pte.frame = frame

    # -- translation with fault dispatch ---------------------------------------

    def _vpn(self, vaddr: int) -> int:
        return vaddr // self._page_size

    def resolve(self, vaddr: int, kind: AccessKind,
                privileged: bool = False) -> Tuple[Frame, int]:
        """Translate an address, dispatching faults at most once."""
        vpn = self._vpn(vaddr)
        for attempt in (0, 1):
            pte = self.page_table.get(vpn)
            if pte is not None:
                if privileged:
                    return self.machine.phys.frame(pte.frame), vaddr % self._page_size
                required = _REQUIRED_PERM[kind]
                if (pte.perms & required) == required:
                    return self.machine.phys.frame(pte.frame), vaddr % self._page_size
            if attempt == 1:
                break
            if not self._dispatch_fault(vaddr, kind):
                break
        if self.page_table.get(vpn) is None:
            raise UnmappedAddressError(vaddr, _ACCESS_NAME[kind])
        raise ProtectionError(vaddr, _ACCESS_NAME[kind])

    def _dispatch_fault(self, vaddr: int, kind: AccessKind) -> bool:
        """Charge the fault and hand it to the registered handler.

        Observable as ``hw.paging.fault.<kind>`` counters — the
        ``cap_load`` kind counts CoPA's fault-on-capability-load traps.
        """
        machine = self.machine
        machine.clock.advance(machine.costs.page_fault_ns, "page_fault")
        machine.counters.add(f"fault_{_ACCESS_NAME[kind]}")
        machine.obs.count(f"hw.paging.fault.{_ACCESS_NAME[kind]}")
        machine.trace("page_fault", vaddr=vaddr, kind=_ACCESS_NAME[kind],
                      space=self.name)
        if self.fault_handler is None:
            return False
        return self.fault_handler(self, vaddr, kind)

    # -- byte access ------------------------------------------------------------

    def read(self, vaddr: int, size: int, privileged: bool = False,
             charge: bool = True) -> bytes:
        """Read bytes (may span pages)."""
        out = bytearray()
        remaining = size
        addr = vaddr
        while remaining > 0:
            frame, offset = self.resolve(addr, AccessKind.READ, privileged)
            chunk = min(remaining, self._page_size - offset)
            out += frame.read(offset, chunk)
            addr += chunk
            remaining -= chunk
        if charge:
            self.machine.clock.advance(
                self.machine.costs.memcpy_ns_per_byte * size, "mem_read"
            )
        return bytes(out)

    def write(self, vaddr: int, data: bytes, privileged: bool = False,
              charge: bool = True) -> None:
        """Write bytes (may span pages); clears tags of touched granules."""
        offset_in_data = 0
        addr = vaddr
        remaining = len(data)
        while remaining > 0:
            frame, offset = self.resolve(addr, AccessKind.WRITE, privileged)
            chunk = min(remaining, self._page_size - offset)
            frame.write(offset, data[offset_in_data:offset_in_data + chunk])
            addr += chunk
            offset_in_data += chunk
            remaining -= chunk
        if charge:
            self.machine.clock.advance(
                self.machine.costs.memcpy_ns_per_byte * len(data), "mem_write"
            )

    # -- capability access ----------------------------------------------------------

    def load_cap(self, vaddr: int, privileged: bool = False) -> Capability:
        """Load one capability granule (subject to the CoPA fault bit)."""
        kind = AccessKind.CAP_LOAD
        frame, offset = self.resolve(vaddr, kind, privileged)
        return frame.load_cap(offset, self.machine.codec)

    def store_cap(self, vaddr: int, cap: Capability,
                  privileged: bool = False) -> None:
        frame, offset = self.resolve(vaddr, AccessKind.WRITE, privileged)
        frame.store_cap(offset, cap, self.machine.codec)

    # -- accounting -----------------------------------------------------------------

    def resident_bytes(self, lo_vaddr: int, hi_vaddr: int,
                       proportional: bool = True) -> float:
        """Resident set of the VA range [lo, hi).

        With ``proportional`` (the paper's metric, §5.2) each mapped page
        contributes ``page_size / frame_refcount`` so memory shared with
        another process is split between its sharers.
        """
        lo_vpn = lo_vaddr // self._page_size
        hi_vpn = (hi_vaddr + self._page_size - 1) // self._page_size
        total = 0.0
        for vpn, pte in self.page_table.entries():
            if lo_vpn <= vpn < hi_vpn:
                if proportional:
                    total += self._page_size / self.machine.phys.refcount(pte.frame)
                else:
                    total += self._page_size
        return total

    def mapped_pages(self, lo_vaddr: int, hi_vaddr: int) -> int:
        lo_vpn = lo_vaddr // self._page_size
        hi_vpn = (hi_vaddr + self._page_size - 1) // self._page_size
        return sum(
            1 for vpn in self.page_table.vpns() if lo_vpn <= vpn < hi_vpn
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name!r}, pages={len(self.page_table)})"


# re-export for convenience
__all__ = [
    "AccessKind",
    "AddressSpace",
    "FaultHandler",
    "PTE",
    "PagePerm",
    "PageTable",
    "CAP_SIZE",
]

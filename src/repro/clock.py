"""Deterministic simulated time.

Every latency the reproduction reports is *simulated* time, accumulated on
a :class:`SimClock` as the machine model charges costs for primitive
operations (traps, page copies, tag scans, ...).  Nothing in the core
library reads the wall clock, which keeps all experiments deterministic
and independent of host speed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class SimClock:
    """A monotonically increasing nanosecond counter with attribution.

    ``advance`` optionally attributes the charged time to a named bucket
    (e.g. ``"fork"``, ``"page_copy"``) so experiments can break latency
    down the way the paper's figures do.

    ``observer`` is the hook the observability layer
    (:mod:`repro.obs`) installs while enabled: every advance is
    mirrored as ``observer(ns, bucket)``.  A ``None`` observer costs
    one attribute check per advance — the same contract as tracing.
    """

    def __init__(self) -> None:
        self._now_ns = 0
        self.buckets: Dict[str, int] = {}
        #: optional ``(ns, bucket)`` callback (see :mod:`repro.obs`)
        self.observer = None

    # -- reading ------------------------------------------------------

    @property
    def now_ns(self) -> int:
        return self._now_ns

    @property
    def now_us(self) -> float:
        return self._now_ns / NS_PER_US

    @property
    def now_ms(self) -> float:
        return self._now_ns / NS_PER_MS

    @property
    def now_s(self) -> float:
        return self._now_ns / NS_PER_S

    # -- advancing ----------------------------------------------------

    def advance(self, ns: float, bucket: str | None = None) -> None:
        """Advance simulated time by ``ns`` nanoseconds (>= 0)."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        ns_int = int(round(ns))
        self._now_ns += ns_int
        if bucket is not None:
            self.buckets[bucket] = self.buckets.get(bucket, 0) + ns_int
        if self.observer is not None:
            self.observer(ns_int, bucket)

    def advance_to(self, ns: int) -> None:
        """Move the clock forward to an absolute time (no-op if in the past)."""
        if ns > self._now_ns:
            delta = ns - self._now_ns
            self._now_ns = ns
            if self.observer is not None:
                self.observer(delta, None)

    # -- measurement helpers -------------------------------------------

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        """Measure simulated time elapsed inside a ``with`` block."""
        watch = Stopwatch(self)
        watch.start()
        try:
            yield watch
        finally:
            watch.stop()

    def bucket_ns(self, name: str) -> int:
        return self.buckets.get(name, 0)

    def reset_buckets(self) -> None:
        self.buckets.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now_ns}ns)"


class Stopwatch:
    """Captures an interval of simulated time on a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start: int | None = None
        self._elapsed = 0

    def start(self) -> None:
        self._start = self._clock.now_ns

    def stop(self) -> None:
        if self._start is not None:
            self._elapsed += self._clock.now_ns - self._start
            self._start = None

    @property
    def elapsed_ns(self) -> int:
        if self._start is not None:
            return self._elapsed + (self._clock.now_ns - self._start)
        return self._elapsed

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / NS_PER_US

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ns / NS_PER_MS


class EventCounters:
    """Named event counters (page copies, faults, syscalls, ...).

    Used throughout the machine and kernels for the memory/behaviour
    metrics that the paper reports alongside latency.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, n: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventCounters({self._counts!r})"

"""Launch the host-POSIX oracle in a sandboxed subprocess.

The oracle (:mod:`repro.conform.hostrun`) forks real processes, so it
runs isolated the way ``pytest-isolated`` does it: its own session
(``start_new_session=True`` → fresh process group), a hard wall-clock
timeout, and ``killpg(SIGKILL)`` + reaping on overrun so a wedged
scenario can never leak orphans into the test run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from typing import Any, Dict

from repro.conform.dsl import Scenario

#: wall-clock budget for one scenario; generous — a healthy run is
#: milliseconds, so hitting this means a deadlock or lost process
DEFAULT_TIMEOUT = 20.0

_HOSTRUN = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "hostrun.py")


class HostOracleError(RuntimeError):
    """The host oracle failed to produce a trace (crash or timeout)."""


def _kill_group(proc: "subprocess.Popen[str]") -> None:
    # start_new_session made proc the leader of its own process group,
    # so this reaches every scenario descendant even after reparenting
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        pass


def run_host(scenario: Scenario,
             timeout: float = DEFAULT_TIMEOUT) -> Dict[str, Any]:
    """Execute *scenario* on the real host kernel; return its raw
    logical trace (same shape :func:`repro.conform.simrun.run_sim`
    returns, ready for :func:`repro.conform.dsl.diff_traces`)."""
    payload = json.dumps({"scenario": scenario.to_json(),
                          "timeout": int(timeout)})
    proc = subprocess.Popen(
        [sys.executable, _HOSTRUN],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        start_new_session=True,
        text=True,
    )
    try:
        out, err = proc.communicate(payload, timeout=timeout)
    except subprocess.TimeoutExpired:
        _kill_group(proc)
        _out, err = proc.communicate()
        raise HostOracleError(
            f"host oracle timed out after {timeout:g}s on scenario "
            f"{scenario.name!r}; stderr tail: {err[-500:]!r}")
    except BaseException:
        _kill_group(proc)
        proc.wait()
        raise
    if proc.returncode != 0:
        raise HostOracleError(
            f"host oracle exited {proc.returncode} on scenario "
            f"{scenario.name!r}; stderr tail: {err[-500:]!r}")
    try:
        return json.loads(out)
    except ValueError as exc:
        raise HostOracleError(
            f"host oracle produced unparseable output on scenario "
            f"{scenario.name!r}: {exc}; stdout tail: {out[-500:]!r}")

#!/usr/bin/env python3
"""A sharded fleet of μFork machines serving planet-scale traffic.

Boots independent shard machines (each a real `repro.api.Session` with
its own kernel), fronts them with a deterministic consistent-hash
balancer + request batching, and serves a synthesized trace with Zipf
key popularity, a diurnal wave and flash crowds.  Capacity is μFork's
fast fork: every serving worker is forked from a per-shard warm
zygote, per-class service times are calibrated by real
fork→run→exit→reap cycles on each machine, and hot shards are
rebalanced by migrating workers — only their CoW-divergent pages cross
the wire, the rest re-forks from the target's zygote (docs/CLUSTER.md).

Run:  python examples/cluster_serving.py
"""

from repro.api import Session
from repro.cluster import format_summary, run_cluster


def main() -> None:
    print("Serving 60,000 requests on 2 shards x 2 workers "
          "(seed-deterministic):\n")
    report = run_cluster(seed=42, shards=2, workers=2, requests=60_000,
                         keys=2_048, users=200_000, audit=8)
    print(format_summary(report))

    latency = report["latency_ns"]
    assert latency["p50"] <= latency["p99"] <= latency["p999"]
    assert sum(report["balancer"]["shard_load"]) == report["requests"]

    hot = max(report["balancer"]["shard_load"])
    print(f"\nZipf skew made the hottest shard carry "
          f"{hot * 100 // report['requests']}% of all traffic; "
          f"{report['trace']['unique_users']:,} distinct users showed up.")

    print("\nThe capacity primitive, by hand — a warm pool on one "
          "machine:")
    session = Session(os="ufork", seed=1, obs=True).boot()
    pool = session.warm_pool(2, name="zygote")
    worker = pool.fork_worker()                  # scale up: one fast fork
    print(f"  forked worker pid={worker.pid}; "
          f"divergent state so far: {pool.divergent_bytes(worker)} bytes "
          f"(everything else is shared with the zygote)")
    pool.retire(worker)                          # scale down: exit + reap
    counters = session.obs_export()["metrics"]["counters"]
    print(f"  pool counters: forked={counters['cluster.pool.forked']} "
          f"retired={counters['cluster.pool.retired']}")

    print("\nRe-running the same cluster: reports are byte-identical "
          "(the CI artifact is diffable).")
    again = run_cluster(seed=42, shards=2, workers=2, requests=60_000,
                        keys=2_048, users=200_000, audit=8)
    from repro.harness.reportio import dumps_report
    assert dumps_report(again) == dumps_report(report)
    print("  verified: same seed, same bytes.")


if __name__ == "__main__":
    main()

"""Unit + property tests for capability relocation (paper §4.2) — the
mechanism that makes μFork's single-address-space fork sound."""

import pytest
from hypothesis import given, strategies as st

from repro.cheri.capability import Capability, OTYPE_SENTRY, Perm
from repro.cheri.regfile import RegisterFile
from repro.core.relocate import (
    RegionPair,
    find_unrelocated,
    relocate_cap,
    relocate_frame,
    relocate_registers,
)
from repro.machine import Machine

PARENT = RegionPair(
    parent_base=0x10_0000, parent_top=0x20_0000,
    child_base=0x50_0000, child_top=0x60_0000,
)


def cap_at(base, length=0x100, cursor=None, perms=None, otype=None):
    cap = Capability(
        base=base, length=length,
        cursor=base if cursor is None else cursor,
        perms=Perm.data_rw() if perms is None else perms,
    )
    if otype is not None:
        cap = cap.sealed(otype)
    return cap


class TestRelocateCap:
    def test_parent_cap_rebased_by_delta(self):
        cap = cap_at(0x10_1000, cursor=0x10_1040)
        moved = relocate_cap(cap, PARENT)
        assert moved.base == 0x50_1000
        assert moved.cursor == 0x50_1040
        assert moved.length == cap.length
        assert moved.perms == cap.perms

    def test_child_cap_untouched(self):
        cap = cap_at(0x50_1000)
        assert relocate_cap(cap, PARENT) is cap

    def test_invalid_cap_untouched(self):
        cap = cap_at(0x10_1000).invalidated()
        assert relocate_cap(cap, PARENT) is cap

    def test_sentry_preserved(self):
        gate = cap_at(0x9_0000, perms=Perm.code(), otype=OTYPE_SENTRY)
        assert relocate_cap(gate, PARENT) is gate

    def test_foreign_cap_invalidated(self):
        """A capability pointing outside both regions (e.g. another
        μprocess) must not survive into the child (§4.3)."""
        foreign = cap_at(0x90_0000)
        moved = relocate_cap(foreign, PARENT)
        assert not moved.valid

    def test_bounds_clamped_to_child_region(self):
        # bounds straddling the end of the parent region get clamped
        cap = cap_at(0x1F_FF00, length=0x1000)
        moved = relocate_cap(cap, PARENT)
        assert moved.base >= PARENT.child_base
        assert moved.top <= PARENT.child_top

    def test_relocated_never_grants_parent_access(self):
        cap = cap_at(0x10_8000, length=0x4000)
        moved = relocate_cap(cap, PARENT)
        assert not PARENT.in_parent(moved.base)
        assert not PARENT.in_parent(moved.top - 1)

    @given(
        offset=st.integers(0, 0xF_0000),
        length=st.integers(0, 0x1_0000),
        cursor_off=st.integers(0, 0x1_0000),
    )
    def test_prop_relocation_preserves_region_offset(self, offset, length,
                                                     cursor_off):
        """The child's view is the parent's, shifted by exactly delta."""
        base = PARENT.parent_base + offset
        cap = Capability(base=base, length=length,
                         cursor=base + cursor_off, perms=Perm.data_rw())
        moved = relocate_cap(cap, PARENT)
        if moved.valid and not moved.is_sentry:
            # offset within the child region mirrors the parent offset,
            # modulo clamping at the region edge
            if cap.top <= PARENT.parent_top:
                assert moved.base - PARENT.child_base == \
                    cap.base - PARENT.parent_base
                assert moved.cursor - moved.base == cap.cursor - cap.base

    @given(
        base=st.integers(0, 2**30),
        length=st.integers(0, 2**16),
    )
    def test_prop_no_result_ever_reaches_into_parent(self, base, length):
        cap = Capability(base=base, length=length, cursor=base,
                         perms=Perm.data_rw())
        moved = relocate_cap(cap, PARENT)
        if moved.valid and not moved.is_sentry and moved.length > 0:
            overlap_lo = max(moved.base, PARENT.parent_base)
            overlap_hi = min(moved.top, PARENT.parent_top)
            assert overlap_lo >= overlap_hi, (
                f"relocated cap {moved} still overlaps the parent region"
            )


class TestRelocateFrame:
    def make_frame(self, machine):
        fn = machine.phys.alloc()
        return machine.phys.frame(fn)

    def test_all_tagged_granules_relocated(self, machine):
        frame = self.make_frame(machine)
        for index in range(5):
            frame.store_cap(index * 16, cap_at(0x10_1000 + index * 0x100),
                            machine.codec)
        count = relocate_frame(machine, frame, PARENT)
        assert count == 5
        assert find_unrelocated(machine, frame, PARENT) == []

    def test_untagged_data_untouched(self, machine):
        frame = self.make_frame(machine)
        # raw bytes that *look* like a parent pointer but carry no tag
        import struct
        frame.write(0, struct.pack("<QQ", 0x10_1000, 7))
        count = relocate_frame(machine, frame, PARENT)
        assert count == 0
        assert frame.read(0, 8) == struct.pack("<Q", 0x10_1000)

    def test_scan_charges_time(self, machine):
        frame = self.make_frame(machine)
        before = machine.clock.now_ns
        relocate_frame(machine, frame, PARENT)
        expected = machine.costs.page_scan_ns(
            machine.config.page_size, machine.config.granule
        )
        assert machine.clock.now_ns - before >= int(expected)

    def test_relocation_charges_per_cap(self, machine):
        frame = self.make_frame(machine)
        frame.store_cap(0, cap_at(0x10_1000), machine.codec)
        scan_only = machine.costs.page_scan_ns(
            machine.config.page_size, machine.config.granule
        )
        before = machine.clock.now_ns
        relocate_frame(machine, frame, PARENT)
        assert machine.clock.now_ns - before >= \
            int(scan_only + machine.costs.cap_relocate_ns)

    def test_counter_updated(self, machine):
        frame = self.make_frame(machine)
        frame.store_cap(16, cap_at(0x10_2000), machine.codec)
        relocate_frame(machine, frame, PARENT)
        assert machine.counters.get("caps_relocated") == 1


class TestRelocateRegisters:
    def test_cap_registers_relocated_ints_untouched(self, machine):
        regs = RegisterFile()
        regs.set("c1", cap_at(0x10_4000))
        regs.set("x1", 0x10_4000)  # an integer that looks like a pointer
        moved = relocate_registers(machine, regs, PARENT)
        assert moved == 1
        assert regs.get_cap("c1").base == 0x50_4000
        assert regs.get("x1") == 0x10_4000  # integers are not pointers

    def test_invalid_register_cap_untouched(self, machine):
        regs = RegisterFile()
        regs.set("c1", cap_at(0x10_4000).invalidated())
        assert relocate_registers(machine, regs, PARENT) == 0

"""GuestContext: the user-space programming API.

A :class:`GuestContext` is what a process's code holds: its capability
registers, its heap allocator, and the syscall gate.  All loads and
stores go through capabilities (checked at dereference, like compiled
pure-capability code) into the simulated address space, so page-level
copy strategies and capability bounds are exercised on every access.

The same context API works on every OS in the reproduction — that is
the transparency requirement (R2) made concrete: applications in
:mod:`repro.apps` contain no OS-specific code.
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Tuple

from repro import perf as _perf
from repro.cheri.capability import OTYPE_UNSEALED, Capability, Perm
from repro.cheri.codec import CAP_SIZE
from repro.kernel.task import Process

_U64 = struct.Struct("<Q")

#: hoisted Perm members for the perf fast lanes in load/store — the
#: per-access Enum class-attribute lookups add up on hot guest loops
_PERM_LOAD = Perm.LOAD
_PERM_STORE = Perm.STORE


class GuestContext:
    """User-space view of one process on one OS."""

    #: size of the staging buffer used by the byte-level I/O helpers
    STAGING_SIZE = 64 * 1024

    def __init__(self, os: Any, proc: Process) -> None:
        self.os = os
        self.proc = proc
        self._staging: Optional[Capability] = None
        self._space_memo: Any = None

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------

    @property
    def registers(self):
        return self.proc.main_task().registers

    def reg(self, name: str):
        return self.registers.get(name)

    def set_reg(self, name: str, value) -> None:
        self.registers.set(name, value)

    # ------------------------------------------------------------------
    # Memory (capability-checked, unprivileged)
    # ------------------------------------------------------------------

    @property
    def space(self):
        # a process's address space is assigned once (spawn/fork) and
        # never replaced, so the perf path resolves it only once
        if _perf.ENABLED:
            space = self._space_memo
            if space is None:
                space = self.os.space_of(self.proc)
                self._space_memo = space
            return space
        return self.os.space_of(self.proc)

    def load(self, cap: Capability, size: int, offset: int = 0) -> bytes:
        if _perf.ENABLED:
            # same call chain, minus the property/keyword overhead
            addr = cap.check_access(_PERM_LOAD, size, cap.cursor + offset)
            space = self._space_memo
            if space is None:
                space = self.os.space_of(self.proc)
                self._space_memo = space
            return space.read(addr, size)
        addr = cap.check_access(Perm.LOAD, size=size,
                                addr=cap.cursor + offset)
        return self.space.read(addr, size)

    def store(self, cap: Capability, data: bytes, offset: int = 0) -> None:
        if _perf.ENABLED:
            addr = cap.check_access(_PERM_STORE, len(data),
                                    cap.cursor + offset)
            space = self._space_memo
            if space is None:
                space = self.os.space_of(self.proc)
                self._space_memo = space
            space.write(addr, data)
            return
        addr = cap.check_access(Perm.STORE, size=len(data),
                                addr=cap.cursor + offset)
        self.space.write(addr, data)

    def store_run(self, cap: Capability, data: bytes, offsets) -> None:
        """``store(cap, data, offset)`` for every offset, in order.

        The guest-side batch primitive (a fork server dirtying its
        pages, a buffer fill): one capability span check covers the
        whole run — sound because the hull of the accessed intervals
        passing bounds implies every member passes, and the
        tag/seal/permission checks are offset-independent — and the
        space batches the store charges.  Any capability that would
        fault takes the per-store loop instead, so the faulting access
        and its fault class are exactly those of the unbatched calls.
        """
        if _perf.ENABLED and offsets:
            size = len(data)
            cursor = cap.cursor
            lo = min(offsets)
            hi = max(offsets)
            bits = _PERM_STORE._value_
            if cap.valid and cap.otype == OTYPE_UNSEALED and \
                    (cap.perms._value_ & bits) == bits and \
                    cap.base <= cursor + lo and \
                    cursor + hi + size <= cap.base + cap.length:
                space = self._space_memo
                if space is None:
                    space = self.os.space_of(self.proc)
                    self._space_memo = space
                space.write_run([cursor + offset for offset in offsets],
                                data)
                return
        for offset in offsets:
            self.store(cap, data, offset)

    def load_u64(self, cap: Capability, offset: int = 0) -> int:
        return _U64.unpack(self.load(cap, 8, offset))[0]

    def store_u64(self, cap: Capability, value: int, offset: int = 0) -> None:
        self.store(cap, _U64.pack(value), offset)

    def load_cap(self, cap: Capability, offset: int = 0) -> Capability:
        addr = cap.check_access(Perm.LOAD | Perm.LOAD_CAP, size=CAP_SIZE,
                                addr=cap.cursor + offset)
        return self.space.load_cap(addr)

    def store_cap(self, cap: Capability, value: Capability,
                  offset: int = 0) -> None:
        addr = cap.check_access(Perm.STORE | Perm.STORE_CAP, size=CAP_SIZE,
                                addr=cap.cursor + offset)
        self.space.store_cap(addr, value)

    # ------------------------------------------------------------------
    # Heap
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> Capability:
        return self.proc.allocator.malloc(size)

    def free(self, cap: Capability) -> None:
        self.proc.allocator.free(cap)

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------

    def compute(self, work_units: float) -> None:
        """Charge abstract application compute time."""
        costs = self.os.machine.costs
        self.os.machine.charge(costs.compute_ns_per_unit * work_units,
                               "compute")

    # ------------------------------------------------------------------
    # Syscalls
    # ------------------------------------------------------------------

    def syscall(self, name: str, *args):
        return self.os.syscall(self.proc, name, *args,
                               gate=self.proc.syscall_gate)

    def fork(self) -> "GuestContext":
        """POSIX fork; returns the *child's* context.

        (Drivers are synchronous Python, so instead of "returns 0 in the
        child", the parent receives a handle it uses to run child code.)
        """
        child_proc = self.syscall("fork")
        return GuestContext(self.os, child_proc)

    def exit(self, status: int = 0) -> None:
        self.syscall("exit", status)

    def wait(self, pid: int = -1) -> Tuple[int, int]:
        return self.syscall("waitpid", pid)

    @property
    def pid(self) -> int:
        return self.proc.pid

    # ------------------------------------------------------------------
    # Byte-level file/socket helpers (stage through guest memory)
    # ------------------------------------------------------------------

    def _stage(self) -> Capability:
        if self._staging is None:
            # adapt to small heaps (hello-world sized images)
            size = min(self.STAGING_SIZE,
                       self.proc.allocator.data_size // 4)
            self._staging = self.malloc(max(512, size))
        return self._staging

    def write_bytes(self, fd: int, data: bytes) -> int:
        """Write host bytes to an fd via a guest staging buffer, in
        staging-buffer-sized syscalls (like stdio with a 64K buffer)."""
        staging = self._stage()
        written = 0
        view = memoryview(data)
        while written < len(data):
            chunk = view[written:written + staging.length]
            self.store(staging, bytes(chunk))
            written += self.syscall("write", fd, staging, len(chunk))
        return written

    def read_bytes(self, fd: int, size: int) -> bytes:
        """Read up to ``size`` bytes from an fd via the staging buffer."""
        staging = self._stage()
        out = bytearray()
        while len(out) < size:
            chunk = min(staging.length, size - len(out))
            got = self.syscall("read", fd, staging, chunk)
            if got == 0:
                break
            out += self.load(staging, got)
        return bytes(out)

    def send_bytes(self, fd: int, data: bytes) -> int:
        staging = self._stage()
        sent = 0
        view = memoryview(data)
        while sent < len(data):
            chunk = view[sent:sent + staging.length]
            self.store(staging, bytes(chunk))
            sent += self.syscall("send", fd, staging, len(chunk))
        return sent

    def recv_bytes(self, fd: int, size: int) -> bytes:
        staging = self._stage()
        got = self.syscall("recv", fd, staging, min(size, staging.length))
        if got == 0:
            return b""
        return self.load(staging, got)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuestContext(pid={self.proc.pid}, os={self.os.kind})"

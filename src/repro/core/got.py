"""Global offset table model (paper §3.7).

PIC code finds global objects through the GOT; each GOT entry is a
tagged capability to a global.  Because a child μprocess lives at a
different base address, the GOT is one of the page sets μFork copies
and relocates *eagerly* during fork (§3.5 step 1) — a stale GOT entry
would send the child straight into parent memory on its first global
access.
"""

from __future__ import annotations

from typing import Any, List

from repro.cheri.capability import Capability, Perm
from repro.cheri.codec import CAP_SIZE


def init_got(space: Any, got_base: int, entries: int,
             region_cap: Capability, data_base: int, data_size: int,
             rodata_base: int, rodata_size: int) -> None:
    """Populate the GOT with capabilities to synthetic globals.

    Entries alternate between writable data globals and read-only
    rodata globals, 32 bytes apart, mirroring how a linked PIE's GOT
    points across its own segments.
    """
    for index in range(entries):
        if index % 2 == 0 and data_size >= 32:
            target = data_base + (index * 32) % max(32, data_size - 32)
            perms = Perm.data_rw()
        else:
            target = rodata_base + (index * 32) % max(32, rodata_size - 32)
            perms = Perm.data_ro()
        cap = (
            region_cap
            .set_bounds(target, 32)
            .with_cursor(target)
            .and_perms(perms)
        )
        space.store_cap(got_base + index * CAP_SIZE, cap, privileged=True)


def read_got(space: Any, got_base: int, entries: int,
             privileged: bool = False) -> List[Capability]:
    """Read all GOT entries (a child doing this exercises relocation)."""
    return [
        space.load_cap(got_base + index * CAP_SIZE, privileged=privileged)
        for index in range(entries)
    ]


def got_confined(space: Any, got_base: int, entries: int,
                 region_base: int, region_top: int) -> bool:
    """Verification helper: every GOT entry points inside the region."""
    for cap in read_got(space, got_base, entries, privileged=True):
        if not cap.valid:
            continue
        if cap.base < region_base or cap.top > region_top:
            return False
    return True

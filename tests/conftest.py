"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.machine import Machine, live_machines
from repro.params import CostModel, MachineConfig


def pytest_collection_modifyitems(config, items):
    """Keep tier-1 fast: ``farm``-marked torture runs only execute in
    their own CI job (``REPRO_FARM_TESTS=1``) or when selected
    explicitly with ``-m farm``."""
    if os.environ.get("REPRO_FARM_TESTS") == "1":
        return
    if "farm" in (config.option.markexpr or ""):
        return
    skip_farm = pytest.mark.skip(
        reason="farm tier: set REPRO_FARM_TESTS=1 or run -m farm")
    for item in items:
        if "farm" in item.keywords:
            item.add_marker(skip_farm)


@pytest.fixture(autouse=True)
def _no_kernel_leaks():
    """Fail any test that leaves kernel bookkeeping inconsistent.

    After each test, every machine still alive is audited with the
    conformance leak checks (:func:`repro.conform.invariants.leak_report`):
    exited tasks may not sit in run queues, exited processes may not
    hold fds, share notes may not outlive their frames, and no
    allocated frame may have a non-positive refcount.  Tests that
    legitimately leave processes *running* pass — the audit flags
    inconsistent state, not live state.
    """
    yield
    from repro.conform.invariants import leak_report

    problems = []
    for machine in live_machines():
        for os_ in machine.kernels():
            for line in leak_report(os_):
                problems.append(f"{type(os_).__name__}: {line}")
    if problems:
        pytest.fail("kernel state leaked by this test:\n" +
                    "\n".join(sorted(set(problems))), pytrace=False)


@pytest.fixture
def machine() -> Machine:
    """A fresh default machine per test."""
    return Machine()


@pytest.fixture
def small_machine() -> Machine:
    """A machine with tiny DRAM, handy for out-of-memory paths."""
    config = MachineConfig(dram_bytes=64 * 4096)
    return Machine(config=config, costs=CostModel.morello())

"""SMP determinism tier: same seed + same num_cpus fully determines an
SMP run — the dispatch order, the steal/IPI schedule, and the exported
``repro.obs/v1`` sidecar are byte-for-byte reproducible (satellite of
the tentpole; mirrors tests/test_chaos_determinism.py)."""

import json

from repro.smp.runner import run_smp

SEED = 7
REQUESTS = 16
MIX = "default=0.02,smp.*=0.2"


def test_same_seed_same_cpus_byte_equal_sidecars(tmp_path):
    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    one = run_smp(seed=SEED, num_cpus=4, requests=REQUESTS,
                  workload="faas", obs_dir=str(dir_a))
    two = run_smp(seed=SEED, num_cpus=4, requests=REQUESTS,
                  workload="faas", obs_dir=str(dir_b))

    assert one == two
    for name in (f"smp-{SEED}-c4.obs.json", f"smp-{SEED}-c4.smp.json"):
        assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes()


def test_chaos_under_smp_is_deterministic_too(tmp_path):
    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    one = run_smp(seed=SEED, num_cpus=4, requests=REQUESTS,
                  workload="faas", mix=MIX, obs_dir=str(dir_a))
    two = run_smp(seed=SEED, num_cpus=4, requests=REQUESTS,
                  workload="faas", mix=MIX, obs_dir=str(dir_b))

    assert one == two
    assert one["injected"] > 0            # the run was not trivially calm
    name = f"smp-{SEED}-c4.obs.json"
    assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes()


def test_sidecars_are_valid_and_self_consistent(tmp_path):
    summary = run_smp(seed=SEED, num_cpus=2, requests=REQUESTS,
                      workload="faas", obs_dir=str(tmp_path))
    obs_doc = json.loads(
        (tmp_path / f"smp-{SEED}-c2.obs.json").read_text())
    from repro.obs import validate_export
    validate_export(obs_doc)
    smp_doc = json.loads(
        (tmp_path / f"smp-{SEED}-c2.smp.json").read_text())
    assert smp_doc == summary
    assert smp_doc["schema"] == "repro.smp.run/v1"
    counters = obs_doc["metrics"]["counters"]
    assert counters["smp.ipi.sent"] == summary["ipi"]["sent"]
    assert counters["smp.ipi.acked"] == summary["ipi"]["acked"]


def test_different_cpu_count_different_run():
    one = run_smp(seed=SEED, num_cpus=1, requests=REQUESTS, workload="faas")
    two = run_smp(seed=SEED, num_cpus=2, requests=REQUESTS, workload="faas")
    four = run_smp(seed=SEED, num_cpus=4, requests=REQUESTS, workload="faas")
    assert one["obs_export_sha256"] != two["obs_export_sha256"]
    assert two["obs_export_sha256"] != four["obs_export_sha256"]


def test_different_seed_different_chaos_run():
    one = run_smp(seed=SEED, num_cpus=4, requests=REQUESTS,
                  workload="faas", mix=MIX)
    two = run_smp(seed=SEED + 1, num_cpus=4, requests=REQUESTS,
                  workload="faas", mix=MIX)
    assert one["injected_by_point"] != two["injected_by_point"]
    assert one["obs_export_sha256"] != two["obs_export_sha256"]


def test_uniprocessor_run_has_no_smp_traffic():
    """num_cpus=1 must never touch the SMP machinery: no IPIs, no
    steals, no shootdown broadcasts (the bit-identity guarantee)."""
    summary = run_smp(seed=SEED, num_cpus=1, requests=REQUESTS,
                      workload="faas")
    assert summary["ipi"]["sent"] == 0
    assert summary["steals"] == 0
    assert summary["shootdown_broadcasts"] == 0
    assert summary["completed"] == REQUESTS

"""Structured execution tracing.

A :class:`TraceLog` attached to a machine records the interesting
kernel events — forks, page faults, copy-on-* breaks, relocations,
syscalls — with their simulated timestamps.  Tracing is off by default
(a ``None`` tracer costs one attribute check per event) and is the tool
for answering "why did this fork cost what it did?": see
``TraceLog.summarize`` and the trace tests.

Usage::

    machine = Machine()
    trace = attach_tracer(machine)
    ... run a workload ...
    print(trace.summarize())
    for event in trace.query("page_copy"):
        ...
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    timestamp_ns: int
    event: str
    fields: tuple  # sorted (key, value) pairs; hashable & immutable

    def get(self, key: str, default=None):
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        details = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"[{self.timestamp_ns:>12}ns] {self.event} {details}"


class TraceLog:
    """A bounded in-memory event log."""

    def __init__(self, machine: Any, capacity: int = 100_000) -> None:
        self.machine = machine
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, event: str, **fields: Any) -> None:
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(
            timestamp_ns=self.machine.clock.now_ns,
            event=event,
            fields=tuple(sorted(fields.items())),
        ))

    # -- querying -----------------------------------------------------------

    def query(self, event: Optional[str] = None,
              **field_filters: Any) -> Iterator[TraceEvent]:
        for entry in self.events:
            if event is not None and entry.event != event:
                continue
            if all(entry.get(key) == value
                   for key, value in field_filters.items()):
                yield entry

    def count(self, event: str, **field_filters: Any) -> int:
        return sum(1 for _ in self.query(event, **field_filters))

    def between(self, start_ns: int, end_ns: int) -> List[TraceEvent]:
        return [e for e in self.events
                if start_ns <= e.timestamp_ns < end_ns]

    def summarize(self) -> Dict[str, int]:
        """Event name → occurrence count."""
        return dict(Counter(entry.event for entry in self.events))

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0


def attach_tracer(machine: Any, capacity: int = 100_000) -> TraceLog:
    """Create and attach a tracer to a machine; returns it."""
    tracer = TraceLog(machine, capacity)
    machine.tracer = tracer
    return tracer


def detach_tracer(machine: Any) -> None:
    machine.tracer = None

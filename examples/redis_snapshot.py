#!/usr/bin/env python3
"""Redis BGSAVE on μFork: fork-based snapshots with CoW/CoA/CoPA.

Reproduces the paper's Redis use-case (U2 + U4): the parent keeps
serving writes while a forked child serializes a point-in-time
snapshot to the ram-disk.  Compares the three copy strategies.

Run:  python examples/redis_snapshot.py
"""

from repro.api import Session
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.mem.layout import KiB, MiB


def run_strategy(strategy: str) -> None:
    session = Session(os="ufork", strategy=strategy,
                      isolation="fault", seed=0).boot()
    db_bytes = 4 * MiB
    store = MiniRedis(
        session.spawn(redis_image(db_bytes), "redis"),
        nbuckets=256,
    )
    populate(store, db_bytes, value_size=100 * KiB)

    # the snapshot: fork + child serializes while the parent mutates
    metrics = store.bgsave("/dump.rdb")

    # the parent served this write *during* the conceptual save window;
    # the snapshot must not contain it
    store.set(b"written-after-fork", b"not in the snapshot")

    dump = MiniRedis.parse_dump(
        bytes(session.os.ramdisk.open("/dump.rdb").node.data)
    )
    assert b"written-after-fork" not in dump
    assert len(dump) == store.size() - 1

    print(f"{strategy:>9}: fork latency "
          f"{metrics.fork_latency_ns / 1000:9.1f} us | "
          f"child memory {metrics.child_extra_bytes / MiB:7.2f} MB | "
          f"save total {metrics.save_total_ns / 1e6:7.2f} ms | "
          f"{metrics.page_copies:5d} page copies")


def main() -> None:
    print("Redis BGSAVE (4 MB database, 100 KB values) under each "
          "μFork copy strategy:\n")
    for strategy in ("full", "coa", "copa"):
        run_strategy(strategy)
    print("\nCoPA shares everything the child only *reads*, copying "
          "just the pages it loads capabilities from — the paper's "
          "headline memory win (Fig 5).")


if __name__ == "__main__":
    main()

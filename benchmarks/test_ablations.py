"""Ablations of μFork's individual design choices.

Each of these isolates one mechanism the paper argues for and measures
what it buys:

* **sealed-gate vs trap syscalls** (§4.4 principle 1, R1);
* **eager vs lazy GOT/metadata copy** (§3.5 step 1);
* **isolation level sweep** NONE/FAULT/FULL (§3.6, R4);
* **VA compaction** (§6 future work, implemented in
  :mod:`repro.core.migrate`).
"""

from conftest import run_once

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.machine import Machine
from repro.mem.layout import KiB, MiB

NS_PER_US = 1_000


def _spawn(os_, image=None, name="app"):
    return GuestContext(os_, os_.spawn(image or hello_world_image(), name))


# ---------------------------------------------------------------------------
# Sealed-gate vs trap-based syscall entry
# ---------------------------------------------------------------------------

def run_syscall_entry_ablation():
    rows = []
    for name, trapless in (("sealed_gate", True), ("trap", False)):
        os_ = UForkOS(machine=Machine(), trapless_syscalls=trapless)
        ctx = _spawn(os_)
        samples = 200
        with os_.machine.clock.measure() as watch:
            for _ in range(samples):
                ctx.syscall("getpid")
        rows.append({
            "entry": name,
            "per_syscall_ns": watch.elapsed_ns / samples,
        })
    return rows


def test_ablation_syscall_entry(benchmark, record_figure):
    rows = run_once(benchmark, run_syscall_entry_ablation)
    record_figure("ablation_syscall_entry", rows,
                  "Ablation: sealed-gate vs trap syscall entry")
    by_entry = {row["entry"]: row for row in rows}
    # the exception-less path is the lightweightness win of §4.4
    assert by_entry["sealed_gate"]["per_syscall_ns"] < \
        0.5 * by_entry["trap"]["per_syscall_ns"]


# ---------------------------------------------------------------------------
# Eager vs lazy GOT/allocator-metadata copying
# ---------------------------------------------------------------------------

def run_eager_copy_ablation():
    rows = []
    for name, eager in (("eager", True), ("lazy", False)):
        os_ = UForkOS(machine=Machine(),
                      copy_strategy=CopyStrategy.COPA, eager_copy=eager)
        proc = os_.spawn(redis_image(1 * MiB), "redis")
        store = MiniRedis(GuestContext(os_, proc), nbuckets=128)
        populate(store, 512 * KiB, value_size=64 * KiB)

        with os_.machine.clock.measure() as fork_watch:
            child_ctx = store.ctx.fork()
        faults_before = os_.machine.counters.get("fault_cap_load")
        # the child's first real work: walk the store via its allocator
        # and GOT-resident state
        child_store = MiniRedis.attach(child_ctx)
        with os_.machine.clock.measure() as touch_watch:
            child_store.get(b"key:00000000")
            child_ctx.malloc(32)
        rows.append({
            "mode": name,
            "fork_latency_us": fork_watch.elapsed_ns / NS_PER_US,
            "first_touch_us": touch_watch.elapsed_ns / NS_PER_US,
            "cap_load_faults": os_.machine.counters.get("fault_cap_load")
            - faults_before,
        })
        child_ctx.exit(0)
        store.ctx.wait(child_ctx.pid)
    return rows


def test_ablation_eager_copy(benchmark, record_figure):
    rows = run_once(benchmark, run_eager_copy_ablation)
    record_figure("ablation_eager_copy", rows,
                  "Ablation: eager vs lazy GOT/metadata copy at fork")
    by_mode = {row["mode"]: row for row in rows}
    # eager copying front-loads cost into fork...
    assert by_mode["eager"]["fork_latency_us"] > \
        by_mode["lazy"]["fork_latency_us"]
    # ...and removes capability-load faults from the child's first work
    assert by_mode["lazy"]["cap_load_faults"] > \
        by_mode["eager"]["cap_load_faults"]
    assert by_mode["lazy"]["first_touch_us"] > \
        by_mode["eager"]["first_touch_us"]


# ---------------------------------------------------------------------------
# Isolation level sweep (R4)
# ---------------------------------------------------------------------------

def run_isolation_sweep():
    rows = []
    for name, config in (
        ("none", IsolationConfig.none()),
        ("fault", IsolationConfig.fault()),
        ("full", IsolationConfig.full()),
    ):
        os_ = UForkOS(machine=Machine(), isolation=config)
        proc = os_.spawn(redis_image(1 * MiB), "redis")
        store = MiniRedis(GuestContext(os_, proc), nbuckets=128)
        populate(store, 512 * KiB, value_size=64 * KiB)
        metrics = store.bgsave("/dump.rdb")
        rows.append({
            "isolation": name,
            "save_ms": metrics.save_total_ns / 1e6,
            "tocttou_us": os_.machine.clock.bucket_ns("tocttou") / 1e3,
        })
    return rows


def test_ablation_isolation_levels(benchmark, record_figure):
    rows = run_once(benchmark, run_isolation_sweep)
    record_figure("ablation_isolation", rows,
                  "Ablation: isolation level vs Redis save time")
    by_level = {row["isolation"]: row for row in rows}
    # each level adds cost on top of the previous
    assert by_level["none"]["save_ms"] <= by_level["fault"]["save_ms"]
    assert by_level["fault"]["save_ms"] < by_level["full"]["save_ms"]
    # only FULL pays TOCTTOU copies
    assert by_level["none"]["tocttou_us"] == 0
    assert by_level["fault"]["tocttou_us"] == 0
    assert by_level["full"]["tocttou_us"] > 0
    # and the total cost stays modest (paper: 2.6% on Redis)
    overhead = (by_level["full"]["save_ms"]
                / by_level["none"]["save_ms"]) - 1
    assert overhead < 0.15


# ---------------------------------------------------------------------------
# VA fragmentation + compaction (§6)
# ---------------------------------------------------------------------------

def run_fragmentation_study():
    os_ = UForkOS(machine=Machine())
    contexts = [_spawn(os_, name=f"p{i}") for i in range(16)]
    for ctx in contexts[::2]:
        ctx.exit(0)
    frag_before = os_.vspace.fragmentation()
    extents_before = len(os_.vspace.free_extents())
    with os_.machine.clock.measure() as watch:
        moves = os_.compact()
    return [{
        "fragmentation_before": frag_before,
        "free_extents_before": extents_before,
        "processes_moved": len(moves),
        "compaction_us": watch.elapsed_ns / NS_PER_US,
        "fragmentation_after": os_.vspace.fragmentation(),
        "free_extents_after": len(os_.vspace.free_extents()),
    }]


def test_ablation_fragmentation(benchmark, record_figure):
    rows = run_once(benchmark, run_fragmentation_study)
    record_figure("ablation_fragmentation", rows,
                  "Ablation: VA fragmentation and compaction (§6)")
    row = rows[0]
    assert row["fragmentation_before"] > 0
    assert row["fragmentation_after"] == 0.0
    assert row["processes_moved"] > 0
    assert row["free_extents_after"] == 1

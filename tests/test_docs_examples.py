"""The documentation is executable: run every ```python block.

Extracts fenced python code blocks from the user-facing docs and
executes them top to bottom in one namespace per document, so the
quickstart and the observability contract's worked examples can never
silently rot.
"""

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).parent.parent
DOCS = [
    REPO_ROOT / "README.md",
    REPO_ROOT / "docs" / "OBSERVABILITY.md",
    REPO_ROOT / "docs" / "CHAOS.md",
    REPO_ROOT / "docs" / "SMP.md",
    REPO_ROOT / "docs" / "CONFORMANCE.md",
    REPO_ROOT / "docs" / "API.md",
    REPO_ROOT / "docs" / "COSTMODEL.md",
    REPO_ROOT / "docs" / "CLUSTER.md",
    REPO_ROOT / "docs" / "SNAPSHOT.md",
    REPO_ROOT / "docs" / "SECURITY.md",
]

_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: pathlib.Path):
    return _FENCE_RE.findall(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_docs_have_python_examples(doc):
    assert python_blocks(doc), f"{doc.name} has no ```python examples"


@pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
def test_python_blocks_execute(doc, capsys):
    namespace = {"__name__": f"docs_example_{doc.stem}"}
    for index, block in enumerate(python_blocks(doc)):
        code = compile(block, f"{doc.name}[block {index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs

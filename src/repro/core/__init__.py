"""μFork: the paper's primary contribution.

``UForkOS`` is a single-address-space OS (Unikraft-like) extended with
μFork: POSIX fork emulated by copying the parent μprocess's memory to a
different location *within the single address space*, relocating
absolute memory references found via CHERI tags, and isolating
μprocesses with bounded capabilities.
"""

from repro.core.strategies import CopyStrategy
from repro.core.isolation import IsolationLevel, IsolationConfig
from repro.core.ufork import UForkOS

__all__ = [
    "CopyStrategy",
    "IsolationLevel",
    "IsolationConfig",
    "UForkOS",
]

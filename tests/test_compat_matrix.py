"""Tests for the Loupe-style app/syscall compatibility matrix."""

from repro.harness.compat import (
    WORKLOADS,
    compatibility_matrix,
    matrix_rows,
    syscalls_used,
)


class TestCompatibilityMatrix:
    def test_every_workload_runs_and_uses_syscalls(self):
        all_syscalls, per_app = compatibility_matrix()
        assert set(per_app) == set(WORKLOADS)
        for app, used in per_app.items():
            assert used, f"{app} exercised no syscalls"
        assert "fork" in all_syscalls

    def test_fork_used_by_every_fork_based_app(self):
        _all, per_app = compatibility_matrix()
        for app in ("redis", "faas", "nginx", "qmail", "unixbench",
                    "hello"):
            assert "fork" in per_app[app], f"{app} should fork"

    def test_distinct_profiles(self):
        """The apps exercise genuinely different slices of the API."""
        _all, per_app = compatibility_matrix()
        assert "listen" in per_app["nginx"]
        assert "listen" not in per_app["redis"]
        assert "mq_send" in per_app["qmail"]
        assert "mq_send" not in per_app["nginx"]
        assert "rename" in per_app["redis"]  # atomic RDB rename
        assert "pipe" in per_app["unixbench"]

    def test_rows_render_shape(self):
        rows = matrix_rows()
        assert rows == sorted(rows, key=lambda r: r["syscall"])
        for row in rows:
            assert set(row) == {"syscall", *WORKLOADS}
            assert any(row[app] == "x" for app in WORKLOADS)

    def test_counts_positive(self):
        used = syscalls_used(WORKLOADS["redis"])
        assert all(count > 0 for count in used.values())
        assert used["fork"] == 1  # one BGSAVE fork in the scenario

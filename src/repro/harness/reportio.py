"""Canonical JSON report IO, shared by every harness artifact.

Before this module, ``bench``, ``obs-report``, the chaos/SMP/conform
sidecar writers and the tests each hand-rolled the same
``json.dumps(..., indent=2, sort_keys=True) + "\\n"`` incantation; one
drifting copy (different key order, missing trailing newline) breaks
byte-identical golden comparisons.  All report loading and writing now
funnels through here.

The format contract: UTF-8, two-space indent, sorted keys, one
trailing newline — the exact bytes the golden files under
``tests/golden/`` are stored with.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict


def dumps_report(document: Dict[str, Any]) -> str:
    """The canonical serialized form (sorted keys, trailing newline)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_report(document: Dict[str, Any], path: str) -> None:
    """Write ``document`` to ``path`` in the canonical form, creating
    parent directories as needed."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_report(document))


def load_report(path: str) -> Dict[str, Any]:
    """Load a JSON report written by :func:`write_report` (or any of
    the harness producers)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)

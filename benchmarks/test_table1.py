"""Table 1: qualitative comparison of SASOS fork systems.

The table's claims are encoded as data; the benchmark renders the
table and asserts the headline: μFork is the only system satisfying
every objective (single address space + isolation + self-contained +
fast IPC + no segment-relative addressing + full fork semantics).
"""

from conftest import run_once

from repro.harness.table1 import TABLE1, satisfies_all_goals, table1_rows


def test_table1(benchmark, record_figure):
    rows = run_once(benchmark, table1_rows)
    record_figure(
        "table1", rows,
        "Table 1: comparison of SASOS fork systems",
        columns=["System", "SAS", "Isolation", "SC", "IPCs", "Seg",
                 "f+e only"],
    )
    winners = [row.system for row in TABLE1 if satisfies_all_goals(row)]
    assert winners == ["uFork"]

    # spot-check rows against the paper
    by_name = {row.system: row for row in TABLE1}
    assert by_name["Mungi"].segment_relative
    assert not by_name["Nephele"].sas
    assert by_name["OSv"].fork_exec_only
    assert not by_name["Junction"].isolation

"""Tests for the structured execution tracer."""

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.trace import TraceLog, attach_tracer, detach_tracer


def boot_traced(**kwargs):
    os_ = UForkOS(machine=Machine(), **kwargs)
    tracer = attach_tracer(os_.machine)
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "app"))
    return os_, tracer, ctx


class TestTraceLog:
    def test_records_with_sim_timestamps(self):
        machine = Machine()
        tracer = attach_tracer(machine)
        machine.clock.advance(500)
        machine.trace("custom", value=1)
        (event,) = tracer.events
        assert event.timestamp_ns == 500
        assert event.event == "custom"
        assert event.get("value") == 1
        assert event.get("missing", "dflt") == "dflt"

    def test_no_tracer_is_noop(self):
        machine = Machine()
        machine.trace("ignored", x=1)  # must not raise

    def test_detach(self):
        machine = Machine()
        tracer = attach_tracer(machine)
        detach_tracer(machine)
        machine.trace("after", x=1)
        assert tracer.events == []

    def test_capacity_bounded(self):
        machine = Machine()
        tracer = attach_tracer(machine, capacity=3)
        for index in range(5):
            machine.trace("e", i=index)
        assert len(tracer.events) == 3
        assert tracer.dropped == 2

    def test_query_filters(self):
        machine = Machine()
        tracer = attach_tracer(machine)
        machine.trace("a", k=1)
        machine.trace("a", k=2)
        machine.trace("b", k=1)
        assert tracer.count("a") == 2
        assert tracer.count("a", k=1) == 1
        assert tracer.count("b") == 1
        assert len(list(tracer.query())) == 3  # no filter: everything

    def test_between(self):
        machine = Machine()
        tracer = attach_tracer(machine)
        machine.trace("early")
        machine.clock.advance(1000)
        machine.trace("late")
        assert [e.event for e in tracer.between(0, 500)] == ["early"]

    def test_clear(self):
        machine = Machine()
        tracer = attach_tracer(machine)
        machine.trace("x")
        tracer.clear()
        assert tracer.events == []


class TestKernelTracing:
    def test_fork_traced(self):
        os_, tracer, ctx = boot_traced(copy_strategy=CopyStrategy.COPA)
        child = ctx.fork()
        (fork_event,) = tracer.query("fork")
        assert fork_event.get("parent") == ctx.pid
        assert fork_event.get("child") == child.pid
        assert fork_event.get("strategy") == "copa"

    def test_cow_breaks_traced_with_roles(self):
        os_, tracer, ctx = boot_traced(copy_strategy=CopyStrategy.COPA)
        buf = ctx.malloc(32)
        ctx.store(buf, b"x" * 32)
        ctx.set_reg("c9", buf)
        child = ctx.fork()
        child.store(child.reg("c9"), b"y")   # child write break
        ctx.store(buf, b"z")                 # parent write break
        assert tracer.count("cow_break", role="child") >= 1
        assert tracer.count("cow_break", role="parent") >= 1

    def test_syscalls_and_exit_traced(self):
        os_, tracer, ctx = boot_traced()
        child = ctx.fork()
        child.syscall("getpid")
        child.exit(4)
        assert tracer.count("syscall", name="getpid") == 1
        (exit_event,) = tracer.query("exit", pid=child.pid)
        assert exit_event.get("status") == 4

    def test_eager_copies_distinguished(self):
        os_, tracer, ctx = boot_traced(copy_strategy=CopyStrategy.COPA)
        ctx.fork()
        eager = tracer.count("fork_page_copy", eager=True)
        assert eager > 0  # GOT + allocator metadata

    def test_summarize_reads_like_a_profile(self):
        os_, tracer, ctx = boot_traced()
        child = ctx.fork()
        child.exit(0)
        ctx.wait(child.pid)
        summary = tracer.summarize()
        assert summary["fork"] == 1
        assert summary["exit"] == 1
        assert summary["syscall"] >= 3  # fork, exit, waitpid

    def test_migration_traced(self):
        os_, tracer, ctx = boot_traced()
        GuestContext(os_, os_.spawn(hello_world_image(), "filler"))
        os_.migrate(ctx.proc)
        (event,) = tracer.query("migrate", pid=ctx.pid)
        assert event.get("pages") > 0
        assert event.get("new_base") != event.get("old_base")

"""Figure 4: Redis fork latency (μs) vs database size.

Paper: μFork is consistently 5-10× faster than CheriBSD; CoPA reduces
fork latency by up to 89× vs a synchronous full copy and up to 1.18×
vs CoA; TOCTTOU protection costs ~2.6% at 100 MB.
"""

from conftest import run_once

from repro.harness.experiments import DEFAULT_DB_SIZES, fig4_redis_fork_latency


def test_fig4_redis_fork_latency(benchmark, record_figure):
    rows = run_once(benchmark, fig4_redis_fork_latency,
                    sizes=DEFAULT_DB_SIZES)
    record_figure(
        "fig4_redis_fork_latency", rows,
        "Figure 4: Redis fork latency (us)",
    )
    for row in rows:
        # μFork (any lazy strategy) beats the monolithic fork
        assert row["ufork_copa_us"] < row["cheribsd_us"]
        # strategy ordering: CoPA <= CoA << full synchronous copy
        assert row["ufork_copa_us"] <= row["ufork_coa_us"]
        assert row["ufork_full_us"] > 3 * row["ufork_coa_us"]
        # TOCTTOU protections do not meaningfully affect fork latency
        assert row["ufork_tocttou_us"] < row["ufork_copa_us"] * 1.1

    # the full-copy latency scales with the database, CoPA barely moves
    first, last = rows[0], rows[-1]
    full_growth = last["ufork_full_us"] / first["ufork_full_us"]
    copa_growth = last["ufork_copa_us"] / first["ufork_copa_us"]
    assert full_growth > 2 * copa_growth

    # CheriBSD's fork cost grows with mapped pages
    assert last["cheribsd_us"] > first["cheribsd_us"]

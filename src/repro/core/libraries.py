"""Shared libraries for μprocesses (paper §3.7).

"Shared libraries can be supported by mapping those libraries in each
μprocess when mapping a binary and creating capabilities with the
proper permissions."  A :class:`SharedLibrary` owns one set of physical
frames (text + read-only data); every μprocess that links it maps those
*same frames* — at its own virtual address inside its region — with a
read/execute capability derived for it.

Because library pages are immutable and shared by design, fork and
migration treat them like MAP_SHARED memory: the child maps the same
frames, and no relocation scan ever rewrites them.  PIC code references
library globals through the process's own GOT, which *is* relocated.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List

from repro.cheri.capability import Capability, Perm
from repro.hw.paging import PagePerm

_PAGE_MARK = struct.Struct("<QQ")
_LIB_MAGIC = 0x71AB


class SharedLibrary:
    """One library: a name and its (machine-wide) frames."""

    def __init__(self, machine: Any, name: str, size: int) -> None:
        page = machine.config.page_size
        self.machine = machine
        self.name = name
        self.pages = max(1, (size + page - 1) // page)
        self.frames: List[int] = []
        for index in range(self.pages):
            frame_no = machine.phys.alloc(zero=True, charge=False)
            frame = machine.phys.frame(frame_no)
            # deterministic, recognizable text content per page
            frame.write(0, _PAGE_MARK.pack(_LIB_MAGIC, index))
            frame.write(16, name.encode())
            self.frames.append(frame_no)

    @property
    def size(self) -> int:
        return self.pages * self.machine.config.page_size


class LibraryRegistry:
    """name → :class:`SharedLibrary`, one per OS instance."""

    DEFAULT_LIB_SIZE = 64 * 1024

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self._libs: Dict[str, SharedLibrary] = {}

    def get_or_create(self, name: str,
                      size: int = DEFAULT_LIB_SIZE) -> SharedLibrary:
        lib = self._libs.get(name)
        if lib is None:
            lib = SharedLibrary(self.machine, name, size)
            self._libs[name] = lib
        return lib

    def __contains__(self, name: str) -> bool:
        return name in self._libs


def map_library(os: Any, proc: Any, lib: SharedLibrary) -> Capability:
    """Map a library's frames into a μprocess's mmap window.

    Returns a read/execute capability bounded to the mapping.  The
    mapped vpns join the process's shared set, so fork/migrate share
    them rather than copy-and-relocate.
    """
    page = os.machine.config.page_size
    base, _pages = os._mmap_window_alloc(proc, lib.size)
    vpns = []
    for index, frame in enumerate(lib.frames):
        vpn = base // page + index
        os.space.map_page(vpn, frame, PagePerm.rx(), incref=True)
        vpns.append(vpn)
    if not hasattr(proc, "shm_vpns"):
        proc.shm_vpns = set()
        proc.shm_bindings = []
    proc.shm_vpns.update(vpns)

    cap = (
        os.kernel_root
        .set_bounds(base, lib.size)
        .with_cursor(base)
        .and_perms(Perm.LOAD | Perm.EXECUTE | Perm.GLOBAL)
    )
    if not hasattr(proc, "lib_caps"):
        proc.lib_caps = {}
    proc.lib_caps[lib.name] = cap
    os.machine.counters.add("library_mapped")
    return cap

"""Reproduction of *uFork: Supporting POSIX fork Within a
Single-Address-Space OS* (SOSP 2025).

Public API
==========

The system under study:

* :class:`UForkOS` -- the single-address-space OS with uFork
* :class:`CopyStrategy` -- FULL_COPY / COA / COPA (paper 3.8)
* :class:`IsolationLevel` / :class:`IsolationConfig` -- parameterized
  isolation (paper 3.6)

Baselines (paper 5):

* :class:`MonolithicOS` -- CheriBSD-like multi-address-space fork
* :class:`VMCloneOS` -- Nephele-like hypervisor VM-clone fork
* :class:`IsoUnikOS` -- Iso-Unik-like page-tables-in-a-unikernel fork

Infrastructure:

* :class:`Machine` -- the simulated Morello-like machine (clock, tagged
  memory, cost model)
* :class:`GuestContext` -- the OS-agnostic user-space programming API
* :class:`MachineConfig` / :class:`CostModel` -- configuration surfaces

Workloads live in :mod:`repro.apps`; per-figure experiments in
:mod:`repro.harness`; the observability layer (``machine.obs``:
metrics, span profiling, JSON export -- docs/OBSERVABILITY.md) in
:mod:`repro.obs`.
"""

from repro.apps.guest import GuestContext
from repro.baselines import IsoUnikOS, MonolithicOS, VMCloneOS
from repro.core import CopyStrategy, IsolationConfig, IsolationLevel, UForkOS
from repro.machine import Machine
from repro.params import CostModel, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "CopyStrategy",
    "CostModel",
    "GuestContext",
    "IsolationConfig",
    "IsolationLevel",
    "Machine",
    "MachineConfig",
    "IsoUnikOS",
    "MonolithicOS",
    "UForkOS",
    "VMCloneOS",
    "__version__",
]

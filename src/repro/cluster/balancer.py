"""Deterministic consistent-hash load balancing and request batching.

The balancer is the cluster's front door: every request key maps to a
shard through a consistent-hash ring (:class:`ConsistentHashRing`), and
requests bound for the same shard are coalesced into batches
(:class:`Batcher`) so the per-dispatch network costs amortize
(docs/COSTMODEL.md, "The cluster cost model").

Hash positions come from BLAKE2b over the key bytes — never Python's
builtin ``hash``, whose per-process randomization would break the
byte-identical-report guarantee.  Same seed + same shard count ⇒ the
identical ring and the identical key→shard map, across processes and
platforms (tests/test_cluster_determinism.py); growing the ring by one
shard remaps only ~1/(N+1) of the key universe, the property that makes
resharding cheap.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, Iterator, List, Optional, Tuple


def _position(data: bytes, seed: int) -> int:
    """A stable 64-bit ring position for ``data``."""
    digest = blake2b(data, digest_size=8,
                     salt=seed.to_bytes(8, "little", signed=False))
    return int.from_bytes(digest.digest(), "big")


class ConsistentHashRing:
    """A seeded consistent-hash ring over ``shards`` shards.

    Each shard contributes ``vnodes`` virtual nodes so load spreads
    evenly; lookups walk clockwise from the key's position to the next
    virtual node.
    """

    def __init__(self, shards: int, vnodes: int = 64, seed: int = 0) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.shards = shards
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                token = b"shard-%d-vnode-%d" % (shard, vnode)
                points.append((_position(token, seed), shard))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    def shard_of(self, key: int) -> int:
        """The shard owning ``key`` (clockwise successor on the ring)."""
        position = _position(key.to_bytes(8, "little", signed=False),
                             self.seed)
        index = bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    def shard_map(self, keys: int) -> List[int]:
        """Precomputed owner for every key in ``range(keys)`` — the hot
        path does one list index per request instead of one hash."""
        return [self.shard_of(key) for key in range(keys)]


# ---------------------------------------------------------------------------
# Request batching
# ---------------------------------------------------------------------------

@dataclass
class Batch:
    """One open batch bound for one shard."""

    shard: int
    open_ns: int
    #: (arrival_ns, klass) per member, in arrival order
    members: List[Tuple[int, int]] = field(default_factory=list)


class Batcher:
    """Coalesce same-shard requests under a window/size policy.

    A batch dispatches when it reaches ``max_batch`` members (closing
    at the triggering arrival) or when its flush timer fires — modeled
    as closing at ``open_ns + window_ns`` the moment a later arrival
    observes the window has passed.  ``add`` returns the batches that
    closed, in dispatch order; ``flush`` drains what is still open.
    """

    def __init__(self, shards: int, window_ns: int, max_batch: int) -> None:
        self.window_ns = window_ns
        self.max_batch = max_batch
        self._open: List[Optional[Batch]] = [None] * shards
        self.batches = 0
        self.max_size = 0
        self.held_requests = 0

    def add(self, shard: int, arrival_ns: int,
            klass: int) -> Iterator[Tuple[Batch, int]]:
        """Route one request; yields ``(batch, close_ns)`` for every
        batch this arrival caused to dispatch."""
        batch = self._open[shard]
        if batch is not None and arrival_ns - batch.open_ns > self.window_ns:
            self._open[shard] = None
            yield self._account(batch), batch.open_ns + self.window_ns
            batch = None
        if batch is None:
            batch = Batch(shard=shard, open_ns=arrival_ns)
            self._open[shard] = batch
        batch.members.append((arrival_ns, klass))
        if len(batch.members) >= self.max_batch:
            self._open[shard] = None
            yield self._account(batch), arrival_ns

    def flush(self) -> Iterator[Tuple[Batch, int]]:
        """Dispatch every still-open batch at its timer deadline."""
        for shard, batch in enumerate(self._open):
            if batch is not None:
                self._open[shard] = None
                yield self._account(batch), batch.open_ns + self.window_ns

    def _account(self, batch: Batch) -> Batch:
        self.batches += 1
        size = len(batch.members)
        self.held_requests += size
        if size > self.max_size:
            self.max_size = size
        return batch

    def mean_size_ppm(self) -> int:
        """Mean batch size in parts-per-million (integer, so reports
        stay float-free)."""
        if not self.batches:
            return 0
        return (self.held_requests * 1_000_000) // self.batches


def remap_fraction_ppm(before: List[int], after: List[int]) -> int:
    """Fraction (ppm) of keys whose owner changed between two shard
    maps — the consistent-hashing stability metric the tests assert."""
    if len(before) != len(after) or not before:
        raise ValueError("shard maps must be same-length and non-empty")
    moved = sum(1 for a, b in zip(before, after) if a != b)
    return (moved * 1_000_000) // len(before)

"""Unit tests for the GOT model, process/task bookkeeping, and the
error hierarchy."""

import pytest

from repro.cheri.capability import Capability, Perm
from repro.core.got import got_confined, init_got, read_got
from repro.errors import (
    BadAddress,
    BoundsFault,
    CapabilityFault,
    KernelError,
    MonotonicityFault,
    PageFaultError,
    ProtectionError,
    SimError,
    TagFault,
    UnmappedAddressError,
)
from repro.hw.paging import AddressSpace, PagePerm
from repro.kernel.task import PidAllocator, Process, ProcessTable, Task
from repro.errors import NoSuchProcess


class TestGot:
    def make_space(self, machine, pages=8, base_vpn=64):
        space = AddressSpace(machine, "got-test")
        for index in range(pages):
            space.map_page(base_vpn + index, machine.phys.alloc(),
                           PagePerm.rwc())
        return space, base_vpn * 4096

    def region_cap(self, base, size):
        return Capability(base=base, length=size, cursor=base,
                          perms=Perm.all_perms())

    def test_entries_alternate_data_and_rodata(self, machine):
        space, base = self.make_space(machine)
        region = self.region_cap(base, 8 * 4096)
        init_got(space, base, 16, region,
                 data_base=base + 4096, data_size=4096,
                 rodata_base=base + 2 * 4096, rodata_size=4096)
        caps = read_got(space, base, 16, privileged=True)
        assert all(cap.valid for cap in caps)
        data_lo, data_hi = base + 4096, base + 2 * 4096
        assert all(data_lo <= cap.base < data_hi for cap in caps[::2])
        assert all(cap.base >= data_hi for cap in caps[1::2])
        # writable-data entries carry store permission, rodata do not
        assert caps[0].has_perm(Perm.STORE)
        assert not caps[1].has_perm(Perm.STORE)

    def test_got_confined_detects_escape(self, machine):
        space, base = self.make_space(machine)
        region = self.region_cap(base, 8 * 4096)
        init_got(space, base, 8, region,
                 data_base=base + 4096, data_size=4096,
                 rodata_base=base + 2 * 4096, rodata_size=4096)
        assert got_confined(space, base, 8, base, base + 8 * 4096)
        # confine window that excludes the targets
        assert not got_confined(space, base, 8, base, base + 4096)


class TestProcessTable:
    def test_add_get_remove(self):
        table = ProcessTable()
        proc = Process(5, "p")
        table.add(proc)
        assert table.get(5) is proc
        assert 5 in table
        table.remove(5)
        with pytest.raises(NoSuchProcess):
            table.get(5)

    def test_alive_filtering(self):
        table = ProcessTable()
        alive = Process(1, "a")
        dead = Process(2, "d")
        dead.exit_status = 0
        table.add(alive)
        table.add(dead)
        assert table.alive() == [alive]
        assert len(table.all()) == 2

    def test_pid_allocation_monotonic(self):
        pids = PidAllocator()
        assert [pids.allocate() for _ in range(3)] == [1, 2, 3]

    def test_parent_child_links(self):
        parent = Process(1, "p")
        child = Process(2, "c", parent=parent)
        assert child.parent is parent
        assert parent.children == [child]

    def test_tasks_unique_tids(self):
        proc = Process(1, "p")
        tids = {proc.add_task().tid for _ in range(5)}
        assert len(tids) == 5
        assert proc.main_task() is proc.tasks[0]

    def test_main_task_without_tasks(self):
        with pytest.raises(NoSuchProcess):
            Process(1, "p").main_task()

    def test_region_size(self):
        proc = Process(1, "p")
        proc.region_base, proc.region_top = 0x1000, 0x5000
        assert proc.region_size == 0x4000


class TestErrorHierarchy:
    def test_capability_faults_are_sim_errors(self):
        for exc in (TagFault, BoundsFault, MonotonicityFault):
            assert issubclass(exc, CapabilityFault)
            assert issubclass(exc, SimError)

    def test_page_faults_carry_context(self):
        err = UnmappedAddressError(0x1234, "write")
        assert err.vaddr == 0x1234
        assert err.access == "write"
        assert isinstance(err, PageFaultError)
        assert "0x1234" in str(err)

    def test_kernel_errors_have_errno_names(self):
        assert BadAddress.errno_name == "EFAULT"
        assert issubclass(BadAddress, KernelError)
        assert ProtectionError(0, "read").reason == "protection"

    def test_catching_sim_error_catches_everything(self):
        for exc_type in (TagFault, UnmappedAddressError, BadAddress):
            try:
                if exc_type is UnmappedAddressError:
                    raise exc_type(0, "read")
                raise exc_type("boom")
            except SimError:
                pass

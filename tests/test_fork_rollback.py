"""Transactional-fork tier: for every copy strategy, kill fork at every
phase boundary and prove the kernel is exactly as it was — no leaked
frames, stale PTEs, dangling PIDs or half-populated fd tables."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.chaos import ChaosEngine, FaultMix, InjectedForkFailure
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.core.strategies import ShareNote
from repro.machine import Machine

ABORT_POINTS = [
    "core.ufork.abort.reserve",
    "core.ufork.abort.copy_pages",
    "core.ufork.abort.registers",
    "core.ufork.abort.allocator",
]
STRATEGIES = [CopyStrategy.FULL_COPY, CopyStrategy.COA, CopyStrategy.COPA]


def boot(strategy, spec="default=0.0", seed=7):
    machine = Machine(seed=seed)
    machine.obs.enable()
    engine = ChaosEngine(seed=seed, mix=FaultMix.parse(spec))
    engine.attach(machine)
    with engine.paused():
        os_ = UForkOS(machine=machine, copy_strategy=strategy,
                      isolation=IsolationConfig.fault())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "parent"))
        # give the image some state worth rolling back: live heap data,
        # a stored capability, and an open file
        cap = ctx.malloc(256)
        ctx.store(cap, b"precious parent state")
        ctx.store_cap(cap, cap, offset=32)
        from repro.kernel.vfs import O_CREAT, O_RDWR
        fd = ctx.syscall("open", "/keep", O_CREAT | O_RDWR)
    return os_, ctx, engine, cap, fd


def kernel_snapshot(os_, ctx):
    """Everything a leaky fork could perturb, deep-copied for compare."""
    machine = os_.machine
    ptes = {
        vpn: (pte.frame, pte.perms, type(pte.note).__name__,
              machine.phys.refcount(pte.frame))
        for vpn, pte in os_.space.page_table.entries()
    }
    descs = {fd: desc.refcount
             for fd, desc in ctx.proc.fdtable._slots.items()}
    return {
        "frames": machine.phys.allocated_frames,
        "ptes": ptes,
        "reserved": sorted(os_.vspace.reserved_areas()),
        "alive_pids": sorted(p.pid for p in os_.procs.alive()),
        "children": [c.pid for c in ctx.proc.children],
        "fd_refcounts": descs,
    }


@pytest.mark.parametrize("strategy", STRATEGIES,
                         ids=lambda s: s.value)
@pytest.mark.parametrize("point", ABORT_POINTS,
                         ids=lambda p: p.rsplit(".", 1)[-1])
def test_abort_at_every_boundary_leaks_nothing(strategy, point):
    os_, ctx, engine, cap, fd = boot(strategy, spec=f"{point}=1.0")
    before = kernel_snapshot(os_, ctx)

    with pytest.raises(InjectedForkFailure):
        os_.fork(ctx.proc)

    assert kernel_snapshot(os_, ctx) == before
    assert os_.machine.counters.snapshot().get("fork_rollbacks") == 1
    counters = os_.machine.obs.registry.counters()
    assert counters["core.ufork.fork_rollbacks"] == 1
    assert engine.recovered.get(point) == 1
    # no page in the whole table may still carry a fork-sharing note
    # pointing at a child that never came to be
    for _vpn, pte in os_.space.page_table.entries():
        assert not isinstance(pte.note, ShareNote)

    # parent is fully functional: its state is intact and, with the
    # chaos cleared, the very same fork now succeeds
    assert ctx.load(cap, 21) == b"precious parent state"
    engine.disable()
    child = ctx.fork()
    child_cap = cap.rebased(child.proc.region_base - ctx.proc.region_base)
    assert child.load(child_cap, 21) == b"precious parent state"
    assert child.load_cap(child_cap, offset=32).base == child_cap.base
    child.exit(0)
    ctx.wait(child.pid)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.value)
def test_alloc_failure_mid_copy_rolls_back(strategy):
    """An injected frame-exhaustion *inside* the copy loop (not at a
    phase boundary) must also roll back completely, and surfaces as the
    retriable InjectedForkFailure."""
    os_, ctx, engine, cap, fd = boot(strategy)
    before = kernel_snapshot(os_, ctx)
    # arm alloc failure only now, so boot/spawn allocations stay clean
    engine.mix = FaultMix.parse("hw.phys.alloc_fail=1.0")

    with pytest.raises(InjectedForkFailure) as excinfo:
        os_.fork(ctx.proc)
    assert excinfo.value.__cause__ is not None      # wraps the alloc fault

    engine.mix = FaultMix.parse("default=0.0")
    assert kernel_snapshot(os_, ctx) == before


def test_fork_failure_is_retried_transparently():
    """End to end: abort faults at a survivable rate are absorbed by
    rollback + the syscall retry loop — the guest just sees fork work."""
    os_, ctx, engine, cap, fd = boot(
        CopyStrategy.COPA, spec="core.ufork.abort.reserve=0.25")
    made = 0
    for _ in range(12):
        child = ctx.fork()          # retry absorbs this seed's injections
        made += 1
        with engine.paused():
            child.exit(0)
            ctx.wait(child.pid)
    assert made == 12
    assert engine.fired.get("core.ufork.abort.reserve", 0) > 0
    counters = os_.machine.obs.registry.counters()
    assert counters["core.ufork.fork_rollbacks"] > 0
    assert counters["chaos.retry.successes"] > 0
    assert counters["core.ufork.forks"] == made


def test_disabled_chaos_forks_bit_identically():
    """Acceptance: with injection disabled the instrumented fork path
    must be byte-identical to a run on a chaos-free machine."""
    def run(attach_engine):
        machine = Machine(seed=7)
        machine.obs.enable()
        if attach_engine:
            ChaosEngine(seed=7, mix=FaultMix.parse("default=0.5"),
                        enabled=False).attach(machine)
        os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA,
                      isolation=IsolationConfig.fault())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "app"))
        for _ in range(3):
            child = ctx.fork()
            child.exit(0)
            ctx.wait(child.pid)
        from repro.obs import to_json
        return to_json(machine.obs.export())

    assert run(attach_engine=False) == run(attach_engine=True)

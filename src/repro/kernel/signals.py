"""Per-process POSIX signals.

Paper §4.5 lists "per process signals" among the kernel state a SASOS
must grow to support μprocesses.  The model implements the subset the
fork patterns need:

* ``kill`` queues a signal on the target process;
* ``SIGKILL`` cannot be caught and terminates immediately;
* ``SIGCHLD`` is queued to the parent when a child exits;
* handlers registered with ``signal`` are **inherited across fork**
  (POSIX), while *pending* signals are not;
* delivery happens at kernel-boundary crossings (syscall entry), like a
  real kernel delivering on return-to-user.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import InvalidArgument

SIGKILL = 9
SIGUSR1 = 10
SIGUSR2 = 12
SIGTERM = 15
SIGCHLD = 17

_CATCHABLE = {SIGUSR1, SIGUSR2, SIGTERM, SIGCHLD}
ALL_SIGNALS = _CATCHABLE | {SIGKILL}

#: handler(proc, signum) — runs in "user context" at delivery
Handler = Callable[[Any, int], None]

SIG_DFL = "default"
SIG_IGN = "ignore"


class SignalState:
    """Per-process signal bookkeeping (lives on the Process object)."""

    def __init__(self) -> None:
        self.handlers: Dict[int, Any] = {}
        self.pending: List[int] = []

    def fork_copy(self) -> "SignalState":
        """POSIX: the child inherits dispositions, not pending signals."""
        child = SignalState()
        child.handlers = dict(self.handlers)
        return child


def signal_state(proc: Any) -> SignalState:
    state = getattr(proc, "signal_state", None)
    if state is None:
        state = SignalState()
        proc.signal_state = state
    return state


def register(proc: Any, signum: int, handler: Any) -> None:
    """signal(2): install a handler, SIG_IGN, or SIG_DFL."""
    if signum not in ALL_SIGNALS:
        raise InvalidArgument(f"bad signal {signum}")
    if signum == SIGKILL:
        raise InvalidArgument("SIGKILL cannot be caught or ignored")
    signal_state(proc).handlers[signum] = handler


def send(os: Any, target: Any, signum: int) -> None:
    """kill(2) body: queue (or act on) a signal."""
    if signum not in ALL_SIGNALS:
        raise InvalidArgument(f"bad signal {signum}")
    if not target.alive:
        return
    if signum == SIGKILL:
        os._exit_process(target, 128 + SIGKILL)
        return
    signal_state(target).pending.append(signum)


#: signals whose POSIX default disposition is termination (SIGKILL is
#: handled before queueing; SIGCHLD's default is to be discarded)
_DEFAULT_TERMINATES = {SIGTERM, SIGUSR1, SIGUSR2}


def deliver_pending(os: Any, proc: Any) -> List[int]:
    """Deliver queued signals; returns the signums acted upon.

    Default dispositions follow POSIX: SIGTERM, SIGUSR1 and SIGUSR2
    terminate the process (status 128+sig); SIGCHLD is discarded.
    """
    state = signal_state(proc)
    delivered: List[int] = []
    while state.pending and proc.alive:
        signum = state.pending.pop(0)
        delivered.append(signum)
        handler = state.handlers.get(signum, SIG_DFL)
        if handler == SIG_IGN:
            continue
        if handler == SIG_DFL:
            if signum in _DEFAULT_TERMINATES:
                os._exit_process(proc, 128 + signum)
            continue
        # user handler: charge a user/kernel transition and run it
        os.machine.charge(os.machine.costs.context_switch_sas_ns,
                          "signal_delivery")
        handler(proc, signum)
    return delivered

"""The real-POSIX oracle: execute a conformance scenario on the host.

Run as a *standalone script* (``python .../hostrun.py``) in a sandboxed
subprocess — deliberately stdlib-only, with no ``repro`` import, so the
oracle shares no code with the kernel under test beyond the scenario
JSON format.  Reads ``{"scenario": ..., "timeout": ...}`` on stdin,
executes the scenario with genuine ``os.fork`` / ``os.pipe`` /
``os.dup2`` / ``os.waitpid`` / ``signal`` / ``mmap`` calls, and prints
the logical trace JSON on stdout.

Execution is *serialized*: every fork hands the CPU to the child until
the child's whole subtree has exited (the parent blocks on a sync pipe
whose write end only closes then).  This matches the simulator's
default newest-first schedule, making traces of race-free scenarios
directly comparable, at the cost of forbidding scenarios where a child
depends on parent actions *after* the fork (docs/CONFORMANCE.md lists
the full caveat set).

Observable outputs only: labels instead of pids, fd tags instead of fd
numbers, errno names instead of numbers.  Events stream to a collector
pipe one JSON line at a time, so a process killed mid-body still
contributes everything it observed before dying — exactly like the
simulator's incremental trace.
"""

import errno
import json
import mmap
import os
import signal
import struct
import sys

SIGS = {
    "TERM": signal.SIGTERM,
    "USR1": signal.SIGUSR1,
    "USR2": signal.SIGUSR2,
    "CHLD": signal.SIGCHLD,
    "KILL": signal.SIGKILL,
}
SIG_NAMES = {num: name for name, num in SIGS.items()}

READ_END = ".r"
WRITE_END = ".w"

#: per-process signal-delivery counters ("count" disposition); fork
#: copies process memory, so children inherit the values at fork — the
#: same semantics the simulator models
COUNTS = {}


def errno_name(err: int) -> str:
    return errno.errorcode.get(err, f"E{err}")


def decode_status(raw: int):
    if os.WIFSIGNALED(raw):
        num = os.WTERMSIG(raw)
        return ["signal", SIG_NAMES.get(num, str(num))]
    return ["exit", os.WEXITSTATUS(raw)]


class Runner:
    """Scenario interpreter state for one (forked) process."""

    def __init__(self, bodies, shm_vars, shm, event_fd):
        self.bodies = bodies
        self.shm_vars = shm_vars
        self.shm = shm
        self.event_fd = event_fd
        self.label = "main"
        self.parent_pid = None
        self.fdmap = {}
        self.heap = {}
        self.children = {}
        self.fork_counts = {}

    # -- trace plumbing -------------------------------------------------

    def emit(self, *event):
        line = json.dumps({"l": self.label, "e": list(event)}) + "\n"
        os.write(self.event_fd, line.encode())

    def err(self, op, exc):
        self.emit("err", op, errno_name(exc.errno))

    def fd(self, tag, op):
        fd = self.fdmap[tag]
        if fd < 0:
            self.emit("err", op, "EBADF")
            return None
        return fd

    # -- the body loop --------------------------------------------------

    def run_body(self, body):
        for op in self.bodies[body]:
            self.op(op)
        os._exit(0)

    def op(self, op):
        getattr(self, "op_" + op[0])(*op[1:])

    # -- op handlers ----------------------------------------------------

    def op_pipe(self, name):
        read_fd, write_fd = os.pipe()
        self.fdmap[name + READ_END] = read_fd
        self.fdmap[name + WRITE_END] = write_fd

    def op_write(self, tag, text):
        fd = self.fd(tag, "write")
        if fd is None:
            return
        data = text.encode("latin-1")
        sent = 0
        try:
            while sent < len(data):
                sent += os.write(fd, data[sent:])
        except OSError as exc:
            self.err("write", exc)
            return
        self.emit("write", tag, len(data))

    def op_read(self, tag, n):
        fd = self.fd(tag, "read")
        if fd is None:
            return
        buf = bytearray()
        try:
            while len(buf) < n:
                chunk = os.read(fd, n - len(buf))
                if not chunk:
                    break  # EOF
                buf += chunk
        except OSError as exc:
            self.err("read", exc)
            return
        self.emit("read", tag, bytes(buf).decode("latin-1"))

    def op_close(self, tag):
        fd = self.fd(tag, "close")
        if fd is None:
            return
        try:
            os.close(fd)
        except OSError as exc:
            self.err("close", exc)
            return
        self.fdmap[tag] = -1

    def op_dup2(self, src, dst):
        src_fd = self.fd(src, "dup2")
        if src_fd is None:
            return
        dst_fd = self.fdmap.get(dst, -1)
        try:
            if dst_fd >= 0:
                os.dup2(src_fd, dst_fd)
                self.fdmap[dst] = dst_fd
            else:
                # fresh logical slot: dup2 into a free descriptor
                self.fdmap[dst] = os.dup(src_fd)
        except OSError as exc:
            self.err("dup2", exc)

    def op_fork(self, body):
        count = self.fork_counts.get(body, 0) + 1
        self.fork_counts[body] = count
        ref = f"{body}{count}"
        my_pid = os.getpid()
        sync_r, sync_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(sync_r)
            # keep sync_w open (and inherited by grandchildren): the
            # parent resumes only when this whole subtree has exited
            self.label = f"{self.label}/{ref}"
            self.parent_pid = my_pid
            self.children = {}
            self.fork_counts = {}
            self.run_body(body)  # never returns
        os.close(sync_w)
        while os.read(sync_r, 1):
            pass  # drain until subtree-exit EOF (never written to)
        os.close(sync_r)
        self.children[ref] = pid

    def op_exit(self, status):
        os._exit(status)

    def op_wait(self, ref):
        pid = -1 if ref is None else self.children[ref]
        try:
            _pid, raw = os.waitpid(pid, 0)
        except ChildProcessError:
            self.emit("err", "wait", "ECHILD")
            return
        pair = decode_status(raw)
        self.emit("wait", ref or "any", pair[0], pair[1])

    def op_heap_set(self, var, value):
        self.heap[var] = value

    def op_heap_get(self, var):
        self.emit("heap", var, self.heap[var])

    def _shm_off(self, var):
        return self.shm_vars.index(var) * 8

    def op_shm_set(self, var, value):
        off = self._shm_off(var)
        self.shm[off:off + 8] = struct.pack("<Q", value)

    def op_shm_get(self, var):
        off = self._shm_off(var)
        value = struct.unpack("<Q", self.shm[off:off + 8])[0]
        self.emit("shm", var, value)

    def op_signal(self, sig, action):
        num = SIGS[sig]
        if action == "ignore":
            signal.signal(num, signal.SIG_IGN)
        elif action == "default":
            signal.signal(num, signal.SIG_DFL)
        else:  # count
            def handler(signum, frame, _name=sig):
                COUNTS[_name] = COUNTS.get(_name, 0) + 1
            signal.signal(num, handler)

    def op_kill(self, target, sig):
        if target == "self":
            pid = os.getpid()
        elif target == "parent":
            pid = self.parent_pid
        else:
            pid = self.children[target]
        try:
            os.kill(pid, SIGS[sig])
        except ProcessLookupError:
            self.emit("err", "kill", "ESRCH")

    def op_sig_count(self, sig):
        self.emit("sig_count", sig, COUNTS.get(sig, 0))


def main():
    doc = json.load(sys.stdin)
    scenario = doc["scenario"]
    bodies = {body: [tuple(op) for op in ops]
              for body, ops in scenario["bodies"].items()}
    timeout = int(doc.get("timeout", 20))
    shm_vars = sorted({op[1] for ops in bodies.values() for op in ops
                       if op[0] in ("shm_set", "shm_get")})

    # SIGPIPE surfaces as EPIPE (the simulator has no SIGPIPE); the
    # disposition is inherited by every scenario process
    signal.signal(signal.SIGPIPE, signal.SIG_IGN)
    # in-process backstop; the launching side's killpg is the real one
    signal.alarm(timeout + 5)

    shm = mmap.mmap(-1, 4096) if shm_vars else None
    event_r, event_w = os.pipe()
    root = os.fork()
    if root == 0:
        os.close(event_r)
        os.close(1)  # scenario processes never touch our stdout
        runner = Runner(bodies, shm_vars, shm, event_w)
        runner.run_body("main")  # never returns
    os.close(event_w)

    chunks = []
    while True:
        chunk = os.read(event_r, 65536)
        if not chunk:
            break
        chunks.append(chunk)
    os.close(event_r)
    _pid, raw = os.waitpid(root, 0)

    procs = {"main": []}
    for line in b"".join(chunks).splitlines():
        record = json.loads(line)
        procs.setdefault(record["l"], []).append(record["e"])
    trace = {"procs": procs, "status": {"main": decode_status(raw)}}
    json.dump(trace, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The ``repro.conform/v1`` report: schema, determinism, golden pin.

The golden report is generated host-free (``host=False``) so its bytes
are machine-independent: every verdict in it comes from cross-strategy
agreement on the simulated kernel.  To regenerate after an intentional
change::

    PYTHONPATH=src python - <<'PY'
    import json
    from tests.test_conform_report import GOLDEN_KWARGS
    from repro.conform.runner import run_conform
    report = run_conform(**GOLDEN_KWARGS)
    with open("tests/golden/conform_report.json", "w") as fh:
        fh.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
    PY
"""

from __future__ import annotations

import json
import pathlib

from repro.conform import SCHEMA
from repro.conform.runner import format_summary, run_conform

GOLDEN = pathlib.Path(__file__).parent / "golden" / "conform_report.json"

GOLDEN_KWARGS = dict(
    seed=7, cpus=(1, 2), strategies=("monolithic", "full", "coa", "copa"),
    depth_bound=2, budget=40, host=False,
    scenario_names=("pipe-hello", "dup2-closes-target", "heap-deep-chain",
                    "shm-vs-heap", "signal-two-kinds", "contended-pipe"))


def test_report_matches_golden_byte_for_byte():
    report = run_conform(**GOLDEN_KWARGS)
    rendered = json.dumps(report, indent=2, sort_keys=True) + "\n"
    assert rendered == GOLDEN.read_text(encoding="utf-8"), (
        "conform report drifted from tests/golden/conform_report.json — "
        "if the change is intentional, regenerate it (see module "
        "docstring)")


def test_same_seed_same_bytes():
    first = run_conform(**GOLDEN_KWARGS)
    second = run_conform(**GOLDEN_KWARGS)
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)


def test_report_shape_and_verdict():
    report = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert report["schema"] == SCHEMA
    assert report["verdict"] == "conformant"
    assert report["host_oracle"] is False
    assert len(report["scenarios"]) == 6
    for entry in report["scenarios"].values():
        assert entry["reference_cell"] == "monolithic-c1"
        verdicts = {cell["verdict"] for cell in entry["matrix"].values()}
        assert verdicts == {"reference", "ok"}
        assert entry["explorer"]["violations"] == []
    summary = format_summary(report)
    assert "verdict: conformant" in summary


def test_sidecars_written(tmp_path):
    run_conform(seed=3, cpus=(1,), strategies=("copa",), depth_bound=1,
                budget=5, host=False, scenario_names=("pipe-hello",),
                obs_dir=str(tmp_path))
    report_path = tmp_path / "conform-3.conform.json"
    obs_path = tmp_path / "conform-3.obs.json"
    assert report_path.exists() and obs_path.exists()
    doc = json.loads(report_path.read_text(encoding="utf-8"))
    assert doc["schema"] == SCHEMA
    obs = json.loads(obs_path.read_text(encoding="utf-8"))
    assert obs["schema"].startswith("repro.obs/")

"""Property test: sleep-set pruning is *sound* — it only skips
schedules whose end state is reachable some other way.

For any small scenario, seed, and strategy, draining the frontier with
pruning on and with pruning off must reach exactly the same set of
end-state traces (compared by digest).  Pruning may only shrink the
number of schedules executed, never the set of behaviours observed.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conform.explorer import explore
from repro.conform.scenarios import by_name

#: scenarios small enough to exhaust at depth 2 in well under a second
SMALL_SCENARIOS = (
    "pipe-hello",
    "pipe-two-children",
    "dup2-alias",
    "wait-exit-status",
    "shm-survives-fork",
)

#: generous enough that both runs always drain their frontier
DRAIN_BUDGET = 5000


@settings(max_examples=8, deadline=None)
@given(name=st.sampled_from(SMALL_SCENARIOS),
       seed=st.integers(min_value=0, max_value=2 ** 16),
       strategy=st.sampled_from(("coa", "copa")))
def test_pruning_preserves_the_reachable_trace_set(name, seed, strategy):
    pruned = explore(by_name(name), strategy=strategy, num_cpus=2,
                     seed=seed, depth_bound=2, budget=DRAIN_BUDGET,
                     prune=True)
    exhaustive = explore(by_name(name), strategy=strategy, num_cpus=2,
                         seed=seed, depth_bound=2, budget=DRAIN_BUDGET,
                         prune=False)
    # both frontiers fully drained: the comparison is over the complete
    # depth-2 schedule space, not a budget-truncated sample of it
    assert pruned["frontier_left"] == 0
    assert exhaustive["frontier_left"] == 0
    # soundness: pruning loses no behaviour ...
    assert pruned["trace_set"] == exhaustive["trace_set"]
    # ... and is not a no-op bookkeeping trick: it does less work
    assert pruned["schedules"] <= exhaustive["schedules"]
    if pruned["pruned"] > 0:
        assert pruned["schedules"] < exhaustive["schedules"]

"""The six fork usage patterns of paper §2.1 (U1-U6), each exercised
end-to-end on μFork.  These are the compatibility claims behind R2:
"fork is vital to run popular applications"."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.errors import BadAddress, BoundsFault
from repro.machine import Machine
from repro.mem.layout import ProgramImage


def boot(**kwargs):
    return UForkOS(machine=Machine(), **kwargs)


def spawn(os_, name="app"):
    return GuestContext(os_, os_.spawn(hello_world_image(), name))


class TestU1ForkExec:
    """U1: fork + exec to start a new program (via posix_spawn)."""

    def test_spawn_starts_fresh_program(self):
        os_ = boot()
        shell = spawn(os_, "shell")
        marker = shell.malloc(32)
        shell.store(marker, b"shell-state")

        new_image = ProgramImage("ls", heap_size=128 * 1024)
        child_proc = shell.syscall("spawn", new_image, "ls")
        child = GuestContext(os_, child_proc)

        # the new program shares *nothing* with its parent
        assert child.proc.allocator.block_count() == 0
        assert child.proc.region_base != shell.proc.region_base
        assert child_proc.parent is shell.proc

    def test_spawned_child_waitable(self):
        os_ = boot()
        shell = spawn(os_, "shell")
        child_proc = shell.syscall("spawn", hello_world_image(), "prog")
        GuestContext(os_, child_proc).exit(42)
        assert shell.wait(child_proc.pid) == (child_proc.pid, 42)

    def test_spawn_cheaper_than_fork_for_large_parents(self):
        from repro.apps.redis import redis_image
        from repro.mem.layout import MiB
        os_ = boot(copy_strategy=CopyStrategy.FULL_COPY)
        big_parent = GuestContext(os_, os_.spawn(redis_image(4 * MiB), "big"))
        with os_.machine.clock.measure() as fork_watch:
            big_parent.fork()
        with os_.machine.clock.measure() as spawn_watch:
            big_parent.syscall("spawn", hello_world_image(), "small")
        assert spawn_watch.elapsed_ns < fork_watch.elapsed_ns


class TestU2Concurrency:
    """U2: fork for concurrency (worker pools)."""

    def test_worker_pool_all_serve(self):
        os_ = boot()
        master = spawn(os_, "master")
        listen_fd = master.syscall("listen", 9000)
        workers = [master.fork() for _ in range(3)]
        client = spawn(os_, "client")
        for worker in workers:
            conn = client.syscall("connect", 9000)
            client.send_bytes(conn, b"job")
            served = worker.syscall("accept", listen_fd)
            assert worker.recv_bytes(served, 10) == b"job"


class TestU3PrivilegeSeparation:
    """U3: fork for privilege separation (qmail/OpenSSH pattern)."""

    def test_compromised_child_confined(self):
        os_ = boot(isolation=IsolationConfig.full())
        privileged = spawn(os_, "sshd")
        secret = privileged.malloc(32)
        privileged.store(secret, b"host-private-key")
        privileged.set_reg("c9", secret)

        untrusted = privileged.fork()
        # the child got a *copy* of the secret (fork semantics)...
        assert untrusted.load(untrusted.reg("c9"), 16) == \
            b"host-private-key"
        # ...but can never reach the parent's original: its relocated
        # capability is bounded to its own region
        from repro.cheri.capability import Perm
        child_cap = untrusted.reg("c9")
        with pytest.raises(BoundsFault):
            child_cap.check_access(Perm.LOAD, size=16, addr=secret.cursor)

    def test_child_cannot_pass_parent_buffer_to_kernel(self):
        from repro.cheri.capability import Capability, Perm
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        os_ = boot(isolation=IsolationConfig.full())
        parent = spawn(os_, "sshd")
        child = parent.fork()
        fd = child.syscall("open", "/leak", O_CREAT | O_WRONLY)
        forged = Capability(
            base=parent.proc.region_base, length=64,
            cursor=parent.proc.region_base, perms=Perm.data_rw(),
        )
        with pytest.raises(BadAddress):
            child.syscall("write", fd, forged, 64)


class TestU4CopyOnWrite:
    """U4: fork to leverage CoW (the Redis snapshot pattern) — covered
    in depth by test_apps_redis; here the bare mechanism."""

    def test_snapshot_shares_until_write(self):
        os_ = boot(copy_strategy=CopyStrategy.COPA)
        parent = spawn(os_, "db")
        data = parent.malloc(4096 * 2)
        parent.store(data, b"D" * 8192)
        frames_before = os_.machine.phys.allocated_frames
        child = parent.fork()
        shared_cost = os_.machine.phys.allocated_frames - frames_before
        # only the eager pages (GOT + allocator metadata) were copied
        page = os_.machine.config.page_size
        region_pages = os_.space.mapped_pages(parent.proc.region_base,
                                              parent.proc.region_top)
        assert shared_cost < region_pages / 2


class TestU5StartupTimes:
    """U5: fork to skip setup cost (zygote / fuzzing pattern)."""

    def test_forked_child_skips_initialization(self):
        os_ = boot()
        zygote = spawn(os_, "zygote")
        # expensive init, done once
        table = zygote.malloc(64)
        zygote.compute(1_000_000)
        zygote.store(table, b"initialized-framework-state")
        zygote.set_reg("c9", table)

        with os_.machine.clock.measure() as watch:
            child = zygote.fork()
            state = child.load(child.reg("c9"), 27)
        assert state == b"initialized-framework-state"
        # warm start is far cheaper than the 1 ms initialization
        assert watch.elapsed_ns < 500_000


class TestU6Daemonize:
    """U6: fork to daemonize (detached background process)."""

    def test_parent_exits_child_keeps_running(self):
        os_ = boot()
        launcher = spawn(os_, "launcher")
        daemon = launcher.fork()
        launcher.exit(0)
        # the daemon is still alive and functional after its parent died
        assert daemon.proc.alive
        buf = daemon.malloc(16)
        daemon.store(buf, b"daemon-work")
        assert daemon.load(buf, 11) == b"daemon-work"
        assert daemon.syscall("getpid") == daemon.proc.pid

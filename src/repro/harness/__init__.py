"""Experiment harness: one function per table/figure of the paper."""

from repro.harness.experiments import (
    fig3_redis_save,
    fig4_redis_fork_latency,
    fig5_redis_memory,
    fig6_faas_throughput,
    fig7_nginx_throughput,
    fig8_hello_fork,
    fig9_unixbench,
    copa_ablation,
    DEFAULT_DB_SIZES,
    FULL_DB_SIZES,
)
from repro.harness.compat import compatibility_matrix, matrix_rows
from repro.harness.report import format_table, print_table
from repro.harness.table1 import table1_rows

__all__ = [
    "fig3_redis_save",
    "fig4_redis_fork_latency",
    "fig5_redis_memory",
    "fig6_faas_throughput",
    "fig7_nginx_throughput",
    "fig8_hello_fork",
    "fig9_unixbench",
    "copa_ablation",
    "DEFAULT_DB_SIZES",
    "FULL_DB_SIZES",
    "compatibility_matrix",
    "matrix_rows",
    "format_table",
    "print_table",
    "table1_rows",
]

"""Tests for dynamic (demand-paged) heaps — the §4.2/R4 alternative to
the paper's default fully-mapped static heap."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.redis import MiniRedis
from repro.core import CopyStrategy, UForkOS
from repro.core.audit import audit_isolation
from repro.machine import Machine
from repro.mem.layout import KiB, MiB, ProgramImage


def dyn_image(heap=4 * MiB, initial=64 * KiB):
    return ProgramImage("dyn", heap_size=heap, heap_initial=initial)


def static_image(heap=4 * MiB):
    return ProgramImage("static", heap_size=heap)


def boot(**kwargs):
    return UForkOS(machine=Machine(), **kwargs)


class TestDemandPaging:
    def test_load_maps_only_the_prefix(self):
        os_ = boot()
        frames_before = os_.machine.phys.allocated_frames
        os_.spawn(dyn_image(), "dyn")
        dyn_frames = os_.machine.phys.allocated_frames - frames_before

        os2 = boot()
        frames_before = os2.machine.phys.allocated_frames
        os2.spawn(static_image(), "static")
        static_frames = os2.machine.phys.allocated_frames - frames_before
        assert dyn_frames < static_frames / 4

    def test_heap_tail_usable_via_demand_zero(self):
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(dyn_image(), "dyn"))
        # allocate far beyond the initially mapped prefix
        blocks = [ctx.malloc(64 * KiB) for _ in range(16)]  # 1 MiB
        for index, block in enumerate(blocks):
            ctx.store(block, bytes([index]) * 128)
        for index, block in enumerate(blocks):
            assert ctx.load(block, 128) == bytes([index]) * 128
        assert os_.machine.counters.get("demand_zero_pages") > 0

    def test_demand_pages_arrive_zeroed(self):
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(dyn_image(), "dyn"))
        block = ctx.malloc(256 * KiB)
        assert ctx.load(block, 64, 128 * KiB) == b"\x00" * 64

    def test_access_outside_any_range_still_faults(self):
        from repro.errors import UnmappedAddressError
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(dyn_image(), "dyn"))
        mmap_base = ctx.proc.layout.base("mmap")
        with pytest.raises(UnmappedAddressError):
            os_.space.read(mmap_base, 8)

    def test_fork_with_dynamic_heap(self):
        os_ = boot(copy_strategy=CopyStrategy.COPA)
        parent = GuestContext(os_, os_.spawn(dyn_image(), "dyn"))
        big = parent.malloc(512 * KiB)
        parent.store(big, b"deep-heap-data", 300 * KiB)
        parent.set_reg("c9", big)

        child = parent.fork()
        child_big = child.reg("c9")
        assert child.load(child_big, 14, 300 * KiB) == b"deep-heap-data"
        # the child can also demand-grow its own heap tail
        fresh = child.malloc(512 * KiB)
        child.store(fresh, b"child-growth", 400 * KiB)
        assert child.load(fresh, 12, 400 * KiB) == b"child-growth"
        assert audit_isolation(os_) == []

    def test_untouched_tail_never_materializes(self):
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(dyn_image(heap=16 * MiB), "dyn"))
        ctx.malloc(1 * KiB)
        page = os_.machine.config.page_size
        mapped = os_.space.mapped_pages(ctx.proc.region_base,
                                        ctx.proc.region_top)
        total_region_pages = ctx.proc.region_size // page
        assert mapped < total_region_pages / 8

    def test_exit_unregisters_demand_range(self):
        os_ = boot()
        parent = GuestContext(os_, os_.spawn(dyn_image(), "p"))
        child = parent.fork()
        assert child.proc.pid in os_._demand_zero
        child.exit(0)
        parent.wait(child.pid)
        assert child.proc.pid not in os_._demand_zero

    def test_full_copy_fork_cheaper_with_dynamic_heap(self):
        """The static-heap design makes full-copy forks pay for the
        whole heap (the paper's 144 MB / 23 ms point); dynamic heaps
        shrink that to the touched pages."""
        latencies = {}
        for name, image in (("static", static_image()),
                            ("dynamic", dyn_image())):
            os_ = boot(copy_strategy=CopyStrategy.FULL_COPY)
            ctx = GuestContext(os_, os_.spawn(image, name))
            ctx.malloc(64 * KiB)
            with os_.machine.clock.measure() as watch:
                ctx.fork()
            latencies[name] = watch.elapsed_ns
        assert latencies["dynamic"] < latencies["static"] / 3

"""Smoke tests: every shipped example runs to completion.

Run as subprocesses so each example's __main__ path, imports, and
assertions are exercised exactly as a user would run them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # deliverable (b): at least three


@pytest.mark.slow
@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, (
        f"{example.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{example.name} produced no output"

#!/usr/bin/env python3
"""A fuzzing fork-server: fork per test case, crashes stay contained.

Reproduces the paper's U5 pattern ("testing frameworks such as fuzzers
use fork to avoid the cost of setup for each exploration") plus the
isolation guarantee that makes it safe: a test case that corrupts
memory faults on a capability check, the child is reaped, and the
server forks the next case from the pristine image.

Run:  python examples/fork_server.py
"""

from repro.api import Session
from repro.errors import CapabilityFault


def target_program(ctx, testcase: bytes, parser_table) -> str:
    """The "program under test": parses input against an in-memory
    table.  Inputs starting with 0xFF trigger the planted bug — an
    out-of-bounds write past the parse buffer."""
    buf = ctx.malloc(32)
    if testcase.startswith(b"\xff"):
        ctx.store(buf, b"A" * 64)  # the bug: 64 bytes into 32
    ctx.store(buf, testcase[:32])
    entry = ctx.load_cap(parser_table)  # exercise relocated state
    ctx.load(entry, 8)
    return "ok"


def main() -> None:
    session = Session(os="ufork", strategy="copa").boot()
    server = session.spawn(name="fork-srv")

    # expensive one-time setup the fork server amortizes
    parser_table = server.malloc(32)
    first_rule = server.malloc(16)
    server.store(first_rule, b"rule-data-0meta0")
    server.store_cap(parser_table, first_rule)
    server.set_reg("c9", parser_table)
    server.compute(2_000_000)  # "2 ms of corpus/instrumentation setup"
    print("fork server warmed up (setup paid once)\n")

    testcases = [b"GET /", b"\xff\xfe boom", b"POST /x", b"\xff crash",
                 b"HEAD /y"]
    crashes = 0
    for index, case in enumerate(testcases):
        child = server.fork()
        try:
            verdict = target_program(child, case,
                                     child.reg("c9"))
        except CapabilityFault as exc:
            crashes += 1
            verdict = f"CRASH contained ({type(exc).__name__})"
        child.exit(0)
        server.wait(child.pid)
        print(f"case {index} {case[:12]!r:>18}: {verdict}")

    # the server's pristine state was never touched by any test case
    table = server.reg("c9")
    rule = server.load_cap(table)
    assert server.load(rule, 16) == b"rule-data-0meta0"
    print(f"\n{crashes} crashing inputs found; server state intact, "
          f"{session.machine.counters.get('fork')} forks at "
          f"~{session.machine.clock.bucket_ns('fork_fixed') / session.machine.counters.get('fork') / 1000:.0f} us each")


if __name__ == "__main__":
    main()

"""Property-based end-to-end fork correctness.

Hypothesis drives random guest programs — building arbitrary object
graphs with tagged capability links in guest memory — then forks under
each copy strategy and verifies the paper's core semantic claims:

* the child's reachable graph is *isomorphic* to the parent's at fork
  time (same shape, same data, links shifted by exactly the region
  delta);
* every capability the child can reach is confined to its own region;
* post-fork mutations on either side never leak to the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.baselines import MonolithicOS
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.mem.layout import KiB, ProgramImage

CAP = 16  # granule / slot size

#: each node: 4 capability slots then 64 data bytes
NODE_SLOTS = 4
NODE_DATA = 64
NODE_SIZE = NODE_SLOTS * CAP + NODE_DATA


@dataclass
class GraphModel:
    """Host-side mirror of the guest object graph."""

    #: node id -> (slot links (node id or None), data bytes)
    nodes: Dict[int, Tuple[List[Optional[int]], bytes]] = \
        field(default_factory=dict)
    root: Optional[int] = None


class GraphBuilder:
    """Executes graph-building ops against guest memory + the model."""

    def __init__(self, ctx: GuestContext) -> None:
        self.ctx = ctx
        self.model = GraphModel()
        self.caps: Dict[int, object] = {}

    def apply(self, ops) -> None:
        for op in ops:
            kind = op[0]
            if kind == "node":
                self._new_node(op[1])
            elif kind == "link" and self.model.nodes:
                self._link(op[1], op[2], op[3])
            elif kind == "data" and self.model.nodes:
                self._write_data(op[1], op[2])
            elif kind == "root" and self.model.nodes:
                self._set_root(op[1])
        if self.model.root is None and self.model.nodes:
            self._set_root(0)

    def _ids(self):
        return sorted(self.model.nodes)

    def _pick(self, index: int) -> int:
        ids = self._ids()
        return ids[index % len(ids)]

    def _new_node(self, seed: int) -> None:
        node_id = len(self.model.nodes)
        cap = self.ctx.malloc(NODE_SIZE)
        data = bytes([(seed + i) % 251 for i in range(NODE_DATA)])
        self.ctx.store(cap, b"\x00" * (NODE_SLOTS * CAP))  # clear slots
        self.ctx.store(cap, data, NODE_SLOTS * CAP)
        self.caps[node_id] = cap
        self.model.nodes[node_id] = ([None] * NODE_SLOTS, data)

    def _link(self, src_index: int, slot: int, dst_index: int) -> None:
        src = self._pick(src_index)
        dst = self._pick(dst_index)
        slot %= NODE_SLOTS
        self.ctx.store_cap(self.caps[src], self.caps[dst], slot * CAP)
        self.model.nodes[src][0][slot] = dst

    def _write_data(self, index: int, seed: int) -> None:
        node = self._pick(index)
        data = bytes([(seed * 7 + i) % 251 for i in range(NODE_DATA)])
        self.ctx.store(self.caps[node], data, NODE_SLOTS * CAP)
        links, _old = self.model.nodes[node]
        self.model.nodes[node] = (links, data)

    def _set_root(self, index: int) -> None:
        self.model.root = self._pick(index)
        self.ctx.set_reg("c9", self.caps[self.model.root])


def verify_graph(ctx: GuestContext, model: GraphModel,
                 region: Tuple[int, int]) -> None:
    """Walk the guest graph from the root register and compare with the
    model (checking confinement along the way)."""
    if model.root is None:
        return
    base, top = region
    seen: Dict[int, int] = {}  # guest base address -> model node id

    def walk(cap, node_id: int) -> None:
        assert base <= cap.base < top, "capability escapes the region"
        if cap.base in seen:
            assert seen[cap.base] == node_id, "graph aliasing mismatch"
            return
        seen[cap.base] = node_id
        links, data = model.nodes[node_id]
        assert ctx.load(cap, NODE_DATA, NODE_SLOTS * CAP) == data
        for slot, dst in enumerate(links):
            loaded = ctx.load_cap(cap, slot * CAP)
            if dst is None:
                assert not loaded.valid, "phantom link appeared"
            else:
                assert loaded.valid, "link lost"
                walk(loaded, dst)

    walk(ctx.reg("c9"), model.root)


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("node"), st.integers(0, 250)),
        st.tuples(st.just("link"), st.integers(0, 31), st.integers(0, 3),
                  st.integers(0, 31)),
        st.tuples(st.just("data"), st.integers(0, 31), st.integers(0, 250)),
        st.tuples(st.just("root"), st.integers(0, 31)),
    ),
    min_size=1, max_size=40,
)


def graph_image() -> ProgramImage:
    return ProgramImage("graph", heap_size=512 * KiB,
                        stack_size=32 * KiB)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, strategy=st.sampled_from(list(CopyStrategy)))
def test_prop_child_graph_isomorphic_and_confined(ops, strategy):
    os_ = UForkOS(machine=Machine(), copy_strategy=strategy)
    parent = GuestContext(os_, os_.spawn(graph_image(), "g"))
    builder = GraphBuilder(parent)
    builder.apply(ops)
    if builder.model.root is None:
        return  # nothing built

    child = parent.fork()
    child_region = (child.proc.region_base, child.proc.region_top)
    verify_graph(child, builder.model, child_region)
    # the parent still sees its own intact graph
    parent_region = (parent.proc.region_base, parent.proc.region_top)
    verify_graph(parent, builder.model, parent_region)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS, mutations=OPS,
       strategy=st.sampled_from(list(CopyStrategy)))
def test_prop_post_fork_mutations_do_not_leak(ops, mutations, strategy):
    """Parent-side mutations after fork never change the child's view."""
    os_ = UForkOS(machine=Machine(), copy_strategy=strategy)
    parent = GuestContext(os_, os_.spawn(graph_image(), "g"))
    builder = GraphBuilder(parent)
    builder.apply(ops)
    if builder.model.root is None:
        return

    import copy
    snapshot = copy.deepcopy(builder.model)
    child = parent.fork()

    # parent keeps mutating (and growing) its graph
    builder.apply(mutations)

    child_region = (child.proc.region_base, child.proc.region_top)
    verify_graph(child, snapshot, child_region)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_prop_ufork_matches_monolithic_semantics(ops):
    """Transparency (R2): the child's observable state after fork is
    identical on μFork and on the classic multi-address-space fork."""
    views = {}
    for os_cls in (UForkOS, MonolithicOS):
        os_ = os_cls(machine=Machine())
        parent = GuestContext(os_, os_.spawn(graph_image(), "g"))
        builder = GraphBuilder(parent)
        builder.apply(ops)
        if builder.model.root is None:
            return
        child = parent.fork()
        # collect the child view as normalized (offset-based) structure
        root = child.reg("c9")
        base = child.proc.region_base

        collected = {}

        def collect(cap):
            offset = cap.base - base
            if offset in collected:
                return offset
            links, data = [], child.load(cap, NODE_DATA, NODE_SLOTS * CAP)
            collected[offset] = (links, data)
            for slot in range(NODE_SLOTS):
                loaded = child.load_cap(cap, slot * CAP)
                links.append(collect(loaded) if loaded.valid else None)
            return offset

        root_offset = collect(root)
        views[os_cls.__name__] = (root_offset, collected)
    assert views["UForkOS"] == views["MonolithicOS"]

"""The minimal kernel locking discipline for the SMP machine.

The simulator executes kernel code synchronously, so these locks never
*spin*; what they provide is the **discipline**: every cross-CPU-shared
kernel structure (the process tree touched by fork, the fault-handling
path that flips PTE permissions, the fd table) is entered only under
its lock, double-acquisition fails loudly (it would deadlock a real
non-reentrant spinlock), and each acquisition charges the exclusive
cacheline transfer a real spinlock costs.

On a 1-CPU machine every operation here is a free no-op — the moral
equivalent of ``CONFIG_SMP=n`` compiling spinlocks away — which keeps
all pre-SMP goldens bit-identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro import perf as _perf


class _HeldGuard:
    """Preallocated ``held()`` guard: same acquire/irq/release sequence
    as the contextmanager path (including the exception path) without
    creating a generator + wrapper object per critical section.  The
    guard is stateless, so one instance per lock is safe."""

    __slots__ = ("lock",)

    def __init__(self, lock: "SpinLock") -> None:
        self.lock = lock

    def __enter__(self) -> None:
        self.lock.acquire()
        self.lock.machine.irq_depth += 1

    def __exit__(self, *exc: Any) -> None:
        self.lock.machine.irq_depth -= 1
        self.lock.release()


class SpinLock:
    """A named, non-reentrant kernel spinlock.

    Observable as ``smp.lock.<name>.acquire`` counters; acquisition
    charges ``spinlock_ns`` to the ``spinlock`` clock bucket.
    """

    def __init__(self, machine: Any, name: str) -> None:
        self.machine = machine
        self.name = name
        #: CPU id of the holder, or None when free
        self.owner: Optional[int] = None
        self.acquisitions = 0
        self._guard = _HeldGuard(self)

    def acquire(self) -> None:
        machine = self.machine
        if machine.num_cpus <= 1:
            return
        if self.owner is not None:
            raise AssertionError(
                f"spinlock {self.name!r} acquired while held by "
                f"cpu{self.owner} — a missing release (or a reentrant "
                f"acquisition, which deadlocks a real spinlock)"
            )
        self.owner = machine.current_cpu
        self.acquisitions += 1
        machine.charge(machine.costs.spinlock_ns, "spinlock")
        machine.obs.count(f"smp.lock.{self.name}.acquire")

    def release(self) -> None:
        if self.machine.num_cpus <= 1:
            return
        if self.owner is None:
            raise AssertionError(
                f"spinlock {self.name!r} released while not held")
        self.owner = None

    def held(self) -> Any:
        """``spin_lock_irqsave``-style guard: the lock plus an
        IRQ-disable section, released even on the error path."""
        if _perf.ENABLED:
            return self._guard
        return self._held_slow()

    @contextmanager
    def _held_slow(self) -> Iterator[None]:
        self.acquire()
        self.machine.irq_depth += 1
        try:
            yield
        finally:
            self.machine.irq_depth -= 1
            self.release()


class IrqGuard:
    """IRQ-disable guard for critical sections entered without a lock.

    While any guard is active ``machine.irq_depth > 0``; the SMP
    scheduler refuses to context-switch inside one ("scheduling while
    atomic"), which is the discipline check that proves fork and fault
    handling never interleave with a migration mid-critical-section.
    """

    def __init__(self, machine: Any) -> None:
        self.machine = machine

    def __enter__(self) -> "IrqGuard":
        self.machine.irq_depth += 1
        return self

    def __exit__(self, *exc: Any) -> None:
        self.machine.irq_depth -= 1


class KernelLocks:
    """The kernel's lock set: one lock per serialized subsystem.

    * ``fork`` — the process tree, PID allocation and the VA reservation
      map: one fork (or exit) mutates them at a time;
    * ``fault`` — the CoW/CoA/CoPA break path: two CPUs faulting on the
      same shared page must not both copy its frame;
    * ``fdtable`` — fd-table duplication at fork.
    """

    def __init__(self, machine: Any) -> None:
        self.fork = SpinLock(machine, "fork")
        self.fault = SpinLock(machine, "fault")
        self.fdtable = SpinLock(machine, "fdtable")

"""Golden-report drift guard: every ``repro.*/v1`` report the stack
emits must survive a trip through :mod:`repro.harness.reportio` —
serialize, write, load, re-serialize — byte-identically.

One parametrized test covers every schema with a real (tiny) run of its
producer, so adding a report field that is not JSON-canonical (an
unsorted dict rendered by insertion order, a tuple/set, a non-finite
float) fails here before it lands in a golden file or a CI artifact
diff."""

from __future__ import annotations

import pytest

from repro.harness.reportio import dumps_report, load_report, write_report


def _obs_report():
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image
    from repro.core import CopyStrategy, UForkOS
    from repro.machine import Machine
    machine = Machine(seed=7)
    machine.obs.enable()
    os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "obs"))
    ctx.syscall("getpid")
    return machine.obs.export()


def _chaos_engine_report():
    from repro.chaos import ChaosEngine, FaultMix
    from repro.machine import Machine
    engine = ChaosEngine(seed=7,
                         mix=FaultMix.parse("kernel.syscall.eintr=1.0"))
    engine.attach(Machine(seed=7))
    engine.should_fire("kernel.syscall.eintr")
    return engine.export()


def _chaos_run_report():
    from repro.chaos.runner import DEFAULT_MIX, run_chaos
    return run_chaos(seed=7, iterations=10, mix=DEFAULT_MIX)


def _conform_report():
    from repro.conform.runner import run_conform
    return run_conform(seed=7, cpus=[1], strategies=["copa"],
                       depth_bound=2, budget=4,
                       scenario_names=["pipe-hello"], host=False)


def _perf_report():
    from repro.perf.bench import run_benchmarks
    return run_benchmarks(names=["pipe_pingpong"])


def _cluster_report():
    from repro.cluster.runner import run_cluster
    return run_cluster(seed=7, shards=2, workers=2, requests=2000,
                       keys=256, users=10_000, cpus=1, audit=2,
                       max_migrations=2)


def _smp_report():
    from repro.smp.runner import run_smp
    return run_smp(seed=7, num_cpus=2, requests=8)


def _snapshot_report():
    from repro.snapshot.report import run_snapshot
    return run_snapshot(seed=7, cpus=1, strategy="copa")


def _sec_report():
    from repro.sec.runner import run_sec
    return run_sec(seed=3, strategies=("copa",), cpus_list=(1,),
                   modes=("clean",),
                   attacks=("bounds_widen", "snapshot_magic_tamper"))


FACTORIES = {
    "repro.obs/v1": _obs_report,
    "repro.chaos/v1": _chaos_engine_report,
    "repro.chaos.run/v1": _chaos_run_report,
    "repro.conform/v1": _conform_report,
    "repro.perf/v1": _perf_report,
    "repro.cluster/v1": _cluster_report,
    "repro.smp.run/v1": _smp_report,
    "repro.snapshot.run/v1": _snapshot_report,
    "repro.sec/v1": _sec_report,
}


@pytest.mark.parametrize("tag", sorted(FACTORIES))
def test_every_report_schema_roundtrips_byte_identically(tag, tmp_path):
    report = FACTORIES[tag]()
    assert report["schema"] == tag
    first = dumps_report(report)
    path = str(tmp_path / "report.json")
    write_report(report, path)
    with open(path, "rb") as fh:
        assert fh.read() == first.encode("utf-8"), \
            f"{tag}: write_report bytes differ from dumps_report"
    assert dumps_report(load_report(path)) == first, \
        f"{tag}: report does not round-trip through reportio"

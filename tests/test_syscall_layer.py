"""Tests for the syscall entry layer and parameterized isolation."""

import pytest

from repro.cheri.capability import Capability, OTYPE_SENTRY, Perm
from repro.errors import BadAddress, IsolationViolation
from repro.kernel.syscalls import (
    IsolationConfig,
    IsolationLevel,
    SyscallLayer,
    check_syscall_gate,
)
from repro.kernel.task import Process


class TestIsolationConfig:
    def test_levels(self):
        assert not IsolationConfig.none().validate_args
        assert not IsolationConfig.none().tocttou
        assert IsolationConfig.fault().validate_args
        assert not IsolationConfig.fault().tocttou
        assert IsolationConfig.full().validate_args
        assert IsolationConfig.full().tocttou

    def test_from_level(self):
        for level in IsolationLevel:
            config = IsolationConfig.from_level(level)
            assert config.level is level


class TestEntryCosts:
    def test_sealed_cheaper_than_trap(self, machine):
        sealed = SyscallLayer(machine, trapless=True,
                              isolation=IsolationConfig.none())
        before = machine.clock.now_ns
        sealed.enter("getpid")
        sealed_cost = machine.clock.now_ns - before

        trap = SyscallLayer(machine, trapless=False,
                            isolation=IsolationConfig.none())
        before = machine.clock.now_ns
        trap.enter("getpid")
        trap_cost = machine.clock.now_ns - before
        assert sealed_cost < trap_cost

    def test_validation_charged_per_arg(self, machine):
        layer = SyscallLayer(machine, trapless=True,
                             isolation=IsolationConfig.fault())
        before = machine.clock.now_ns
        layer.enter("write", nargs=3)
        elapsed = machine.clock.now_ns - before
        assert elapsed >= int(machine.costs.sealed_syscall_ns
                              + 3 * machine.costs.syscall_validate_ns)

    def test_tocttou_charged_per_buffer(self, machine):
        full = SyscallLayer(machine, trapless=True,
                            isolation=IsolationConfig.full())
        fault = SyscallLayer(machine, trapless=True,
                             isolation=IsolationConfig.fault())
        before = machine.clock.now_ns
        fault.enter("write", nargs=3, buffer_bytes=(1024,))
        fault_cost = machine.clock.now_ns - before
        before = machine.clock.now_ns
        full.enter("write", nargs=3, buffer_bytes=(1024,))
        full_cost = machine.clock.now_ns - before
        assert full_cost - fault_cost >= int(
            machine.costs.tocttou_setup_ns
            + 2 * 1024 * machine.costs.tocttou_copy_ns_per_byte
        )

    def test_tocttou_copy_capped_for_bulk_payloads(self, machine):
        """Bulk I/O payloads are copied into the kernel once regardless;
        TOCTTOU double copies only the control-structure-sized prefix."""
        layer = SyscallLayer(machine, trapless=True,
                             isolation=IsolationConfig.full())
        cap = machine.costs.tocttou_max_copy_bytes
        before = machine.clock.now_ns
        layer.enter("write", buffer_bytes=(100 * 1024 * 1024,))
        elapsed = machine.clock.now_ns - before
        ceiling = (machine.costs.sealed_syscall_ns
                   + machine.costs.tocttou_setup_ns
                   + 2 * cap * machine.costs.tocttou_copy_ns_per_byte)
        assert elapsed <= int(ceiling) + 1

    def test_invocations_counted(self, machine):
        layer = SyscallLayer(machine, trapless=True,
                             isolation=IsolationConfig.none())
        layer.enter("read")
        layer.enter("read")
        assert layer.invocations == 2
        assert machine.counters.get("syscall_read") == 2


class TestUserCapValidation:
    def make_layer(self, machine, config):
        return SyscallLayer(machine, trapless=True, isolation=config)

    def make_proc(self):
        proc = Process(1, "p")
        proc.region_base = 0x1000
        proc.region_top = 0x9000
        return proc

    def good_cap(self):
        return Capability(base=0x2000, length=0x100, cursor=0x2000,
                          perms=Perm.data_rw())

    def test_valid_buffer_accepted(self, machine):
        layer = self.make_layer(machine, IsolationConfig.fault())
        layer.validate_user_cap(self.make_proc(), self.good_cap(), 0x100)

    def test_invalid_tag_rejected(self, machine):
        layer = self.make_layer(machine, IsolationConfig.fault())
        with pytest.raises(BadAddress):
            layer.validate_user_cap(self.make_proc(),
                                    self.good_cap().invalidated(), 8)

    def test_sealed_rejected(self, machine):
        layer = self.make_layer(machine, IsolationConfig.fault())
        with pytest.raises(BadAddress):
            layer.validate_user_cap(self.make_proc(),
                                    self.good_cap().sealed(5), 8)

    def test_out_of_region_rejected(self, machine):
        layer = self.make_layer(machine, IsolationConfig.fault())
        outside = Capability(base=0xA000, length=0x100, cursor=0xA000,
                             perms=Perm.data_rw())
        with pytest.raises(BadAddress):
            layer.validate_user_cap(self.make_proc(), outside, 8)

    def test_size_exceeding_bounds_rejected(self, machine):
        layer = self.make_layer(machine, IsolationConfig.fault())
        with pytest.raises(BadAddress):
            layer.validate_user_cap(self.make_proc(), self.good_cap(),
                                    0x101)

    def test_checks_disabled_at_none(self, machine):
        """The deployment opted out (R4): the kernel trusts its caller."""
        layer = self.make_layer(machine, IsolationConfig.none())
        layer.validate_user_cap(self.make_proc(),
                                self.good_cap().invalidated(), 8)


class TestGateCheck:
    def make_gate(self):
        return Capability(
            base=0x1_0000, length=16, cursor=0x1_0000, perms=Perm.code(),
        ).sealed(OTYPE_SENTRY)

    def make_proc(self, gate):
        proc = Process(1, "p")
        proc.syscall_gate = gate
        return proc

    def test_legit_gate_passes(self):
        gate = self.make_gate()
        check_syscall_gate(self.make_proc(gate), gate)

    def test_unsealed_rejected(self):
        gate = self.make_gate()
        proc = self.make_proc(gate)
        lookalike = Capability(base=gate.base, length=16, cursor=gate.cursor,
                               perms=Perm.code())
        with pytest.raises(IsolationViolation):
            check_syscall_gate(proc, lookalike)

    def test_wrong_target_rejected(self):
        gate = self.make_gate()
        proc = self.make_proc(gate)
        elsewhere = Capability(
            base=0x2_0000, length=16, cursor=0x2_0000, perms=Perm.code(),
        ).sealed(OTYPE_SENTRY)
        with pytest.raises(IsolationViolation):
            check_syscall_gate(proc, elsewhere)

    def test_invalid_tag_rejected(self):
        gate = self.make_gate()
        proc = self.make_proc(gate)
        with pytest.raises(IsolationViolation):
            check_syscall_gate(proc, gate.invalidated())

    def test_non_capability_rejected(self):
        proc = self.make_proc(self.make_gate())
        with pytest.raises(IsolationViolation):
            check_syscall_gate(proc, 0xDEADBEEF)

    def test_missing_gate_rejected(self):
        proc = Process(1, "p")
        proc.syscall_gate = None
        with pytest.raises(IsolationViolation):
            check_syscall_gate(proc, self.make_gate())

"""Sensitivity of μFork's costs to the CHERI-specific hardware prices.

Paper §5 notes that the Morello prototype's pure-capability overheads
are largely micro-architectural and that "the majority of these
overheads can be eliminated in future hardware implementations,
reducing the overhead to a negligible level (1.8-3%)".  This benchmark
sweeps the capability-specific cost constants (tag scan, capability
rewrite, capability-load fault) between today's calibration and a
projected future core, and reports how μFork's headline latencies move.
"""

from conftest import run_once

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.params import CostModel
from repro.mem.layout import KiB, MiB

NS_PER_US = 1_000

#: scale factors for the capability-specific constants: 1.0 = today's
#: Morello calibration; 0.25 ~ the projected mature implementation
SCALES = (1.0, 0.5, 0.25)


def scaled_costs(factor: float) -> CostModel:
    base = CostModel.morello()
    return base.scaled(
        tag_scan_ns_per_granule=base.tag_scan_ns_per_granule * factor,
        cap_relocate_ns=base.cap_relocate_ns * factor,
        page_fault_ns=base.page_fault_ns * (0.6 + 0.4 * factor),
    )


def run_sensitivity():
    rows = []
    for factor in SCALES:
        machine_costs = scaled_costs(factor)

        # hello-world fork latency
        os_ = UForkOS(machine=Machine(costs=machine_costs))
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "hello"))
        warm = ctx.fork()
        warm.exit(0)
        ctx.wait(warm.pid)
        with os_.machine.clock.measure() as fork_watch:
            child = ctx.fork()
        child.exit(0)
        ctx.wait(child.pid)

        # Redis CoPA snapshot (relocation-heavy path)
        os2 = UForkOS(machine=Machine(costs=machine_costs),
                      copy_strategy=CopyStrategy.COPA)
        proc = os2.spawn(redis_image(2 * MiB), "redis")
        store = MiniRedis(GuestContext(os2, proc), nbuckets=128)
        populate(store, 1 * MiB, value_size=100 * KiB)
        metrics = store.bgsave("/d.rdb")

        rows.append({
            "cap_cost_scale": factor,
            "hello_fork_us": fork_watch.elapsed_ns / NS_PER_US,
            "redis_fork_us": metrics.fork_latency_ns / NS_PER_US,
            "redis_save_ms": metrics.save_total_ns / 1e6,
        })
    return rows


def test_sensitivity_to_capability_costs(benchmark, record_figure):
    rows = run_once(benchmark, run_sensitivity)
    record_figure(
        "sensitivity_cap_costs", rows,
        "Sensitivity: capability-hardware cost scale vs μFork latencies",
    )
    by_scale = {row["cap_cost_scale"]: row for row in rows}

    # cheaper capability hardware monotonically improves every metric
    for metric in ("hello_fork_us", "redis_fork_us", "redis_save_ms"):
        series = [by_scale[s][metric] for s in SCALES]
        assert series == sorted(series, reverse=True)

    # but fork latency is dominated by fixed kernel work, so the swing
    # stays bounded — the design does not live or die by tag-scan speed
    swing = (by_scale[1.0]["hello_fork_us"]
             / by_scale[0.25]["hello_fork_us"])
    assert 1.0 < swing < 1.6

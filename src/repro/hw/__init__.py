"""Simulated hardware: tagged physical memory, MMU, TLB, CPU cores."""

from repro.hw.phys import Frame, PhysicalMemory
from repro.hw.paging import (
    AccessKind,
    AddressSpace,
    PagePerm,
    PageTable,
    PTE,
)
from repro.hw.tlb import TLB
from repro.hw.cpu import Core

__all__ = [
    "Frame",
    "PhysicalMemory",
    "AccessKind",
    "AddressSpace",
    "PagePerm",
    "PageTable",
    "PTE",
    "TLB",
    "Core",
]

"""The OS interface and the shared POSIX syscall surface.

Both the μFork SASOS and the monolithic baseline expose the same
syscall set to guest code (open/read/write, pipes, sockets, fork/wait,
shared memory, ...), so applications in :mod:`repro.apps` run unmodified
on either — the transparency requirement (R2).  What differs per OS is
the *mechanism*: entry cost (sealed sentry vs trap), fork implementation,
memory layout, and isolation charges.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chaos.recovery import retry_syscall
from repro.cheri.capability import Capability
from repro.errors import (
    InvalidArgument,
    NoChildProcess,
    NoSuchProcess,
    WouldBlock,
)
from repro.hw.paging import AddressSpace
from repro.kernel import signals as _signals
from repro.kernel.fdtable import FDTable, FileDescription
from repro.kernel.ipc import MessageQueue, Pipe
from repro.kernel.net import NetworkStack
from repro.kernel.sched import make_scheduler
from repro.kernel.syscalls import IsolationConfig, SyscallLayer
from repro.kernel.task import PidAllocator, Process, ProcessTable
from repro.kernel.vfs import O_RDONLY, RamDisk
from repro.machine import Machine


class SharedMemoryObject:
    """A named shared-memory object (``shm_open`` §3.7)."""

    def __init__(self, name: str, frames: List[int]) -> None:
        self.name = name
        self.frames = frames

    @property
    def size_pages(self) -> int:
        return len(self.frames)


class AbstractOS(abc.ABC):
    """Common OS plumbing + the POSIX syscall handlers."""

    #: short identifier used in reports ("ufork", "cheribsd", "nephele")
    kind: str = "abstract"

    def __init__(self, machine: Optional[Machine] = None,
                 trapless_syscalls: bool = True,
                 isolation: Optional[IsolationConfig] = None,
                 same_address_space: bool = True) -> None:
        self.machine = machine or Machine()
        self.isolation = isolation or IsolationConfig.full()
        self.syscalls = SyscallLayer(self.machine, trapless_syscalls,
                                     self.isolation)
        self.ramdisk = RamDisk(self.machine)
        self.net = NetworkStack(self.machine)
        self.pids = PidAllocator()
        self.procs = ProcessTable()
        self.sched = make_scheduler(self.machine, same_address_space)
        self._mqueues: Dict[str, MessageQueue] = {}
        self._shm: Dict[str, SharedMemoryObject] = {}
        #: lazily-filled syscall dispatch table: name → (bound handler,
        #: interned span label), replacing a per-call getattr + f-string.
        #: Unknown names are never cached — the fuzzer sends garbage and
        #: a poisoned entry would shadow a handler added to a subclass.
        self._dispatch: Dict[str, Tuple[Any, str]] = {}
        self._perf = False
        try:
            from repro import perf as _perf
            self._perf = _perf.enabled()
        except ImportError:  # pragma: no cover - bootstrap ordering
            pass
        self.machine.register_kernel(self)

    # ------------------------------------------------------------------
    # OS-specific operations
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def spawn(self, image: Any, name: str) -> Process:
        """Load a fresh program as a new process."""

    @abc.abstractmethod
    def fork(self, proc: Process) -> Process:
        """POSIX fork of ``proc``; returns the child process."""

    @abc.abstractmethod
    def space_of(self, proc: Process) -> AddressSpace:
        """The address space ``proc``'s memory lives in."""

    @abc.abstractmethod
    def _teardown_memory(self, proc: Process) -> None:
        """Release a process's memory at exit."""

    @abc.abstractmethod
    def memory_of(self, proc: Process) -> float:
        """Memory consumed by ``proc`` (bytes; the Fig 5/8 metric)."""

    # ------------------------------------------------------------------
    # Syscall dispatch
    # ------------------------------------------------------------------

    def syscall(self, proc: Process, name: str, *args: Any,
                gate: Optional[Capability] = None) -> Any:
        """Invoke a syscall on behalf of ``proc``.

        Subclasses may override to enforce their entry mechanism (the
        SASOS checks the sealed gate); the shared implementation only
        dispatches.

        Observability: each invocation runs inside a ``syscall.<name>``
        span, so per-syscall latency lands in the
        ``span.syscall.<name>`` histogram and every cost charged by the
        handler (fork phases included) nests under it in the span tree.

        Chaos: with an engine attached, the ``kernel.sched.preempt``
        point may force a context switch at this kernel boundary, and
        the handler runs under the bounded retry loop — injected entry
        faults (EINTR/ENOMEM/EAGAIN) and rolled-back fork failures are
        retried with backoff instead of surfacing to the caller.
        """
        if self._perf:
            entry = self._dispatch.get(name)
            if entry is None:
                handler = getattr(self, f"sys_{name}", None)
                if handler is None:
                    raise InvalidArgument(f"unknown syscall {name!r}")
                entry = (handler, f"syscall.{name}")
                self._dispatch[name] = entry
            handler, span_label = entry
        else:
            handler = getattr(self, f"sys_{name}", None)
            if handler is None:
                raise InvalidArgument(f"unknown syscall {name!r}")
            span_label = f"syscall.{name}"
        if not proc.alive:
            raise NoSuchProcess(f"process {proc.pid} has exited")
        with self.machine.obs.span(span_label):
            # kernel-boundary crossing: deliver pending signals first
            _signals.deliver_pending(self, proc)
            if not proc.alive:
                raise NoSuchProcess(f"process {proc.pid} was terminated")
            chaos = self.machine.chaos
            tap = self.machine.syscall_tap
            try:
                if chaos.enabled:
                    if chaos.should_fire("kernel.sched.preempt"):
                        self.sched.yield_current()
                    result = retry_syscall(self.machine,
                                           lambda: handler(proc, *args))
                else:
                    result = handler(proc, *args)
            except Exception as exc:
                if tap is not None:
                    tap(self, proc, name, args, None, exc)
                raise
            if tap is not None:
                tap(self, proc, name, args, result, None)
            return result

    def _enter(self, proc: Process, name: str, nargs: int,
               buffers: Sequence[int] = ()) -> None:
        self.syscalls.enter(name, nargs=nargs, buffer_bytes=buffers)

    # -- user-buffer plumbing ------------------------------------------------

    def _read_user(self, proc: Process, cap: Capability, size: int) -> bytes:
        """Copy bytes out of a user buffer (validated, unprivileged so
        copy strategies see the access)."""
        from repro.cheri.capability import Perm
        self.syscalls.validate_user_cap(proc, cap, size)
        cap.check_access(Perm.LOAD, size=size)
        return self.space_of(proc).read(cap.cursor, size)

    def _write_user(self, proc: Process, cap: Capability,
                    data: bytes) -> None:
        """Copy bytes into a user buffer (triggers CoW/CoA/CoPA breaks
        exactly as a user-mode store would)."""
        from repro.cheri.capability import Perm
        self.syscalls.validate_user_cap(proc, cap, len(data))
        cap.check_access(Perm.STORE, size=len(data))
        self.space_of(proc).write(cap.cursor, data)

    # ------------------------------------------------------------------
    # POSIX file syscalls
    # ------------------------------------------------------------------

    def sys_open(self, proc: Process, path: str, flags: int = O_RDONLY) -> int:
        self._enter(proc, "open", 2)
        handle = self.ramdisk.open(path, flags)
        desc = FileDescription(handle)
        return proc.fdtable.install(desc)

    def sys_close(self, proc: Process, fd: int) -> None:
        self._enter(proc, "close", 1)
        proc.fdtable.close(fd)

    def sys_read(self, proc: Process, fd: int, buf: Capability,
                 size: int) -> int:
        self._enter(proc, "read", 3, buffers=(size,))
        desc = proc.fdtable.get(fd)
        if not desc.readable:
            from repro.errors import BadFileDescriptor
            raise BadFileDescriptor(f"fd {fd} is not open for reading")
        data = desc.obj.read(desc, size)
        if data:
            self._write_user(proc, buf, data)
        return len(data)

    def sys_write(self, proc: Process, fd: int, buf: Capability,
                  size: int) -> int:
        self._enter(proc, "write", 3, buffers=(size,))
        desc = proc.fdtable.get(fd)
        if not desc.writable:
            from repro.errors import BadFileDescriptor
            raise BadFileDescriptor(f"fd {fd} is not open for writing")
        data = self._read_user(proc, buf, size)
        return desc.obj.write(desc, data)

    def sys_lseek(self, proc: Process, fd: int, offset: int,
                  whence: int) -> int:
        self._enter(proc, "lseek", 3)
        desc = proc.fdtable.get(fd)
        return desc.obj.seek(desc, offset, whence)

    def sys_dup(self, proc: Process, fd: int) -> int:
        self._enter(proc, "dup", 1)
        return proc.fdtable.dup(fd)

    def sys_dup2(self, proc: Process, oldfd: int, newfd: int) -> int:
        self._enter(proc, "dup2", 2)
        return proc.fdtable.dup2(oldfd, newfd)

    def sys_unlink(self, proc: Process, path: str) -> None:
        self._enter(proc, "unlink", 1)
        self.ramdisk.unlink(path)

    def sys_rename(self, proc: Process, old: str, new: str) -> None:
        self._enter(proc, "rename", 2)
        self.ramdisk.rename(old, new)

    def sys_stat(self, proc: Process, path: str) -> int:
        self._enter(proc, "stat", 1)
        return self.ramdisk.stat_size(path)

    def sys_mkdir(self, proc: Process, path: str) -> None:
        self._enter(proc, "mkdir", 1)
        self.ramdisk.mkdir(path)

    # ------------------------------------------------------------------
    # Pipes and message queues
    # ------------------------------------------------------------------

    def sys_pipe(self, proc: Process) -> Tuple[int, int]:
        self._enter(proc, "pipe", 0)
        pipe = Pipe(self.machine)
        read_fd = proc.fdtable.install(
            FileDescription(pipe.read_end(), writable=False))
        write_fd = proc.fdtable.install(
            FileDescription(pipe.write_end(), readable=False))
        return read_fd, write_fd

    def sys_mq_open(self, proc: Process, name: str) -> MessageQueue:
        self._enter(proc, "mq_open", 1)
        queue = self._mqueues.get(name)
        if queue is None:
            queue = MessageQueue(self.machine, name=name)
            self._mqueues[name] = queue
        return queue

    def sys_mq_send(self, proc: Process, queue: MessageQueue, data: bytes,
                    priority: int = 0) -> None:
        self._enter(proc, "mq_send", 3, buffers=(len(data),))
        queue.send(data, priority)

    def sys_mq_receive(self, proc: Process, queue: MessageQueue) -> bytes:
        self._enter(proc, "mq_receive", 1)
        return queue.receive()

    # ------------------------------------------------------------------
    # Sockets
    # ------------------------------------------------------------------

    def sys_listen(self, proc: Process, port: int, backlog: int = 128) -> int:
        self._enter(proc, "listen", 2)
        listener = self.net.listen(port, backlog)
        return proc.fdtable.install(FileDescription(listener))

    def sys_accept(self, proc: Process, listen_fd: int) -> int:
        self._enter(proc, "accept", 1)
        desc = proc.fdtable.get(listen_fd)
        endpoint = desc.obj.accept()
        return proc.fdtable.install(FileDescription(endpoint))

    def sys_connect(self, proc: Process, port: int) -> int:
        self._enter(proc, "connect", 1)
        endpoint = self.net.connect(port)
        return proc.fdtable.install(FileDescription(endpoint))

    def sys_send(self, proc: Process, fd: int, buf: Capability,
                 size: int) -> int:
        self._enter(proc, "send", 3, buffers=(size,))
        desc = proc.fdtable.get(fd)
        data = self._read_user(proc, buf, size)
        return desc.obj.send(data)

    def sys_recv(self, proc: Process, fd: int, buf: Capability,
                 size: int) -> int:
        self._enter(proc, "recv", 3, buffers=(size,))
        desc = proc.fdtable.get(fd)
        data = desc.obj.recv(size)
        if data:
            self._write_user(proc, buf, data)
        return len(data)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def sys_getpid(self, proc: Process) -> int:
        self._enter(proc, "getpid", 0)
        return proc.pid

    def sys_fork(self, proc: Process) -> Process:
        self._enter(proc, "fork", 0)
        return self.fork(proc)

    def sys_thread_create(self, proc: Process) -> Any:
        """Create an additional thread in the calling process (§3.4:
        "each μprocess may have many threads", all sharing its PID,
        memory region and fd table)."""
        self._enter(proc, "thread_create", 0)
        self.machine.charge(self.machine.costs.ufork_fixed_ns * 0.2,
                            "thread_create")
        task = proc.add_task()
        # the new thread starts from the caller's register state
        task.registers.copy_from(proc.main_task().registers)
        self.sched.add(task)
        return task

    def sys_spawn(self, proc: Process, image: Any, name: str) -> Process:
        """posix_spawn / vfork+exec (U1): start a *fresh* program as a
        child — no state duplication, loaded at a free location (§2.3,
        "Modern SASOSes and fork + exec support")."""
        self._enter(proc, "spawn", 2)
        child = self.spawn(image, name)
        child.parent = proc
        proc.children.append(child)
        return child

    def sys_exit(self, proc: Process, status: int = 0) -> None:
        self._enter(proc, "exit", 1)
        self._exit_process(proc, status)

    def sys_waitpid(self, proc: Process, pid: int = -1) -> Tuple[int, int]:
        """Reap an exited child; (pid, status).  WouldBlock if none has
        exited yet (drivers run children to completion, so this is rare)."""
        self._enter(proc, "waitpid", 1)
        candidates = [
            child for child in proc.children
            if not child.reaped and (pid == -1 or child.pid == pid)
        ]
        if not candidates:
            raise NoChildProcess(f"process {proc.pid} has no such children")
        for child in candidates:
            if not child.alive:
                child.reaped = True
                self.procs.remove(child.pid)
                return child.pid, child.exit_status
        raise WouldBlock("no exited children yet")

    def sys_yield(self, proc: Process) -> None:
        self._enter(proc, "yield", 0)
        self.sched.yield_current()

    # ------------------------------------------------------------------
    # Signals (paper §4.5: per-process kernel state)
    # ------------------------------------------------------------------

    def sys_kill(self, proc: Process, pid: int, signum: int) -> None:
        self._enter(proc, "kill", 2)
        target = self.procs.get(pid)
        _signals.send(self, target, signum)

    def sys_signal(self, proc: Process, signum: int, handler) -> None:
        self._enter(proc, "signal", 2)
        _signals.register(proc, signum, handler)

    def sys_sigpending(self, proc: Process):
        self._enter(proc, "sigpending", 0)
        return list(_signals.signal_state(proc).pending)

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------

    def sys_shm_open(self, proc: Process, name: str,
                     size: int) -> SharedMemoryObject:
        """Create-or-open a named shared memory object."""
        self._enter(proc, "shm_open", 2)
        shm = self._shm.get(name)
        if shm is None:
            page = self.machine.config.page_size
            pages = (size + page - 1) // page
            frames = [self.machine.phys.alloc() for _ in range(pages)]
            shm = SharedMemoryObject(name, frames)
            self._shm[name] = shm
        return shm

    def sys_shm_map(self, proc: Process, shm: SharedMemoryObject) -> Capability:
        self._enter(proc, "shm_map", 1)
        return self._map_shared(proc, shm)

    def _map_shared(self, proc: Process, shm: SharedMemoryObject) -> Capability:
        raise InvalidArgument("shared memory not supported by this OS")

    # ------------------------------------------------------------------
    # Exit plumbing
    # ------------------------------------------------------------------

    def _exit_process(self, proc: Process, status: int) -> None:
        if not proc.alive:
            return
        proc.exit_status = status
        proc.fdtable.close_all()
        from repro.kernel.task import TaskState
        for task in proc.tasks:
            task.state = TaskState.EXITED
            self.sched.remove(task)
        self._teardown_memory(proc)
        if proc.parent is not None and proc.parent.alive:
            _signals.signal_state(proc.parent).pending.append(
                _signals.SIGCHLD
            )
        self.machine.trace("exit", pid=proc.pid, status=status)
        if proc.parent is None:
            proc.reaped = True
            self.procs.remove(proc.pid)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    @property
    def clock(self):
        return self.machine.clock

    def process_count(self) -> int:
        return len(self.procs.alive())

"""Scheduler-queue hardening: removal is idempotent and torn-down tasks
can never be resurrected into the run queue (the chaos tier removes and
blocks blindly during mid-operation teardown).  The property tests at
the bottom fuzz the SMP work-stealing balancer against the same
invariants plus CPU affinity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.sched import Scheduler
from repro.kernel.task import Process, TaskState
from repro.machine import Machine
from repro.smp.sched import SmpScheduler


def make_task():
    proc = Process(pid=100, name="victim")
    return proc.add_task()


def make_sched():
    return Scheduler(Machine(), same_address_space=True)


class TestIdempotentRemoval:
    def test_remove_of_never_enqueued_task_is_noop(self):
        sched = make_sched()
        task = make_task()
        sched.remove(task)                 # must not raise
        assert sched.runnable_count == 0

    def test_double_remove_is_noop(self):
        sched = make_sched()
        task = make_task()
        sched.add(task)
        sched.remove(task)
        sched.remove(task)
        assert sched.runnable_count == 0

    def test_block_of_never_enqueued_task_is_safe(self):
        sched = make_sched()
        task = make_task()
        sched.block(task)                  # must not raise
        assert task.state is TaskState.BLOCKED
        assert sched.runnable_count == 0

    def test_remove_clears_current(self):
        sched = make_sched()
        task = make_task()
        sched.add(task)
        sched.switch_to(task)
        assert sched.current is task
        sched.remove(task)
        assert sched.current is None


class TestNoResurrection:
    def test_block_after_exit_does_not_resurrect(self):
        sched = make_sched()
        task = make_task()
        task.state = TaskState.EXITED
        sched.block(task)
        assert task.state is TaskState.EXITED     # not demoted to BLOCKED
        sched.wake(task)
        assert task.state is TaskState.EXITED     # and wake can't revive it
        assert sched.runnable_count == 0

    def test_add_refuses_exited_task(self):
        sched = make_sched()
        task = make_task()
        task.state = TaskState.EXITED
        sched.add(task)
        assert sched.runnable_count == 0

    def test_process_exit_marks_tasks_exited(self):
        from repro.apps.guest import GuestContext
        from repro.apps.hello import hello_world_image
        from repro.core import IsolationConfig, UForkOS

        os_ = UForkOS(machine=Machine(),
                      isolation=IsolationConfig.fault())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "app"))
        task = ctx.proc.main_task()
        ctx.exit(0)
        assert task.state is TaskState.EXITED
        os_.sched.block(task)              # late blind block: still EXITED
        assert task.state is TaskState.EXITED
        os_.sched.add(task)                # and it cannot re-enter the queue
        assert all(t is not task for t in os_.sched._runnable)


# ----------------------------------------------------------------------
# Work-stealing properties (SMP): affinity is inviolable and EXITED
# tasks stay dead, whatever the queue shapes look like
# ----------------------------------------------------------------------

NUM_CPUS = 4

#: one fuzzed task: (affinity mask or None, exited?, victim queue)
task_specs = st.lists(
    st.tuples(
        st.one_of(st.none(),
                  st.sets(st.integers(0, NUM_CPUS - 1), min_size=1)),
        st.booleans(),
        st.integers(0, NUM_CPUS - 1),
    ),
    min_size=0, max_size=12,
)


def build_smp_sched(specs):
    sched = SmpScheduler(Machine(num_cpus=NUM_CPUS),
                         same_address_space=True)
    proc = Process(pid=100, name="fuzz")
    tasks = []
    for affinity, exited, queue in specs:
        task = proc.add_task()
        if affinity is not None:
            task.pin(*affinity)
        if exited:
            task.state = TaskState.EXITED
        # place directly: the fuzz controls queue shape, not _place()
        sched._queues[queue][task] = None
        tasks.append(task)
    return sched, tasks


@settings(max_examples=60, deadline=None)
@given(specs=task_specs, thief=st.integers(0, NUM_CPUS - 1))
def test_steal_never_violates_affinity(specs, thief):
    sched, _tasks = build_smp_sched(specs)
    stolen = sched.steal_into(thief)
    if stolen is not None:
        assert stolen.can_run_on(thief)
        assert stolen in sched._queues[thief]


@settings(max_examples=60, deadline=None)
@given(specs=task_specs, thief=st.integers(0, NUM_CPUS - 1))
def test_steal_never_resurrects_exited_task(specs, thief):
    sched, tasks = build_smp_sched(specs)
    stolen = sched.steal_into(thief)
    if stolen is not None:
        assert stolen.state is TaskState.RUNNABLE
    # no EXITED task may remain claimable anywhere after the pass
    exited = [task for task in tasks if task.state is TaskState.EXITED]
    for cpu in range(NUM_CPUS):
        picked = sched.pick_for_cpu(cpu)
        assert picked not in exited


@settings(max_examples=60, deadline=None)
@given(specs=task_specs)
def test_smp_remove_is_idempotent_under_fuzz(specs):
    sched, tasks = build_smp_sched(specs)
    for task in tasks:
        sched.remove(task)
        sched.remove(task)
    assert sched.runnable_count == 0

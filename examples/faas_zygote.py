#!/usr/bin/env python3
"""Zygote FaaS workers: fork a pre-warmed runtime per request.

Reproduces the paper's FaaS use-case (U2 + U5): a MicroPython-like
runtime is initialized once; each function invocation forks it and
runs FunctionBench's float_operation in the child.  Compares μFork
against the CheriBSD-like monolithic baseline, including the modeled
multi-core throughput of Fig 6.

Run:  python examples/faas_zygote.py
"""

from repro.api import Session
from repro.apps.faas import ZygoteRuntime, faas_image
from repro.harness.experiments import fig6_faas_throughput
from repro.harness.report import print_table


def measure(os_name: str, isolation: str) -> float:
    session = Session(os=os_name, isolation=isolation, seed=0).boot()
    runtime = ZygoteRuntime(session.spawn(faas_image(), "zygote"))
    with session.machine.clock.measure() as warm_watch:
        runtime.warm()
    print(f"  zygote warm-up: {warm_watch.elapsed_ms:.2f} ms "
          f"(paid once, amortized over every request)")

    runtime.handle_request()  # warm the fork paths
    samples = 10
    with session.machine.clock.measure() as watch:
        for _ in range(samples):
            result = runtime.handle_request()
            assert result.ok
    per_request_us = watch.elapsed_us / samples
    print(f"  per-request latency (fork + run + reap): "
          f"{per_request_us:.1f} us")
    return per_request_us


def main() -> None:
    print("μFork (single address space, CoPA):")
    ufork_us = measure("ufork", isolation="fault")
    print("\nCheriBSD-like monolithic baseline:")
    cheribsd_us = measure("monolithic", isolation="full")
    print(f"\nμFork handles {cheribsd_us / ufork_us - 1:.0%} more "
          f"fork-bound requests per core (paper: +24%).\n")

    print("Modeled multi-core throughput (Fig 6):")
    print_table(fig6_faas_throughput())


if __name__ == "__main__":
    main()

"""The process-isolation helper itself: timeouts reach orphaned
grandchildren, crashes are reported by signal name, and a healthy
snippet can import the repro tree via the injected PYTHONPATH.
"""

from __future__ import annotations

import os
import signal
import time

from tests.isolated import run_isolated


def test_clean_exit_with_repro_on_path():
    result = run_isolated(
        "import repro.conform.dsl as dsl; print(len(dsl.SIG_NAMES))")
    assert result.returncode == 0, result.stderr
    assert not result.crashed and not result.timed_out
    assert result.stdout.strip() == "5"
    assert result.crash_reason == "exited with code 0"


def test_timeout_kills_the_whole_fork_tree():
    # parent forks a grandchild-spawning child then exits, so the
    # sleeper is reparented to init; the group kill must still get it
    code = (
        "import os, time\n"
        "pid = os.fork()\n"
        "if pid == 0:\n"
        "    if os.fork() == 0:\n"
        "        time.sleep(600)\n"
        "    os._exit(0)\n"
        "os.waitpid(pid, 0)\n"
        "time.sleep(600)\n"
    )
    start = time.monotonic()
    result = run_isolated(code, timeout=1.0)
    assert result.timed_out
    assert result.crash_reason == "timed out (process group killed)"
    assert time.monotonic() - start < 10
    # nothing from the group is left: a sleeper that survived the
    # killpg would still be burning its 600s here
    assert result.returncode != 0


def test_crash_is_reported_by_signal_name():
    result = run_isolated(
        "import os, signal; os.kill(os.getpid(), signal.SIGSEGV)")
    assert result.crashed
    assert "SIGSEGV" in result.crash_reason

"""The metrics registry: counters, gauges, histograms.

Every metric has a dotted ``layer.component.event`` name (at least two
lowercase ``[a-z0-9_]`` segments — see ``docs/OBSERVABILITY.md`` for the
naming contract).  Metrics are created on first use and accumulate for
the lifetime of their registry; values are plain integers/floats of
*simulated* quantities, so recording them never advances the clock.

Usage::

    registry = MetricsRegistry()
    registry.counter("hw.tlb.flush").inc()
    registry.gauge("kernel.sched.runqueue_depth").set(3)
    registry.histogram("span.syscall.fork").observe(54_000)
    registry.export()          # JSON-ready dict (see docs/OBSERVABILITY.md)
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Default histogram layout: log-spaced nanosecond buckets on a 1-2-5
#: decade series from 1 ns to 5×10⁹ ns, plus an overflow bucket.  The
#: layout is fixed so histograms from different runs/machines merge
#: bucket-for-bucket.
DEFAULT_BUCKETS_NS: Tuple[int, ...] = tuple(
    mantissa * 10 ** exponent
    for exponent in range(10)
    for mantissa in (1, 2, 5)
)


def check_metric_name(name: str) -> str:
    """Validate a metric/span name against the naming contract."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} violates the layer.component.event "
            f"contract (>= 2 dotted lowercase [a-z0-9_] segments)"
        )
    return name


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A point-in-time value (queue depths, resident frames, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket histogram of simulated-ns (or count) samples.

    ``bounds`` are inclusive upper bounds: a sample lands in the first
    bucket whose bound is >= the sample; larger samples land in the
    overflow bucket.  Exported buckets are non-cumulative.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "overflow",
                 "count", "sum", "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[int] = DEFAULT_BUCKETS_NS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"histogram {name}: bounds must be "
                             f"strictly increasing")
        self.bucket_counts = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = self._bucket_index(value)
        if index is None:
            self.overflow += 1
        else:
            self.bucket_counts[index] += 1

    def _bucket_index(self, value: float) -> Optional[int]:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo if lo < len(self.bounds) else None

    def export(self) -> Dict:
        """JSON-ready form; only non-empty buckets are listed, the
        overflow bucket's bound is ``null``."""
        buckets: List[List] = [
            [bound, count]
            for bound, count in zip(self.bounds, self.bucket_counts)
            if count
        ]
        if self.overflow:
            buckets.append([None, self.overflow])
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Name → metric store with get-or-create accessors.

    A name is bound to one metric kind forever; asking for the same
    name as a different kind raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unbound(name, self._gauges, self._histograms)
            metric = self._counters[name] = Counter(check_metric_name(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unbound(name, self._counters, self._histograms)
            metric = self._gauges[name] = Gauge(check_metric_name(name))
        return metric

    def histogram(self, name: str,
                  bounds: Sequence[int] = DEFAULT_BUCKETS_NS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unbound(name, self._counters, self._gauges)
            metric = self._histograms[name] = Histogram(
                check_metric_name(name), bounds)
        return metric

    @staticmethod
    def _check_unbound(name: str, *other_kinds: Dict) -> None:
        for kind in other_kinds:
            if name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as another kind")

    # -- introspection -------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def export(self) -> Dict:
        """The ``metrics`` section of the export schema."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {name: h.export()
                           for name, h in self.histograms().items()},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

"""Tests for the Redis snapshot restore path (RDB load), completing the
snapshot lifecycle: populate -> BGSAVE (fork) -> restart -> load."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.baselines import MonolithicOS
from repro.core import UForkOS
from repro.errors import FileNotFound
from repro.machine import Machine
from repro.mem.layout import KiB, MiB


def boot_store(os_=None, name="redis", nbuckets=64):
    os_ = os_ or UForkOS(machine=Machine())
    proc = os_.spawn(redis_image(1 * MiB), name)
    return os_, MiniRedis(GuestContext(os_, proc), nbuckets=nbuckets)


class TestRestore:
    def test_save_restart_load_roundtrip(self):
        os_, store = boot_store()
        expected = {}
        for index in range(30):
            key = b"k%03d" % index
            value = bytes([index]) * (50 + index * 3)
            store.set(key, value)
            expected[key] = value
        store.bgsave("/dump.rdb")

        # "restart": a brand new server process loads the dump
        _os, fresh = boot_store(os_, name="redis-restarted")
        assert fresh.load_from("/dump.rdb") == 30
        assert dict(fresh.items()) == expected

    def test_restore_missing_file(self):
        os_, store = boot_store()
        with pytest.raises(FileNotFound):
            store.load_from("/nope.rdb")

    def test_restore_corrupt_magic(self):
        os_, store = boot_store()
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        handle = os_.ramdisk.open("/bad.rdb", O_CREAT | O_WRONLY)
        handle.node.data = bytearray(b"NOTANRDB" + b"\x00" * 16)
        with pytest.raises(ValueError):
            store.load_from("/bad.rdb")

    def test_restore_after_fork_child_saved_it(self):
        """Full lifecycle on one machine: the snapshot a forked child
        wrote is loadable by a later process (cross-μprocess I/O)."""
        os_, store = boot_store()
        populate(store, 256 * KiB, value_size=32 * KiB)
        store.set(b"marker", b"pre-snapshot")
        store.bgsave("/snap.rdb")
        store.set(b"marker", b"post-snapshot")

        _os, replica = boot_store(os_, name="replica")
        replica.load_from("/snap.rdb")
        assert replica.get(b"marker") == b"pre-snapshot"
        assert replica.size() == store.size()

    def test_restore_identical_across_oses(self):
        dumps = {}
        for os_cls in (UForkOS, MonolithicOS):
            os_, store = boot_store(os_cls(machine=Machine()))
            store.set(b"x", b"42")
            store.bgsave("/d.rdb")
            _os, fresh = boot_store(os_, name="fresh")
            fresh.load_from("/d.rdb")
            dumps[os_cls.__name__] = dict(fresh.items())
        assert dumps["UForkOS"] == dumps["MonolithicOS"] == {b"x": b"42"}

"""Kernel invariant auditing.

"The key security invariant the kernel must enforce to maintain
isolation (R3) is that all capabilities (pointers) available to a
μprocess only grant access to memory falling within the area of the
virtual address space allocated to this μprocess" (§4.2).

:func:`audit_isolation` walks every live μprocess — every mapped frame
of its region and every register of every task — and reports each
capability that violates the invariant.  The test suite runs it after
adversarial workloads; it is also a debugging tool for anyone extending
the fork paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.cheri.capability import Capability
from repro.core.strategies import ShareNote


@dataclass(frozen=True)
class Violation:
    """One capability found outside its μprocess's authority."""

    pid: int
    location: str  # "vpn 0x..:offset" or "register <name>"
    cap: Capability
    reason: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"pid {self.pid} @ {self.location}: {self.reason} ({self.cap})"


def _cap_confined(cap: Capability, base: int, top: int) -> bool:
    if not cap.valid or cap.is_sentry:
        return True
    return base <= cap.base and cap.top <= top


def audit_isolation(os: Any) -> List[Violation]:
    """Check the §4.2 invariant for every live μprocess.

    Pages still *shared* with a fork peer (a ``ShareNote`` is present)
    legitimately hold the donor's capabilities — the strategy's fault
    handler relocates them before the child can load them — so those
    pages are audited against the note's source region instead.
    """
    page = os.machine.config.page_size
    violations: List[Violation] = []
    for proc in os.procs.alive():
        base, top = proc.region_base, proc.region_top
        shm_vpns = getattr(proc, "shm_vpns", set())
        for vpn in range(base // page, top // page):
            pte = os.space.page_table.get(vpn)
            if pte is None or vpn in shm_vpns:
                continue
            note = pte.note if isinstance(pte.note, ShareNote) else None
            if note is not None:
                # shared page: contents belong to the fork's source
                lo = note.regions.parent_base
                hi = note.regions.parent_top
            else:
                lo, hi = base, top
            frame = os.machine.phys.frame(pte.frame)
            for offset in frame.tagged_granules():
                cap = frame.load_cap(offset, os.machine.codec)
                if not (_cap_confined(cap, lo, hi)
                        or _cap_confined(cap, base, top)):
                    violations.append(Violation(
                        proc.pid, f"vpn {vpn:#x}+{offset:#x}", cap,
                        "memory capability escapes the μprocess region",
                    ))
        for task in proc.tasks:
            for name, cap in task.registers.cap_registers():
                if not _cap_confined(cap, base, top):
                    violations.append(Violation(
                        proc.pid, f"register {name}", cap,
                        "register capability escapes the μprocess region",
                    ))
    return violations

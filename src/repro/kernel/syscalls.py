"""The syscall entry layer with parameterized isolation (§3.6, §4.4).

Three deployment points, matching the paper's threat-model discussion:

* ``NONE`` — the whole system is trusted to function correctly (the
  Redis-snapshot trust model): no argument validation, no TOCTTOU
  copies.
* ``FAULT`` — non-adversarial fault isolation (the Nginx trust model):
  capability/memory checks on syscall arguments, but no TOCTTOU
  double-copies.
* ``FULL`` — adversarial isolation (the qmail/privilege-separation
  trust model): argument validation *and* TOCTTOU protection — user
  buffers are copied into kernel memory before checking and back after
  (§4.4 principle 4).

The entry mechanism itself is also parameterized: the SASOS enters the
kernel through a **sealed-capability sentry** (no trap); the monolithic
baseline pays a trap.  Both costs come from the machine's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Sequence

from repro.cheri.capability import Capability, OTYPE_SENTRY
from repro.errors import BadAddress, IsolationViolation


class IsolationLevel(Enum):
    NONE = "none"
    FAULT = "fault"
    FULL = "full"


@dataclass(frozen=True)
class IsolationConfig:
    """Which isolation mechanisms a deployment enables (R4)."""

    level: IsolationLevel
    validate_args: bool
    tocttou: bool

    @classmethod
    def none(cls) -> "IsolationConfig":
        return cls(IsolationLevel.NONE, validate_args=False, tocttou=False)

    @classmethod
    def fault(cls) -> "IsolationConfig":
        return cls(IsolationLevel.FAULT, validate_args=True, tocttou=False)

    @classmethod
    def full(cls) -> "IsolationConfig":
        return cls(IsolationLevel.FULL, validate_args=True, tocttou=True)

    @classmethod
    def from_level(cls, level: IsolationLevel) -> "IsolationConfig":
        return {
            IsolationLevel.NONE: cls.none,
            IsolationLevel.FAULT: cls.fault,
            IsolationLevel.FULL: cls.full,
        }[level]()


class SyscallLayer:
    """Charges entry, validation and TOCTTOU costs per syscall."""

    def __init__(self, machine: Any, trapless: bool,
                 isolation: IsolationConfig) -> None:
        self.machine = machine
        self.trapless = trapless
        self.isolation = isolation
        self.invocations = 0
        #: memoised ``syscall_<name>`` counter strings (the f-string on
        #: every entry shows up in syscall-heavy workload profiles)
        self._counter_names: Dict[str, str] = {}

    def enter(self, name: str, nargs: int = 0,
              buffer_bytes: Sequence[int] = ()) -> None:
        """Account one syscall: entry + checks + TOCTTOU copies.

        ``buffer_bytes`` lists the sizes of user buffers passed by
        reference (each is double-copied under TOCTTOU protection).

        Chaos: the ``kernel.syscall.{eintr,enomem,eagain}`` points fire
        here, *before any handler work* — every handler calls ``enter``
        as its first statement, so an injected entry fault leaves no
        partial state and the dispatch layer's bounded retry
        (:func:`repro.chaos.retry_syscall`) can safely re-run it.
        """
        chaos = self.machine.chaos
        if chaos.enabled:
            fault = chaos.syscall_fault(name)
            if fault is not None:
                raise fault
        costs = self.machine.costs
        if self.trapless:
            self.machine.charge(costs.sealed_syscall_ns, "syscall_entry")
        else:
            self.machine.charge(costs.trap_syscall_ns, "syscall_entry")
        if self.isolation.validate_args and nargs:
            self.machine.charge(costs.syscall_validate_ns * nargs,
                                "syscall_validate")
        if self.isolation.tocttou:
            for size in buffer_bytes:
                copied = min(size, costs.tocttou_max_copy_bytes)
                self.machine.charge(costs.tocttou_setup_ns, "tocttou")
                self.machine.charge(
                    costs.tocttou_copy_ns_per_byte * 2 * copied, "tocttou"
                )
        self.invocations += 1
        self.machine.counters.add("syscall")
        counter_name = self._counter_names.get(name)
        if counter_name is None:
            counter_name = f"syscall_{name}"
            self._counter_names[name] = counter_name
        self.machine.counters.add(counter_name)
        obs = self.machine.obs
        if obs.enabled:
            obs.count("kernel.syscall.entries")
            if self.isolation.tocttou and buffer_bytes:
                obs.count("kernel.syscall.tocttou_copies",
                          len(buffer_bytes))
        self.machine.trace("syscall", name=name)

    # -- argument validation helpers -------------------------------------------

    def validate_user_cap(self, proc: Any, cap: Capability,
                          size: int) -> None:
        """Reject user pointers outside the caller's region (EFAULT).

        Only active at FAULT isolation and above; at NONE the kernel
        trusts its callers (the deployment opted out, §4.4).
        """
        if not self.isolation.validate_args:
            return
        if not isinstance(cap, Capability) or not cap.valid:
            raise BadAddress("invalid capability passed to kernel")
        if cap.is_sealed:
            raise BadAddress("sealed capability passed to kernel")
        region_base = getattr(proc, "region_base", None)
        region_top = getattr(proc, "region_top", None)
        if region_base is not None and region_top:
            if not (region_base <= cap.cursor and
                    cap.cursor + size <= region_top):
                raise BadAddress(
                    f"user buffer [{cap.cursor:#x}+{size:#x}) outside "
                    f"μprocess region"
                )
        if not cap.in_bounds(cap.cursor, size):
            raise BadAddress("buffer exceeds capability bounds")


def check_syscall_gate(proc: Any, gate: Capability) -> None:
    """Verify kernel entry is via the process's sealed sentry capability.

    "Sealed capabilities restrict kernel entry points and there is no
    other way for a μprocess to invoke kernel code" (§4.4, principle 1).
    """
    expected = getattr(proc, "syscall_gate", None)
    if expected is None:
        raise IsolationViolation("process has no syscall gate")
    if not isinstance(gate, Capability) or not gate.valid:
        raise IsolationViolation("kernel entry with invalid capability")
    if not gate.is_sentry or gate.otype != OTYPE_SENTRY:
        raise IsolationViolation("kernel entry not through a sentry")
    if (gate.base, gate.length, gate.cursor) != (
            expected.base, expected.length, expected.cursor):
        raise IsolationViolation("kernel entry at unauthorized location")

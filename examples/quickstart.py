#!/usr/bin/env python3
"""Quickstart: boot a μFork SASOS, fork a μprocess, watch relocation.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.cheri.regfile import DDC


def main() -> None:
    # 1. Boot the single-address-space OS with the CoPA copy strategy
    #    (the paper's best performer) and non-adversarial isolation.
    session = Session(os="ufork", strategy="copa", isolation="fault").boot()

    # 2. Load a program: the μprocess gets a contiguous region of the
    #    one address space, bounded capabilities, a GOT, a static heap.
    parent = session.spawn(name="demo")
    print(f"parent pid={parent.pid} region="
          f"[{parent.proc.region_base:#x}, {parent.proc.region_top:#x})")

    # 3. Build a linked structure in guest memory: real tagged
    #    capabilities that fork will have to find and relocate.
    head = parent.malloc(32)
    tail = parent.malloc(64)
    parent.store_cap(head, tail)        # head -> tail pointer
    parent.store(tail, b"\x00" * 16)    # end of chain (no tag)
    parent.store(tail, b"hello from the parent", 16)
    parent.set_reg("c9", head)          # root pointer in a register

    # 4. Fork.  The child's memory lands at a *different* place in the
    #    same address space; every capability is rebased.
    with session.machine.clock.measure() as watch:
        child = parent.fork()
    print(f"forked child pid={child.pid} in {watch.elapsed_us:.1f} "
          f"simulated us")
    print(f"child region=[{child.proc.region_base:#x}, "
          f"{child.proc.region_top:#x})")

    # 5. The child walks the relocated chain through its own registers.
    child_head = child.reg("c9")
    child_tail = child.load_cap(child_head)
    message = child.load(child_tail, 21, 16)
    print(f"child reads through relocated pointers: {message!r}")
    assert child.proc.region_base <= child_tail.base \
        < child.proc.region_top

    # 6. Divergence: writes on either side are invisible to the other.
    child.store(child_tail, b"hello from the child!", 16)
    assert parent.load(tail, 21, 16) == b"hello from the parent"
    print("parent and child memory have diverged, as POSIX demands")

    # 7. Capability bounds confine the child to its region.
    ddc = child.reg(DDC)
    print(f"child DDC bounds: [{ddc.base:#x}, {ddc.top:#x}) — "
          f"the parent's region is unreachable")

    # 8. Normal POSIX lifecycle.
    child.exit(0)
    pid, status = parent.wait(child.pid)
    print(f"reaped child {pid} with status {status}")
    print(f"page copies performed lazily: "
          f"{session.machine.counters.get('fork_page_copies')}")


if __name__ == "__main__":
    main()

"""UForkOS: the single-address-space OS with μFork.

Walks the paper's design end to end: one address space shared by the
kernel and every μprocess (§3.7); fork by copying the parent μprocess's
memory to a freshly reserved contiguous area (§3.5); eager copy +
relocation of GOT and allocator-metadata pages; lazy CoA/CoPA sharing
for everything else (§3.8); CHERI-bounded capabilities and sealed
syscall gates for isolation (§4.3, §4.4).
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from repro.chaos.faults import InjectedForkFailure
from repro.chaos.recovery import Transaction
from repro.cheri.capability import Capability, Perm
from repro.core.isolation import (
    IsolationConfig,
    make_syscall_gate,
)
from repro.core.relocate import (
    RegionPair,
    record_flow,
    relocate_copied_frames,
    relocate_registers,
)
from repro.core.strategies import (
    CopyStrategy,
    ShareNote,
    copy_page_for_child,
    handle_fork_fault,
    handle_fork_write_run,
    resolve_all_pending,
    setup_shared_page,
    setup_shared_pages,
)
from repro.core.uprocess import load_uprocess
from repro.hw.paging import AddressSpace, PagePerm
from repro.kernel.base import AbstractOS, SharedMemoryObject
from repro.kernel.syscalls import IsolationLevel, check_syscall_gate
from repro.kernel.task import Process
from repro.machine import Machine
from repro.mem.layout import ProgramImage
from repro.mem.vspace import VirtualAreaAllocator

#: kernel image location in the single address space
KERNEL_BASE = 0x0000_0001_0000_0000
KERNEL_SIZE = 16 * 1024 * 1024
#: the syscall-handler entry point targeted by sealed gates
GATE_ADDR = KERNEL_BASE + 0x1000
#: pages of kernel code/data actually mapped (for accounting)
KERNEL_MAPPED_PAGES = 64

#: window of the address space dedicated to μprocess regions
UPROC_WINDOW_BASE = 0x0000_0100_0000_0000
UPROC_WINDOW_SIZE = 1 << 40  # 1 TiB of VA: fragmentation is a non-issue (§6)


class UForkOS(AbstractOS):
    """A Unikraft-like SASOS extended with μFork."""

    kind = "ufork"

    #: kernel-side per-process overhead (task struct, kernel stack,
    #: fd table) counted by the memory metric
    KERNEL_PROC_OVERHEAD = 48 * 1024

    def __init__(self, machine: Optional[Machine] = None,
                 copy_strategy: CopyStrategy = CopyStrategy.COPA,
                 isolation: Optional[IsolationConfig] = None,
                 aslr: bool = False,
                 trapless_syscalls: bool = True,
                 eager_copy: bool = True) -> None:
        super().__init__(
            machine=machine,
            trapless_syscalls=trapless_syscalls,
            isolation=isolation or IsolationConfig.fault(),
            same_address_space=True,
        )
        self.copy_strategy = copy_strategy
        #: §3.5 step 1: proactively copy GOT + allocator-metadata pages
        #: at fork.  Disabling this is an ablation: still *correct*
        #: under CoA/CoPA (the faults catch every stale reference) but
        #: moves the cost to the child's first touches.
        self.eager_copy = eager_copy
        machine = self.machine

        #: the one address space (kernel + all μprocesses)
        self.space = AddressSpace(machine, "sasos")
        self.space.fault_handler = self._handle_fault
        self.space.write_break_hook = handle_fork_write_run
        #: pid -> (lo, hi) demand-zero heap ranges (dynamic heaps, §4.2)
        self._demand_zero = {}

        self.kernel_root = Capability.root(machine.config.va_size)
        from repro.core.libraries import LibraryRegistry
        self.libraries = LibraryRegistry(machine)
        self.vspace = VirtualAreaAllocator(
            UPROC_WINDOW_BASE, UPROC_WINDOW_SIZE, machine.config.page_size,
            aslr_rng=machine.rng if aslr else None,
        )
        self._boot()

    # ------------------------------------------------------------------
    # Boot (§4.1: init capability features, exception vectors, gates)
    # ------------------------------------------------------------------

    def _boot(self) -> None:
        page = self.machine.config.page_size
        for index in range(KERNEL_MAPPED_PAGES):
            frame = self.machine.phys.alloc(zero=True, charge=False)
            # PagePerm.NONE: μprocess access to kernel memory faults;
            # the kernel itself uses privileged accesses.
            self.space.map_page(KERNEL_BASE // page + index, frame,
                                PagePerm.NONE)
        self.kernel_code_cap = (
            self.kernel_root
            .set_bounds(KERNEL_BASE, KERNEL_SIZE)
            .with_cursor(KERNEL_BASE)
        )
        self.syscall_gate = make_syscall_gate(self.kernel_code_cap, GATE_ADDR)

    # ------------------------------------------------------------------
    # AbstractOS interface
    # ------------------------------------------------------------------

    def space_of(self, proc: Process) -> AddressSpace:
        return self.space

    def spawn(self, image: ProgramImage, name: str) -> Process:
        proc = load_uprocess(self, image, name)
        from repro.core.libraries import map_library
        for lib_name in getattr(image, "shared_libs", ()):
            lib = self.libraries.get_or_create(lib_name)
            map_library(self, proc, lib)
        return proc

    def syscall(self, proc: Process, name: str, *args: Any,
                gate: Optional[Capability] = None) -> Any:
        """Kernel entry: through the sealed sentry gate when isolation
        is enabled (§4.4 principle 1)."""
        if self.isolation.level is not IsolationLevel.NONE:
            check_syscall_gate(proc,
                               gate if gate is not None else proc.syscall_gate)
        return super().syscall(proc, name, *args, gate=gate)

    # ------------------------------------------------------------------
    # Fault dispatch: fork-sharing faults, then demand-zero heap paging
    # ------------------------------------------------------------------

    def _handle_fault(self, space: AddressSpace, vaddr: int, kind) -> bool:
        # CoW/CoPA fault resolution mutates shared PTE state, so on an
        # SMP machine it runs under the fault spinlock (free at 1 CPU).
        machine = self.machine
        if machine.num_cpus <= 1:
            # CONFIG_SMP=n: acquire/release are no-ops at 1 CPU, so
            # only the guard's IRQ-disable section is kept (inline —
            # the fault path runs this once per CoW break)
            machine.irq_depth += 1
            try:
                if handle_fork_fault(space, vaddr, kind):
                    return True
                return self._handle_demand_zero(vaddr)
            finally:
                machine.irq_depth -= 1
        with machine.locks.fault.held():
            if handle_fork_fault(space, vaddr, kind):
                return True
            return self._handle_demand_zero(vaddr)

    def _handle_demand_zero(self, vaddr: int) -> bool:
        page = self.machine.config.page_size
        vpn = vaddr // page
        if self.space.page_table.get(vpn) is not None:
            return False
        for lo, hi in self._demand_zero.values():
            if lo <= vaddr < hi:
                frame = self.machine.phys.alloc(zero=True)
                self.space.map_page(vpn, frame, PagePerm.rwc())
                self.machine.counters.add("demand_zero_pages")
                return True
        return False

    def _register_demand_heap(self, proc: Process) -> None:
        if proc.layout.image.heap_initial is None:
            return
        heap_base, heap_top = proc.layout.span("heap")
        self._demand_zero[proc.pid] = (heap_base, heap_top)

    # ------------------------------------------------------------------
    # μFork itself (§3.5)
    # ------------------------------------------------------------------

    def fork(self, proc: Process) -> Process:
        """μFork (§3.5).  Observability: phases run inside ``fixed`` /
        ``resolve_pending`` / ``copy_pages`` / ``registers`` /
        ``allocator`` spans, so one fork's simulated cost decomposes
        hierarchically under its ``syscall.fork`` span (the paper's
        cost-model tree; see docs/OBSERVABILITY.md for a worked
        example).

        Fork is **transactional**: every mutation registers an undo, and
        a fork that dies mid-flight (an injected ``core.ufork.abort.*``
        fault, frame exhaustion, or any other error) is rolled back —
        no orphaned frames, VA reservations, PIDs, or fd-table entries
        survive (docs/CHAOS.md, tests/test_fork_rollback.py).  Injected
        failures re-raise as the retriable
        :class:`~repro.chaos.InjectedForkFailure` so the syscall layer's
        bounded retry can re-attempt the whole fork."""
        machine = self.machine
        strategy = self._effective_strategy(machine.chaos)
        tx = Transaction()
        # Fork serializes against concurrent forks/faults on other CPUs
        # (a no-op spinlock while num_cpus == 1).
        with machine.locks.fork.held():
            try:
                child = self._fork_phases(proc, strategy, tx)
            except Exception as exc:
                tx.rollback()
                machine.counters.add("fork_rollbacks")
                machine.obs.count("core.ufork.fork_rollbacks")
                machine.trace("fork_rollback", parent=proc.pid,
                              reason=type(exc).__name__)
                point = getattr(exc, "point", None)
                if point is not None:
                    machine.chaos.note_recovery(point)
                if getattr(exc, "injected", False) and \
                        not isinstance(exc, InjectedForkFailure):
                    raise InjectedForkFailure(
                        f"fork of pid {proc.pid} aborted by injected fault "
                        f"({exc})") from exc
                raise
            tx.commit()
        return child

    def _effective_strategy(self, chaos: Any) -> CopyStrategy:
        """Graceful degradation (chaos survival): under an injected
        capability-load fault storm the lazy strategies fall down the
        ladder CoPA → CoA → eager copy, trading fork-time cost for
        immunity to further lazy-path faults."""
        configured = self.copy_strategy
        tiers = chaos.degrade_tiers()
        if tiers <= 0:
            return configured
        ladder = (CopyStrategy.COPA, CopyStrategy.COA,
                  CopyStrategy.FULL_COPY)
        index = ladder.index(configured)
        degraded = ladder[min(index + tiers, len(ladder) - 1)]
        if degraded is not configured:
            self.machine.obs.count("core.ufork.degraded_forks")
            self.machine.trace("fork_degraded", configured=configured.value,
                               used=degraded.value)
        return degraded

    def _abort_point(self, point: str, proc: Process) -> None:
        """Fire one chaos fork-abort boundary (phase-transition check)."""
        chaos = self.machine.chaos
        if chaos.enabled and chaos.should_fire(point):
            failure = InjectedForkFailure(
                f"injected fork abort at {point} (parent pid {proc.pid})")
            failure.point = point
            raise failure

    def _fork_phases(self, proc: Process, strategy: CopyStrategy,
                     tx: Transaction) -> Process:
        machine = self.machine
        obs = machine.obs
        page = machine.config.page_size
        with obs.span("fixed"):
            machine.charge(machine.costs.ufork_fixed_ns, "fork_fixed")

        # A process forking while some of its own pages are still shared
        # with *its* parent first stabilizes its image, keeping every
        # relocation a single-hop rebase.  (Resolving only makes shared
        # pages private — an always-valid state — so no undo is needed.)
        with obs.span("resolve_pending"):
            resolve_all_pending(self.space, proc.region_base, proc.region_top)

        # 1. reserve the child's contiguous area and mirror the layout
        child_base = self.vspace.reserve(proc.region_size)
        tx.on_abort(lambda: self.vspace.release(child_base))
        child = Process(self.pids.allocate(), proc.name, parent=proc)
        tx.on_abort(lambda: proc.children.remove(child))
        child.layout = proc.layout.rebased(child_base)
        child.region_base = child.layout.region_base
        child.region_top = child.layout.region_top
        child.fdtable = proc.fdtable.fork_copy(machine)
        tx.on_abort(child.fdtable.close_all)
        from repro.kernel import signals as _signals
        child.signal_state = _signals.signal_state(proc).fork_copy()
        child.syscall_gate = self.syscall_gate
        self._abort_point("core.ufork.abort.reserve", proc)

        regions = RegionPair(
            parent_base=proc.region_base, parent_top=proc.region_top,
            child_base=child.region_base, child_top=child.region_top,
        )
        delta_pages = (child.region_base - proc.region_base) // page

        # 2. duplicate parent state page by page
        if self.eager_copy or strategy is CopyStrategy.FULL_COPY:
            eager = self._eager_vpns(proc)
        else:
            eager = set()
        shm_vpns = getattr(proc, "shm_vpns", set())
        lo = proc.region_base // page
        hi = proc.region_top // page
        # undo: unmap whatever landed in the child's region and lift the
        # write protection this fork placed on parent pages (registered
        # up front so an abort *inside* the loop still cleans up)
        newly_shared: List[Any] = []
        tx.on_abort(lambda: self._undo_fork_pages(child, newly_shared))
        with obs.span("copy_pages"):
            if not self._copy_pages_bulk(strategy, regions, delta_pages,
                                         eager, shm_vpns, lo, hi,
                                         newly_shared):
                for vpn in range(lo, hi):
                    parent_pte = self.space.page_table.get(vpn)
                    if parent_pte is None:
                        continue  # demand areas (mmap window) may be sparse
                    child_vpn = vpn + delta_pages
                    if vpn in shm_vpns:
                        # MAP_SHARED memory: same frames, by design (§3.7)
                        self.space.map_page(child_vpn, parent_pte.frame,
                                            parent_pte.perms, incref=True)
                        machine.charge(machine.costs.pte_bulk_share_ns,
                                       "fork_map")
                    elif vpn in eager or \
                            strategy is CopyStrategy.FULL_COPY:
                        orig = (parent_pte.note.orig_perms
                                if isinstance(parent_pte.note, ShareNote)
                                else parent_pte.perms)
                        copy_page_for_child(self.space, child_vpn,
                                            parent_pte.frame,
                                            orig, regions, map_new=True)
                    else:
                        was_shared = isinstance(parent_pte.note, ShareNote)
                        setup_shared_page(self.space, vpn, child_vpn,
                                          strategy, regions)
                        if not was_shared:
                            newly_shared.append(parent_pte)
        self._abort_point("core.ufork.abort.copy_pages", proc)

        # §2.2: μFork knows the μprocess's CPU footprint, so the
        # write-protect shootdown covers only CPUs that may cache its
        # translations — for a single-threaded parent that never
        # migrated, that is zero IPIs (the initiating CPU flushes
        # locally as part of the PTE updates above).
        if machine.num_cpus > 1:
            machine.tlb_shootdown(proc.cpu_footprint(),
                                  reason="fork_protect")

        # shared-memory bindings carry over to the child's region
        child.shm_vpns = {vpn + delta_pages for vpn in shm_vpns}
        child.shm_bindings = list(getattr(proc, "shm_bindings", []))
        child.mmap_offset = getattr(proc, "mmap_offset", 0)
        # shared-library capabilities point at the child's own mapping
        delta = child.region_base - proc.region_base
        child.lib_caps = {
            name: cap.rebased(delta)
            for name, cap in getattr(proc, "lib_caps", {}).items()
        }

        # 3. post-copy phase: new task, relocated registers, allocator
        task = child.add_task()
        with obs.span("registers"):
            task.registers.copy_from(proc.main_task().registers)
            relocate_registers(machine, task.registers, regions)
        self._abort_point("core.ufork.abort.registers", proc)

        with obs.span("allocator"):
            heap_cap = (
                self.kernel_root
                .set_bounds(child.layout.base("heap"),
                            child.layout.size("heap"))
                .with_cursor(child.layout.base("heap"))
                .and_perms(Perm.data_rw())
            )
            child.allocator = type(proc.allocator)(
                machine, self.space, heap_cap,
                max_blocks=proc.allocator.max_blocks,
            )
            child.allocator.attach_lazy()
        self._abort_point("core.ufork.abort.allocator", proc)

        self._register_demand_heap(child)
        self.procs.add(child)
        self.sched.add(task)
        machine.counters.add("fork")
        obs.count("core.ufork.forks")
        machine.trace("fork", parent=proc.pid, child=child.pid,
                      strategy=strategy.value)
        record_flow(machine, "fork", proc.pid, child.pid,
                    child.region_base, child.region_top, strategy.value)
        return child

    def _copy_pages_bulk(self, strategy: CopyStrategy, regions: RegionPair,
                         delta_pages: int, eager: Set[int],
                         shm_vpns: Set[int], lo: int, hi: int,
                         newly_shared: List[Any]) -> bool:
        """Vectorized page-duplication phase (see docs/ARCHITECTURE.md).

        One region sweep classifies every mapping, then each class is
        handled with bulk primitives: shared-memory pages and eager
        copies become ``map_run`` slices over batch-copied frames, and
        CoA/CoPA sharing goes through
        :func:`repro.core.strategies.setup_shared_pages`.  The
        simulated charge/counter stream is sum-equal to the per-page
        loop, so it is only taken when batching is unobservable:
        flat-table space, no tracer, chaos off, integral PTE costs, and
        enough free frames that the loop cannot hit mid-copy OOM
        (whose partial state the per-page loop must reproduce).
        Returns False when the caller must run the per-page loop.
        """
        machine = self.machine
        space = self.space
        if not getattr(space, "_perf", False) or machine.tracer is not None \
                or machine.chaos.enabled:
            return False
        costs = machine.costs
        if costs.pte_bulk_share_ns != int(costs.pte_bulk_share_ns) or \
                costs.pte_coa_extra_ns != int(costs.pte_coa_extra_ns) or \
                costs.pte_protect_ns != int(costs.pte_protect_ns):
            return False
        full = strategy is CopyStrategy.FULL_COPY
        shm_items: List[Any] = []
        copy_items: List[Any] = []
        share_items: List[Any] = []
        for item in space.mapped_items(lo, hi):
            vpn = item[0]
            if vpn in shm_vpns:
                shm_items.append(item)
            elif full or vpn in eager:
                copy_items.append(item)
            else:
                share_items.append((vpn, item[1], item[2], item[4]))
        phys = machine.phys
        if copy_items and phys.free_frames() < len(copy_items):
            return False
        bulk_ns = int(costs.pte_bulk_share_ns)

        # MAP_SHARED memory: same frames, by design (§3.7)
        position = 0
        nshm = len(shm_items)
        while position < nshm:
            vpn, _frame, perms_int, _cow, _note = shm_items[position]
            end = position + 1
            while end < nshm and \
                    shm_items[end][0] == vpn + (end - position) and \
                    shm_items[end][2] == perms_int:
                end += 1
            space.map_run(vpn + delta_pages,
                          [item[1] for item in shm_items[position:end]],
                          PagePerm(perms_int), incref=True)
            position = end
        if nshm:
            machine.charge(bulk_ns * nshm, "fork_map")

        # eager / full copies: batch-copy the frames, relocate, then
        # map the child runs at the original (pre-share) permissions
        ncopy = len(copy_items)
        if ncopy:
            src_numbers = [item[1] for item in copy_items]
            dsts = phys.copy_frames(src_numbers, preserve_tags=True)
            relocate_copied_frames(machine, phys, src_numbers, dsts,
                                   regions)
            position = 0
            while position < ncopy:
                vpn, _frame, perms_int, _cow, note = copy_items[position]
                orig = int(note.orig_perms) if isinstance(note, ShareNote) \
                    else perms_int
                end = position + 1
                while end < ncopy:
                    nvpn, _nframe, nperms, _ncow, nnote = copy_items[end]
                    if nvpn != vpn + (end - position):
                        break
                    norig = int(nnote.orig_perms) \
                        if isinstance(nnote, ShareNote) else nperms
                    if norig != orig:
                        break
                    end += 1
                space.map_run(vpn + delta_pages, dsts[position:end],
                              PagePerm(orig))
                position = end
            machine.charge(bulk_ns * ncopy, "fork_map")
            machine.counters.add("fork_page_copies", ncopy)
            obs = machine.obs
            if obs.enabled:
                obs.count("core.strategies.eager_page_copies", ncopy)
                obs.count("trace.fork_page_copy", ncopy)

        if share_items:
            setup_shared_pages(space, share_items, delta_pages, strategy,
                               regions, newly_shared)
        return True

    def _undo_fork_pages(self, child: Process, newly_shared: List[Any]) -> None:
        """Rollback of the page-duplication phase: unmap every page the
        aborted fork mapped into the child's region (dropping its frame
        references) and restore original permissions on parent pages it
        write-protected.  ``newly_shared`` holds parent vpns (bulk
        path) or live PTEs (per-page path)."""
        page = self.machine.config.page_size
        self.space.unmap_range(child.region_base // page,
                               child.region_top // page)
        for entry in newly_shared:
            if isinstance(entry, int):
                note = self.space.note_of(entry)
                if isinstance(note, ShareNote):
                    self.space.protect_page(entry, note.orig_perms)
                    self.space.set_note(entry, None)
            elif isinstance(entry.note, ShareNote):
                entry.perms = entry.note.orig_perms
                entry.note = None

    def _eager_vpns(self, proc: Process) -> Set[int]:
        """Pages copied proactively at fork: GOT + allocator metadata
        (§3.5 step 1)."""
        page = self.machine.config.page_size
        vpns: Set[int] = set()
        got_base, got_top = proc.layout.span("got")
        vpns.update(range(got_base // page, got_top // page))
        if proc.allocator is not None:
            meta_base, meta_top = proc.allocator.metadata_span()
            vpns.update(range(meta_base // page,
                              (meta_top + page - 1) // page))
        return vpns

    # ------------------------------------------------------------------
    # Exit / teardown
    # ------------------------------------------------------------------

    def _teardown_memory(self, proc: Process) -> None:
        machine = self.machine
        page = machine.config.page_size
        self._demand_zero.pop(proc.pid, None)
        machine.charge(machine.costs.uexit_ns, "exit")
        self.space.unmap_range(proc.region_base // page,
                               proc.region_top // page)
        self.vspace.release(proc.region_base)

    # ------------------------------------------------------------------
    # Anonymous mmap and shared memory (§3.7, §4.2)
    # ------------------------------------------------------------------

    def sys_mmap(self, proc: Process, size: int) -> Capability:
        """Anonymous private mapping inside the caller's mmap window;
        returns a capability confined to the calling μprocess (§4.2)."""
        self._enter(proc, "mmap", 1)
        base, pages = self._mmap_window_alloc(proc, size)
        page = self.machine.config.page_size
        for index in range(pages):
            frame = self.machine.phys.alloc(zero=True)
            self.space.map_page(base // page + index, frame, PagePerm.rwc())
        return self._window_cap(proc, base, pages * page)

    def _map_shared(self, proc: Process, shm: SharedMemoryObject) -> Capability:
        base, pages = self._mmap_window_alloc(
            proc, shm.size_pages * self.machine.config.page_size
        )
        page = self.machine.config.page_size
        if pages != shm.size_pages:
            pages = shm.size_pages
        vpns = []
        for index, frame in enumerate(shm.frames):
            vpn = base // page + index
            self.space.map_page(vpn, frame, PagePerm.rwc(), incref=True)
            vpns.append(vpn)
        if not hasattr(proc, "shm_vpns"):
            proc.shm_vpns = set()
            proc.shm_bindings = []
        proc.shm_vpns.update(vpns)
        proc.shm_bindings.append((base - proc.layout.base("mmap"), shm))
        # shared windows carry data authority only: stripping the cap
        # load/store perms makes the window a capability firewall, so a
        # μprocess can never smuggle tagged authority to a peer through
        # shared memory (repro.sec `shm_cap_smuggle`)
        return self._window_cap(proc, base, len(shm.frames) * page) \
            .without_perms(Perm.LOAD_CAP | Perm.STORE_CAP)

    def _mmap_window_alloc(self, proc: Process, size: int):
        page = self.machine.config.page_size
        pages = (size + page - 1) // page
        offset = getattr(proc, "mmap_offset", 0)
        window_base, window_top = proc.layout.span("mmap")
        base = window_base + offset
        if base + pages * page > window_top:
            from repro.errors import OutOfMemory
            raise OutOfMemory("mmap window exhausted")
        proc.mmap_offset = offset + pages * page
        return base, pages

    def _window_cap(self, proc: Process, base: int, size: int) -> Capability:
        region = (
            self.kernel_root
            .set_bounds(base, size)
            .with_cursor(base)
            .and_perms(Perm.data_rw())
        )
        return region

    # ------------------------------------------------------------------
    # Migration / VA compaction (paper §6 future work)
    # ------------------------------------------------------------------

    def migrate(self, proc: Process) -> int:
        """Move a live μprocess to a freshly reserved area, relocating
        every capability (see :mod:`repro.core.migrate`)."""
        from repro.core.migrate import migrate as _migrate
        return _migrate(self, proc)

    def compact(self):
        """Compact the μprocess window (squeeze out VA fragmentation)."""
        from repro.core.migrate import compact as _compact
        return _compact(self)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def memory_of(self, proc: Process) -> float:
        """Proportional resident set of a μprocess plus kernel overhead
        (the Fig 8 metric)."""
        return (
            self.space.resident_bytes(proc.region_base, proc.region_top,
                                      proportional=True)
            + self.KERNEL_PROC_OVERHEAD
        )

    def private_bytes(self, proc: Process) -> int:
        """Bytes of the region backed by frames only this process maps."""
        page = self.machine.config.page_size
        total = 0
        for vpn in range(proc.region_base // page, proc.region_top // page):
            pte = self.space.page_table.get(vpn)
            if pte is not None and self.machine.phys.refcount(pte.frame) == 1:
                total += page
        return total

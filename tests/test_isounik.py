"""Tests for the Iso-Unik-like baseline (Table 1's page-tables class)."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import GREETING, hello_world_image, run_hello
from repro.apps import unixbench
from repro.baselines import IsoUnikOS, MonolithicOS
from repro.core import UForkOS
from repro.machine import Machine


def boot(os_cls=IsoUnikOS):
    os_ = os_cls(machine=Machine())
    return os_, GuestContext(os_, os_.spawn(hello_world_image(), "app"))


class TestIsoUnik:
    def test_apps_run_unmodified(self):
        _os, ctx = boot()
        assert run_hello(ctx) == GREETING

    def test_fork_semantics(self):
        os_, ctx = boot()
        buf = ctx.malloc(32)
        ctx.store(buf, b"pre-fork")
        child = ctx.fork()
        ctx.store(buf, b"mutated!")
        assert child.load(buf, 8) == b"pre-fork"  # same VA, own AS
        child.exit(1)
        assert ctx.wait(child.pid) == (child.pid, 1)

    def test_cheap_syscalls_like_a_unikernel(self):
        iso_os, iso_ctx = boot(IsoUnikOS)
        mono_os, mono_ctx = boot(MonolithicOS)
        iso = unixbench.syscall_rate(iso_ctx, calls=100)
        mono = unixbench.syscall_rate(mono_ctx, calls=100)
        assert iso.per_syscall_ns < mono.per_syscall_ns

    def test_context_switches_flush_tlb_again(self):
        """The lightweightness loss §2.3 calls out: retrofitting page
        tables brings the TLB flushes back."""
        os_, ctx = boot()
        unixbench.context1(ctx, target=5)
        assert os_.machine.counters.get("tlb_flush") > 0

    def test_statically_linked(self):
        os_, ctx = boot()
        image_pages = None
        # no library window beyond the image: region ends at the layout
        assert ctx.proc.region_top == ctx.proc.layout.region_top

    def test_fork_latency_between_ufork_and_monolithic(self):
        latencies = {}
        for os_cls in (UForkOS, IsoUnikOS, MonolithicOS):
            os_, ctx = boot(os_cls)
            warm = ctx.fork()
            warm.exit(0)
            ctx.wait(warm.pid)
            with os_.machine.clock.measure() as watch:
                ctx.fork()
            latencies[os_cls] = watch.elapsed_ns
        assert latencies[UForkOS] < latencies[IsoUnikOS] \
            < latencies[MonolithicOS]

    def test_no_allocator_retouch_in_children(self):
        os_, ctx = boot()
        block = ctx.malloc(8 * 4096)
        ctx.store(block, b"z" * (8 * 4096))
        child = ctx.fork()
        before = os_.machine.counters.get("cow_page_copies")
        child.syscall("getpid")
        assert os_.machine.counters.get("cow_page_copies") == before

"""CLI smoke tests and a syscall-interface fuzzer.

The fuzzer models an adversarial/buggy libc: random syscall names and
argument soups.  The kernel contract: every invocation either succeeds
or raises a typed :class:`~repro.errors.SimError` — never a raw
TypeError/KeyError escaping the kernel, and never corruption of other
μprocesses (verified with the isolation auditor)."""

import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.core import UForkOS
from repro.core.audit import audit_isolation
from repro.errors import SimError
from repro.machine import Machine


class TestCli:
    @pytest.mark.slow
    def test_harness_cli_runs_fig8(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.harness", "--only", "fig8"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "Figure 8" in result.stdout
        assert "ufork" in result.stdout
        assert "nephele" in result.stdout

    @pytest.mark.slow
    def test_harness_cli_rejects_unknown(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.harness", "--only", "nope"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode != 0


SYSCALL_NAMES = st.sampled_from([
    "open", "close", "read", "write", "lseek", "dup", "unlink", "rename",
    "stat", "mkdir", "pipe", "getpid", "waitpid", "yield", "kill",
    "signal", "sigpending", "listen", "accept", "connect", "send",
    "recv", "mmap", "shm_open", "shm_map", "mq_open", "mq_send",
    "mq_receive", "thread_create", "totally_bogus",
])

ARGS = st.lists(
    st.one_of(
        st.integers(-10, 1 << 20),
        st.text(max_size=12),
        st.binary(max_size=24),
        st.none(),
    ),
    max_size=3,
)


class TestSyscallFuzz:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(calls=st.lists(st.tuples(SYSCALL_NAMES, ARGS), max_size=12))
    def test_prop_kernel_never_leaks_internal_errors(self, calls):
        os_ = UForkOS(machine=Machine())
        victim = GuestContext(os_, os_.spawn(hello_world_image(), "victim"))
        attacker = GuestContext(os_, os_.spawn(hello_world_image(), "fuzz"))
        for name, args in calls:
            if not attacker.proc.alive:
                break
            try:
                attacker.syscall(name, *args)
            except SimError:
                pass  # typed kernel error: the contract
            except (TypeError, ValueError, AttributeError, KeyError,
                    IndexError):
                # argument-shape errors at the Python layer stand in for
                # the kernel's EINVAL on malformed register contents —
                # acceptable as long as kernel state stays consistent
                pass
        # no matter what the fuzzer did: the victim is unharmed and the
        # isolation invariant holds system-wide
        assert victim.proc.alive
        assert victim.syscall("getpid") == victim.pid
        assert audit_isolation(os_) == []

"""Tests for shared-library support (paper §3.7)."""

import pytest

from repro.apps.guest import GuestContext
from repro.cheri.capability import Perm
from repro.core import CopyStrategy, UForkOS
from repro.errors import PermissionFault
from repro.machine import Machine
from repro.mem.layout import KiB, ProgramImage


def lib_image(*libs):
    return ProgramImage("app", heap_size=128 * KiB, mmap_size=512 * KiB,
                        shared_libs=tuple(libs))


def boot(**kwargs):
    return UForkOS(machine=Machine(), **kwargs)


class TestMapping:
    def test_library_mapped_at_load(self):
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(lib_image("libc"), "app"))
        cap = ctx.proc.lib_caps["libc"]
        assert ctx.proc.region_base <= cap.base < ctx.proc.region_top
        assert cap.has_perm(Perm.LOAD | Perm.EXECUTE)

    def test_library_readable_not_writable(self):
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(lib_image("libc"), "app"))
        cap = ctx.proc.lib_caps["libc"]
        content = ctx.load(cap, 20, 16)
        assert content.startswith(b"libc")
        with pytest.raises(PermissionFault):
            ctx.store(cap, b"patch!")

    def test_frames_shared_across_processes(self):
        os_ = boot()
        a = GuestContext(os_, os_.spawn(lib_image("libc"), "a"))
        frames_after_a = os_.machine.phys.allocated_frames
        b = GuestContext(os_, os_.spawn(lib_image("libc"), "b"))
        lib = os_.libraries.get_or_create("libc")
        # no new frames for the library itself on the second load
        for frame in lib.frames:
            assert os_.machine.phys.refcount(frame) >= 3  # lib + a + b

    def test_two_libraries_disjoint_windows(self):
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(lib_image("libc", "libssl"), "a"))
        libc = ctx.proc.lib_caps["libc"]
        libssl = ctx.proc.lib_caps["libssl"]
        assert libc.top <= libssl.base or libssl.top <= libc.base

    def test_same_content_visible_to_all(self):
        os_ = boot()
        a = GuestContext(os_, os_.spawn(lib_image("libm"), "a"))
        b = GuestContext(os_, os_.spawn(lib_image("libm"), "b"))
        assert a.load(a.proc.lib_caps["libm"], 32) == \
            b.load(b.proc.lib_caps["libm"], 32)


class TestForkAndMigrate:
    def test_fork_shares_library_frames(self):
        os_ = boot(copy_strategy=CopyStrategy.COPA)
        parent = GuestContext(os_, os_.spawn(lib_image("libc"), "app"))
        lib = os_.libraries.get_or_create("libc")
        refs_before = os_.machine.phys.refcount(lib.frames[0])
        child = parent.fork()
        assert os_.machine.phys.refcount(lib.frames[0]) == refs_before + 1

    def test_child_lib_cap_rebased(self):
        os_ = boot()
        parent = GuestContext(os_, os_.spawn(lib_image("libc"), "app"))
        child = parent.fork()
        child_cap = child.proc.lib_caps["libc"]
        assert child.proc.region_base <= child_cap.base \
            < child.proc.region_top
        assert child.load(child_cap, 4, 16) == b"libc"

    def test_child_reads_do_not_copy_lib_pages(self):
        os_ = boot(copy_strategy=CopyStrategy.COPA)
        parent = GuestContext(os_, os_.spawn(lib_image("libc"), "app"))
        child = parent.fork()
        before = os_.machine.counters.get("fork_page_copies")
        child.load(child.proc.lib_caps["libc"], 16)
        assert os_.machine.counters.get("fork_page_copies") == before

    def test_migration_preserves_library(self):
        os_ = boot()
        ctx = GuestContext(os_, os_.spawn(lib_image("libc"), "app"))
        os_.migrate(ctx.proc)
        cap = ctx.proc.lib_caps["libc"]
        assert ctx.proc.region_base <= cap.base < ctx.proc.region_top
        assert ctx.load(cap, 4, 16) == b"libc"

    def test_memory_accounting_benefits(self):
        """Library pages amortize across sharers in the PRS metric."""
        os_ = boot()
        a = GuestContext(os_, os_.spawn(lib_image("libbig"), "a"))
        solo = os_.memory_of(a.proc)
        b = GuestContext(os_, os_.spawn(lib_image("libbig"), "b"))
        shared = os_.memory_of(a.proc)
        assert shared < solo  # the library halved between a and b

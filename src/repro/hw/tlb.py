"""A minimal TLB cost model.

The reproduction does not simulate TLB *contents*; what matters for the
paper's lightweightness argument (§2.2) is the *cost* of TLB shootdowns
and flushes that multi-address-space OSes pay on every context switch —
and that the single-address-space design avoids entirely.
"""

from __future__ import annotations

from typing import Any


class TLB:
    """Tracks flushes and charges their cost to the simulated clock."""

    def __init__(self, machine: Any) -> None:
        self._machine = machine
        self.flush_count = 0

    def flush(self) -> None:
        """Full flush — paid by the monolithic OS on address-space switch.

        Observable as the ``hw.tlb.flush`` counter.  Under chaos the
        ``hw.tlb.shootdown_loss`` point models a lost shootdown IPI:
        the ack timeout detects it and the flush is re-issued (paid
        again), so correctness never depends on the first IPI landing.
        """
        self._do_flush()
        machine = self._machine
        if machine.chaos.enabled and \
                machine.chaos.should_fire("hw.tlb.shootdown_loss"):
            self._do_flush()
            machine.chaos.note_recovery("hw.tlb.shootdown_loss")

    def _do_flush(self) -> None:
        self.flush_count += 1
        self._machine.clock.advance(self._machine.costs.tlb_flush_ns, "tlb_flush")
        self._machine.counters.add("tlb_flush")
        self._machine.obs.count("hw.tlb.flush")

"""The security-matrix runner behind ``python -m repro.harness sec``.

Drives every attack in :data:`repro.sec.attacks.ATTACKS` across fork
strategies × CPU counts × chaos modes, classifies each cell as
``defeated`` (the defense raised one of the attack's expected fault
types), ``breached`` (silent success, an unexpected exception, or a
post-attack auditor violation), or ``n/a`` (the attack is not
expressible under that strategy — e.g. sentry-gate forgery on the
trap-entry monolithic baseline), and emits a byte-stable
``repro.sec/v1`` report.

Every cell boots a fresh machine from a seed derived deterministically
from (seed, attack, strategy, cpus, mode), so the whole matrix — and
therefore the report bytes — is a pure function of ``seed``.

This module imports the full OS stack, so it is *not* re-exported from
the :mod:`repro.sec` package root (which the conform invariant hook
keeps import-light).
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.sec.attacks import (ATTACKS, Attack, AttackEnv, STRATEGIES)
from repro.sec.auditor import audit_cap_flow

#: schema tag of the report / ``*.sec.json`` sidecar
SCHEMA = "repro.sec/v1"

#: chaos mix for the chaotic half of the matrix: only recovered /
#: retriable points (fork aborts roll back and retry) plus the sec.*
#: points, so injected faults perturb timing and interleaving without
#: ever changing an attack's verdict
DEFAULT_FAULT_MIX = "default=0.0,core.ufork.abort.*=0.05,sec.*=0.4"

DEFAULT_CPUS = (1, 2, 4)
MODES = ("clean", "chaos")


def _cell_seed(seed: int, attack: str, strategy: str, cpus: int,
               mode: str) -> int:
    digest = hashlib.blake2b(
        f"{seed}|{attack}|{strategy}|{cpus}|{mode}".encode(),
        digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _boot(strategy: str, seed: int, cpus: int, mode: str,
          fault_mix: str):
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image
    from repro.chaos import ChaosEngine, FaultMix
    from repro.machine import Machine

    machine = Machine(seed=seed, num_cpus=cpus)
    machine.obs.enable()
    engine = None
    if mode == "chaos":
        engine = ChaosEngine(seed=seed, mix=FaultMix.parse(fault_mix))
        engine.attach(machine)
    with (engine.paused() if engine else _null_pause()):
        if strategy == "monolithic":
            from repro.baselines.monolithic import MonolithicOS
            os_ = MonolithicOS(machine=machine)
        else:
            from repro.core import CopyStrategy, UForkOS
            os_ = UForkOS(machine=machine,
                          copy_strategy=CopyStrategy(strategy))
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "sec"))
    return os_, ctx


def _null_pause():
    import contextlib
    return contextlib.nullcontext()


def _attempt(env: AttackEnv, body) -> Tuple[Optional[str], Optional[str]]:
    """Run one attack body; returns (defense type name, errno) or
    (None, None) when the body returned — i.e. nothing stopped it."""
    try:
        body(env)
    except Exception as exc:  # noqa: BLE001 - classification is the point
        return type(exc).__name__, getattr(exc, "errno_name", None)
    return None, None


def run_cell(attack: Attack, body, strategy: str, cpus: int, mode: str,
             seed: int, fault_mix: str) -> Dict[str, Any]:
    """One matrix cell: boot, attack, classify, audit, tear down."""
    if strategy not in attack.strategies:
        return {"verdict": "n/a", "reason": attack.na_reason}
    cell_seed = _cell_seed(seed, attack.name, strategy, cpus, mode)
    os_, ctx = _boot(strategy, cell_seed, cpus, mode, fault_mix)
    machine = os_.machine
    env = AttackEnv(os=os_, ctx=ctx, strategy=strategy)
    chaos = machine.chaos
    replayed = False
    try:
        if chaos.enabled and chaos.should_fire("sec.attack.bystander_fork"):
            bystander = ctx.fork()
            bystander.exit(0)
            ctx.wait(bystander.proc.pid)
        defense, errno = _attempt(env, body)
        if defense is not None and defense in attack.defeats \
                and chaos.enabled \
                and chaos.should_fire("sec.attack.replay"):
            replayed = True
            second, _ = _attempt(env, body)
            if second != defense:
                defense, errno = (
                    f"replay-divergent({defense}->{second})", None)
        violations = audit_cap_flow(os_)
    finally:
        for proc in sorted(os_.procs.alive(), key=lambda p: -p.pid):
            try:
                os_._exit_process(proc, 0)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
    defeated = defense in attack.defeats and not violations
    cell = {
        "verdict": "defeated" if defeated else "breached",
        "defense": defense,
        "errno": errno,
        "audit_violations": len(violations),
        "violations": violations[:4],
        "replayed": replayed,
    }
    fired = getattr(chaos, "fired", None)
    if fired is not None:
        cell["chaos_fired"] = {point: count
                               for point, count in sorted(fired.items())}
    return cell


def run_sec(seed: int = 7,
            strategies: Iterable[str] = STRATEGIES,
            cpus_list: Iterable[int] = DEFAULT_CPUS,
            modes: Iterable[str] = MODES,
            fault_mix: str = DEFAULT_FAULT_MIX,
            attacks: Optional[Iterable[str]] = None,
            obs_dir: Optional[str] = None) -> Dict[str, Any]:
    """Run the attack × strategy × cpus × mode matrix.

    Returns the JSON-ready ``repro.sec/v1`` report.  With ``obs_dir``
    set, writes the report there as ``sec-<seed>.sec.json`` (canonical
    byte-stable form via :mod:`repro.harness.reportio`).
    """
    strategies = tuple(strategies)
    cpus_list = tuple(cpus_list)
    modes = tuple(modes)
    unknown = set(strategies) - set(STRATEGIES)
    if unknown:
        raise ValueError(f"unknown strategies: {sorted(unknown)}")
    selected = tuple(attacks) if attacks is not None else tuple(ATTACKS)
    unknown = set(selected) - set(ATTACKS)
    if unknown:
        raise ValueError(f"unknown attacks: {sorted(unknown)}")

    matrix: Dict[str, Dict[str, Any]] = {}
    totals = {"cells": 0, "defeated": 0, "breached": 0, "n/a": 0,
              "audit_violations": 0}
    for name in selected:
        attack, body = ATTACKS[name]
        for strategy in strategies:
            for cpus in cpus_list:
                for mode in modes:
                    cell = run_cell(attack, body, strategy, cpus, mode,
                                    seed, fault_mix)
                    matrix[f"{name}|{strategy}-c{cpus}-{mode}"] = cell
                    totals["cells"] += 1
                    if cell["verdict"] == "n/a":
                        totals["n/a"] += 1
                    else:
                        totals[cell["verdict"]] += 1
                        totals["audit_violations"] += \
                            cell["audit_violations"]

    report = {
        "schema": SCHEMA,
        "seed": seed,
        "strategies": list(strategies),
        "cpus": list(cpus_list),
        "modes": list(modes),
        "fault_mix": fault_mix,
        "attacks": {
            name: {
                "category": ATTACKS[name][0].category,
                "description": ATTACKS[name][0].description,
                "defeats": list(ATTACKS[name][0].defeats),
                "strategies": list(ATTACKS[name][0].strategies),
            }
            for name in selected
        },
        "matrix": matrix,
        "totals": totals,
        "verdict": "defeated" if totals["breached"] == 0 else "breached",
    }
    if obs_dir:
        from repro.harness.reportio import write_report
        import os as _os
        write_report(report,
                     _os.path.join(obs_dir, f"sec-{seed}.sec.json"))
    return report


def format_summary(report: Dict[str, Any]) -> str:
    """Human-readable matrix digest for the CLI."""
    totals = report["totals"]
    lines = [
        f"repro.sec attack matrix (seed {report['seed']}): "
        f"{totals['cells']} cells over {len(report['attacks'])} attacks, "
        f"strategies {','.join(report['strategies'])}, "
        f"cpus {','.join(str(c) for c in report['cpus'])}, "
        f"modes {','.join(report['modes'])}",
        f"  defeated {totals['defeated']}  breached {totals['breached']}  "
        f"n/a {totals['n/a']}  auditor violations "
        f"{totals['audit_violations']}",
    ]
    for key, cell in report["matrix"].items():
        if cell["verdict"] == "breached":
            lines.append(f"  BREACH {key}: defense={cell['defense']} "
                         f"violations={cell['audit_violations']}")
    lines.append(f"verdict: {report['verdict'].upper()}")
    return "\n".join(lines)

"""CPU core model.

Cores matter to the reproduction in two ways: (1) each running task owns
a capability register file whose contents μFork must relocate at fork
(§3.5), and (2) the concurrency experiments (Figs 6 and 7) schedule work
across a small number of cores.  The :class:`Core` here is the
bookkeeping for (1); the discrete-event machinery for (2) lives in
:mod:`repro.sim`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cheri.regfile import RegisterFile
from repro.hw.tlb import TLB


class Core:
    """One hardware thread."""

    def __init__(self, machine: Any, core_id: int) -> None:
        self.machine = machine
        self.core_id = core_id
        #: the task (OS-defined object) currently running on this core
        self.current_task: Optional[Any] = None
        self.domain_switches = 0
        #: this core's private TLB (cross-core invalidation goes
        #: through the shootdown protocol, :mod:`repro.smp.ipi`)
        self.tlb = TLB(machine, cpu_id=core_id)
        #: per-CPU schedule timeline (ns), maintained by
        #: :class:`repro.smp.exec.SmpExecutor`
        self.local_ns: float = 0.0
        self.busy_ns: float = 0.0
        self.idle_ns: float = 0.0
        self.steps = 0

    def switch_to(self, task: Any, same_address_space: bool) -> None:
        """Context switch, charging the appropriate cost.

        A SASOS switch stays in one address space (no TLB flush); the
        monolithic OS must also flush (charged separately by its
        scheduler via :class:`repro.hw.tlb.TLB`).
        """
        costs = self.machine.costs
        if same_address_space:
            self.machine.clock.advance(costs.context_switch_sas_ns, "ctx_switch")
        else:
            self.machine.clock.advance(costs.context_switch_mas_ns, "ctx_switch")
        self.machine.counters.add("context_switch")
        self.domain_switches += 1
        self.current_task = task

    @property
    def registers(self) -> RegisterFile:
        """Register file of the current task (tasks own their registers)."""
        if self.current_task is None:
            raise RuntimeError(f"core {self.core_id} is idle")
        return self.current_task.registers

"""Tests for the in-guest-memory heap allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cheri.capability import Capability, Perm
from repro.errors import InvalidArgument, OutOfMemory
from repro.hw.paging import AddressSpace, PagePerm
from repro.machine import Machine
from repro.mem.allocator import ALIGN, GuestAllocator

PAGE = 4096


def make_heap(machine, pages=64, base_vpn=256, max_blocks=128):
    """Map a heap segment and build an allocator over it."""
    space = AddressSpace(machine, "heap-test")
    for index in range(pages):
        frame = machine.phys.alloc()
        space.map_page(base_vpn + index, frame, PagePerm.rwc())
    heap_base = base_vpn * PAGE
    heap_cap = Capability(
        base=heap_base, length=pages * PAGE, cursor=heap_base,
        perms=Perm.data_rw(),
    )
    alloc = GuestAllocator(machine, space, heap_cap, max_blocks=max_blocks)
    alloc.format()
    return alloc, space


class TestMallocFree:
    def test_malloc_returns_bounded_cap(self, machine):
        alloc, _ = make_heap(machine)
        cap = alloc.malloc(100)
        assert cap.valid
        assert cap.length == 112  # aligned to 16
        assert cap.base % ALIGN == 0
        assert cap.has_perm(Perm.LOAD | Perm.STORE)
        assert not cap.has_perm(Perm.SYSTEM)

    def test_blocks_do_not_overlap(self, machine):
        alloc, _ = make_heap(machine)
        caps = [alloc.malloc(48) for _ in range(20)]
        spans = sorted((c.base, c.top) for c in caps)
        for (_, top_a), (base_b, _) in zip(spans, spans[1:]):
            assert top_a <= base_b

    def test_blocks_within_heap_data_area(self, machine):
        alloc, _ = make_heap(machine)
        cap = alloc.malloc(64)
        assert cap.base >= alloc.data_base
        assert cap.top <= alloc.heap_base + alloc.heap_size

    def test_free_and_reuse(self, machine):
        alloc, _ = make_heap(machine)
        cap = alloc.malloc(64)
        alloc.free(cap)
        again = alloc.malloc(64)
        assert again.base == cap.base

    def test_first_fit_skips_small_free_blocks(self, machine):
        alloc, _ = make_heap(machine)
        small = alloc.malloc(16)
        large = alloc.malloc(256)
        alloc.free(small)
        alloc.free(large)
        cap = alloc.malloc(128)
        assert cap.base == large.base  # small hole skipped

    def test_double_free_rejected(self, machine):
        alloc, _ = make_heap(machine)
        cap = alloc.malloc(32)
        alloc.free(cap)
        with pytest.raises(InvalidArgument):
            alloc.free(cap)

    def test_free_unknown_rejected(self, machine):
        alloc, _ = make_heap(machine)
        with pytest.raises(InvalidArgument):
            alloc.free(0xDEAD0)

    def test_malloc_zero_rejected(self, machine):
        alloc, _ = make_heap(machine)
        with pytest.raises(InvalidArgument):
            alloc.malloc(0)

    def test_heap_exhaustion(self, machine):
        alloc, _ = make_heap(machine, pages=2, max_blocks=8)
        with pytest.raises(OutOfMemory):
            alloc.malloc(alloc.data_size + 16)

    def test_record_table_exhaustion(self, machine):
        alloc, _ = make_heap(machine, pages=64, max_blocks=4)
        for _ in range(4):
            alloc.malloc(16)
        with pytest.raises(OutOfMemory):
            alloc.malloc(16)

    def test_malloc_charges_time(self, machine):
        alloc, _ = make_heap(machine)
        before = machine.clock.now_ns
        alloc.malloc(16)
        assert machine.clock.now_ns > before


class TestStateInGuestMemory:
    def test_attach_rebuilds_index(self, machine):
        alloc, space = make_heap(machine)
        caps = [alloc.malloc(32) for _ in range(5)]
        alloc.free(caps[2])
        # a second allocator instance attaches to the same memory
        twin = GuestAllocator(machine, space, alloc.heap_cap,
                              max_blocks=alloc.max_blocks)
        twin.attach()
        assert twin.block_count() == 4
        twin.free(caps[0])
        assert twin.block_count() == 3

    def test_live_blocks_read_from_memory(self, machine):
        alloc, _ = make_heap(machine)
        caps = [alloc.malloc(48) for _ in range(3)]
        live = alloc.live_blocks()
        assert {c.base for c in live} == {c.base for c in caps}

    def test_used_bytes(self, machine):
        alloc, _ = make_heap(machine)
        alloc.malloc(100)  # -> 112
        cap = alloc.malloc(16)
        assert alloc.used_bytes() == 128
        alloc.free(cap)
        assert alloc.used_bytes() == 112

    def test_attach_unformatted_rejected(self, machine):
        alloc, space = make_heap(machine)
        fresh_space_alloc = GuestAllocator(
            machine, space, alloc.heap_cap.set_bounds(
                alloc.heap_base, alloc.heap_size
            ),
        )
        space.write(alloc.heap_base, b"\x00" * 8)  # clobber magic
        with pytest.raises(InvalidArgument):
            fresh_space_alloc.attach()

    def test_metadata_span_covers_records(self, machine):
        alloc, _ = make_heap(machine, max_blocks=128)
        base, top = alloc.metadata_span()
        assert base == alloc.heap_base
        assert top - base >= 32 + 128 * 32
        assert (top - base) % PAGE == 0

    def test_records_hold_tagged_caps(self, machine):
        """Allocator metadata pages contain valid capability tags —
        the property μFork's eager metadata copy relies on."""
        alloc, space = make_heap(machine)
        alloc.malloc(64)
        record_cap = space.load_cap(alloc.heap_base + 32)
        assert record_cap.valid


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(1, 512)),
            st.tuples(st.just("free"), st.integers(0, 30)),
        ),
        max_size=60,
    ))
    def test_prop_no_overlap_and_free_reuse(self, ops):
        machine = Machine()
        alloc, _ = make_heap(machine, pages=64, max_blocks=256)
        live = []
        for op, arg in ops:
            if op == "malloc":
                try:
                    live.append(alloc.malloc(arg))
                except OutOfMemory:
                    pass
            elif live:
                cap = live.pop(arg % len(live))
                alloc.free(cap)
            spans = sorted((c.base, c.top) for c in live)
            for (_, top_a), (base_b, _) in zip(spans, spans[1:]):
                assert top_a <= base_b
        assert alloc.block_count() == len(live)
        assert alloc.used_bytes() == sum(c.length for c in live)

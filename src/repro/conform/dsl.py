"""The conformance scenario DSL.

A :class:`Scenario` is one small guest program — fork/exit/wait, pipes,
dup2, signals and mmap-ish memory ops — written once and executed
twice: on the simulated kernel (:mod:`repro.conform.simrun`, under any
fork strategy and CPU count) and on the real host POSIX kernel
(:mod:`repro.conform.hostrun`, via ``os.fork``/``os.pipe``/
``os.waitpid`` in a sandboxed subprocess).  Each execution produces a
*logical trace* of the observable outputs; :func:`diff_traces` compares
them.  A scenario that diverges is either a kernel bug or an oracle
caveat — docs/CONFORMANCE.md lists the caveats we accept.

Everything here is host-independent bookkeeping: op constructors,
scenario validation, trace normalization and diffing, and the static
op footprints the interleaving explorer uses for sleep-set pruning.
The module is stdlib-only so :mod:`repro.conform.hostrun` (which must
stay importable without the simulator) can share it.

Trace shape (JSON-ready, no host pids / fd numbers / wall-clock)::

    {"procs": {"main": [["write", "p.w", 5], ...],
               "main/w1": [["read", "p.r", "hello"], ...]},
     "status": {"main": ["exit", 0]}}

Ops (tuples; ``tag`` names a pipe end, ``var`` a memory cell)::

    ("pipe", name)          create a pipe; fd tags "<name>.r"/"<name>.w"
    ("write", tag, text)    write all of text        -> event (tag, n)
    ("read", tag, n)        read n bytes or to EOF   -> event (tag, text)
    ("close", tag)          close the fd behind tag
    ("dup2", src, dst)      dst aliases src's description (closing dst's)
    ("fork", body)          run body as a child      (ref "<body><k>")
    ("snapshot", body)      checkpoint self; restore the blob as a
                            waitable child clone running body
                            (sim-only — no host equivalent)
    ("exit", status)        terminate (0..127; implicit exit 0 at end)
    ("wait", ref|None)      reap a child             -> wait event
    ("heap_set", var, int)  private memory store
    ("heap_get", var)       private memory load      -> event (var, value)
    ("shm_set", var, int)   MAP_SHARED store
    ("shm_get", var)        MAP_SHARED load          -> event (var, value)
    ("signal", sig, act)    act: "ignore"|"count"|"default"
    ("kill", target, sig)   target: "self"|"parent"|child ref
    ("sig_count", sig)      observed deliveries      -> event (sig, n)
    ("probe", what)         attempt a capability attack and record the
                            fault that stopped it: "oob" derefs past a
                            malloc'd bound, "tag" derefs a forged cap
                            rebuilt from raw bytes  -> event (what, fault)
                            (sim-only — host processes have no caps)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

#: the signal names both backends understand
SIG_NAMES = ("TERM", "USR1", "USR2", "CHLD", "KILL")

#: fd-tag suffixes a ("pipe", name) op creates
READ_END = ".r"
WRITE_END = ".w"

OP_NAMES = {
    "pipe", "write", "read", "close", "dup2", "fork", "exit", "wait",
    "heap_set", "heap_get", "shm_set", "shm_get", "signal", "kill",
    "sig_count", "snapshot", "probe",
}

#: attack flavors the ("probe", what) op understands
PROBE_KINDS = ("oob", "tag")

Op = Tuple[Any, ...]
Event = List[Any]
Trace = Dict[str, Any]


# ---------------------------------------------------------------------------
# Op constructors (sugar for scenarios.py; plain tuples are fine too)
# ---------------------------------------------------------------------------

def pipe(name: str) -> Op:
    return ("pipe", name)


def wr(tag: str, text: str) -> Op:
    return ("write", tag, text)


def rd(tag: str, n: int) -> Op:
    return ("read", tag, n)


def close(tag: str) -> Op:
    return ("close", tag)


def dup2(src: str, dst: str) -> Op:
    return ("dup2", src, dst)


def fork(body: str) -> Op:
    return ("fork", body)


def snapshot_(body: str) -> Op:
    return ("snapshot", body)


def exit_(status: int = 0) -> Op:
    return ("exit", status)


def wait(ref: Optional[str] = None) -> Op:
    return ("wait", ref)


def heap_set(var: str, value: int) -> Op:
    return ("heap_set", var, value)


def heap_get(var: str) -> Op:
    return ("heap_get", var)


def shm_set(var: str, value: int) -> Op:
    return ("shm_set", var, value)


def shm_get(var: str) -> Op:
    return ("shm_get", var)


def signal_(sig: str, action: str) -> Op:
    return ("signal", sig, action)


def kill(target: str, sig: str) -> Op:
    return ("kill", target, sig)


def sig_count(sig: str) -> Op:
    return ("sig_count", sig)


def probe(what: str) -> Op:
    return ("probe", what)


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------

@dataclass
class Scenario:
    """One conformance scenario: named bodies of ops, rooted at "main".

    ``schedule_invariant`` declares that the scenario's logical trace
    does not depend on the schedule (true for every corpus scenario
    without cross-process kills); the interleaving explorer asserts
    trace equality across schedules only when it is set.
    """

    name: str
    bodies: Mapping[str, Tuple[Op, ...]]
    schedule_invariant: bool = True
    #: filled by validate(): every shm var, in offset order
    shm_vars: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        self.bodies = {body: tuple(tuple(op) for op in ops)
                       for body, ops in self.bodies.items()}
        self.validate()

    # -- validation -----------------------------------------------------

    def validate(self) -> None:
        if "main" not in self.bodies:
            raise ValueError(f"scenario {self.name!r} has no 'main' body")
        shm: List[str] = []
        for body, ops in self.bodies.items():
            for op in ops:
                self._check_op(body, op)
                if op[0] in ("shm_set", "shm_get") and op[1] not in shm:
                    shm.append(op[1])
        self.shm_vars = tuple(sorted(shm))

    def _check_op(self, body: str, op: Op) -> None:
        if not op or op[0] not in OP_NAMES:
            raise ValueError(f"{self.name}/{body}: unknown op {op!r}")
        kind = op[0]
        if kind in ("fork", "snapshot") and op[1] not in self.bodies:
            raise ValueError(f"{self.name}/{body}: {kind} of unknown "
                             f"body {op[1]!r}")
        if kind == "exit" and not 0 <= op[1] <= 127:
            # >= 128 is reserved for signal-death encoding
            raise ValueError(f"{self.name}/{body}: exit status {op[1]} "
                             f"outside 0..127")
        if kind in ("signal", "kill", "sig_count"):
            sig = op[2] if kind == "kill" else op[1]
            if sig not in SIG_NAMES:
                raise ValueError(f"{self.name}/{body}: unknown signal "
                                 f"{sig!r}")
        if kind == "signal" and op[2] not in ("ignore", "count", "default"):
            raise ValueError(f"{self.name}/{body}: bad signal action "
                             f"{op[2]!r}")
        if kind == "probe" and op[1] not in PROBE_KINDS:
            raise ValueError(f"{self.name}/{body}: unknown probe kind "
                             f"{op[1]!r}")

    # -- transport ------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "bodies": {body: [list(op) for op in ops]
                       for body, ops in self.bodies.items()},
            "schedule_invariant": self.schedule_invariant,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "Scenario":
        return cls(name=doc["name"],
                   bodies={body: tuple(tuple(op) for op in ops)
                           for body, ops in doc["bodies"].items()},
                   schedule_invariant=doc.get("schedule_invariant", True))

    # -- static analysis (sleep-set pruning) ----------------------------

    def uses_dup2(self) -> bool:
        return any(op[0] == "dup2"
                   for ops in self.bodies.values() for op in ops)

    def op_footprint(self, op: Op) -> FrozenSet[str]:
        """The shared resources an op touches.  Two ops of *different*
        processes whose footprints are disjoint commute — swapping
        their order cannot change any observable outcome — which is
        what lets the explorer prune equivalent interleavings.

        Conservative by construction: fd ops collapse to one resource
        per pipe (or one global resource once dup2 can alias across
        pipes), process-tree ops (fork/wait/exit/kill/signals) all
        share one resource, heap ops are process-private and free.
        """
        kind = op[0]
        if kind in ("heap_set", "heap_get", "probe"):
            # probe works entirely on its own fresh allocation; the
            # fault it records is a pure function of the cap machinery
            return frozenset()
        if kind in ("shm_set", "shm_get"):
            return frozenset({f"shm:{op[1]}"})
        if kind in ("pipe", "write", "read", "close", "dup2"):
            if self.uses_dup2():
                return frozenset({"fds"})
            tag = op[1]
            base = tag.rsplit(".", 1)[0]
            return frozenset({f"pipe:{base}"})
        # fork / snapshot / exit / wait / kill / signal / sig_count
        return frozenset({"proctree"})

    def ops_independent(self, a: Op, b: Op) -> bool:
        """Can *a* and *b* (ops of two different processes) be swapped
        without reaching a new state?  Disjoint footprints commute —
        except fork, snapshot and exit, which change the candidate set
        itself (they enable/disable transitions, the classic DPOR
        caveat; snapshot additionally captures *every* resource the
        caller holds, pipes included), so they are never independent of
        anything."""
        if a[0] in ("fork", "exit", "snapshot") \
                or b[0] in ("fork", "exit", "snapshot"):
            return False
        return not (self.op_footprint(a) & self.op_footprint(b))


# ---------------------------------------------------------------------------
# Signal-status encoding shared by both backends
# ---------------------------------------------------------------------------

def status_pair(raw: int) -> List[Any]:
    """Normalize a wait status: plain exits stay ``["exit", n]``; the
    128+sig encoding (and only it — the DSL confines exit statuses to
    0..127) becomes ``["signal", "<NAME>"]``."""
    if raw >= 128:
        from_num = {15: "TERM", 10: "USR1", 12: "USR2", 17: "CHLD",
                    9: "KILL"}
        name = from_num.get(raw - 128)
        if name is not None:
            return ["signal", name]
    return ["exit", raw]


# ---------------------------------------------------------------------------
# Trace normalization + diffing
# ---------------------------------------------------------------------------

def normalize_trace(trace: Trace) -> Trace:
    """Canonicalize schedule-unspecified parts of a trace.

    POSIX leaves the pick order of ``waitpid(-1)`` unspecified, so runs
    of *consecutive* wait-any events in one process are sorted; and a
    process that emitted nothing is unobservable, so empty event lists
    are dropped (backends differ on whether they materialize them)."""
    procs: Dict[str, List[Event]] = {}
    for label, events in trace.get("procs", {}).items():
        if not events:
            continue
        out: List[Event] = []
        run: List[Event] = []
        for event in events:
            event = [list(e) if isinstance(e, tuple) else e for e in event]
            if event and event[0] == "wait" and event[1] == "any":
                run.append(event)
                continue
            if run:
                out.extend(sorted(run, key=json.dumps))
                run = []
            out.append(event)
        if run:
            out.extend(sorted(run, key=json.dumps))
        procs[label] = out
    return {"procs": procs,
            "status": {label: list(pair)
                       for label, pair in trace.get("status", {}).items()}}


def diff_traces(sim: Trace, host: Trace) -> List[str]:
    """Human-readable differences between two normalized traces
    (empty == conformant)."""
    sim = normalize_trace(sim)
    host = normalize_trace(host)
    diffs: List[str] = []
    sim_procs, host_procs = sim["procs"], host["procs"]
    for label in sorted(set(sim_procs) | set(host_procs)):
        ours = sim_procs.get(label)
        theirs = host_procs.get(label)
        if ours is None:
            diffs.append(f"{label}: missing on sim (host ran "
                         f"{len(theirs)} events)")
            continue
        if theirs is None:
            diffs.append(f"{label}: missing on host (sim ran "
                         f"{len(ours)} events)")
            continue
        for index, (a, b) in enumerate(zip(ours, theirs)):
            if a != b:
                diffs.append(f"{label}[{index}]: sim={a!r} host={b!r}")
        if len(ours) != len(theirs):
            diffs.append(f"{label}: sim ran {len(ours)} events, host "
                         f"{len(theirs)}")
    for label in sorted(set(sim["status"]) | set(host["status"])):
        a = sim["status"].get(label)
        b = host["status"].get(label)
        if a != b:
            diffs.append(f"{label} status: sim={a!r} host={b!r}")
    return diffs


def trace_sha256(trace: Trace) -> str:
    """Stable digest of a normalized trace (report material)."""
    canon = json.dumps(normalize_trace(trace), sort_keys=True,
                       separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()

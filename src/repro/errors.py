"""Exception hierarchy for the μFork reproduction.

Faults are modeled as Python exceptions.  Hardware-level faults
(:class:`CapabilityFault`, :class:`PageFaultError`) are normally caught
and handled by the simulated kernel (e.g. a copy-on-write fault handler);
if one escapes to application code it indicates a genuine isolation
violation, exactly as a SIGSEGV would on real hardware.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for every error raised by the simulator."""


# ---------------------------------------------------------------------------
# Hardware / capability faults
# ---------------------------------------------------------------------------

class CapabilityFault(SimError):
    """A CHERI capability check failed at dereference or manipulation time."""


class TagFault(CapabilityFault):
    """Attempted to use a capability whose validity tag is cleared."""


class BoundsFault(CapabilityFault):
    """Access outside the [base, base+length) bounds of a capability."""


class PermissionFault(CapabilityFault):
    """Capability lacks the permission required for the operation."""


class SealFault(CapabilityFault):
    """A sealed capability was used where an unsealed one is required,
    or unsealing was attempted with the wrong object type."""


class MonotonicityFault(CapabilityFault):
    """Attempt to *increase* a capability's bounds or permissions."""


class AlignmentFault(CapabilityFault):
    """Capability store/load at an address not aligned to the granule."""


# ---------------------------------------------------------------------------
# MMU faults
# ---------------------------------------------------------------------------

class PageFaultError(SimError):
    """A page-level fault that no handler resolved.

    The paging layer first offers faults to the owning OS's registered
    handlers (that is how CoW / CoA / CoPA are implemented); only
    unresolvable faults surface as this exception.
    """

    def __init__(self, vaddr: int, access: str, reason: str) -> None:
        super().__init__(f"page fault at {vaddr:#x} ({access}): {reason}")
        self.vaddr = vaddr
        self.access = access
        self.reason = reason


class UnmappedAddressError(PageFaultError):
    """Access to a virtual page with no page-table entry."""

    def __init__(self, vaddr: int, access: str) -> None:
        super().__init__(vaddr, access, "unmapped")


class ProtectionError(PageFaultError):
    """Access denied by page permissions and not resolved by any handler."""

    def __init__(self, vaddr: int, access: str) -> None:
        super().__init__(vaddr, access, "protection")


# ---------------------------------------------------------------------------
# Isolation / security
# ---------------------------------------------------------------------------

class IsolationViolation(SimError):
    """User code attempted something the isolation policy forbids
    (privileged instruction, kernel entry outside a sealed entry point,
    capability leak across μprocesses, ...)."""


class PrivilegeViolation(IsolationViolation):
    """Execution of a privileged (system) operation without the SYSTEM
    capability permission."""


# ---------------------------------------------------------------------------
# Kernel-level errors (roughly errno-shaped)
# ---------------------------------------------------------------------------

class KernelError(SimError):
    """Base class for errors a syscall returns to user code."""

    errno_name = "EINVAL"


class InvalidArgument(KernelError):
    errno_name = "EINVAL"


class BadAddress(KernelError):
    """A user pointer passed to a syscall failed validation (EFAULT)."""

    errno_name = "EFAULT"


class NoSuchProcess(KernelError):
    errno_name = "ESRCH"


class NoChildProcess(KernelError):
    errno_name = "ECHILD"


class OutOfMemory(KernelError):
    errno_name = "ENOMEM"


class OutOfVirtualSpace(OutOfMemory):
    """The single address space has no contiguous area large enough for a
    new μprocess (the fragmentation concern of paper §6)."""

    errno_name = "ENOMEM"


class BadFileDescriptor(KernelError):
    errno_name = "EBADF"


class FileNotFound(KernelError):
    errno_name = "ENOENT"


class FileExists(KernelError):
    errno_name = "EEXIST"


class NotADirectory(KernelError):
    errno_name = "ENOTDIR"


class IsADirectory(KernelError):
    errno_name = "EISDIR"


class BrokenPipe(KernelError):
    errno_name = "EPIPE"


class WouldBlock(KernelError):
    errno_name = "EAGAIN"


class Interrupted(KernelError):
    """A syscall was interrupted before doing any work (EINTR)."""

    errno_name = "EINTR"


class NotSupported(KernelError):
    errno_name = "ENOSYS"

"""The adversarial attack corpus.

Each attack models a *compromised* μprocess: guest code that holds only
the authority the kernel legitimately handed it (its registers, its
heap, the syscall surface) and tries to forge, widen, replay, or leak
capabilities across a μprocess boundary.  Attack bodies use the same
:class:`~repro.apps.guest.GuestContext` API real guest programs use —
the one thing they may fabricate is *integers* (addresses, raw bytes),
never tagged capabilities, which is exactly the CHERI attacker model.

The contract: a body either raises (the defense fired — the harness
checks the exception type against :attr:`Attack.defeats`) or returns,
which the harness records as a **breach**.  Defenses that are
behavioral rather than faulting (e.g. CoW write isolation under the
monolithic baseline) raise :class:`AttackDefeated` explicitly after
verifying the breach did not happen.

The corpus is data: :data:`ATTACKS` maps name → (:class:`Attack`,
body), and the runner (:mod:`repro.sec.runner`) drives it across every
strategy × CPU count × chaos mode.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.cheri.capability import OTYPE_SENTRY, Perm

__all__ = ["ATTACKS", "Attack", "AttackDefeated", "AttackEnv",
           "SASOS_STRATEGIES", "STRATEGIES"]

STRATEGIES = ("full", "coa", "copa", "monolithic")
#: strategies with a single shared address space (per-μprocess regions)
SASOS_STRATEGIES = ("full", "coa", "copa")

_SECRET = b"parent-secret-0x"
_OVERWRITE = b"child-overwrite!"


class AttackDefeated(Exception):
    """The defense is behavioral: no fault fires, but the body verified
    the attempted breach did not happen (e.g. a CoW write stayed
    private).  Counted as a defeat, like a capability fault."""


@dataclass(frozen=True)
class Attack:
    """One adversarial guest program."""

    name: str
    category: str          # widen | forge | replay | leak | escalate | tamper
    description: str
    #: exception type names that count as the defense firing
    defeats: Tuple[str, ...]
    #: strategies the attack is expressible under (gate attacks have no
    #: monolithic analogue: kernel entry there is a trap, not a sentry)
    strategies: Tuple[str, ...] = STRATEGIES
    #: reason recorded for strategies where the attack is inexpressible
    na_reason: str = ""


@dataclass
class AttackEnv:
    """What the harness hands an attack body."""

    os: Any
    ctx: Any               # GuestContext of the adversarial root μprocess
    strategy: str

    @property
    def machine(self) -> Any:
        return self.os.machine

    def confined(self, cap: Any, proc: Any) -> bool:
        return (proc.region_base <= cap.base
                and cap.top <= proc.region_top)


_REGISTRY: Dict[str, Tuple[Attack, Callable[[AttackEnv], None]]] = {}


def _attack(category: str, description: str, defeats: Tuple[str, ...],
            strategies: Tuple[str, ...] = STRATEGIES, na_reason: str = ""):
    def register(body: Callable[[AttackEnv], None]):
        name = body.__name__.removeprefix("_atk_")
        _REGISTRY[name] = (
            Attack(name, category, description, defeats, strategies,
                   na_reason),
            body,
        )
        return body
    return register


# ---------------------------------------------------------------------------
# Widening: out-of-bounds capability arithmetic
# ---------------------------------------------------------------------------

@_attack("widen",
         "grow a heap capability's bounds past its allocation",
         ("MonotonicityFault",))
def _atk_bounds_widen(env: AttackEnv) -> None:
    cap = env.ctx.malloc(64)
    cap.set_bounds(cap.base, cap.length + 4096)


@_attack("widen",
         "shrink a capability, then regrow it to the original span "
         "(monotonicity must hold against the *current* bounds)",
         ("MonotonicityFault",))
def _atk_bounds_regrow(env: AttackEnv) -> None:
    cap = env.ctx.malloc(64)
    small = cap.set_bounds(cap.base + 16, 16)
    small.set_bounds(cap.base, 64)


@_attack("widen",
         "move the cursor past the bounds and dereference",
         ("BoundsFault",))
def _atk_oob_cursor_deref(env: AttackEnv) -> None:
    cap = env.ctx.malloc(64)
    env.ctx.load(cap.add(cap.length), 8)


# ---------------------------------------------------------------------------
# Escalation: reaching for kernel authority
# ---------------------------------------------------------------------------

@_attack("escalate",
         "re-cursor the DDC to the kernel's syscall-gate address and "
         "dereference (the kernel window is outside every region cap)",
         ("BoundsFault",))
def _atk_kernel_window_probe(env: AttackEnv) -> None:
    from repro.core.ufork import GATE_ADDR
    probe = env.ctx.reg("ddc").with_cursor(GATE_ADDR)
    env.ctx.load(probe, 8)


@_attack("escalate",
         "execute a privileged (system-register) operation with the "
         "widest capability the μprocess holds",
         ("PrivilegeViolation",))
def _atk_system_perm_escalation(env: AttackEnv) -> None:
    from repro.core.isolation import check_privileged
    check_privileged(env.ctx.reg("ddc"), "set_system_register")


@_attack("escalate",
         "pass a corrupted (tag-cleared) pointer to a syscall, trying "
         "to make the kernel a confused deputy",
         ("BadAddress",))
def _atk_efault_user_pointer(env: AttackEnv) -> None:
    _rfd, wfd = env.ctx.syscall("pipe")
    bad = env.ctx.malloc(32).invalidated()
    env.ctx.syscall("write", wfd, bad, 8)


# ---------------------------------------------------------------------------
# Forgery: conjuring capabilities out of bytes
# ---------------------------------------------------------------------------

@_attack("forge",
         "byte-copy a tagged granule with data loads/stores and reload "
         "it as a capability (the store must have cleared the tag)",
         ("TagFault",))
def _atk_tag_forge_byte_copy(env: AttackEnv) -> None:
    ctx = env.ctx
    cap = ctx.malloc(64)
    ctx.store_cap(cap, cap.add(8), offset=0)
    raw = ctx.load(cap, 16, offset=0)
    ctx.store(cap, raw, offset=16)
    forged = ctx.load_cap(cap, offset=16)
    ctx.load(forged, 8)


@_attack("forge",
         "hand-craft granule bytes naming a fabricated codec meta-id "
         "and reload them as a capability",
         ("TagFault",))
def _atk_tag_forge_meta_id(env: AttackEnv) -> None:
    ctx = env.ctx
    cap = ctx.malloc(64)
    ctx.store(cap, struct.pack("<QQ", cap.cursor, 10 ** 9), offset=16)
    forged = ctx.load_cap(cap, offset=16)
    ctx.load(forged, 8)


@_attack("escalate",
         "seal a self-made capability as a sentry and present it as "
         "the syscall gate",
         ("IsolationViolation",),
         strategies=SASOS_STRATEGIES,
         na_reason="kernel entry is a trap; there is no sentry gate "
                   "to forge")
def _atk_gate_forge(env: AttackEnv) -> None:
    ddc = env.ctx.reg("ddc")
    fake = (ddc.set_bounds(ddc.base, 16).with_cursor(ddc.base)
            .sealed(OTYPE_SENTRY))
    env.os.syscall(env.ctx.proc, "getpid", gate=fake)


@_attack("tamper",
         "modify the sealed syscall-gate sentry (bounds arithmetic on "
         "a sealed capability)",
         ("SealFault",),
         strategies=SASOS_STRATEGIES,
         na_reason="kernel entry is a trap; no gate sentry exists")
def _atk_sealed_gate_tamper(env: AttackEnv) -> None:
    gate = env.ctx.proc.syscall_gate
    gate.set_bounds(gate.base, 8)


# ---------------------------------------------------------------------------
# Fork-boundary leaks and replay
# ---------------------------------------------------------------------------

@_attack("leak",
         "post-fork, reach the parent's heap through the pre-fork "
         "numeric address (SASOS: bounds fault; monolithic: the write "
         "lands in the child's CoW copy and must stay private)",
         ("BoundsFault", "AttackDefeated"))
def _atk_parent_cap_post_fork(env: AttackEnv) -> None:
    parent = env.ctx
    secret = parent.malloc(64)
    parent.store(secret, _SECRET)
    child = parent.fork()
    probe = child.reg("ddc").with_cursor(secret.cursor)
    if env.strategy == "monolithic":
        # same VAs by design: the probe is in bounds, so the defense is
        # write isolation — the parent's copy must never change
        child.store(probe, _OVERWRITE)
        if parent.load(secret, len(_SECRET)) == _OVERWRITE:
            return  # breach: the child's write reached the parent
        raise AttackDefeated("CoW kept the child's write private")
    child.load(probe, 8)


@_attack("replay",
         "after fork + CoW break, rewind a relocated capability's "
         "cursor by the region delta to replay the parent's copy",
         ("BoundsFault", "AttackDefeated"))
def _atk_stale_cap_after_cow(env: AttackEnv) -> None:
    parent = env.ctx
    cap = parent.malloc(64)
    parent.store_u64(cap, 0x5EC0FFEE, offset=32)
    parent.store_cap(cap, cap, offset=0)
    parent.set_reg("c19", cap)
    child = parent.fork()
    loaded = child.load_cap(child.reg("c19"), offset=0)  # breaks the share
    delta = child.proc.region_base - parent.proc.region_base
    if delta == 0:  # monolithic: same VAs, defense is write isolation
        child.store_u64(loaded, 0xDEAD, offset=32)
        if parent.load_u64(cap, offset=32) != 0x5EC0FFEE:
            return  # breach: the stale capability reached the parent
        raise AttackDefeated("CoW kept the replayed write private")
    if not (loaded.valid and env.confined(loaded, child.proc)):
        return  # breach: fork handed the child unrelocated authority
    stale = loaded.with_cursor(loaded.cursor - delta)
    child.load(stale, 8)


@_attack("replay",
         "exfiltrate a capability's bytes through a pipe, exit and be "
         "reaped (frames freed for reuse), then re-materialize the "
         "bytes in a peer",
         ("TagFault",))
def _atk_stale_cap_after_reap(env: AttackEnv) -> None:
    parent = env.ctx
    rfd, wfd = parent.syscall("pipe")
    a = parent.fork()
    acap = a.malloc(64)
    a.store(acap, b"A-private-secret")
    a.store_cap(acap, acap, offset=16)
    a.write_bytes(wfd, bytes(a.load(acap, 16, offset=16)))
    a.exit(0)
    parent.wait(a.proc.pid)           # A reaped; its frames are free
    b = parent.fork()                 # reuses A's frames (LIFO free list)
    smuggled = parent.read_bytes(rfd, 16)
    slot = parent.malloc(16)
    parent.store(slot, smuggled)      # raw store: the tag stays clear
    zombie = parent.load_cap(slot)
    try:
        parent.load(zombie, 8)
    finally:
        b.exit(0)
        parent.wait(b.proc.pid)


@_attack("leak",
         "smuggle a capability's bytes to a fork child through a pipe "
         "and reload them as a capability on the far side",
         ("TagFault",))
def _atk_pipe_cap_smuggle(env: AttackEnv) -> None:
    parent = env.ctx
    cap = parent.malloc(64)
    parent.store_cap(cap, cap.add(8), offset=0)
    raw = bytes(parent.load(cap, 16, offset=0))
    rfd, wfd = parent.syscall("pipe")
    child = parent.fork()
    parent.write_bytes(wfd, raw)
    data = child.read_bytes(rfd, 16)
    slot = child.malloc(16)
    child.store(slot, data)
    forged = child.load_cap(slot)
    child.load(forged, 8)


@_attack("leak",
         "store a tagged capability into a MAP_SHARED window so a peer "
         "could load live authority (the window must be a capability "
         "firewall: data perms only)",
         ("PermissionFault",))
def _atk_shm_cap_smuggle(env: AttackEnv) -> None:
    ctx = env.ctx
    shm = ctx.syscall("shm_open", "/sec-smuggle", 4096)
    window = ctx.syscall("shm_map", shm)
    ctx.store_cap(window, ctx.malloc(32), offset=0)


# ---------------------------------------------------------------------------
# Snapshot-blob tampering
# ---------------------------------------------------------------------------

def _blob(env: AttackEnv) -> bytes:
    """Checkpoint the adversary itself (with a stored capability, so
    the blob is guaranteed to carry a capability record)."""
    from repro.snapshot import checkpoint
    cap = env.ctx.malloc(64)
    env.ctx.store_cap(cap, cap, offset=0)
    return checkpoint(env.os, env.ctx.proc)


def _maybe_bitflip(env: AttackEnv, blob: bytes) -> bytes:
    """The ``sec.snapshot.bitflip`` chaos point: one extra
    deterministic payload bit-flip on top of the tampering."""
    chaos = env.machine.chaos
    if chaos.enabled and chaos.should_fire("sec.snapshot.bitflip"):
        return blob[:-1] + bytes([blob[-1] ^ 0x01])
    return blob


@_attack("tamper",
         "flip a magic byte of a snapshot blob; restore must refuse it",
         ("SnapshotFormatError",))
def _atk_snapshot_magic_tamper(env: AttackEnv) -> None:
    from repro.snapshot import restore
    blob = _blob(env)
    tampered = b"\x00" + blob[1:]
    restore(env.os, _maybe_bitflip(env, tampered), name="sec-magic")


@_attack("tamper",
         "rewrite the manifest's schema tag; restore must refuse it",
         ("SnapshotFormatError",))
def _atk_snapshot_schema_tamper(env: AttackEnv) -> None:
    from repro.snapshot import restore
    from repro.snapshot.format import decode, encode
    manifest, payload = decode(_blob(env))
    manifest["schema"] = "repro.snapshot/v999"
    tampered = encode(manifest, bytes(payload))
    restore(env.os, _maybe_bitflip(env, tampered), name="sec-schema")


@_attack("tamper",
         "edit the manifest's capability granule size; restore must "
         "refuse the geometry, not misparse the tag layout",
         ("SnapshotError",))
def _atk_snapshot_geometry_tamper(env: AttackEnv) -> None:
    from repro.snapshot import restore
    from repro.snapshot.format import decode, encode
    manifest, payload = decode(_blob(env))
    manifest["granule"] = 8
    tampered = encode(manifest, bytes(payload))
    restore(env.os, _maybe_bitflip(env, tampered), name="sec-geometry")


@_attack("tamper",
         "widen a capability record in the manifest (bounds beyond the "
         "snapshot's region, plus the SYSTEM permission); restore must "
         "fail, not mint the authority",
         ("SnapshotFormatError",))
def _atk_snapshot_cap_widen(env: AttackEnv) -> None:
    from repro.snapshot import restore
    from repro.snapshot.format import decode, encode
    manifest, payload = decode(_blob(env))
    entry = next(page for page in manifest["pages"] if page["caps"])
    record = entry["caps"][0]
    record[2] += 1 << 32              # length: far beyond the region
    record[4] |= int(Perm.SYSTEM)     # perms: privileged escalation
    tampered = encode(manifest, bytes(payload))
    restore(env.os, _maybe_bitflip(env, tampered), name="sec-widen")


#: name → (Attack, body), in registration (= report) order
ATTACKS: Dict[str, Tuple[Attack, Callable[[AttackEnv], None]]] = dict(
    _REGISTRY)

"""Per-shard zygote warm pools — μFork's fast fork as the scale-out unit.

A :class:`WarmPool` is the cluster's capacity primitive: one *zygote*
μprocess is spawned and warmed once (imports, module tables — the
expensive part of a cold start), then every serving worker is a μFork
fork of it.  Adding capacity to a shard is therefore one fast fork
(``fork_worker``), and removing it is one exit+reap (``retire``) — the
paper's §U4/U5 prefork pattern operated as an elastic pool.

Constructed through the stable facade hook
:meth:`repro.api.Session.warm_pool`; see docs/API.md ("Cluster hooks")
and docs/CLUSTER.md.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class WarmPool:
    """A warmed zygote plus the workers forked from it on one session.

    ``image`` defaults to the session's default program image;
    ``warm`` is called once with the zygote's context before any worker
    is forked (build module tables, preload state, ...).
    """

    def __init__(self, session: Any, size: int, *,
                 image: Optional[Any] = None,
                 warm: Optional[Callable[[Any], None]] = None,
                 name: str = "zygote") -> None:
        if size < 1:
            raise ValueError("warm pool size must be >= 1")
        session.boot()
        self.session = session
        self.zygote = session.spawn(image, name=name)
        if warm is not None:
            warm(self.zygote)
        self.workers: List[Any] = []
        for _ in range(size):
            self.fork_worker()

    def __len__(self) -> int:
        return len(self.workers)

    def fork_worker(self) -> Any:
        """Fast-fork one more worker from the warm zygote."""
        worker = self.zygote.fork()
        self.workers.append(worker)
        self.session.machine.obs.count("cluster.pool.forked")
        return worker

    def retire(self, worker: Any = None) -> int:
        """Exit and reap one worker (the most recently forked by
        default); returns its pid.  The kernel-side teardown is real —
        frames, PTEs and the PID are released through the normal
        exit/wait path."""
        if not self.workers:
            raise ValueError("warm pool has no workers to retire")
        if worker is None:
            worker = self.workers[-1]
        self.workers.remove(worker)
        pid = worker.pid
        worker.exit(0)
        self.zygote.wait(pid)
        self.session.machine.obs.count("cluster.pool.retired")
        return pid

    def divergent_vpns(self, worker: Any = None) -> set:
        """The CoW-divergent (privately owned, refcount-1) virtual page
        numbers of ``worker`` (default: the worker ``retire`` would
        pick).

        A freshly forked worker shares almost everything with the
        zygote; only pages it has written since fork are private.  This
        is exactly the page set an incremental snapshot
        (:func:`repro.snapshot.checkpoint`) captures and a cross-shard
        migration must put on the wire — everything else re-forks from
        the target's own zygote (docs/CLUSTER.md, "Migration
        semantics")."""
        if worker is None:
            if not self.workers:
                return set()
            worker = self.workers[-1]
        os_ = self.session.os
        machine = self.session.machine
        page = machine.config.page_size
        proc = worker.proc
        table = os_.space.page_table
        return {
            vpn
            for vpn in range(proc.region_base // page,
                             proc.region_top // page)
            if (pte := table.get(vpn)) is not None
            and machine.phys.refcount(pte.frame) == 1
        }

    def divergent_bytes(self, worker: Any = None) -> int:
        """Bytes of CoW-divergent pages of ``worker`` — the wire size of
        its migration payload (see :meth:`divergent_vpns`)."""
        page = self.session.machine.config.page_size
        return len(self.divergent_vpns(worker)) * page

"""The cluster runner behind ``python -m repro.harness cluster``.

Boots N independent shard machines (each a real
:class:`repro.api.Session` with a zygote warm pool), synthesizes a
planet-scale request trace (:mod:`repro.cluster.trace`), routes it
through the deterministic consistent-hash balancer with batching
(:mod:`repro.cluster.balancer`), serves it against per-shard capacity
whose service times are *calibrated on the real machines*, rebalances
hot shards by migrating workers (:mod:`repro.cluster.migrate`), and
merges every shard's ``repro.obs/v1`` export into one
``repro.cluster/v1`` report with p50/p99/p999 latency and makespan.

Everything is a pure function of the keyword arguments: the trace, the
ring, the calibrated service times, the migration schedule and the
merged observability export are all seed-deterministic, so two
same-argument runs emit **byte-identical** reports
(tests/test_cluster_determinism.py pins this; the CI cluster job
uploads the artifact).

Scale note: requests are *simulated through the cluster's queueing
model* at ~μs-per-request host cost, while a budgeted subset (per-class
calibration plus ``audit`` requests per shard) executes on the real
machines — which is what makes a million-request run finish in CI
minutes without the model ever detaching from measured mechanism.

Like the chaos/smp/conform runners, this module imports the full OS
stack and is *not* re-exported from :mod:`repro.cluster`.
"""

from __future__ import annotations

import hashlib
import os as _os
from array import array
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from repro.cluster.balancer import Batcher, ConsistentHashRing
from repro.cluster.params import DEFAULT_CLUSTER_COSTS, ClusterCosts
from repro.cluster.trace import RECORD, TraceConfig, synthesize

#: schema tag for the report / ``*.cluster.json`` sidecar
RUN_SCHEMA = "repro.cluster/v1"

#: the acceptance-scale default: one million simulated requests
DEFAULT_REQUESTS = 1_000_000

#: per-class request probabilities in ppm, aligned with trace.CLASSES
_CLASS_PROB_PPM = (800_000, 120_000, 20_000, 60_000)

#: 3.9-compatible popcount table for the unique-user bitset
_POPCOUNT = [bin(value).count("1") for value in range(256)]


def _auto_trace(seed: int, requests: int, keys: int, users: int,
                shard_objs: List[Any], workers_total: int,
                utilization_ppm: int) -> TraceConfig:
    """Size the trace horizon from the *calibrated* service times so the
    offered load sits at ``utilization_ppm`` of cluster capacity —
    peaks saturate, troughs drain, and the defaults stay sane at any
    request count or cost model."""
    total = 0
    for shard in shard_objs:
        total += sum(ns * prob for ns, prob
                     in zip(shard.service_by_klass, _CLASS_PROB_PPM)
                     ) // 1_000_000
    mean_service_ns = max(1, total // len(shard_objs))
    horizon_ns = (requests * mean_service_ns * 1_000_000
                  // (workers_total * utilization_ppm))
    slots = min(1_440, max(8, requests // 32))
    slot_ns = max(1_000, horizon_ns // slots)
    return TraceConfig(seed=seed, requests=requests, keys=keys,
                       users=users, slots=slots, slot_ns=slot_ns)


def run_cluster(*, seed: int = 42, shards: int = 4, workers: int = 4,
                requests: int = DEFAULT_REQUESTS, keys: int = 16_384,
                users: int = 4_000_000, cpus: int = 1,
                strategy: str = "copa", audit: int = 16,
                vnodes: int = 64, max_migrations: int = 8,
                rebalance_every: Optional[int] = None,
                utilization_ppm: int = 550_000,
                costs: Optional[ClusterCosts] = None,
                trace: Optional[TraceConfig] = None,
                obs_dir: Optional[str] = None) -> Dict[str, Any]:
    """Serve one synthesized trace on a sharded cluster; returns the
    JSON-ready ``repro.cluster/v1`` report.

    With ``obs_dir`` set, writes two sidecars there:
    ``cluster-<seed>.obs.json`` (the merged ``repro.obs/v1`` export,
    also embedded in the report under ``"obs"``) and
    ``cluster-<seed>.cluster.json`` (the report itself), through
    :mod:`repro.harness.reportio`.
    """
    from repro.cluster.shard import Shard
    from repro.cluster.migrate import migrate_worker
    from repro.obs import obs_session, to_json, write_export

    if shards < 1:
        raise ValueError("shards must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    costs = costs or DEFAULT_CLUSTER_COSTS
    if rebalance_every is None:
        rebalance_every = max(1_000, requests // 8)

    with obs_session() as session:
        shard_objs = [
            Shard(index, seed=seed + 7_919 * index + 1, workers=workers,
                  cpus=cpus, strategy=strategy, audit=audit)
            for index in range(shards)
        ]
        if trace is None:
            trace = _auto_trace(seed, requests, keys, users, shard_objs,
                                shards * workers, utilization_ppm)
        ring = ConsistentHashRing(shards, vnodes=vnodes, seed=seed)
        key_shard = ring.shard_map(trace.keys)

        # -- the serving loop (hot path: ~µs of host time per request) --
        latencies = array("q")
        lat_append = latencies.append
        batcher = Batcher(shards, costs.batch_window_ns, costs.max_batch)
        free: List[List[int]] = [[0] * workers for _ in range(shards)]
        service = [shard.service_by_klass for shard in shard_objs]
        per_request = costs.per_request_overhead_ns
        per_batch = costs.per_batch_overhead_ns
        hop = costs.net_hop_ns
        shard_load = [0] * shards
        user_bits = bytearray((trace.users >> 3) + 1)
        hasher = hashlib.sha256()
        pack = RECORD.pack
        last_completion = 0
        migrations: List[Dict[str, int]] = []

        def dispatch(batch: Any, close_ns: int) -> None:
            nonlocal last_completion
            slot_list = free[batch.shard]
            busy_until = close_ns + per_batch
            worker = slot_list.index(min(slot_list))
            if slot_list[worker] > busy_until:
                busy_until = slot_list[worker]
            by_klass = service[batch.shard]
            for arrival, klass in batch.members:
                busy_until += by_klass[klass]
                lat_append(busy_until + hop + per_request - arrival)
            slot_list[worker] = busy_until
            if busy_until > last_completion:
                last_completion = busy_until

        def rebalance(now: int, at_request: int) -> None:
            backlogs = [sum(f - now for f in slot_list if f > now)
                        for slot_list in free]
            hot = backlogs.index(max(backlogs))
            donors = [s for s in range(shards)
                      if s != hot and len(free[s]) > 1]
            if not donors:
                return
            cold = min(donors, key=lambda s: (backlogs[s], s))
            if backlogs[hot] <= (2 * backlogs[cold]
                                 + costs.migration_fixed_ns):
                return
            record = migrate_worker(shard_objs[cold], shard_objs[hot],
                                    costs)
            idle = free[cold].index(min(free[cold]))
            free[cold].pop(idle)
            free[hot].append(now + record["ns"])
            record["at_request"] = at_request
            record["at_ns"] = now
            migrations.append(record)

        index = 0
        next_rebalance = rebalance_every
        for arrival, user, key, klass in synthesize(trace):
            hasher.update(pack(arrival, user, key, klass))
            user_bits[user >> 3] |= 1 << (user & 7)
            shard = key_shard[key]
            shard_load[shard] += 1
            shard_obj = shard_objs[shard]
            if shard_obj.audit_left > 0:
                shard_obj.observe(klass)
            for batch, close_ns in batcher.add(shard, arrival, klass):
                dispatch(batch, close_ns)
            index += 1
            if index == next_rebalance:
                next_rebalance += rebalance_every
                if len(migrations) < max_migrations:
                    rebalance(arrival, index)
        for batch, close_ns in batcher.flush():
            dispatch(batch, close_ns)

        for shard, shard_obj in enumerate(shard_objs):
            shard_obj.requests = shard_load[shard]
        per_shard = [shard_obj.stats() for shard_obj in shard_objs]
        merged_obs = session.export()

    # -- aggregation ----------------------------------------------------
    ordered = sorted(latencies)
    count = len(ordered)

    def percentile(q_ppm: int) -> int:
        if not count:
            return 0
        rank = (q_ppm * count + 999_999) // 1_000_000  # nearest rank
        return ordered[max(0, rank - 1)]

    unique_users = sum(_POPCOUNT[byte] for byte in user_bits)
    report: Dict[str, Any] = {
        "schema": RUN_SCHEMA,
        "seed": seed,
        "shards": shards,
        "workers": workers,
        "cpus": cpus,
        "strategy": strategy,
        "requests": trace.requests,
        "trace": {
            "digest_sha256": hasher.hexdigest(),
            "keys": trace.keys,
            "users": trace.users,
            "unique_users": unique_users,
            "slots": trace.slots,
            "slot_ns": trace.slot_ns,
            "horizon_ns": trace.horizon_ns,
            "zipf_s": trace.zipf_s,
            "flash_crowds": trace.flash_crowds,
        },
        "latency_ns": {
            "p50": percentile(500_000),
            "p99": percentile(990_000),
            "p999": percentile(999_000),
            "mean": (sum(ordered) // count) if count else 0,
            "min": ordered[0] if count else 0,
            "max": ordered[-1] if count else 0,
        },
        "makespan_ns": last_completion,
        "throughput_rps": (trace.requests * 1_000_000_000
                           // last_completion) if last_completion else 0,
        "batches": {
            "count": batcher.batches,
            "mean_size_ppm": batcher.mean_size_ppm(),
            "max_size": batcher.max_size,
        },
        "balancer": {
            "vnodes": vnodes,
            "shard_load": shard_load,
            "hottest_share_ppm": (max(shard_load) * 1_000_000
                                  // trace.requests)
            if trace.requests else 0,
        },
        "migrations": migrations,
        "costs": asdict(costs),
        "per_shard": per_shard,
        "obs": merged_obs,
    }

    if obs_dir is not None:
        from repro.harness.reportio import write_report

        _os.makedirs(obs_dir, exist_ok=True)
        stem = f"cluster-{seed}"
        write_export(merged_obs,
                     _os.path.join(obs_dir, f"{stem}.obs.json"))
        write_report(report,
                     _os.path.join(obs_dir, f"{stem}.cluster.json"))
    return report


def format_summary(report: Dict[str, Any]) -> str:
    """Render a cluster report for the CLI."""
    latency = report["latency_ns"]
    batches = report["batches"]
    balancer = report["balancer"]
    lines = [
        f"cluster run: shards={report['shards']} "
        f"workers={report['workers']}/shard seed={report['seed']} "
        f"strategy={report['strategy']} requests={report['requests']:,}",
        f"  trace: {report['trace']['unique_users']:,} unique users of "
        f"{report['trace']['users']:,}, {report['trace']['keys']:,} keys "
        f"(zipf {report['trace']['zipf_s']}), "
        f"{report['trace']['flash_crowds']} flash crowds over "
        f"{report['trace']['horizon_ns'] / 1e9:.2f} simulated s",
        f"  latency: p50={latency['p50'] / 1e6:.3f} ms "
        f"p99={latency['p99'] / 1e6:.3f} ms "
        f"p999={latency['p999'] / 1e6:.3f} ms "
        f"max={latency['max'] / 1e6:.3f} ms",
        f"  makespan={report['makespan_ns'] / 1e9:.3f} s "
        f"throughput={report['throughput_rps']:,} req/s",
        f"  batches: {batches['count']:,} "
        f"(mean {batches['mean_size_ppm'] / 1e6:.2f} req, "
        f"max {batches['max_size']}); hottest shard carries "
        f"{balancer['hottest_share_ppm'] / 1e4:.1f}% of traffic",
    ]
    for migration in report["migrations"]:
        lines.append(
            f"  migration @req {migration['at_request']:,}: shard "
            f"{migration['from']} -> {migration['to']} "
            f"({migration['divergent_bytes']} divergent bytes, "
            f"{migration['ns'] / 1e6:.2f} ms)")
    for shard in report["per_shard"]:
        lines.append(
            f"  shard {shard['shard']}: {shard['requests']:,} reqs "
            f"({shard['workers']} workers, {shard['audited']} audited, "
            f"{shard['forks']} real forks) "
            f"digest={shard['kernel_state_digest'][:16]}…")
    return "\n".join(lines)

"""Regenerate every table and figure from the command line.

Usage::

    python -m repro.harness            # scaled sweep (fast)
    python -m repro.harness --full     # the paper's 100 KB-100 MB sweep
    python -m repro.harness --only fig8
    python -m repro.harness --obs-dir out/  # + <name>.obs.json sidecars
    python -m repro.harness obs-report      # hierarchical fork profile
    python -m repro.harness obs-report --json profile.json
    python -m repro.harness chaos --seed 7 --iterations 200
    python -m repro.harness chaos --fault-mix "default=0.01,core.ufork.abort.*=0.2"
    python -m repro.harness smp --cpus 4 --seed 7       # one SMP run
    python -m repro.harness smp                          # 1/2/4/8 sweep
    python -m repro.harness smp --workload forkbench --cpus 8
    python -m repro.harness smp --cpus 4 --fault-mix "smp.*=0.1"
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import (
    DEFAULT_DB_SIZES,
    FULL_DB_SIZES,
    copa_ablation,
    fig3_redis_save,
    fig4_redis_fork_latency,
    fig5_redis_memory,
    fig6_faas_throughput,
    fig7_nginx_throughput,
    fig8_hello_fork,
    fig9_unixbench,
)
from repro.harness.report import print_table
from repro.harness.table1 import table1_rows
from repro.mem.layout import MiB


def _print_compat() -> None:
    from repro.harness.compat import matrix_rows
    print_table(matrix_rows(),
                title="App x syscall compatibility matrix (Loupe-style)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the μFork paper's tables and figures."
    )
    parser.add_argument("command", nargs="?", default=None,
                        choices=["obs-report", "chaos", "smp", "conform"],
                        help="optional subcommand: obs-report prints a "
                             "hierarchical fork-cost profile; chaos runs "
                             "the fault-injection workload (docs/CHAOS.md); "
                             "smp runs a multi-core workload (docs/SMP.md); "
                             "conform runs the differential POSIX "
                             "conformance suite (docs/CONFORMANCE.md)")
    parser.add_argument("--full", action="store_true",
                        help="run the paper-scale 100 KB-100 MB sweep")
    parser.add_argument("--only", metavar="NAME", default=None,
                        help="run a single experiment "
                             "(table1, fig3..fig9, ablation)")
    parser.add_argument("--obs-dir", metavar="DIR", default=None,
                        help="also write a <name>.obs.json metrics "
                             "sidecar per experiment into DIR")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="(obs-report) write the per-system "
                             "observability exports to PATH")
    parser.add_argument("--seed", type=int, default=7,
                        help="(chaos) the fault schedule + workload seed")
    parser.add_argument("--iterations", type=int, default=200,
                        help="(chaos) number of workload operations")
    parser.add_argument("--fault-mix", metavar="SPEC", default=None,
                        help="(chaos/smp) pattern=rate,... injection "
                             "rates (see docs/CHAOS.md)")
    parser.add_argument("--cpus", type=int, default=None,
                        help="(smp) online CPU count; omit to sweep "
                             "1/2/4/8 cores")
    parser.add_argument("--requests", type=int, default=64,
                        help="(smp) number of workload requests")
    parser.add_argument("--workload", default="faas",
                        choices=["faas", "nginx", "forkbench"],
                        help="(smp) which workload to drive")
    parser.add_argument("--depth-bound", type=int, default=3,
                        help="(conform) max schedule deviations per "
                             "explored interleaving")
    parser.add_argument("--budget", type=int, default=600,
                        help="(conform) max schedules explored per "
                             "scenario")
    parser.add_argument("--strategies", metavar="LIST", default=None,
                        help="(conform) comma-separated fork strategies "
                             "(default: monolithic,full,coa,copa)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="(conform) run only this scenario "
                             "(repeatable)")
    parser.add_argument("--no-host", action="store_true",
                        help="(conform) skip the host-POSIX oracle and "
                             "diff strategies against each other")
    args = parser.parse_args(argv)

    if args.command == "obs-report":
        from repro.harness.obsreport import obs_report
        obs_report(json_path=args.json)
        return 0

    if args.command == "chaos":
        from repro.chaos.runner import DEFAULT_MIX, format_summary, run_chaos
        summary = run_chaos(seed=args.seed, iterations=args.iterations,
                            mix=args.fault_mix or DEFAULT_MIX,
                            obs_dir=args.obs_dir)
        print(format_summary(summary))
        if args.obs_dir:
            print(f"[sidecars: {args.obs_dir}/chaos-{args.seed}"
                  f".obs.json + .chaos.json]")
        return 0

    if args.command == "conform":
        from repro.conform.runner import (
            DEFAULT_CPUS,
            format_summary,
            run_conform,
        )
        from repro.conform.simrun import STRATEGIES
        strategies = (args.strategies.split(",") if args.strategies
                      else list(STRATEGIES))
        cpus = [args.cpus] if args.cpus is not None else list(DEFAULT_CPUS)
        report = run_conform(seed=args.seed, cpus=cpus,
                             strategies=strategies,
                             depth_bound=args.depth_bound,
                             budget=args.budget,
                             scenario_names=args.scenario,
                             host=not args.no_host,
                             obs_dir=args.obs_dir)
        print(format_summary(report))
        if args.obs_dir:
            print(f"[sidecars: {args.obs_dir}/conform-{args.seed}"
                  f".obs.json + .conform.json]")
        return 0 if report["verdict"] == "conformant" else 1

    if args.command == "smp":
        from repro.smp.runner import DEFAULT_SWEEP, format_summary, run_smp
        sweep = [args.cpus] if args.cpus is not None else list(DEFAULT_SWEEP)
        for index, cpus in enumerate(sweep):
            if index:
                print()
            summary = run_smp(seed=args.seed, num_cpus=cpus,
                              requests=args.requests,
                              workload=args.workload,
                              mix=args.fault_mix,
                              obs_dir=args.obs_dir)
            print(format_summary(summary))
            if args.obs_dir:
                print(f"[sidecars: {args.obs_dir}/smp-{args.seed}"
                      f"-c{cpus}.obs.json + .smp.json]")
        return 0

    sizes = FULL_DB_SIZES if args.full else DEFAULT_DB_SIZES
    ablation_db = 100 * MiB if args.full else 10 * MiB
    ctx1_fraction = 0.1 if args.full else 0.05

    experiments = {
        "table1": lambda: print_table(
            table1_rows(), title="Table 1: SASOS fork systems"),
        "fig3": lambda: print_table(
            fig3_redis_save(sizes=sizes),
            title="Figure 3: Redis DB overall save times (ms)"),
        "fig4": lambda: print_table(
            fig4_redis_fork_latency(sizes=sizes),
            title="Figure 4: Redis fork latency (us)"),
        "fig5": lambda: print_table(
            fig5_redis_memory(sizes=sizes),
            title="Figure 5: Redis forked-process memory (MB)"),
        "fig6": lambda: print_table(
            fig6_faas_throughput(),
            title="Figure 6: FaaS function throughput (functions/s)"),
        "fig7": lambda: print_table(
            fig7_nginx_throughput(),
            title="Figure 7: Nginx throughput (requests/s)"),
        "fig8": lambda: print_table(
            fig8_hello_fork(),
            title="Figure 8: hello-world fork latency (us) / memory (MB)"),
        "fig9": lambda: print_table(
            fig9_unixbench(measured_fraction=ctx1_fraction),
            title="Figure 9: Unixbench Spawn / Context1 (ms)"),
        "ablation": lambda: print_table(
            copa_ablation(db_bytes=ablation_db),
            title=f"CoPA vs CoA vs full copy "
                  f"({ablation_db // MiB} MB database)"),
        "compat": lambda: _print_compat(),
    }

    names = [args.only] if args.only else list(experiments)
    unknown = [name for name in names if name not in experiments]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; "
                     f"choose from {list(experiments)}")

    started = time.time()
    for index, name in enumerate(names):
        if index:
            print()
        if args.obs_dir:
            _run_with_sidecar(experiments[name], name, args.obs_dir)
        else:
            experiments[name]()
    print(f"\n[{time.time() - started:.1f}s host time]")
    return 0


def _run_with_sidecar(experiment, name: str, obs_dir: str) -> None:
    """Run one experiment under an observability session and write the
    merged ``repro.obs/v1`` export next to its printed table."""
    import os

    from repro.obs import obs_session, write_export

    os.makedirs(obs_dir, exist_ok=True)
    with obs_session() as session:
        experiment()
    path = os.path.join(obs_dir, f"{name}.obs.json")
    write_export(session.export(), path)
    print(f"[obs sidecar: {path}]")


if __name__ == "__main__":
    sys.exit(main())

"""SASOS kernel substrate: the per-process OS state μFork needs.

Unikernels assume a single process; supporting fork means retrofitting
per-μprocess kernel state (paper §4.5): task structs and PIDs, file
descriptor tables, scheduling, and the IPC and I/O objects that POSIX
semantics require fork to duplicate.  The monolithic baseline reuses
these pieces with its own cost parameters.
"""

from repro.kernel.task import Process, Task, TaskState, PidAllocator
from repro.kernel.fdtable import FDTable, FileDescription
from repro.kernel.vfs import RamDisk, O_CREAT, O_TRUNC, O_RDONLY, O_WRONLY, O_RDWR
from repro.kernel.ipc import Pipe, MessageQueue
from repro.kernel.net import Listener, Connection
from repro.kernel.sched import Scheduler
from repro.kernel.syscalls import (
    IsolationLevel,
    IsolationConfig,
    SyscallLayer,
)

__all__ = [
    "Process",
    "Task",
    "TaskState",
    "PidAllocator",
    "FDTable",
    "FileDescription",
    "RamDisk",
    "O_CREAT",
    "O_TRUNC",
    "O_RDONLY",
    "O_WRONLY",
    "O_RDWR",
    "Pipe",
    "MessageQueue",
    "Listener",
    "Connection",
    "Scheduler",
    "IsolationLevel",
    "IsolationConfig",
    "SyscallLayer",
]

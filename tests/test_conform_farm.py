"""The exploration farm: deterministic sharding, byte-stable merged
reports, and — the part that justifies real OS processes — crash
safety: a killed worker loses only unfinished work, and the loss is
reported, never silent.

The full-matrix torture run (every strategy × 1/2/4/8 CPUs at depth 5)
is marked ``farm`` and runs in its own CI job; everything else here is
tier-1 sized.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.conform.farm import (
    DEFAULT_CPUS,
    _parse_result_lines,
    plan_units,
    run_farm,
    shard_units,
    unit_key,
)
from repro.conform.simrun import STRATEGIES
from repro.harness.reportio import dumps_report, load_report


# ---------------------------------------------------------------------------
# Planning and sharding (pure functions)
# ---------------------------------------------------------------------------

def test_plan_units_covers_the_full_matrix_in_order():
    units = plan_units(scenario_names=("pipe-hello", "contended-pipe"),
                       strategies=("coa", "copa"), cpus=(1, 2))
    assert [unit_key(u) for u in units] == [
        "pipe-hello|coa-c1", "pipe-hello|coa-c2",
        "pipe-hello|copa-c1", "pipe-hello|copa-c2",
        "contended-pipe|coa-c1", "contended-pipe|coa-c2",
        "contended-pipe|copa-c1", "contended-pipe|copa-c2",
    ]


def test_plan_units_defaults_to_every_strategy_and_cpu_count():
    units = plan_units(scenario_names=("pipe-hello",))
    assert len(units) == len(STRATEGIES) * len(DEFAULT_CPUS)


def test_plan_units_rejects_unknown_names():
    with pytest.raises(KeyError):
        plan_units(scenario_names=("no-such-scenario",))
    with pytest.raises(ValueError):
        plan_units(strategies=("no-such-strategy",))


def test_shard_units_is_static_round_robin():
    units = plan_units(scenario_names=("pipe-hello",),
                       strategies=("copa",), cpus=(1, 2, 4, 8))
    shards = shard_units(units, 3)
    assert [len(s) for s in shards] == [2, 1, 1]
    assert shards[0] == [units[0], units[3]]
    # more workers than units leaves trailing shards empty, not errors
    assert [len(s) for s in shard_units(units, 6)] == [1, 1, 1, 1, 0, 0]
    with pytest.raises(ValueError):
        shard_units(units, 0)


def test_torn_final_line_is_dropped_not_parsed(tmp_path):
    """A SIGKILL mid-write leaves a valid prefix plus a torn tail; the
    parser must keep the prefix and treat the tail as the lost unit."""
    path = tmp_path / "worker-0.jsonl"
    whole = json.dumps({"unit": "a|copa-c1", "result": {}})
    path.write_text(whole + "\n" + '{"unit": "b|copa-c1", "res')
    records = _parse_result_lines(str(path))
    assert [r["unit"] for r in records] == ["a|copa-c1"]
    assert _parse_result_lines(str(tmp_path / "never-written.jsonl")) == []


# ---------------------------------------------------------------------------
# The coordinator (spawns real worker processes)
# ---------------------------------------------------------------------------

FAST_FARM = dict(seed=0, workers=2, depth_bound=3, budget=5,
                 scenario_names=("pipe-hello", "pipe-two-children"),
                 strategies=("copa",), cpus=(1, 2), timeout=120.0)


def test_merged_report_is_byte_identical_across_runs():
    first = run_farm(**FAST_FARM)
    second = run_farm(**FAST_FARM)
    assert dumps_report(first) == dumps_report(second)
    assert first["schema"] == "repro.conform/v1"
    assert first["kind"] == "farm"
    assert first["verdict"] == "conformant"
    assert first["lost"] == []
    assert len(first["units"]) == 4
    assert first["totals"]["completed"] == 4
    # every unit records which worker ran it — and the static shard map
    # pins that choice independent of OS scheduling
    assert {entry["worker"] for entry in first["units"].values()} == {0, 1}


def test_work_dir_keeps_worker_spec_and_result_files(tmp_path):
    report = run_farm(seed=0, workers=2, depth_bound=2, budget=2,
                      scenario_names=("pipe-hello",),
                      strategies=("copa",), cpus=(1, 2),
                      timeout=120.0, work_dir=str(tmp_path))
    assert report["verdict"] == "conformant"
    assert (tmp_path / "worker-0.spec.json").exists()
    assert (tmp_path / "worker-0.jsonl").exists()
    spec = json.loads((tmp_path / "worker-0.spec.json").read_text())
    assert spec["seed"] == 0 and spec["chaos_mix"] is None


def test_killed_worker_loses_only_unfinished_units():
    """A worker blown past its deadline is group-killed; the units it
    already fsynced survive, the rest are filed under ``lost`` with the
    kill reason, and the verdict degrades to ``incomplete``."""
    report = run_farm(seed=0, workers=1, depth_bound=3, budget=100000,
                      scenario_names=("pipe-hello", "contended-pipe"),
                      strategies=("copa",), cpus=(2,), timeout=5.0)
    # pipe-hello drains its whole frontier quickly and is fsynced first;
    # contended-pipe cannot finish a 100000-schedule budget in 5s
    assert list(report["units"]) == ["pipe-hello|copa-c2"]
    assert report["verdict"] == "incomplete"
    assert len(report["lost"]) == 1
    entry = report["lost"][0]
    assert entry["worker"] == 0
    assert entry["reason"] == "timed out (process group killed)"
    assert entry["units"] == ["contended-pipe|copa-c2"]
    assert report["totals"]["lost"] == 1
    assert report["totals"]["completed"] == 1


def test_chaos_farm_counts_deaths_without_violations():
    report = run_farm(seed=0, workers=2, depth_bound=3, budget=8,
                      chaos=True,
                      chaos_mix=("default=0.0,core.ufork.abort.*=0.2,"
                                 "kernel.syscall.eintr=0.1"),
                      scenario_names=("pipe-grandchild",),
                      strategies=("copa",), cpus=(1, 2), timeout=120.0)
    assert report["chaos"] is True
    assert report["verdict"] == "conformant"
    assert report["totals"]["chaos_deaths"] > 0
    assert report["totals"]["violations"] == 0


def test_cli_conform_farm_writes_report_and_sidecar(tmp_path, capsys):
    from repro.harness.__main__ import main

    json_path = tmp_path / "farm.json"
    obs_dir = tmp_path / "obs"
    rc = main(["conform-farm", "--workers", "2", "--depth", "3",
               "--budget", "4", "--scenario", "pipe-hello",
               "--scenario", "pipe-two-children",
               "--strategies", "copa", "--cpus-list", "1,2",
               "--seed", "0", "--json", str(json_path),
               "--obs-dir", str(obs_dir)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "exploration farm:" in out and "verdict: conformant" in out
    report = load_report(str(json_path))
    assert report["kind"] == "farm" and report["verdict"] == "conformant"
    sidecar = obs_dir / "conform-farm-0.farm.json"
    assert sidecar.exists()
    assert load_report(str(sidecar)) == report


# ---------------------------------------------------------------------------
# The farm tier (own CI job; skipped in tier-1)
# ---------------------------------------------------------------------------

@pytest.mark.farm
def test_full_matrix_reaches_depth_five_on_every_strategy_and_cpu():
    """The acceptance bar: depth >= 5 is reachable for all 4 fork
    strategies at 1/2/4/8 CPUs, under chaos, with zero violations and
    zero silent losses."""
    report = run_farm(seed=0, workers=4, depth_bound=5, budget=12,
                      chaos=True,
                      scenario_names=("contended-pipe", "pipe-grandchild"),
                      strategies=STRATEGIES, cpus=(1, 2, 4, 8),
                      timeout=600.0)
    assert report["verdict"] == "conformant"
    assert report["lost"] == []
    assert report["totals"]["completed"] == 2 * 4 * 4
    for key, entry in report["units"].items():
        if key.startswith("contended-pipe"):
            assert entry["max_depth"] >= 5, key

"""Property suite: randomized capability mutations never mint authority.

Hypothesis drives the CHERI unforgeability story from the attacker's
side: arbitrary byte mutations of an encoded capability, forged
metadata ids, raw overwrites of tagged granules, and randomized
``set_bounds``/``and_perms`` requests.  Every property's failure
message leads with a ``repro: (seed=…, mutation=…)`` pair, so a
shrunk counterexample is directly replayable against the codec.

The invariants under test (docs/SECURITY.md):

* untagged bytes never decode to a *valid* capability, whatever they
  contain;
* a forged metadata id decodes powerless even if the attacker could
  conjure a tag;
* any raw byte store overlapping a tagged granule clears its tag;
* ``set_bounds`` is monotonic — the result never exceeds the source
  bounds — and sealed capabilities refuse mutation outright;
* ``and_perms`` can only remove permissions, never add them.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.cheri.capability import Capability, Perm
from repro.cheri.codec import CAP_SIZE, CapabilityCodec
from repro.errors import MonotonicityFault, SealFault, TagFault
from repro.hw.phys import Frame

PAGE = 4096


def _cap_from_seed(seed: int) -> Capability:
    """A deterministic, well-formed capability derived from one seed."""
    base = 0x4000 + (seed % 1024) * CAP_SIZE
    length = CAP_SIZE * (1 + seed % 64)
    return Capability(base=base, length=length,
                      cursor=base + (seed % length),
                      perms=Perm.data_rw(), valid=True)


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       mutation=st.binary(min_size=CAP_SIZE, max_size=CAP_SIZE))
def test_mutated_encodings_never_decode_to_valid_authority(seed, mutation):
    """XOR any mask into an encoded capability and store it raw: the
    store clears the tag, so the decode is invalid and powerless —
    there is no mutation that widens authority."""
    codec = CapabilityCodec()
    cap = _cap_from_seed(seed)
    raw = codec.encode(cap)
    mutated = bytes(a ^ b for a, b in zip(raw, mutation))
    frame = Frame(PAGE, PAGE // CAP_SIZE)
    frame.store_cap(0, cap, codec)          # a legitimately tagged granule
    frame.write(0, mutated)                 # the attacker's raw overwrite
    got = frame.load_cap(0, codec)
    repro = f"repro: (seed={seed}, mutation={mutation.hex()})"
    assert not got.valid, repro
    with pytest.raises(TagFault):
        got.check_access(Perm.LOAD, 1, got.base)


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       cursor=st.integers(0, 2**64 - 1),
       meta_id=st.integers(2, 2**64 - 1))
def test_forged_meta_ids_decode_powerless_even_if_tagged(seed, cursor,
                                                         meta_id):
    """Guessing a metadata id that was never interned yields a null
    capability even when the attacker is granted the tag bit for free —
    authority lives in the interning table, not in the 16 bytes."""
    codec = CapabilityCodec()
    codec.encode(_cap_from_seed(seed))      # id 1: the only real entry
    raw = struct.pack("<QQ", cursor, meta_id)
    got = codec.decode(raw, True)
    repro = f"repro: (seed={seed}, mutation={raw.hex()})"
    assert not got.valid, repro
    assert got.perms == Perm.NONE, repro
    assert got.length == 0, repro


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       offset=st.integers(0, PAGE - CAP_SIZE),
       data=st.binary(min_size=1, max_size=64))
def test_raw_stores_clear_every_overlapped_tag(seed, offset, data):
    """Whatever byte range a raw write covers, every granule it touches
    loses its tag — byte-level smuggling can move a capability's bytes
    but never its validity."""
    codec = CapabilityCodec()
    cap = _cap_from_seed(seed)
    frame = Frame(PAGE, PAGE // CAP_SIZE)
    granule = (offset // CAP_SIZE) * CAP_SIZE
    frame.store_cap(granule, cap, codec)
    data = data[:PAGE - offset]
    frame.write(offset, data)
    got = frame.load_cap(granule, codec)
    repro = f"repro: (seed={seed}, mutation={offset:#x}+{data.hex()})"
    assert not got.valid, repro


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       req_base=st.integers(0, 2**20),
       req_length=st.integers(0, 2**20))
def test_set_bounds_is_monotonic(seed, req_base, req_length):
    """Any set_bounds request either faults or yields bounds contained
    in the source capability — never wider on either end."""
    cap = _cap_from_seed(seed)
    repro = (f"repro: (seed={seed}, "
             f"mutation=set_bounds({req_base:#x},{req_length:#x}))")
    try:
        narrowed = cap.set_bounds(req_base, req_length)
    except MonotonicityFault:
        return
    assert narrowed.base >= cap.base, repro
    assert narrowed.top <= cap.top, repro


@settings(max_examples=200, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       mask=st.integers(0, int(Perm.all_perms())))
def test_and_perms_only_removes(seed, mask):
    cap = _cap_from_seed(seed)
    derived = cap.and_perms(Perm(mask))
    repro = f"repro: (seed={seed}, mutation=and_perms({mask:#x}))"
    assert not (derived.perms & ~cap.perms), repro


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), otype=st.integers(0, 2**10))
def test_sealed_capabilities_refuse_every_mutation(seed, otype):
    sealed = _cap_from_seed(seed).sealed(otype)
    repro = f"repro: (seed={seed}, mutation=seal({otype}))"
    for mutate in (lambda c: c.set_bounds(c.base, c.length),
                   lambda c: c.with_cursor(c.base),
                   lambda c: c.and_perms(Perm.LOAD)):
        with pytest.raises(SealFault):
            mutate(sealed)
        assert sealed.is_sealed, repro

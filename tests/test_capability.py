"""Tests for the CHERI capability model, including property-based tests
of the monotonicity invariant μFork's isolation argument rests on."""

import pytest
from hypothesis import given, strategies as st

from repro.cheri.capability import (
    Capability,
    OTYPE_SENTRY,
    OTYPE_UNSEALED,
    Perm,
)
from repro.errors import (
    BoundsFault,
    MonotonicityFault,
    PermissionFault,
    SealFault,
    TagFault,
)


def make_cap(base=0x1000, length=0x1000, cursor=None, perms=None):
    return Capability(
        base=base,
        length=length,
        cursor=base if cursor is None else cursor,
        perms=Perm.data_rw() if perms is None else perms,
    )


class TestBasics:
    def test_root_covers_everything(self):
        root = Capability.root(1 << 48)
        assert root.base == 0
        assert root.top == 1 << 48
        assert root.has_perm(Perm.SYSTEM)

    def test_null_is_invalid(self):
        assert not Capability.null().valid

    def test_top_and_offset(self):
        cap = make_cap(base=0x1000, length=0x200, cursor=0x1010)
        assert cap.top == 0x1200
        assert cap.offset == 0x10

    def test_in_bounds(self):
        cap = make_cap(base=0x1000, length=0x100)
        assert cap.in_bounds(0x1000, 0x100)
        assert not cap.in_bounds(0x1000, 0x101)
        assert not cap.in_bounds(0xFFF)

    def test_spans(self):
        cap = make_cap(base=0x1000, length=0x100)
        assert cap.spans(0x1000, 0x1100)
        assert cap.spans(0x0, 0x10000)
        assert not cap.spans(0x1001, 0x10000)


class TestMonotonicity:
    def test_set_bounds_shrinks(self):
        cap = make_cap(base=0x1000, length=0x1000)
        sub = cap.set_bounds(0x1100, 0x100)
        assert sub.base == 0x1100
        assert sub.length == 0x100

    def test_set_bounds_cannot_grow_down(self):
        cap = make_cap(base=0x1000, length=0x1000)
        with pytest.raises(MonotonicityFault):
            cap.set_bounds(0xF00, 0x100)

    def test_set_bounds_cannot_grow_up(self):
        cap = make_cap(base=0x1000, length=0x1000)
        with pytest.raises(MonotonicityFault):
            cap.set_bounds(0x1F00, 0x200)

    def test_set_bounds_negative_length(self):
        with pytest.raises(BoundsFault):
            make_cap().set_bounds(0x1000, -1)

    def test_set_bounds_clamps_cursor(self):
        cap = make_cap(base=0x1000, length=0x1000, cursor=0x1800)
        sub = cap.set_bounds(0x1000, 0x100)
        assert sub.cursor == 0x1100

    def test_and_perms_only_clears(self):
        cap = make_cap(perms=Perm.data_rw())
        ro = cap.and_perms(Perm.LOAD | Perm.LOAD_CAP)
        assert not ro.has_perm(Perm.STORE)
        # trying to add EXECUTE via and_perms cannot succeed
        again = ro.and_perms(Perm.all_perms())
        assert again.perms == ro.perms

    def test_without_perms(self):
        cap = make_cap(perms=Perm.data_rw())
        no_store = cap.without_perms(Perm.STORE | Perm.STORE_CAP)
        assert not no_store.has_perm(Perm.STORE)
        assert no_store.has_perm(Perm.LOAD)

    @given(
        base=st.integers(min_value=0, max_value=2**32),
        length=st.integers(min_value=0, max_value=2**20),
        sub_off=st.integers(min_value=0, max_value=2**20),
        sub_len=st.integers(min_value=0, max_value=2**20),
    )
    def test_prop_derived_bounds_never_exceed_parent(
        self, base, length, sub_off, sub_len
    ):
        """Any successful set_bounds yields bounds within the parent."""
        cap = make_cap(base=base, length=length)
        try:
            sub = cap.set_bounds(base + sub_off, sub_len)
        except MonotonicityFault:
            assert sub_off + sub_len > length
        else:
            assert sub.base >= cap.base
            assert sub.top <= cap.top

    @given(perm_bits=st.integers(min_value=0, max_value=511))
    def test_prop_perms_never_grow(self, perm_bits):
        cap = make_cap(perms=Perm.LOAD | Perm.STORE)
        derived = cap.and_perms(Perm(perm_bits))
        assert (derived.perms & ~cap.perms) == Perm.NONE

    @given(
        length=st.integers(min_value=16, max_value=2**16),
        depth=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_prop_chained_derivation_is_monotonic(self, length, depth, data):
        """A chain of derivations can never escape the original bounds."""
        cap = make_cap(base=0x10000, length=length)
        original_base, original_top = cap.base, cap.top
        for _ in range(depth):
            off = data.draw(st.integers(0, cap.length))
            sub_len = data.draw(st.integers(0, cap.length - off))
            cap = cap.set_bounds(cap.base + off, sub_len)
            assert cap.base >= original_base
            assert cap.top <= original_top


class TestDereference:
    def test_valid_access(self):
        cap = make_cap(base=0x1000, length=0x100, cursor=0x1010)
        assert cap.check_access(Perm.LOAD, size=8) == 0x1010

    def test_untagged_faults(self):
        cap = make_cap().invalidated()
        with pytest.raises(TagFault):
            cap.check_access(Perm.LOAD)

    def test_missing_perm_faults(self):
        cap = make_cap(perms=Perm.LOAD)
        with pytest.raises(PermissionFault):
            cap.check_access(Perm.STORE)

    def test_out_of_bounds_faults(self):
        cap = make_cap(base=0x1000, length=0x10, cursor=0x100F)
        with pytest.raises(BoundsFault):
            cap.check_access(Perm.LOAD, size=8)

    def test_out_of_bounds_cursor_representable(self):
        # Moving the cursor out of bounds is fine; dereference faults.
        cap = make_cap(base=0x1000, length=0x10).with_cursor(0x9999)
        assert cap.cursor == 0x9999
        with pytest.raises(BoundsFault):
            cap.check_access(Perm.LOAD)

    def test_explicit_addr_checked(self):
        cap = make_cap(base=0x1000, length=0x100)
        assert cap.check_access(Perm.LOAD, size=4, addr=0x1020) == 0x1020
        with pytest.raises(BoundsFault):
            cap.check_access(Perm.LOAD, size=4, addr=0x2000)

    def test_sealed_cannot_be_dereferenced(self):
        cap = make_cap().sealed(7)
        with pytest.raises(SealFault):
            cap.check_access(Perm.LOAD)


class TestSealing:
    def test_seal_unseal_roundtrip(self):
        cap = make_cap()
        sealed = cap.sealed(42)
        assert sealed.is_sealed
        assert sealed.otype == 42
        assert sealed.unsealed().otype == OTYPE_UNSEALED

    def test_double_seal_faults(self):
        with pytest.raises(SealFault):
            make_cap().sealed(1).sealed(2)

    def test_unseal_unsealed_faults(self):
        with pytest.raises(SealFault):
            make_cap().unsealed()

    def test_seal_with_unsealed_otype_rejected(self):
        with pytest.raises(SealFault):
            make_cap().sealed(OTYPE_UNSEALED)

    def test_sealed_is_immutable(self):
        sealed = make_cap().sealed(1)
        with pytest.raises(SealFault):
            sealed.with_cursor(0)
        with pytest.raises(SealFault):
            sealed.set_bounds(0x1000, 8)
        with pytest.raises(SealFault):
            sealed.and_perms(Perm.LOAD)

    def test_sentry(self):
        sentry = make_cap(perms=Perm.code()).sealed(OTYPE_SENTRY)
        assert sentry.is_sentry


class TestKernelRelocation:
    def test_rebased_shifts_base_and_cursor(self):
        cap = make_cap(base=0x1000, length=0x100, cursor=0x1040)
        moved = cap.rebased(0x10000)
        assert moved.base == 0x11000
        assert moved.cursor == 0x11040
        assert moved.length == 0x100

    def test_clamped_to_intersects(self):
        cap = make_cap(base=0x1000, length=0x1000)
        clamped = cap.clamped_to(0x1800, 0x4000)
        assert clamped.base == 0x1800
        assert clamped.top == 0x2000

    def test_clamped_to_disjoint_is_empty(self):
        cap = make_cap(base=0x1000, length=0x100)
        clamped = cap.clamped_to(0x9000, 0xA000)
        assert clamped.length == 0

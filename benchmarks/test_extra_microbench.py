"""Extra Unixbench-style microbenchmarks (beyond the paper's Fig 9).

Pipe throughput and raw syscall rate isolate the two SASOS
lightweightness mechanisms individually: cheap IPC data movement in one
address space, and trapless (sealed-gate) kernel entry.  They support
the paper's Fig 9 story with finer-grained evidence.
"""

from conftest import run_once

from repro.apps import unixbench
from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.baselines import MonolithicOS
from repro.core import UForkOS
from repro.machine import Machine


def run_extra_microbench():
    rows = []
    for name, os_cls in (("ufork", UForkOS), ("cheribsd", MonolithicOS)):
        os_ = os_cls(machine=Machine())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "bench"))
        pipe_result = unixbench.pipe_throughput(ctx, total_bytes=256 * 1024)

        os2 = os_cls(machine=Machine())
        ctx2 = GuestContext(os2, os2.spawn(hello_world_image(), "bench"))
        rate_result = unixbench.syscall_rate(ctx2, calls=500)

        rows.append({
            "system": name,
            "pipe_mb_per_s": pipe_result.mb_per_s,
            "syscall_ns": rate_result.per_syscall_ns,
            "syscalls_per_s": rate_result.calls_per_s,
        })
    return rows


def test_extra_microbenchmarks(benchmark, record_figure):
    rows = run_once(benchmark, run_extra_microbench)
    record_figure(
        "extra_microbench", rows,
        "Extra microbenchmarks: pipe throughput and syscall rate",
    )
    by_system = {row["system"]: row for row in rows}
    ufork = by_system["ufork"]
    cheribsd = by_system["cheribsd"]

    # IPC bandwidth: the single address space moves bytes faster
    assert ufork["pipe_mb_per_s"] > cheribsd["pipe_mb_per_s"]

    # syscall entry: sealed gate vs trap — a wide per-call gap
    assert ufork["syscall_ns"] < 0.5 * cheribsd["syscall_ns"]
    assert ufork["syscalls_per_s"] > 2 * cheribsd["syscalls_per_s"]

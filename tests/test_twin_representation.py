"""Property suite: both storage representations are one simulator.

The vectorized engine (``REPRO_PERF=1`` / ``Session(perf=True)``: flat
banked frames, batched charges, the bulk CoW-break hook) and the
self-contained per-page representation must be *byte-identical* in
every simulated observable — clock, attribution buckets, event
counters, page bytes, granule tags, refcounts and permissions — for
any interleaving of map/unmap (malloc + exit teardown), fork, CoW
break (parent and child stores, single and batched runs) and
tag-store/tag-clear traffic.

Hypothesis drives random operation sequences through the public
facade against a ``perf=False`` and a ``perf=True`` session and
compares full end states.  Shrinking then hands back the minimal
divergent sequence, which makes representation bugs unusually cheap
to debug.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Session

PAGE = 4096
PAGES = 4  # per-process scratch buffer driven by the operations
MAX_PROCS = 4

_op = st.one_of(
    st.tuples(st.just("store"), st.integers(0, MAX_PROCS - 1),
              st.integers(0, PAGES - 1), st.integers(0, 255),
              st.integers(0, 15)),
    st.tuples(st.just("store_run"), st.integers(0, MAX_PROCS - 1),
              st.integers(0, 255)),
    st.tuples(st.just("store_cap"), st.integers(0, MAX_PROCS - 1),
              st.integers(0, PAGES - 1), st.integers(0, 15)),
    st.tuples(st.just("map"), st.integers(0, MAX_PROCS - 1)),
    st.tuples(st.just("fork")),
    st.tuples(st.just("exit")),
)


def _run_ops(sim, ops):
    """Apply ``ops``; return the live contexts and any (index, error)
    pairs — errors must occur identically in both representations."""
    root = sim.spawn(name="root")
    root.set_reg("c19", root.malloc(PAGES * PAGE))
    stack = [root]
    errors = []
    for index, op in enumerate(ops):
        kind = op[0]
        try:
            if kind == "fork":
                if len(stack) < MAX_PROCS:
                    stack.append(stack[-1].fork())
            elif kind == "exit":
                if len(stack) > 1:
                    dying = stack.pop()
                    parent = stack[-1]
                    dying.exit(0)
                    parent.wait(dying.proc.pid)
            elif kind == "map":
                stack[op[1] % len(stack)].malloc(PAGE)
            else:
                ctx = stack[op[1] % len(stack)]
                cap = ctx.reg("c19")
                if kind == "store":
                    ctx.store(cap, bytes([op[3]]),
                              offset=op[2] * PAGE + op[4] * 16)
                elif kind == "store_run":
                    ctx.store_run(cap, bytes([op[2]] * 16),
                                  [page * PAGE for page in range(PAGES)])
                elif kind == "store_cap":
                    ctx.store_cap(cap, cap.add(op[3]),
                                  offset=op[2] * PAGE + op[3] * 16)
        except Exception as exc:  # noqa: BLE001 - must match across reprs
            errors.append((index, type(exc).__name__, str(exc)))
    return stack, errors


def _drive(perf, strategy, ops):
    """Run ``ops`` in a fresh session; return every simulated observable."""
    sim = Session(strategy=strategy, seed=5, perf=perf).boot()
    stack, errors = _run_ops(sim, ops)
    machine = sim.machine
    dumps = []
    for ctx in stack:
        space = ctx.space
        lo = ctx.proc.region_base // PAGE
        hi = (ctx.proc.region_top + PAGE - 1) // PAGE
        pages = []
        for vpn, frame, perms_int, cow, _note in space.mapped_items(lo, hi):
            frame_obj = machine.phys.frame(frame)
            pages.append((vpn - lo, perms_int, bool(cow),
                          machine.phys.refcount(frame),
                          frame_obj.read(0, PAGE),
                          tuple(frame_obj.tagged_granules())))
        dumps.append(pages)
    return {
        "errors": errors,
        "now_ns": machine.clock.now_ns,
        "buckets": dict(machine.clock.buckets),
        "counters": machine.counters.snapshot(),
        "allocated_frames": machine.phys.allocated_frames,
        "dumps": dumps,
    }


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(strategy=st.sampled_from(["full", "coa", "copa"]),
       ops=st.lists(_op, max_size=24))
def test_representations_are_byte_identical(strategy, ops):
    base = _drive(False, strategy, ops)
    fast = _drive(True, strategy, ops)
    assert base == fast


class _Recorder:
    def __init__(self):
        self.events = []

    def record(self, event, **fields):
        self.events.append((event, tuple(sorted(fields.items()))))


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_op, max_size=16))
def test_traced_runs_emit_identical_event_streams(ops):
    """With a tracer attached the engines must also agree on the
    *ordered* event stream, not just the aggregate state."""
    streams = []
    for perf in (False, True):
        sim = Session(strategy="copa", seed=5, perf=perf).boot()
        recorder = _Recorder()
        sim.machine.tracer = recorder
        _run_ops(sim, ops)
        streams.append(recorder.events)
    assert streams[0] == streams[1]

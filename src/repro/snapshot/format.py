"""The ``repro.snapshot/v1`` byte format.

A snapshot blob is::

    MAGIC (8 bytes) | manifest length (u32 LE) | manifest | page payload

The manifest is canonical JSON (sorted keys, no whitespace, UTF-8), so
two checkpoints of identical logical state are byte-identical.  The
payload is the raw bytes of every captured page, concatenated in
manifest order.

Capabilities are the part a naive memory dump would get wrong: their
in-memory encoding (:mod:`repro.cheri.codec`) interns metadata in a
*per-machine* table, so raw capability bytes are meaningless on another
machine — and real CHERI tags do not survive a plain byte copy either.
The manifest therefore records every tagged granule **logically**
(offset, base, length, cursor, perms, otype); restore re-mints each one
through :func:`repro.core.relocate.relocate_cap` on the target machine.
Untagged bytes — including stale, forged, or clobbered capability
encodings — travel verbatim in the payload and come back untagged.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Tuple

SCHEMA = "repro.snapshot/v1"

MAGIC = b"\xb5RSNAP1\x00"
_LEN = struct.Struct("<I")


class SnapshotFormatError(ValueError):
    """The blob is not a well-formed repro.snapshot/v1 snapshot."""


def dumps_manifest(manifest: Dict[str, Any]) -> bytes:
    """Canonical-JSON bytes of a manifest (deterministic)."""
    return json.dumps(
        manifest, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode(manifest: Dict[str, Any], payload: bytes) -> bytes:
    """Assemble a snapshot blob from its manifest and page payload."""
    if manifest.get("schema") != SCHEMA:
        raise SnapshotFormatError(
            f"manifest schema {manifest.get('schema')!r} != {SCHEMA!r}")
    body = dumps_manifest(manifest)
    return MAGIC + _LEN.pack(len(body)) + body + payload


def decode(blob: bytes) -> Tuple[Dict[str, Any], memoryview]:
    """Split a blob back into (manifest, payload view); validates the
    magic, schema, and payload length."""
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise SnapshotFormatError(f"not a snapshot blob: {type(blob)!r}")
    blob = memoryview(blob)
    if bytes(blob[:len(MAGIC)]) != MAGIC:
        raise SnapshotFormatError("bad snapshot magic")
    header_end = len(MAGIC) + _LEN.size
    (body_len,) = _LEN.unpack(bytes(blob[len(MAGIC):header_end]))
    body = bytes(blob[header_end:header_end + body_len])
    if len(body) != body_len:
        raise SnapshotFormatError("truncated snapshot manifest")
    try:
        manifest = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(f"unparsable manifest: {exc}") from exc
    if manifest.get("schema") != SCHEMA:
        raise SnapshotFormatError(
            f"unsupported snapshot schema {manifest.get('schema')!r}")
    payload = blob[header_end + body_len:]
    expected = len(manifest.get("pages", ())) * manifest.get("page_size", 0)
    if len(payload) != expected:
        raise SnapshotFormatError(
            f"payload is {len(payload)} bytes, manifest promises {expected}")
    return manifest, payload

"""JSON export and merging of observability data.

The export schema (``repro.obs/v1``) is documented normatively in
``docs/OBSERVABILITY.md``; this module provides serialization helpers
and the merge used for per-figure sidecars, where one experiment boots
several hermetic machines whose metrics should be reported together.

Merge semantics: counters and histogram contents sum, gauges keep their
maximum (a merged gauge answers "how deep did it get?"), span trees
merge node-by-node by path, and ``clock_ns``/``observed_ns`` sum —
preserving the invariant that the merged span-tree total equals the
merged observed time.

Usage::

    merged = merge_exports([m1.obs.export(), m2.obs.export()])
    write_export(merged, "fig8.obs.json")
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.obs.facade import SCHEMA


def _merge_histogram(into: Dict, other: Dict) -> None:
    into["count"] += other["count"]
    into["sum"] += other["sum"]
    for side in ("min", "max"):
        values = [v for v in (into[side], other[side]) if v is not None]
        if values:
            into[side] = min(values) if side == "min" else max(values)
    buckets = {tuple([le]): n for le, n in into["buckets"]}
    for le, n in other["buckets"]:
        key = tuple([le])
        buckets[key] = buckets.get(key, 0) + n
    into["buckets"] = sorted(
        ([le, n] for (le,), n in buckets.items()),
        key=lambda item: (item[0] is None, item[0]),
    )


def _merge_span(into: Dict, other: Dict) -> None:
    into["count"] += other["count"]
    into["self_ns"] += other["self_ns"]
    into["total_ns"] += other["total_ns"]
    children = {child["name"]: child for child in into["children"]}
    for child in other["children"]:
        mine = children.get(child["name"])
        if mine is None:
            copied = json.loads(json.dumps(child))
            children[child["name"]] = copied
        else:
            _merge_span(mine, child)
    into["children"] = [children[name] for name in sorted(children)]


def merge_exports(exports: Sequence[Dict]) -> Dict:
    """Merge per-machine exports into one schema-shaped document."""
    merged: Dict = {
        "schema": SCHEMA,
        "clock_ns": 0,
        "observed_ns": 0,
        "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        "spans": {"name": "", "count": 0, "self_ns": 0, "total_ns": 0,
                  "children": []},
    }
    for export in exports:
        if export.get("schema") != SCHEMA:
            raise ValueError(f"cannot merge export with schema "
                             f"{export.get('schema')!r}")
        merged["clock_ns"] += export["clock_ns"]
        merged["observed_ns"] += export["observed_ns"]
        metrics = export["metrics"]
        counters = merged["metrics"]["counters"]
        for name, value in metrics["counters"].items():
            counters[name] = counters.get(name, 0) + value
        gauges = merged["metrics"]["gauges"]
        for name, value in metrics["gauges"].items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = merged["metrics"]["histograms"]
        for name, hist in metrics["histograms"].items():
            if name not in histograms:
                histograms[name] = json.loads(json.dumps(hist))
            else:
                _merge_histogram(histograms[name], hist)
        _merge_span(merged["spans"], export["spans"])
    for section in ("counters", "gauges", "histograms"):
        merged["metrics"][section] = dict(
            sorted(merged["metrics"][section].items()))
    return merged


def to_json(export: Dict, indent: int = 2) -> str:
    """Serialize an export dict deterministically."""
    return json.dumps(export, indent=indent, sort_keys=True) + "\n"


def write_export(export: Dict, path: str) -> None:
    """Write an export document to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(export))


def validate_export(export: Dict) -> None:
    """Raise ``ValueError`` unless ``export`` matches the v1 schema."""
    if export.get("schema") != SCHEMA:
        raise ValueError(f"bad schema marker: {export.get('schema')!r}")
    for key in ("clock_ns", "observed_ns"):
        if not isinstance(export.get(key), int):
            raise ValueError(f"{key} must be an integer")
    metrics = export.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError("missing metrics section")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(metrics.get(section), dict):
            raise ValueError(f"missing metrics.{section}")
    for name, hist in metrics["histograms"].items():
        for key in ("count", "sum", "min", "max", "buckets"):
            if key not in hist:
                raise ValueError(f"histogram {name} missing {key}")
    _validate_span(export.get("spans"))


def _validate_span(node: Dict) -> None:
    if not isinstance(node, dict):
        raise ValueError("span node must be a dict")
    for key in ("name", "count", "self_ns", "total_ns", "children"):
        if key not in node:
            raise ValueError(f"span node missing {key}")
    child_total = sum(child["total_ns"] for child in node["children"])
    if node["total_ns"] != node["self_ns"] + child_total:
        raise ValueError(
            f"span {node['name']!r}: total {node['total_ns']} != "
            f"self {node['self_ns']} + children {child_total}")
    for child in node["children"]:
        _validate_span(child)

"""Memory management: program layout, VA reservation, guest allocator."""

from repro.mem.layout import ProgramImage, SegmentMap, SegmentSpec
from repro.mem.vspace import VirtualAreaAllocator
from repro.mem.allocator import GuestAllocator, ALLOC_RECORD_SIZE

__all__ = [
    "ProgramImage",
    "SegmentMap",
    "SegmentSpec",
    "VirtualAreaAllocator",
    "GuestAllocator",
    "ALLOC_RECORD_SIZE",
]

"""Property-based tag fidelity of the snapshot round trip.

Hypothesis drives arbitrary granule programs — valid capability stores
(with random sub-bounds, including a sealed sentry), raw byte writes
that clobber tags, and forged capability-looking bytes that were never
tagged — then checkpoints and restores into a fresh machine and checks
CHERI's memory-safety story survives serialization exactly:

* every tagged granule comes back tagged, with identical logical
  geometry (bounds/cursor shifted by exactly the region delta, same
  length, permissions and otype — seals included);
* every untagged granule comes back untagged, its raw integer bytes
  verbatim — forged or stale capability bytes are *never* re-tagged or
  relocated by the restore path.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.cheri.codec import CAP_SIZE
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.snapshot import checkpoint, restore

#: granules in the scratch buffer the programs operate on
SLOTS = 12

# one op per granule: what ends up in slot g
op = st.one_of(
    st.just(("leave",)),
    st.tuples(st.just("cap"),
              st.integers(min_value=0, max_value=SLOTS - 1),  # bounds base
              st.integers(min_value=1, max_value=SLOTS),      # bounds len
              st.integers(min_value=0, max_value=SLOTS)),     # cursor off
    st.just(("sentry",)),
    st.tuples(st.just("clobber"),                            # cap, then a
              st.integers(min_value=0, max_value=CAP_SIZE - 1)),  # byte poke
    st.tuples(st.just("forge"), st.binary(min_size=CAP_SIZE,
                                          max_size=CAP_SIZE)),
)


def boot(seed=5):
    machine = Machine(seed=seed)
    os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "props"))
    return os_, ctx


def run_program(ctx, ops):
    """Apply one op per granule of a fresh SLOTS-granule buffer."""
    buf = ctx.malloc(SLOTS * CAP_SIZE)
    for slot, spec in enumerate(ops):
        offset = slot * CAP_SIZE
        kind = spec[0]
        if kind == "leave":
            continue
        if kind == "cap":
            _, b, ln, cur = spec
            b = min(b, SLOTS - 1)
            ln = min(ln, SLOTS - b)
            derived = (buf.set_bounds(buf.base + b * CAP_SIZE,
                                      ln * CAP_SIZE)
                       .with_cursor(buf.base + min(cur, SLOTS) * CAP_SIZE))
            ctx.store_cap(buf, derived, offset=offset)
        elif kind == "sentry":
            ctx.store_cap(buf, ctx.proc.syscall_gate, offset=offset)
        elif kind == "clobber":
            derived = buf.set_bounds(buf.base, CAP_SIZE)
            ctx.store_cap(buf, derived, offset=offset)
            ctx.store(buf, b"\xa5", offset=offset + spec[1])
        elif kind == "forge":
            ctx.store(buf, spec[1], offset=offset)
    ctx.set_reg("c19", buf)
    return buf


def granule_view(ctx, buf):
    """(tagged, logical-or-raw fields) per slot, relative to the buffer."""
    out = []
    for slot in range(SLOTS):
        cap = ctx.load_cap(buf, offset=slot * CAP_SIZE)
        if cap.valid:
            if cap.is_sentry:
                # sentries are preserved bit-for-bit (kernel gate)
                out.append(("sentry", cap.base, cap.length, cap.cursor,
                            int(cap.perms), cap.otype))
            else:
                out.append(("cap", cap.base - buf.base, cap.length,
                            cap.cursor - buf.base, int(cap.perms),
                            cap.otype))
        else:
            # untagged: only the raw integer view is meaningful, and it
            # must travel verbatim (no relocation of untagged bytes)
            out.append(("raw", cap.cursor))
    return out


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op, min_size=SLOTS, max_size=SLOTS))
def test_round_trip_preserves_tags_bounds_and_seals(ops):
    os_a, ctx_a = boot()
    buf_a = run_program(ctx_a, ops)
    expected = granule_view(ctx_a, buf_a)
    blob = checkpoint(os_a, ctx_a.proc)
    ctx_a.exit(0)

    os_b, _boot_ctx = boot()
    restored = GuestContext(os_b, restore(os_b, blob))
    buf_b = restored.reg("c19")
    assert granule_view(restored, buf_b) == expected
    # tag *count* also matches exactly: nothing gained, nothing lost
    tags_a = sum(1 for entry in expected if entry[0] != "raw")
    manifest_tags = sum(
        1 for slot in range(SLOTS)
        if restored.load_cap(buf_b, offset=slot * CAP_SIZE).valid
    )
    assert manifest_tags == tags_a
    restored.exit(0)
    _boot_ctx.exit(0)


def test_forged_bytes_never_gain_authority():
    """A granule holding a byte-perfect copy of a real capability's
    encoding — written as data — stays untagged through the round trip
    and faults on use."""
    from repro.errors import TagFault

    os_a, ctx_a = boot()
    buf = ctx_a.malloc(SLOTS * CAP_SIZE)
    real = buf.set_bounds(buf.base, CAP_SIZE)
    ctx_a.store_cap(buf, real, offset=0)
    # replay the real capability's exact bytes into slot 1 as raw data
    space = os_a.space_of(ctx_a.proc)
    raw = space.read(buf.base, CAP_SIZE, privileged=True)
    ctx_a.store(buf, raw, offset=CAP_SIZE)
    ctx_a.set_reg("c19", buf)
    blob = checkpoint(os_a, ctx_a.proc)
    ctx_a.exit(0)

    os_b, _boot_ctx = boot()
    restored = GuestContext(os_b, restore(os_b, blob))
    buf_b = restored.reg("c19")
    assert restored.load_cap(buf_b, offset=0).valid
    forged = restored.load_cap(buf_b, offset=CAP_SIZE)
    assert not forged.valid
    with pytest.raises(TagFault):
        forged.check_access(forged.perms, size=1)
    restored.exit(0)
    _boot_ctx.exit(0)

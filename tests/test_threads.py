"""Tests for multi-threaded μprocesses (paper §3.4, building block 1:
"Each μprocess may have many threads. ... This matches the semantics of
fork, which copies a single thread")."""

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.cheri.regfile import DDC
from repro.core import UForkOS
from repro.machine import Machine


def boot():
    os_ = UForkOS(machine=Machine())
    return os_, GuestContext(os_, os_.spawn(hello_world_image(), "app"))


class TestThreads:
    def test_thread_shares_pid_and_memory(self):
        os_, ctx = boot()
        task = ctx.syscall("thread_create")
        assert task.process is ctx.proc
        assert len(ctx.proc.tasks) == 2
        # both threads see the same heap
        buf = ctx.malloc(16)
        ctx.store(buf, b"shared")
        thread_ddc = task.registers.get_cap(DDC)
        assert thread_ddc.base == ctx.reg(DDC).base

    def test_threads_scheduled(self):
        os_, ctx = boot()
        task = ctx.syscall("thread_create")
        os_.sched.switch_to(ctx.proc.main_task())
        assert os_.sched.yield_current() is task

    def test_fork_copies_a_single_thread(self):
        """POSIX: the child of a multithreaded fork has one thread."""
        os_, ctx = boot()
        ctx.syscall("thread_create")
        ctx.syscall("thread_create")
        assert len(ctx.proc.tasks) == 3
        child = ctx.fork()
        assert len(child.proc.tasks) == 1

    def test_child_thread_registers_relocated(self):
        os_, ctx = boot()
        ctx.syscall("thread_create")
        child = ctx.fork()
        ddc = child.proc.main_task().registers.get_cap(DDC)
        assert ddc.base == child.proc.region_base

    def test_exit_removes_all_threads_from_scheduler(self):
        os_, ctx = boot()
        child = ctx.fork()
        GuestContext(os_, child.proc).syscall("thread_create")
        runnable_before = os_.sched.runnable_count
        child.exit(0)
        assert os_.sched.runnable_count < runnable_before

    def test_new_pid_only_on_fork_not_thread(self):
        """Spawning a new μprocess creates a new PID; a thread does not
        (§3.4)."""
        os_, ctx = boot()
        task = ctx.syscall("thread_create")
        assert task.process.pid == ctx.pid
        child = ctx.fork()
        assert child.pid != ctx.pid

"""Unit tier for the chaos engine: schedules, mixes, the point catalog."""

import pytest

from repro.chaos import (
    INJECTION_POINTS,
    ChaosEngine,
    FaultMix,
    NULL_CHAOS,
    check_point_name,
    register_point,
)
from repro.chaos.engine import _draw


def engine(seed=7, spec="default=0.5", **kwargs):
    return ChaosEngine(seed=seed, mix=FaultMix.parse(spec), **kwargs)


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = [engine().should_fire("kernel.syscall.eintr")
             for _ in range(300)]
        b = [engine().should_fire("kernel.syscall.eintr")
             for _ in range(300)]
        # (each call above makes a fresh engine: index always 1)
        assert a == b

        one = engine()
        two = engine()
        assert [one.should_fire("kernel.syscall.eintr") for _ in range(300)] \
            == [two.should_fire("kernel.syscall.eintr") for _ in range(300)]

    def test_different_seed_different_schedule(self):
        one, two = engine(seed=1), engine(seed=2)
        assert [one.should_fire("kernel.syscall.eintr") for _ in range(300)] \
            != [two.should_fire("kernel.syscall.eintr") for _ in range(300)]

    def test_points_are_independent(self):
        """Interleaving hits at other points must not shift a point's
        own schedule — each point draws from its own hit counter."""
        plain = engine()
        sequence = [plain.should_fire("hw.phys.alloc_fail")
                    for _ in range(100)]
        noisy = engine()
        noisy_sequence = []
        for _ in range(100):
            noisy.should_fire("kernel.syscall.eintr")   # extra hits
            noisy.should_fire("hw.tlb.shootdown_loss")
            noisy_sequence.append(noisy.should_fire("hw.phys.alloc_fail"))
        assert sequence == noisy_sequence

    def test_draw_is_uniform_enough(self):
        draws = [_draw(7, "kernel.syscall.eintr", i) for i in range(2000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.45 < sum(draws) / len(draws) < 0.55

    def test_rate_one_always_fires_rate_zero_never(self):
        always = engine(spec="default=1.0")
        never = engine(spec="default=0.0")
        for _ in range(20):
            assert always.should_fire("kernel.syscall.eintr")
            assert not never.should_fire("kernel.syscall.eintr")

    def test_unregistered_point_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            engine().should_fire("kernel.syscall.typo")

    def test_disabled_and_paused_never_fire(self):
        e = engine(spec="default=1.0")
        e.disable()
        assert not e.should_fire("kernel.syscall.eintr")
        e.enable()
        with e.paused():
            assert not e.should_fire("kernel.syscall.eintr")
        assert e.should_fire("kernel.syscall.eintr")

    def test_accounting_and_export(self):
        e = engine(spec="default=1.0")
        e.should_fire("hw.phys.alloc_fail")
        e.should_fire("hw.phys.alloc_fail")
        e.note_recovery("hw.phys.alloc_fail")
        record = e.export()
        assert record["schema"] == "repro.chaos/v1"
        assert record["hits"] == {"hw.phys.alloc_fail": 2}
        assert record["fired"] == {"hw.phys.alloc_fail": 2}
        assert record["recovered"] == {"hw.phys.alloc_fail": 1}
        assert record["injections"] == [["hw.phys.alloc_fail", 1],
                                        ["hw.phys.alloc_fail", 2]]

    def test_degrade_tiers(self):
        e = engine(spec="core.strategies.cap_fault_storm=1.0",
                   degrade_after=2)
        assert e.degrade_tiers() == 0
        for _ in range(2):
            e.should_fire("core.strategies.cap_fault_storm")
        assert e.degrade_tiers() == 1
        for _ in range(2):
            e.should_fire("core.strategies.cap_fault_storm")
        assert e.degrade_tiers() == 2
        for _ in range(10):                     # clamps at the ladder end
            e.should_fire("core.strategies.cap_fault_storm")
        assert e.degrade_tiers() == 2
        e.disable()
        assert e.degrade_tiers() == 0


class TestFaultMix:
    def test_precedence_exact_wildcard_default(self):
        mix = FaultMix.parse(
            "default=0.1,core.ufork.abort.*=0.2,core.ufork.abort.reserve=0.9")
        assert mix.rate_for("kernel.syscall.eintr") == 0.1
        assert mix.rate_for("core.ufork.abort.copy_pages") == 0.2
        assert mix.rate_for("core.ufork.abort.reserve") == 0.9

    def test_longest_wildcard_wins(self):
        mix = FaultMix.parse("core.*=0.1,core.ufork.abort.*=0.7")
        assert mix.rate_for("core.ufork.abort.registers") == 0.7
        assert mix.rate_for("core.strategies.cap_fault_storm") == 0.1

    def test_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultMix.parse("kernel.syscall.nope=0.5")

    def test_rejects_unmatched_wildcard(self):
        with pytest.raises(ValueError, match="matches no registered"):
            FaultMix.parse("kernel.nope.*=0.5")

    def test_rejects_bad_rate_and_bad_entry(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultMix.parse("default=1.5")
        with pytest.raises(ValueError, match="not 'pattern=rate'"):
            FaultMix.parse("default")

    def test_to_spec_round_trips(self):
        spec = "default=0.1,core.ufork.abort.*=0.2,hw.phys.tag_clear=0.9"
        mix = FaultMix.parse(spec)
        again = FaultMix.parse(mix.to_spec())
        for point in INJECTION_POINTS:
            assert mix.rate_for(point) == again.rate_for(point)


class TestCatalog:
    def test_all_points_follow_naming_contract(self):
        from repro.chaos.faults import POINT_LAYERS
        for name, point in INJECTION_POINTS.items():
            assert check_point_name(name) == name
            assert point.layer in POINT_LAYERS
            assert point.description

    def test_check_point_name_rejects_bad_layer(self):
        with pytest.raises(ValueError, match="must start with"):
            check_point_name("apps.worker.crash")

    def test_register_point_idempotent_but_conflict_raises(self):
        point = register_point("hw.phys.alloc_fail",
                               INJECTION_POINTS["hw.phys.alloc_fail"]
                               .description)
        assert point is INJECTION_POINTS["hw.phys.alloc_fail"]
        with pytest.raises(ValueError, match="different description"):
            register_point("hw.phys.alloc_fail", "something else")


class TestNullChaos:
    def test_null_engine_is_inert(self):
        assert not NULL_CHAOS.enabled
        assert not NULL_CHAOS.should_fire("hw.phys.alloc_fail")
        assert NULL_CHAOS.syscall_fault("fork") is None
        assert NULL_CHAOS.degrade_tiers() == 0
        NULL_CHAOS.note_recovery("hw.phys.alloc_fail")  # no-op, no raise

    def test_fresh_machine_carries_null_chaos(self):
        from repro.machine import Machine
        machine = Machine()
        assert machine.chaos is NULL_CHAOS
        assert machine.phys.chaos is NULL_CHAOS

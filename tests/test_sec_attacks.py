"""The adversarial capability-security suite (docs/SECURITY.md).

Three layers of proof:

* the **attack corpus** (:mod:`repro.sec.attacks`): every adversarial
  guest program is defeated — ends in a capability fault, a typed
  kernel error, or a behavioral defense — under every fork strategy ×
  CPU count × chaos mode, and never silently succeeds;
* the **capability-flow auditor** (:mod:`repro.sec.auditor`): clean
  kernels audit clean, planted cross-μprocess capabilities are caught
  with provenance attached, and the auditor is live inside
  ``check_invariants`` so the conform explorer and farm hunt isolation
  violations at every preemption point;
* the **report**: ``repro.sec/v1`` is a pure function of the seed —
  two runs of the same matrix are byte-identical.
"""

from __future__ import annotations

import pytest

import repro.conform.isolated as promoted_isolated
import tests.isolated as shim_isolated
from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.cheri.capability import Capability, Perm
from repro.harness.reportio import dumps_report
from repro.machine import Machine
from repro.sec.attacks import ATTACKS, SASOS_STRATEGIES, STRATEGIES
from repro.sec.auditor import audit_cap_flow, provenance_of
from repro.sec.runner import (
    DEFAULT_CPUS,
    DEFAULT_FAULT_MIX,
    MODES,
    SCHEMA,
    format_summary,
    run_cell,
    run_sec,
)


def boot(strategy: str = "copa", cpus: int = 1, seed: int = 7):
    machine = Machine(seed=seed, num_cpus=cpus)
    if strategy == "monolithic":
        from repro.baselines.monolithic import MonolithicOS
        os_ = MonolithicOS(machine=machine)
    else:
        from repro.core import CopyStrategy, UForkOS
        os_ = UForkOS(machine=machine,
                      copy_strategy=CopyStrategy(strategy))
    return os_, GuestContext(os_, os_.spawn(hello_world_image(), "sec"))


# ---------------------------------------------------------------------------
# The attack matrix
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def full_report():
    """The acceptance matrix: every attack × all four strategies ×
    1/2/4 CPUs × clean and chaotic."""
    return run_sec(seed=7)


def test_full_matrix_defeats_every_attack(full_report):
    assert full_report["schema"] == SCHEMA
    assert full_report["verdict"] == "defeated"
    assert full_report["totals"]["breached"] == 0
    assert full_report["totals"]["audit_violations"] == 0
    expected = (len(ATTACKS) * len(STRATEGIES) * len(DEFAULT_CPUS)
                * len(MODES))
    assert full_report["totals"]["cells"] == expected


def test_full_matrix_covers_both_modes_and_all_cpus(full_report):
    keys = full_report["matrix"].keys()
    for cpus in DEFAULT_CPUS:
        for mode in MODES:
            assert any(f"-c{cpus}-{mode}" in key for key in keys)


@pytest.mark.parametrize("name", sorted(ATTACKS))
def test_attack_defeated_under_every_strategy(name):
    """Per-attack drill-down at 1 CPU clean: the defense that fires is
    one the attack declared, and the post-attack audit is clean."""
    attack, body = ATTACKS[name]
    for strategy in STRATEGIES:
        cell = run_cell(attack, body, strategy, 1, "clean", 7,
                        DEFAULT_FAULT_MIX)
        if strategy not in attack.strategies:
            assert cell["verdict"] == "n/a" and cell["reason"]
            continue
        assert cell["verdict"] == "defeated", (name, strategy, cell)
        assert cell["defense"] in attack.defeats, (name, strategy, cell)
        assert cell["audit_violations"] == 0


def test_gate_attacks_are_na_on_the_trap_entry_baseline():
    """The monolithic baseline enters the kernel via a trap, not a
    sealed sentry — there is no gate to forge or tamper with."""
    for name in ("gate_forge", "sealed_gate_tamper"):
        attack, _body = ATTACKS[name]
        assert attack.strategies == SASOS_STRATEGIES
        assert "sentry" in attack.na_reason or "gate" in attack.na_reason


def test_replay_point_reruns_the_attack_to_the_same_fault():
    attack, body = ATTACKS["bounds_widen"]
    cell = run_cell(attack, body, "copa", 1, "chaos", 7,
                    "default=0.0,sec.attack.replay=1.0")
    assert cell["replayed"] is True
    assert cell["verdict"] == "defeated", cell
    assert cell["chaos_fired"]["sec.attack.replay"] >= 1


def test_bystander_fork_races_do_not_blunt_a_defense():
    attack, body = ATTACKS["stale_cap_after_cow"]
    cell = run_cell(attack, body, "copa", 2, "chaos", 7,
                    "default=0.0,sec.attack.bystander_fork=1.0")
    assert cell["verdict"] == "defeated", cell
    assert cell["chaos_fired"]["sec.attack.bystander_fork"] >= 1


def test_report_is_byte_identical_across_runs():
    kwargs = dict(seed=11, strategies=("copa", "monolithic"),
                  cpus_list=(1, 2))
    first = dumps_report(run_sec(**kwargs))
    second = dumps_report(run_sec(**kwargs))
    assert first == second


def test_summary_names_the_verdict(full_report):
    text = format_summary(full_report)
    assert "verdict: DEFEATED" in text
    assert "BREACH" not in text


def test_unknown_attack_and_strategy_are_rejected():
    with pytest.raises(ValueError, match="unknown attacks"):
        run_sec(attacks=["not_an_attack"])
    with pytest.raises(ValueError, match="unknown strategies"):
        run_sec(strategies=["exokernel"])


# ---------------------------------------------------------------------------
# The capability-flow auditor
# ---------------------------------------------------------------------------

def test_clean_kernel_audits_clean_after_fork_and_libraries():
    os_, ctx = boot("copa")
    child = ctx.fork()
    assert audit_cap_flow(os_) == []
    child.exit(0)
    ctx.wait(child.pid)
    assert audit_cap_flow(os_) == []


def test_auditor_catches_a_planted_register_leak():
    """A parent capability sitting in a child register after fork is
    exactly the §4.2 violation relocation exists to prevent."""
    os_, ctx = boot("copa")
    child = ctx.fork()
    child.set_reg("c20", ctx.reg("ddc"))
    violations = audit_cap_flow(os_)
    assert violations, "planted cross-μprocess register cap not caught"
    assert any("register c20" in v for v in violations)
    assert any("minted for pid" in v for v in violations)


def test_auditor_catches_a_planted_memory_leak():
    """A tagged granule holding another μprocess's capability is caught
    at its page, with provenance naming the victim."""
    os_, ctx = boot("copa")
    child = ctx.fork()
    machine = os_.machine
    page = machine.config.page_size
    buf = child.malloc(32)
    child.store_u64(buf, 1)  # break the CoW share: page is now private
    space = os_.space_of(child.proc)
    pte = space.page_table.get(buf.base // page)
    machine.phys.frame(pte.frame).store_cap(0, ctx.reg("ddc"),
                                            machine.codec)
    violations = audit_cap_flow(os_)
    assert violations, "planted cross-μprocess memory cap not caught"
    assert any("escapes the μprocess region" in v for v in violations)


def test_auditor_runs_inside_conform_invariants():
    from repro.conform.invariants import check_invariants
    os_, ctx = boot("copa")
    child = ctx.fork()
    child.set_reg("c20", ctx.reg("ddc"))
    assert any("escapes the μprocess region" in v
               for v in check_invariants(os_))


def test_provenance_of_live_dead_and_forged_spans():
    os_, ctx = boot("copa")
    own = ctx.malloc(16)
    assert "minted for pid" in provenance_of(os_, own)
    child = ctx.fork()
    stale = child.malloc(16)
    child.exit(0)
    ctx.wait(child.pid)
    assert "dead pid" in provenance_of(os_, stale)
    forged = Capability(base=0xDEAD_0000, length=16, cursor=0xDEAD_0000,
                        perms=Perm.LOAD, valid=True)
    assert "no recorded mint" in provenance_of(os_, forged)


# ---------------------------------------------------------------------------
# Conform wiring: probe scenarios + the isolated shim surface
# ---------------------------------------------------------------------------

def test_farm_plans_the_sec_corpus():
    from repro.conform.farm import plan_units
    names = {unit["scenario"] for unit in plan_units()}
    assert {"sec-probe-across-fork", "sec-probe-under-cow"} <= names


def test_probe_events_are_strategy_invariant():
    from repro.conform.dsl import normalize_trace
    from repro.conform.scenarios import by_name
    from repro.conform.simrun import run_sim
    scenario = by_name("sec-probe-across-fork")
    traces = set()
    for strategy in STRATEGIES:
        trace, _meta = run_sim(scenario, strategy, num_cpus=2, seed=0)
        traces.add(dumps_report(normalize_trace(trace)))
    assert len(traces) == 1
    only = traces.pop()
    assert "BoundsFault" in only and "TagFault" in only


def test_explorer_proves_probes_under_interleaving():
    from repro.conform.explorer import explore
    from repro.conform.scenarios import by_name
    result = explore(by_name("sec-probe-under-cow"), strategy="copa",
                     num_cpus=2, budget=12)
    assert result["violations"] == []
    assert result["schedules"] >= 1


def test_runner_accepts_sec_scenarios_without_the_host_oracle():
    """Explicit selection reaches the sim-only corpora, but only with
    the host oracle off — probes have no host-POSIX equivalent."""
    from repro.conform.runner import run_conform
    with pytest.raises(ValueError, match="no host equivalent"):
        run_conform(scenario_names=["sec-probe-across-fork"], host=True)
    report = run_conform(seed=7, cpus=[2], strategies=["coa", "copa"],
                         depth_bound=2, budget=4,
                         scenario_names=["sec-probe-across-fork"],
                         host=False)
    assert report["totals"]["diffs"] == 0
    assert report["totals"]["errors"] == 0
    assert report["totals"]["violations"] == 0


def test_isolated_shim_surface_is_pinned():
    """Satellite (c): the promoted module declares its public surface
    and the tests/ shim re-exports exactly that — name-for-name,
    object-for-object — so the two can never drift again."""
    assert promoted_isolated.__all__ == shim_isolated.__all__
    for name in promoted_isolated.__all__:
        ours = getattr(shim_isolated, name)
        theirs = getattr(promoted_isolated, name)
        assert ours is theirs or ours == theirs, name

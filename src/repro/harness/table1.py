"""Table 1: qualitative comparison of SASOS fork systems.

The table's properties are encoded as data so tests can assert the
claims (e.g. μFork is the only row with SAS + Isolation + SC + fast
IPC + no segment-relative addressing + full fork).  Column legend, as
in the paper: SAS = single address space; SC = self-contained (no
infrastructure changes); Seg = segment-relative addressing; f+e only =
supports only the fork+exec pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, List


@dataclass(frozen=True)
class SystemRow:
    system: str
    sas: bool
    isolation: bool
    self_contained: bool
    ipc: str  # "fast" | "medium" | "slow"
    segment_relative: bool
    fork_exec_only: bool


TABLE1: List[SystemRow] = [
    SystemRow("Angel", True, True, True, "fast", True, False),
    SystemRow("Mungi", True, True, True, "fast", True, False),
    SystemRow("Nephele", False, True, False, "medium", False, False),
    SystemRow("KylinX", False, True, False, "medium", False, False),
    SystemRow("Graphene", False, True, False, "medium", False, False),
    SystemRow("Graphene-SGX", False, True, False, "slow", False, False),
    SystemRow("Iso-Unik", False, True, True, "medium", False, False),
    SystemRow("OSv", True, False, True, "fast", False, True),
    SystemRow("Junction", True, False, False, "medium", False, True),
    SystemRow("uFork", True, True, True, "fast", False, False),
]


def table1_rows() -> List[Dict[str, object]]:
    """Rows for rendering, with Yes/No strings like the paper."""
    def yn(flag: bool) -> str:
        return "Yes" if flag else "No"

    rows = []
    for row in TABLE1:
        rows.append({
            "System": row.system,
            "SAS": yn(row.sas),
            "Isolation": yn(row.isolation),
            "SC": yn(row.self_contained),
            "IPCs": row.ipc.capitalize(),
            "Seg": yn(row.segment_relative),
            "f+e only": yn(row.fork_exec_only),
        })
    return rows


def satisfies_all_goals(row: SystemRow) -> bool:
    """The paper's claim: only μFork hits every objective."""
    return (row.sas and row.isolation and row.self_contained
            and row.ipc == "fast" and not row.segment_relative
            and not row.fork_exec_only)

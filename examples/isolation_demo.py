#!/usr/bin/env python3
"""Isolation in μFork: what an attacker-controlled μprocess cannot do.

Walks the paper's isolation mechanisms (§4.3, §4.4) as live checks:
capability confinement, kernel memory protection, sealed syscall
gates, privileged-instruction gating, and the parameterized isolation
levels with their costs.

Run:  python examples/isolation_demo.py
"""

from repro.api import Session
from repro.cheri.capability import Capability, Perm
from repro.cheri.regfile import DDC
from repro.core.isolation import check_privileged
from repro.core.ufork import KERNEL_BASE
from repro.errors import (
    BoundsFault,
    IsolationViolation,
    MonotonicityFault,
    PrivilegeViolation,
    ProtectionError,
)


def expect(exc_type, action, description: str) -> None:
    try:
        action()
    except exc_type as exc:
        print(f"  BLOCKED ({exc_type.__name__}): {description}")
        print(f"          {exc}")
    else:
        raise AssertionError(f"{description} was NOT blocked!")


def main() -> None:
    session = Session(os="ufork", isolation="full", seed=0).boot()
    os_ = session.os
    victim = session.spawn(name="victim")
    attacker = session.spawn(name="attacker")
    ddc = attacker.reg(DDC)

    print("1. μprocesses cannot reach each other's memory:")
    expect(
        BoundsFault,
        lambda: ddc.check_access(Perm.LOAD, size=8,
                                 addr=victim.proc.region_base),
        "attacker dereferencing an address in the victim's region",
    )

    print("\n2. capability monotonicity: authority can only shrink:")
    expect(
        MonotonicityFault,
        lambda: ddc.set_bounds(0, os_.machine.config.va_size),
        "attacker widening its region capability to the whole space",
    )

    print("\n3. kernel memory is unmapped for user access:")
    expect(
        ProtectionError,
        lambda: os_.space.read(KERNEL_BASE, 8),
        "user-mode read of kernel memory",
    )

    print("\n4. kernel entry only via the sealed sentry gate:")
    forged = Capability(base=KERNEL_BASE, length=16, cursor=KERNEL_BASE,
                        perms=Perm.code())
    expect(
        IsolationViolation,
        lambda: os_.syscall(attacker.proc, "getpid", gate=forged),
        "syscall through a forged (unsealed) gate capability",
    )

    print("\n5. privileged instructions require the SYSTEM permission:")
    expect(
        PrivilegeViolation,
        lambda: check_privileged(ddc, "msr"),
        "attacker executing an MSR-class system instruction",
    )

    print("\n6. parameterized isolation (R4) — same syscall, three costs:")
    for level_name, level in (
        ("none ", "none"),
        ("fault", "fault"),
        ("full ", "full"),
    ):
        level_session = Session(os="ufork", isolation=level,
                                seed=0).boot()
        ctx = level_session.spawn(name="p")
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        fd = ctx.syscall("open", "/f", O_CREAT | O_WRONLY)
        with level_session.machine.clock.measure() as watch:
            ctx.write_bytes(fd, b"y" * 4096)
        print(f"  isolation={level_name}: 4 KB write costs "
              f"{watch.elapsed_us:.2f} us")
    print("\nDeployments pick their point on the isolation/performance "
          "curve (Redis: none, Nginx: fault, qmail: full).")


if __name__ == "__main__":
    main()

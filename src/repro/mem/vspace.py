"""Virtual-address area reservation for μprocesses.

The single address space dedicates one large window to μprocesses; each
fork reserves a fresh contiguous area inside it (paper §3.5 step 1).
The allocator is a first-fit extent allocator with optional ASLR
(randomizing each μprocess's base offset, §3.7) and fragmentation
introspection for the paper's §6 discussion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import OutOfVirtualSpace


@dataclass
class _Extent:
    base: int
    size: int

    @property
    def top(self) -> int:
        return self.base + self.size


class VirtualAreaAllocator:
    """First-fit contiguous VA reservation with optional ASLR."""

    def __init__(self, base: int, size: int, page_size: int,
                 aslr_rng: Optional[random.Random] = None) -> None:
        if base % page_size or size % page_size:
            raise ValueError("window must be page aligned")
        self.window_base = base
        self.window_size = size
        self.page_size = page_size
        self._aslr_rng = aslr_rng
        self._free: List[_Extent] = [_Extent(base, size)]
        self._reserved: Dict[int, int] = {}  # base -> size

    # -- reservation -------------------------------------------------------

    def reserve(self, size: int) -> int:
        """Reserve a page-aligned contiguous area; returns its base."""
        size = self._align(size)
        if size <= 0:
            raise ValueError("reservation must be positive")
        index = self._find_fit(size)
        if index is None:
            raise OutOfVirtualSpace(
                f"no contiguous {size:#x}-byte area (largest free: "
                f"{self.largest_free():#x})"
            )
        extent = self._free[index]
        offset = 0
        if self._aslr_rng is not None and extent.size > size:
            slack_pages = (extent.size - size) // self.page_size
            offset = self._aslr_rng.randrange(slack_pages + 1) * self.page_size
        base = extent.base + offset
        self._carve(index, base, size)
        self._reserved[base] = size
        return base

    def release(self, base: int) -> None:
        size = self._reserved.pop(base, None)
        if size is None:
            raise KeyError(f"area {base:#x} is not reserved")
        self._insert_free(_Extent(base, size))

    # -- introspection -----------------------------------------------------

    def reserved_areas(self) -> List[Tuple[int, int]]:
        return sorted(self._reserved.items())

    def free_extents(self) -> List[Tuple[int, int]]:
        return [(extent.base, extent.size) for extent in self._free]

    def largest_free(self) -> int:
        return max((extent.size for extent in self._free), default=0)

    def total_free(self) -> int:
        return sum(extent.size for extent in self._free)

    def fragmentation(self) -> float:
        """1 - largest_free/total_free: 0 when free space is contiguous."""
        total = self.total_free()
        if total == 0:
            return 0.0
        return 1.0 - self.largest_free() / total

    # -- internals -----------------------------------------------------------

    def _align(self, size: int) -> int:
        return (size + self.page_size - 1) // self.page_size * self.page_size

    def _find_fit(self, size: int) -> Optional[int]:
        for index, extent in enumerate(self._free):
            if extent.size >= size:
                return index
        return None

    def _carve(self, index: int, base: int, size: int) -> None:
        extent = self._free.pop(index)
        before = _Extent(extent.base, base - extent.base)
        after = _Extent(base + size, extent.top - (base + size))
        for piece in (after, before):
            if piece.size > 0:
                self._free.insert(index, piece)

    def _insert_free(self, extent: _Extent) -> None:
        # keep the list sorted and coalesce neighbours
        self._free.append(extent)
        self._free.sort(key=lambda e: e.base)
        merged: List[_Extent] = []
        for piece in self._free:
            if merged and merged[-1].top == piece.base:
                merged[-1].size += piece.size
            else:
                merged.append(piece)
        self._free = merged

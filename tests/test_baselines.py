"""Tests for the CheriBSD-like monolithic and Nephele-like VM-clone
baselines, including the cross-OS transparency property: the same app
code runs on every OS."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import GREETING, hello_world_image, run_hello
from repro.baselines import MonolithicOS, VMCloneOS
from repro.core import UForkOS
from repro.machine import Machine

ALL_OS = [UForkOS, MonolithicOS, VMCloneOS]


def boot(os_cls):
    return os_cls(machine=Machine())


def spawn_hello(os_):
    return GuestContext(os_, os_.spawn(hello_world_image(), "hello"))


class TestTransparency:
    """(R2): unmodified app code runs on every OS."""

    @pytest.mark.parametrize("os_cls", ALL_OS)
    def test_hello_runs(self, os_cls):
        ctx = spawn_hello(boot(os_cls))
        assert run_hello(ctx) == GREETING

    @pytest.mark.parametrize("os_cls", ALL_OS)
    def test_fork_snapshot_semantics(self, os_cls):
        os_ = boot(os_cls)
        parent = spawn_hello(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"pre-fork")
        parent.set_reg("c9", buf)
        child = parent.fork()
        child_buf = child.reg("c9")
        assert child.load(child_buf, 8) == b"pre-fork"
        parent.store(buf, b"mutated!")
        assert child.load(child_buf, 8) == b"pre-fork"

    @pytest.mark.parametrize("os_cls", ALL_OS)
    def test_fork_exit_wait(self, os_cls):
        os_ = boot(os_cls)
        parent = spawn_hello(os_)
        child = parent.fork()
        child.exit(3)
        assert parent.wait(child.pid) == (child.pid, 3)

    @pytest.mark.parametrize("os_cls", ALL_OS)
    def test_file_io(self, os_cls):
        from repro.kernel.vfs import O_CREAT, O_RDONLY, O_WRONLY
        os_ = boot(os_cls)
        ctx = spawn_hello(os_)
        fd = ctx.syscall("open", "/data", O_CREAT | O_WRONLY)
        ctx.write_bytes(fd, b"persisted bytes")
        ctx.syscall("close", fd)
        fd = ctx.syscall("open", "/data", O_RDONLY)
        assert ctx.read_bytes(fd, 100) == b"persisted bytes"
        ctx.syscall("close", fd)


class TestMonolithic:
    def test_same_base_address_for_all_processes(self):
        os_ = boot(MonolithicOS)
        a = spawn_hello(os_)
        b = spawn_hello(os_)
        assert a.proc.region_base == b.proc.region_base
        assert a.proc.space is not b.proc.space

    def test_fork_does_not_relocate_registers(self):
        os_ = boot(MonolithicOS)
        parent = spawn_hello(os_)
        child = parent.fork()
        from repro.cheri.regfile import CSP, DDC
        assert child.reg(DDC).base == parent.reg(DDC).base
        assert child.reg(CSP).cursor == parent.reg(CSP).cursor

    def test_cow_breaks_on_write(self):
        os_ = boot(MonolithicOS)
        parent = spawn_hello(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"original")
        child = parent.fork()
        child._pending_allocator_touch = False  # isolate the CoW test
        child.proc._pending_allocator_touch = False
        before = os_.machine.counters.get("cow_page_copies")
        child_ctx_buf = child.reg("c9") if "c9" in child.registers else buf
        child.store(buf, b"childnew")
        assert os_.machine.counters.get("cow_page_copies") > before
        assert parent.load(buf, 8) == b"original"

    def test_child_plain_read_never_copies(self):
        """Classic CoW: reads stay shared (μFork can't do this without
        CoPA's tag-awareness — here no relocation is needed)."""
        os_ = boot(MonolithicOS)
        parent = spawn_hello(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"shared")
        child = parent.fork()
        before = os_.machine.counters.get("cow_page_copies")
        assert child.load(buf, 6) == b"shared"
        assert os_.machine.counters.get("cow_page_copies") == before

    def test_fork_cost_scales_with_mapped_pages(self):
        from repro.apps.redis import redis_image
        from repro.mem.layout import MiB
        os_ = boot(MonolithicOS)
        small = GuestContext(os_, os_.spawn(hello_world_image(), "s"))
        with os_.machine.clock.measure() as watch_small:
            small.fork()
        big = GuestContext(os_, os_.spawn(redis_image(8 * MiB), "b"))
        with os_.machine.clock.measure() as watch_big:
            big.fork()
        assert watch_big.elapsed_ns > watch_small.elapsed_ns

    def test_trap_syscalls_cost_more_than_sealed(self):
        mono = boot(MonolithicOS)
        sasos = boot(UForkOS)
        ctx_m = spawn_hello(mono)
        ctx_u = spawn_hello(sasos)
        with mono.machine.clock.measure() as watch_m:
            ctx_m.syscall("getpid")
        with sasos.machine.clock.measure() as watch_u:
            ctx_u.syscall("getpid")
        assert watch_m.elapsed_ns > watch_u.elapsed_ns

    def test_shared_library_frames_shared(self):
        os_ = boot(MonolithicOS)
        a = spawn_hello(os_)
        frames_after_one = os_.machine.phys.allocated_frames
        b = spawn_hello(os_)
        added = os_.machine.phys.allocated_frames - frames_after_one
        # the second process added fewer frames than its full mapping
        # because library text frames are shared
        assert added < len(list(b.proc.space.page_table.entries()))

    def test_allocator_touch_breaks_cow_lazily(self):
        os_ = boot(MonolithicOS)
        parent = spawn_hello(os_)
        block = parent.malloc(8 * 4096)
        parent.store(block, b"z" * (8 * 4096))
        child = parent.fork()
        assert child.proc._pending_allocator_touch
        before = os_.machine.counters.get("cow_page_copies")
        child.syscall("getpid")  # first kernel entry triggers the touch
        assert os_.machine.counters.get("cow_page_copies") > before
        assert not child.proc._pending_allocator_touch


class TestVMClone:
    def test_fork_copies_whole_guest(self):
        os_ = boot(VMCloneOS)
        parent = spawn_hello(os_)
        mapped = len(list(parent.proc.space.page_table.entries()))
        frames_before = os_.machine.phys.allocated_frames
        parent.fork()
        assert os_.machine.phys.allocated_frames - frames_before == mapped

    def test_fork_pays_domain_creation(self):
        os_ = boot(VMCloneOS)
        parent = spawn_hello(os_)
        with os_.machine.clock.measure() as watch:
            parent.fork()
        assert watch.elapsed_ns >= os_.machine.costs.vm_clone_fixed_ns

    def test_guest_kernel_pages_cloned_too(self):
        from repro.baselines.vmclone import GUEST_KERNEL_BYTES
        os_ = boot(VMCloneOS)
        parent = spawn_hello(os_)
        child = parent.fork()
        page = os_.machine.config.page_size
        # the clone's private memory exceeds the app image alone
        # (the mmap demand window is unmapped until used)
        image = hello_world_image()
        app_bytes = image.region_size(page) - image.mmap_size
        assert os_.private_bytes(child.proc) >= app_bytes + \
            (GUEST_KERNEL_BYTES // page) * page - page

    def test_no_sharing_between_vms(self):
        os_ = boot(VMCloneOS)
        parent = spawn_hello(os_)
        child = parent.fork()
        page = os_.machine.config.page_size
        mapped = len(list(child.proc.space.page_table.entries()))
        assert os_.private_bytes(child.proc) == mapped * page

    def test_clone_memory_metric_about_1_6mb(self):
        os_ = boot(VMCloneOS)
        parent = spawn_hello(os_)
        child = parent.fork()
        mem_mb = os_.memory_of(child.proc) / (1024 * 1024)
        assert 1.0 < mem_mb < 2.5  # paper: 1.6 MB


class TestForkLatencyOrdering:
    def test_paper_headline_ordering(self):
        """μFork < CheriBSD < Nephele on hello-world fork latency."""
        latencies = {}
        for os_cls in ALL_OS:
            os_ = boot(os_cls)
            ctx = spawn_hello(os_)
            with os_.machine.clock.measure() as watch:
                ctx.fork()
            latencies[os_.kind] = watch.elapsed_ns
        assert latencies["ufork"] < latencies["cheribsd"] \
            < latencies["nephele"]
        # orders of magnitude, as the paper reports
        assert latencies["nephele"] > 50 * latencies["ufork"]

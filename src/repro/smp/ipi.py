"""The inter-processor-interrupt bus and the TLB-shootdown protocol.

Cross-core coherence is where multi-address-space forks get expensive
on real multiprocessors: write-protecting the parent's pages for CoW
invalidates every other core's cached translations, and the kernel must
interrupt each of them and wait for acknowledgements before the fork
may proceed.  The paper's lightweightness argument (§2.2) rests on
μFork *avoiding* that broadcast — a single-address-space fork maps the
child onto fresh virtual addresses, so only CPUs that actually ran the
parent μprocess can hold stale entries, and a single-threaded parent
that never migrated needs no IPIs at all.

The protocol modeled here is the classic ack-based one:

1. the initiator sends one IPI per recipient CPU
   (``ipi_send_ns`` each);
2. each recipient invalidates its private TLB
   (``tlb_flush_ns``, charged per recipient);
3. each recipient acknowledges; the initiator spins until every ack
   arrives (``ipi_ack_ns`` each).

Total broadcast cost is therefore ``R × (ipi_send_ns + tlb_flush_ns +
ipi_ack_ns)`` for R recipients — see :meth:`CostModel.shootdown_ns`
and docs/COSTMODEL.md.  Zero recipients cost zero, which is what keeps
1-CPU machines bit-identical to the pre-SMP model.

Chaos: the ``smp.ipi.drop`` point loses an IPI in the interconnect;
the initiator's ack timeout detects the miss (``ipi_timeout_ns``) and
re-sends, so correctness never depends on the first interrupt landing
— the same recovery contract as ``hw.tlb.shootdown_loss``.  The
``smp.tlb.stale_storm`` point hits a recipient with a storm of
stale-entry faults before the invalidation sticks, forcing it to
re-run the invalidation.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional


class IpiBus:
    """Delivers IPIs between cores, with the ack handshake and costs.

    Observable as the ``smp.ipi.sent`` / ``smp.ipi.acked`` /
    ``smp.ipi.dropped`` / ``smp.ipi.resent`` counters (plus a
    ``smp.ipi.<kind>`` counter per interrupt kind).
    """

    def __init__(self, machine: Any) -> None:
        self.machine = machine
        self.sent = 0
        self.acked = 0
        self.dropped = 0
        self.resent = 0

    def send(self, src: int, dst: int, kind: str) -> int:
        """Send one IPI from ``src`` to ``dst`` and wait for the ack.

        Returns the number of send attempts (1, or 2 after a chaos
        drop + timeout + re-send).
        """
        machine = self.machine
        machine.charge(machine.costs.ipi_send_ns, "ipi")
        self.sent += 1
        machine.obs.count("smp.ipi.sent")
        machine.obs.count(f"smp.ipi.{kind}")
        machine.counters.add("ipi_sent")
        attempts = 1
        chaos = machine.chaos
        if chaos.enabled and chaos.should_fire("smp.ipi.drop"):
            # lost in the interconnect: the initiator's ack timeout
            # detects the miss and re-sends (the re-send models a
            # transient loss, not a dead core, so it always lands)
            self.dropped += 1
            machine.obs.count("smp.ipi.dropped")
            machine.charge(machine.costs.ipi_timeout_ns, "ipi")
            machine.charge(machine.costs.ipi_send_ns, "ipi")
            self.sent += 1
            self.resent += 1
            machine.obs.count("smp.ipi.sent")
            machine.obs.count("smp.ipi.resent")
            machine.counters.add("ipi_sent")
            chaos.note_recovery("smp.ipi.drop")
            attempts += 1
        machine.charge(machine.costs.ipi_ack_ns, "ipi")
        self.acked += 1
        machine.obs.count("smp.ipi.acked")
        machine.counters.add("ipi_acked")
        return attempts


def tlb_shootdown(machine: Any, targets: Iterable[int],
                  initiator: Optional[int] = None,
                  reason: str = "shootdown") -> int:
    """Run the ack-based shootdown against every online CPU in
    ``targets`` other than the initiator; returns the recipient count.

    The cost is *per recipient* (send + remote invalidate + ack), so a
    broadcast scales with the number of online CPUs while an empty
    recipient set — always the case on a 1-CPU machine — is free and
    leaves no observable trace.
    """
    if initiator is None:
        initiator = machine.current_cpu
    online = machine.num_cpus
    recipients = sorted({cpu for cpu in targets
                         if 0 <= cpu < online and cpu != initiator})
    if not recipients:
        return 0
    machine.counters.add("tlb_shootdown_broadcast")
    machine.obs.count("smp.tlb.shootdowns")
    machine.trace("tlb_shootdown", initiator=initiator,
                  recipients=len(recipients), reason=reason)
    chaos = machine.chaos
    for cpu in recipients:
        machine.ipi.send(initiator, cpu, "tlb_shootdown")
        machine.cpus[cpu].tlb.remote_invalidate()
        if chaos.enabled and chaos.should_fire("smp.tlb.stale_storm"):
            # a storm of stale-entry faults hits the recipient before
            # the invalidation sticks; it re-runs the invalidation
            machine.cpus[cpu].tlb.remote_invalidate()
            machine.obs.count("smp.tlb.stale_storms")
            chaos.note_recovery("smp.tlb.stale_storm")
    machine.counters.add("tlb_shootdown_ipis", len(recipients))
    return len(recipients)

"""End-to-end tests of μFork: spawn, fork, relocation, strategies,
isolation — the core claims of the paper as executable checks."""

import pytest

from repro.cheri.capability import Capability, Perm
from repro.cheri.codec import CAP_SIZE
from repro.cheri.regfile import CGP, CSP, DDC, PCC
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.core.got import got_confined, read_got
from repro.apps.guest import GuestContext
from repro.apps.hello import GREETING, hello_world_image, run_hello
from repro.errors import (
    IsolationViolation,
    ProtectionError,
)
from repro.machine import Machine


def boot(strategy=CopyStrategy.COPA, isolation=None, **kwargs):
    return UForkOS(machine=Machine(), copy_strategy=strategy,
                   isolation=isolation, **kwargs)


def spawn_hello(os_):
    proc = os_.spawn(hello_world_image(), "hello")
    return GuestContext(os_, proc)


class TestSpawn:
    def test_spawn_creates_runnable_uprocess(self):
        os_ = boot()
        ctx = spawn_hello(os_)
        assert ctx.proc.alive
        assert ctx.proc.pid == 1
        assert os_.process_count() == 1

    def test_program_runs(self):
        ctx = spawn_hello(boot())
        assert run_hello(ctx) == GREETING

    def test_registers_bounded_to_region(self):
        ctx = spawn_hello(boot())
        proc = ctx.proc
        for name in (DDC, PCC, CSP, CGP):
            cap = ctx.reg(name)
            assert cap.base >= proc.region_base
            assert cap.top <= proc.region_top

    def test_no_system_permission_for_uprocess(self):
        ctx = spawn_hello(boot())
        for _name, cap in ctx.registers.cap_registers():
            assert not cap.has_perm(Perm.SYSTEM)

    def test_got_populated_and_confined(self):
        os_ = boot()
        ctx = spawn_hello(os_)
        layout = ctx.proc.layout
        entries = layout.image.got_entries
        assert got_confined(os_.space, layout.base("got"), entries,
                            ctx.proc.region_base, ctx.proc.region_top)
        caps = read_got(os_.space, layout.base("got"), entries,
                        privileged=True)
        assert all(cap.valid for cap in caps)

    def test_two_uprocesses_disjoint_regions(self):
        os_ = boot()
        a = spawn_hello(os_)
        b = spawn_hello(os_)
        assert (a.proc.region_top <= b.proc.region_base
                or b.proc.region_top <= a.proc.region_base)


class TestForkBasics:
    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_child_sees_parent_heap_snapshot(self, strategy):
        os_ = boot(strategy)
        parent = spawn_hello(os_)
        buf = parent.malloc(64)
        parent.store(buf, b"state before fork")
        parent.set_reg("c9", buf)

        child = parent.fork()
        child_buf = child.reg("c9")
        assert child.load(child_buf, 17) == b"state before fork"

    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_child_register_caps_relocated(self, strategy):
        os_ = boot(strategy)
        parent = spawn_hello(os_)
        child = parent.fork()
        delta = child.proc.region_base - parent.proc.region_base
        for name in (DDC, PCC, CSP, CGP):
            parent_cap = parent.reg(name)
            child_cap = child.reg(name)
            assert child_cap.base == parent_cap.base + delta
            assert child_cap.cursor == parent_cap.cursor + delta
            assert child.proc.region_base <= child_cap.base
            assert child_cap.top <= child.proc.region_top

    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_write_isolation_after_fork(self, strategy):
        """Divergence: parent and child writes are invisible to each
        other (the fundamental fork semantic, R2)."""
        os_ = boot(strategy)
        parent = spawn_hello(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"original")
        parent.set_reg("c9", buf)

        child = parent.fork()
        child_buf = child.reg("c9")
        child.store(child_buf, b"childdat")
        parent.store(buf, b"parentda")

        assert parent.load(buf, 8) == b"parentda"
        assert child.load(child_buf, 8) == b"childdat"

    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_child_heap_pointer_chain_relocated(self, strategy):
        """A linked structure built pre-fork is walkable in the child and
        every link points into the child's region."""
        os_ = boot(strategy)
        parent = spawn_hello(os_)
        head = parent.malloc(32)
        mid = parent.malloc(32)
        tail = parent.malloc(32)
        parent.store_cap(head, mid)
        parent.store_cap(mid, tail)
        parent.store(tail, b"\x00" * 16)
        parent.store(tail, b"tail-data", 16)
        parent.set_reg("c9", head)

        child = parent.fork()
        node = child.reg("c9")
        hops = 0
        while True:
            assert child.proc.region_base <= node.base < child.proc.region_top
            next_cap = child.load_cap(node)
            if not next_cap.valid:
                break
            node = next_cap
            hops += 1
        assert hops == 2
        assert child.load(node, 9, 16) == b"tail-data"

    def test_child_got_relocated_eagerly(self):
        os_ = boot(CopyStrategy.COPA)
        parent = spawn_hello(os_)
        child = parent.fork()
        layout = child.proc.layout
        copies_before = os_.machine.counters.get("fork_page_copies")
        assert got_confined(os_.space, layout.base("got"),
                            layout.image.got_entries,
                            child.proc.region_base, child.proc.region_top)
        # reading the GOT caused no lazy copies: it was copied at fork
        assert os_.machine.counters.get("fork_page_copies") == copies_before

    def test_child_allocator_works_after_fork(self):
        os_ = boot(CopyStrategy.COPA)
        parent = spawn_hello(os_)
        parent.malloc(128)
        child = parent.fork()
        fresh = child.malloc(64)
        assert child.proc.region_base <= fresh.base < child.proc.region_top
        child.store(fresh, b"child alloc")
        assert child.load(fresh, 11) == b"child alloc"

    def test_child_allocator_sees_parent_blocks(self):
        os_ = boot(CopyStrategy.COPA)
        parent = spawn_hello(os_)
        parent.malloc(128)
        parent.malloc(256)
        child = parent.fork()
        assert child.proc.allocator.block_count() == \
            parent.proc.allocator.block_count()

    def test_fd_table_duplicated(self):
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        os_ = boot()
        parent = spawn_hello(os_)
        fd = parent.syscall("open", "/log", O_CREAT | O_WRONLY)
        child = parent.fork()
        child.write_bytes(fd, b"from child")
        parent.write_bytes(fd, b" and parent")  # shared offset
        data = os_.ramdisk.open("/log").node.data
        assert bytes(data) == b"from child and parent"

    def test_getpid_differs(self):
        os_ = boot()
        parent = spawn_hello(os_)
        child = parent.fork()
        assert parent.syscall("getpid") == parent.proc.pid
        assert child.syscall("getpid") == child.proc.pid
        assert child.proc.pid != parent.proc.pid

    def test_wait_reaps_child(self):
        os_ = boot()
        parent = spawn_hello(os_)
        child = parent.fork()
        child.exit(7)
        pid, status = parent.wait(child.pid)
        assert (pid, status) == (child.pid, 7)
        assert os_.process_count() == 1

    def test_fork_charges_time(self):
        os_ = boot()
        parent = spawn_hello(os_)
        before = os_.machine.clock.now_ns
        parent.fork()
        elapsed = os_.machine.clock.now_ns - before
        assert elapsed >= os_.machine.costs.ufork_fixed_ns

    def test_grandchild_fork(self):
        os_ = boot(CopyStrategy.COPA)
        parent = spawn_hello(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"generation0")
        parent.set_reg("c9", buf)
        child = parent.fork()
        grandchild = child.fork()
        gbuf = grandchild.reg("c9")
        assert grandchild.load(gbuf, 11) == b"generation0"
        assert grandchild.proc.region_base not in (
            parent.proc.region_base, child.proc.region_base
        )


class TestCopyStrategies:
    def _forked_redis_like(self, strategy):
        """Parent with a page of pointers and many pages of plain data."""
        os_ = boot(strategy)
        parent = spawn_hello(os_)
        data = parent.malloc(4096 * 4)  # pure data, no caps
        parent.store(data, b"D" * (4096 * 4))
        ptr_block = parent.malloc(64)
        parent.store_cap(ptr_block, data)
        parent.set_reg("c9", ptr_block)
        child = parent.fork()
        return os_, parent, child

    def test_copa_plain_reads_do_not_copy(self):
        os_, parent, child = self._forked_redis_like(CopyStrategy.COPA)
        before = os_.machine.counters.get("fork_page_copies")
        # read plain data through the child's DDC (no capability loads)
        ddc = child.reg(DDC)
        heap_base = child.proc.layout.base("heap")
        probe = ddc.set_bounds(heap_base, 4096).with_cursor(heap_base)
        child.load(probe, 64)
        assert os_.machine.counters.get("fork_page_copies") == before

    def test_copa_cap_load_triggers_copy(self):
        os_, parent, child = self._forked_redis_like(CopyStrategy.COPA)
        before = os_.machine.counters.get("fork_page_copies")
        ptr = child.reg("c9")
        data_cap = child.load_cap(ptr)  # capability load → copy + relocate
        assert os_.machine.counters.get("fork_page_copies") > before
        assert child.proc.region_base <= data_cap.base \
            < child.proc.region_top

    def test_coa_any_read_triggers_copy(self):
        os_, parent, child = self._forked_redis_like(CopyStrategy.COA)
        before = os_.machine.counters.get("fork_page_copies")
        ddc = child.reg(DDC)
        # probe the heap *data* area (metadata pages are eagerly copied)
        data_base = child.proc.allocator.data_base
        probe = ddc.set_bounds(data_base, 4096).with_cursor(data_base)
        child.load(probe, 8)
        assert os_.machine.counters.get("fork_page_copies") > before

    def test_full_copy_copies_everything_upfront(self):
        os_ = boot(CopyStrategy.FULL_COPY)
        parent = spawn_hello(os_)
        pages_before = os_.machine.phys.allocated_frames
        child = parent.fork()
        copied = os_.machine.phys.allocated_frames - pages_before
        page = os_.machine.config.page_size
        # every mapped parent page was duplicated
        mapped = os_.space.mapped_pages(parent.proc.region_base,
                                        parent.proc.region_top)
        assert copied == mapped
        # and nothing is shared: child memory is fully private
        assert os_.private_bytes(child.proc) == mapped * page

    def test_parent_write_preserves_child_snapshot(self):
        os_, parent, child = self._forked_redis_like(CopyStrategy.COPA)
        ptr = parent.reg("c9")
        data_cap = parent.load_cap(ptr)
        parent.store(data_cap, b"MUTATED!")
        child_data = child.load_cap(child.reg("c9"))
        assert child.load(child_data, 8) == b"D" * 8

    def test_memory_sharing_accounted(self):
        os_, parent, child = self._forked_redis_like(CopyStrategy.COPA)
        # most pages still shared: child resident < its full region
        resident = os_.memory_of(child.proc)
        assert resident < child.proc.region_size


class TestIsolation:
    def test_uprocess_cannot_touch_kernel_memory(self):
        from repro.core.ufork import KERNEL_BASE
        os_ = boot()
        ctx = spawn_hello(os_)
        with pytest.raises(ProtectionError):
            os_.space.read(KERNEL_BASE, 8)

    def test_uprocess_cannot_reach_sibling(self):
        """Capability bounds confine each μprocess to its own region."""
        os_ = boot()
        a = spawn_hello(os_)
        b = spawn_hello(os_)
        ddc_a = a.reg(DDC)
        from repro.errors import BoundsFault
        with pytest.raises(BoundsFault):
            ddc_a.check_access(Perm.LOAD, size=8, addr=b.proc.region_base)

    def test_forged_gate_rejected(self):
        os_ = boot(isolation=IsolationConfig.full())
        ctx = spawn_hello(os_)
        forged = Capability(base=0, length=16, cursor=0, perms=Perm.code())
        with pytest.raises(IsolationViolation):
            os_.syscall(ctx.proc, "getpid", gate=forged)

    def test_unsealed_gate_rejected(self):
        os_ = boot(isolation=IsolationConfig.full())
        ctx = spawn_hello(os_)
        legit = ctx.proc.syscall_gate
        unsealed_lookalike = Capability(
            base=legit.base, length=legit.length, cursor=legit.cursor,
            perms=legit.perms,
        )
        with pytest.raises(IsolationViolation):
            os_.syscall(ctx.proc, "getpid", gate=unsealed_lookalike)

    def test_gate_check_disabled_at_isolation_none(self):
        os_ = boot(isolation=IsolationConfig.none())
        ctx = spawn_hello(os_)
        assert os_.syscall(ctx.proc, "getpid", gate=None) == ctx.proc.pid

    def test_bad_user_buffer_rejected(self):
        """A capability outside the caller's region fails validation."""
        from repro.errors import BadAddress
        os_ = boot(isolation=IsolationConfig.full())
        a = spawn_hello(os_)
        b = spawn_hello(os_)
        from repro.kernel.vfs import O_CREAT, O_WRONLY
        fd = a.syscall("open", "/x", O_CREAT | O_WRONLY)
        evil = Capability(
            base=b.proc.region_base, length=64,
            cursor=b.proc.region_base, perms=Perm.data_rw(),
        )
        with pytest.raises(BadAddress):
            a.syscall("write", fd, evil, 8)

    def test_privileged_instruction_blocked(self):
        from repro.core.isolation import check_privileged
        from repro.errors import PrivilegeViolation
        os_ = boot()
        ctx = spawn_hello(os_)
        with pytest.raises(PrivilegeViolation):
            check_privileged(ctx.reg(DDC))
        check_privileged(os_.kernel_root)  # kernel may

    def test_no_parent_caps_leak_into_child_pages(self):
        """After the child touches everything, no capability anywhere in
        its region still points into the parent (§4.3 invariant)."""
        os_ = boot(CopyStrategy.COPA)
        parent = spawn_hello(os_)
        chain = parent.malloc(32)
        inner = parent.malloc(32)
        parent.store_cap(chain, inner)
        parent.set_reg("c9", chain)
        child = parent.fork()
        # force every page private
        from repro.core.strategies import resolve_all_pending
        resolve_all_pending(os_.space, child.proc.region_base,
                            child.proc.region_top)
        page = os_.machine.config.page_size
        for vpn in range(child.proc.region_base // page,
                         child.proc.region_top // page):
            pte = os_.space.page_table.get(vpn)
            if pte is None:
                continue
            frame = os_.machine.phys.frame(pte.frame)
            for offset in frame.tagged_granules():
                cap = frame.load_cap(offset, os_.machine.codec)
                if cap.valid and not cap.is_sentry:
                    assert not (parent.proc.region_base <= cap.base
                                < parent.proc.region_top), (
                        f"leaked parent cap at vpn={vpn:#x}+{offset}: {cap}"
                    )


class TestSharedMemoryAndMmap:
    def test_anonymous_mmap_confined(self):
        os_ = boot()
        ctx = spawn_hello(os_)
        cap = ctx.syscall("mmap", 8192)
        assert ctx.proc.region_base <= cap.base < ctx.proc.region_top
        ctx.store(cap, b"mapped")
        assert ctx.load(cap, 6) == b"mapped"

    def test_shm_visible_across_fork(self):
        os_ = boot()
        parent = spawn_hello(os_)
        shm = parent.syscall("shm_open", "/buf", 4096)
        parent_cap = parent.syscall("shm_map", shm)
        parent.store(parent_cap, b"shared-before")
        child = parent.fork()
        # child's binding is at the mirrored offset in its own region
        child_base = child.proc.layout.base("mmap") + (
            parent_cap.base - parent.proc.layout.base("mmap")
        )
        child_cap = child.reg(DDC).set_bounds(child_base, 4096) \
                                  .with_cursor(child_base)
        assert child.load(child_cap, 13) == b"shared-before"
        child.store(child_cap, b"shared-after!")
        assert parent.load(parent_cap, 13) == b"shared-after!"


class TestExitTeardown:
    def test_exit_releases_frames(self):
        os_ = boot(CopyStrategy.FULL_COPY)
        parent = spawn_hello(os_)
        frames_before = os_.machine.phys.allocated_frames
        child = parent.fork()
        assert os_.machine.phys.allocated_frames > frames_before
        child.exit(0)
        parent.wait(child.pid)
        assert os_.machine.phys.allocated_frames == frames_before

    def test_exit_releases_va(self):
        os_ = boot()
        parent = spawn_hello(os_)
        free_before = os_.vspace.total_free()
        child = parent.fork()
        assert os_.vspace.total_free() < free_before
        child.exit(0)
        parent.wait(child.pid)
        assert os_.vspace.total_free() == free_before

    def test_parent_write_after_child_exit(self):
        os_ = boot(CopyStrategy.COPA)
        parent = spawn_hello(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"before")
        child = parent.fork()
        child.exit(0)
        parent.wait(child.pid)
        parent.store(buf, b"after!")
        assert parent.load(buf, 6) == b"after!"

    def test_double_fork_from_same_parent(self):
        os_ = boot(CopyStrategy.COPA)
        parent = spawn_hello(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"zygote-state")
        parent.set_reg("c9", buf)
        children = [parent.fork() for _ in range(3)]
        for child in children:
            cbuf = child.reg("c9")
            assert child.load(cbuf, 12) == b"zygote-state"
        for child in children:
            child.exit(0)
            parent.wait(child.pid)


class TestAslr:
    def test_aslr_randomizes_region_bases(self):
        bases = set()
        for seed in range(6):
            os_ = UForkOS(machine=Machine(seed=seed), aslr=True)
            ctx = GuestContext(os_, os_.spawn(hello_world_image(), "h"))
            bases.add(ctx.proc.region_base)
        assert len(bases) > 1

    def test_aslr_fork_still_correct(self):
        os_ = UForkOS(machine=Machine(seed=3), aslr=True)
        parent = GuestContext(os_, os_.spawn(hello_world_image(), "h"))
        buf = parent.malloc(32)
        parent.store(buf, b"aslr-ok")
        parent.set_reg("c9", buf)
        child = parent.fork()
        assert child.load(child.reg("c9"), 7) == b"aslr-ok"

"""Beyond-paper benchmark: the full design spectrum of Table 1.

Fork latency and per-process memory for a minimal process across all
four implemented designs — μFork (true SAS), Iso-Unik-like (page tables
retrofitted into a unikernel), CheriBSD-like (monolithic), and
Nephele-like (VM clone).  The paper measures three of these (Fig 8);
the Iso-Unik point interpolates the design space exactly where §2.3's
qualitative argument predicts: keeping page tables costs more than
μFork everywhere, even without traps.
"""

from conftest import run_once

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.baselines import IsoUnikOS, MonolithicOS, VMCloneOS
from repro.core import UForkOS
from repro.machine import Machine
from repro.mem.layout import MiB

NS_PER_US = 1_000

SYSTEMS = (
    ("ufork", UForkOS),
    ("isounik", IsoUnikOS),
    ("cheribsd", MonolithicOS),
    ("nephele", VMCloneOS),
)


def run_spectrum():
    rows = []
    for name, os_cls in SYSTEMS:
        os_ = os_cls(machine=Machine())
        parent = GuestContext(os_, os_.spawn(hello_world_image(), "hello"))
        warm = parent.fork()
        warm.exit(0)
        parent.wait(warm.pid)
        with os_.machine.clock.measure() as watch:
            child = parent.fork()
        memory = os_.memory_of(child.proc)
        child.exit(0)
        parent.wait(child.pid)
        rows.append({
            "system": name,
            "fork_latency_us": watch.elapsed_ns / NS_PER_US,
            "memory_mb": memory / MiB,
        })
    return rows


def test_baseline_spectrum(benchmark, record_figure):
    rows = run_once(benchmark, run_spectrum)
    record_figure(
        "baseline_spectrum", rows,
        "Design spectrum: fork latency and memory across all 4 systems",
    )
    by_system = {row["system"]: row for row in rows}
    latency = [by_system[name]["fork_latency_us"]
               for name, _ in SYSTEMS]
    # strict ordering along the design spectrum
    assert latency == sorted(latency)
    # and μFork vs the interpolated point: page tables alone (no traps,
    # no libs) already cost ~2x
    assert by_system["isounik"]["fork_latency_us"] > \
        1.5 * by_system["ufork"]["fork_latency_us"]
    # memory: VM clone is the outlier by an order of magnitude
    assert by_system["nephele"]["memory_mb"] > \
        4 * by_system["cheribsd"]["memory_mb"]

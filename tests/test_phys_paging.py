"""Tests for physical memory (frames + tags) and paging (faults, CoW hooks)."""

import pytest
from hypothesis import given, strategies as st

from repro.cheri.capability import Capability, Perm
from repro.cheri.codec import CAP_SIZE, CapabilityCodec
from repro.errors import (
    AlignmentFault,
    OutOfMemory,
    ProtectionError,
    UnmappedAddressError,
)
from repro.hw.paging import AccessKind, AddressSpace, PagePerm
from repro.hw.phys import Frame
from repro.machine import Machine


class TestFrame:
    def make_frame(self):
        return Frame(4096, 256)

    def test_read_write_roundtrip(self):
        frame = self.make_frame()
        frame.write(100, b"hello")
        assert frame.read(100, 5) == b"hello"

    def test_write_clears_overlapping_tags(self):
        frame = self.make_frame()
        codec = CapabilityCodec()
        cap = Capability(base=0, length=64, cursor=0, perms=Perm.data_rw())
        frame.store_cap(32, cap, codec)
        assert frame.tags[2] == 1
        frame.write(40, b"x")  # inside granule 2
        assert frame.tags[2] == 0

    def test_write_spanning_granules_clears_all(self):
        frame = self.make_frame()
        codec = CapabilityCodec()
        cap = Capability(base=0, length=64, cursor=0, perms=Perm.data_rw())
        frame.store_cap(0, cap, codec)
        frame.store_cap(16, cap, codec)
        frame.store_cap(32, cap, codec)
        frame.write(8, bytes(20))  # touches granules 0 and 1
        assert list(frame.tags[:3]) == [0, 0, 1]

    def test_cap_store_load_roundtrip(self):
        frame = self.make_frame()
        codec = CapabilityCodec()
        cap = Capability(base=0x2000, length=0x40, cursor=0x2010,
                         perms=Perm.data_ro())
        frame.store_cap(48, cap, codec)
        loaded = frame.load_cap(48, codec)
        assert loaded == cap

    def test_unaligned_cap_access_faults(self):
        frame = self.make_frame()
        codec = CapabilityCodec()
        cap = Capability(base=0, length=16, cursor=0, perms=Perm.data_rw())
        with pytest.raises(AlignmentFault):
            frame.store_cap(8, cap, codec)
        with pytest.raises(AlignmentFault):
            frame.load_cap(8, codec)

    def test_load_untagged_granule_gives_invalid_cap(self):
        frame = self.make_frame()
        codec = CapabilityCodec()
        loaded = frame.load_cap(0, codec)
        assert not loaded.valid

    def test_tagged_granules(self):
        frame = self.make_frame()
        codec = CapabilityCodec()
        cap = Capability(base=0, length=16, cursor=0, perms=Perm.data_rw())
        frame.store_cap(0, cap, codec)
        frame.store_cap(4080, cap, codec)
        assert frame.tagged_granules() == [0, 4080]

    def test_copy_preserving_tags(self):
        src, dst = self.make_frame(), self.make_frame()
        codec = CapabilityCodec()
        cap = Capability(base=0, length=16, cursor=0, perms=Perm.data_rw())
        src.store_cap(16, cap, codec)
        src.write(200, b"abc")
        dst.copy_from(src, preserve_tags=True)
        assert dst.load_cap(16, codec).valid
        assert dst.read(200, 3) == b"abc"

    def test_copy_without_tags(self):
        src, dst = self.make_frame(), self.make_frame()
        codec = CapabilityCodec()
        cap = Capability(base=0, length=16, cursor=0, perms=Perm.data_rw())
        src.store_cap(16, cap, codec)
        dst.copy_from(src, preserve_tags=False)
        assert not dst.load_cap(16, codec).valid
        # bytes still copied: cursor readable as data
        assert dst.read(16, CAP_SIZE) == src.read(16, CAP_SIZE)

    @given(offset=st.integers(0, 4095), size=st.integers(1, 64))
    def test_prop_any_byte_write_untags_its_granules(self, offset, size):
        frame = Frame(4096, 256)
        codec = CapabilityCodec()
        cap = Capability(base=0, length=16, cursor=0, perms=Perm.data_rw())
        for granule_offset in range(0, 4096, CAP_SIZE):
            frame.store_cap(granule_offset, cap, codec)
        size = min(size, 4096 - offset)
        frame.write(offset, bytes(size))
        first = offset // CAP_SIZE
        last = (offset + size - 1) // CAP_SIZE
        for granule in range(256):
            expected = 0 if first <= granule <= last else 1
            assert frame.tags[granule] == expected


class TestPhysicalMemory:
    def test_alloc_returns_distinct_frames(self, machine):
        a = machine.phys.alloc()
        b = machine.phys.alloc()
        assert a != b
        assert machine.phys.allocated_frames == 2

    def test_refcounting_frees_at_zero(self, machine):
        fn = machine.phys.alloc()
        machine.phys.incref(fn)
        machine.phys.decref(fn)
        assert machine.phys.contains(fn)
        machine.phys.decref(fn)
        assert not machine.phys.contains(fn)

    def test_frame_numbers_recycled(self, machine):
        fn = machine.phys.alloc()
        machine.phys.decref(fn)
        assert machine.phys.alloc() == fn

    def test_out_of_memory(self, small_machine):
        with pytest.raises(OutOfMemory):
            for _ in range(100):
                small_machine.phys.alloc()

    def test_copy_frame_charges_time(self, machine):
        fn = machine.phys.alloc()
        machine.phys.frame(fn).write(0, b"data")
        before = machine.clock.now_ns
        dst = machine.phys.copy_frame(fn)
        assert machine.clock.now_ns > before
        assert machine.phys.frame(dst).read(0, 4) == b"data"

    def test_allocation_charges_zeroing(self, machine):
        before = machine.clock.now_ns
        machine.phys.alloc(zero=True)
        assert machine.clock.now_ns - before == int(machine.costs.page_zero_ns)


class TestFrameNumberChurn:
    """Frame numbers are never double-issued, whatever the free/alloc
    interleaving — a regression net over the free list, the deferred
    scrub set and the frame-object pool, which all key on numbers."""

    @pytest.mark.parametrize("perf", [False, True])
    def test_heavy_churn_never_double_issues(self, perf):
        import random

        machine = Machine(seed=1, perf=perf)
        phys = machine.phys
        rng = random.Random(20250808)
        live = {}  # number -> remaining references we hold
        for step in range(2000):
            action = rng.randrange(6)
            if action <= 1 or not live:
                number = phys.alloc(zero=bool(step % 2), charge=False)
                assert number not in live, \
                    f"step {step}: frame {number} double-issued"
                live[number] = 1
            elif action == 2:
                src = rng.choice(list(live))
                dst = phys.cow_copy(src)
                assert dst not in live, \
                    f"step {step}: cow_copy double-issued {dst}"
                live[dst] = 1
            elif action == 3:
                srcs = rng.sample(list(live), min(len(live), 4))
                dsts = phys.copy_frames(srcs, preserve_tags=True,
                                        charge=False)
                for dst in dsts:
                    assert dst not in live, \
                        f"step {step}: copy_frames double-issued {dst}"
                    live[dst] = 1
            elif action == 4:
                number = rng.choice(list(live))
                if rng.randrange(2):
                    phys.incref(number)
                    live[number] += 1
                else:
                    phys.decref(number)
                    live[number] -= 1
                    if not live[number]:
                        del live[number]
            else:
                batch = rng.sample(list(live), min(len(live), 8))
                phys.decref_many(batch)
                for number in batch:
                    live[number] -= 1
                    if not live[number]:
                        del live[number]
            # the live view and the pool agree at every step
            assert set(live) == {
                number for number in live if phys.contains(number)}
        assert phys.allocated_frames == len(live)


class TestAddressSpace:
    PAGE = 4096

    def make_space(self, machine, pages=4, perms=PagePerm.rwc(), base_vpn=16):
        space = AddressSpace(machine, "test")
        for index in range(pages):
            frame = machine.phys.alloc()
            space.map_page(base_vpn + index, frame, perms)
        return space, base_vpn * self.PAGE

    def test_read_write_roundtrip(self, machine):
        space, base = self.make_space(machine)
        space.write(base + 10, b"hello world")
        assert space.read(base + 10, 11) == b"hello world"

    def test_cross_page_write_and_read(self, machine):
        space, base = self.make_space(machine)
        data = bytes(range(256)) * 20  # 5120 bytes, crosses a page
        space.write(base + 4000, data)
        assert space.read(base + 4000, len(data)) == data

    def test_unmapped_access_raises(self, machine):
        space, base = self.make_space(machine)
        with pytest.raises(UnmappedAddressError):
            space.read(base - self.PAGE, 1)

    def test_write_to_readonly_raises(self, machine):
        space, base = self.make_space(machine, perms=PagePerm.read_only())
        with pytest.raises(ProtectionError):
            space.write(base, b"x")

    def test_fault_handler_can_resolve(self, machine):
        space, base = self.make_space(machine, perms=PagePerm.read_only())
        vpn = base // self.PAGE

        def handler(spc, vaddr, kind):
            if kind is AccessKind.WRITE:
                spc.protect_page(vpn, PagePerm.rwc())
                return True
            return False

        space.fault_handler = handler
        space.write(base, b"ok")
        assert space.read(base, 2) == b"ok"
        assert machine.counters.get("fault_write") == 1

    def test_fault_handler_failure_raises(self, machine):
        space, base = self.make_space(machine, perms=PagePerm.read_only())
        space.fault_handler = lambda spc, vaddr, kind: False
        with pytest.raises(ProtectionError):
            space.write(base, b"x")

    def test_fault_charges_time(self, machine):
        space, base = self.make_space(machine, perms=PagePerm.read_only())
        space.fault_handler = lambda spc, vaddr, kind: False
        before = machine.clock.now_ns
        with pytest.raises(ProtectionError):
            space.write(base, b"x")
        assert machine.clock.now_ns - before >= machine.costs.page_fault_ns

    def test_privileged_bypasses_perms(self, machine):
        space, base = self.make_space(machine, perms=PagePerm.read_only())
        space.write(base, b"kernel", privileged=True)
        assert space.read(base, 6) == b"kernel"

    def test_cap_load_requires_load_cap_perm(self, machine):
        space, base = self.make_space(
            machine, perms=PagePerm.READ | PagePerm.WRITE
        )
        cap = Capability(base=base, length=64, cursor=base,
                         perms=Perm.data_rw())
        space.store_cap(base, cap)
        with pytest.raises(ProtectionError):
            space.load_cap(base)
        # plain data read of the same granule is fine (CoPA property)
        assert len(space.read(base, CAP_SIZE)) == CAP_SIZE

    def test_cap_store_load_roundtrip(self, machine):
        space, base = self.make_space(machine)
        cap = Capability(base=base, length=128, cursor=base + 16,
                         perms=Perm.data_ro())
        space.store_cap(base + 32, cap)
        assert space.load_cap(base + 32) == cap

    def test_byte_write_untags_in_space(self, machine):
        space, base = self.make_space(machine)
        cap = Capability(base=base, length=64, cursor=base,
                         perms=Perm.data_rw())
        space.store_cap(base, cap)
        space.write(base + 4, b"\x00")
        assert not space.load_cap(base).valid

    def test_replace_frame(self, machine):
        space, base = self.make_space(machine, pages=1)
        space.write(base, b"old")
        vpn = base // self.PAGE
        new_frame = machine.phys.alloc()
        space.replace_frame(vpn, new_frame)
        assert space.read(base, 3) == b"\x00\x00\x00"

    def test_double_map_rejected(self, machine):
        space, base = self.make_space(machine, pages=1)
        frame = machine.phys.alloc()
        with pytest.raises(ValueError):
            space.map_page(base // self.PAGE, frame, PagePerm.rwc())

    def test_resident_bytes_proportional(self, machine):
        space_a = AddressSpace(machine, "a")
        space_b = AddressSpace(machine, "b")
        frame = machine.phys.alloc()
        space_a.map_page(1, frame, PagePerm.rwc())
        space_b.map_page(2, frame, PagePerm.read_only(), incref=True)
        assert space_a.resident_bytes(0, 10 * self.PAGE) == self.PAGE / 2
        assert space_b.resident_bytes(0, 10 * self.PAGE) == self.PAGE / 2
        assert space_a.resident_bytes(0, 10 * self.PAGE,
                                      proportional=False) == self.PAGE

    def test_mapped_pages_range(self, machine):
        space, base = self.make_space(machine, pages=3)
        assert space.mapped_pages(base, base + 3 * self.PAGE) == 3
        assert space.mapped_pages(base, base + self.PAGE) == 1
        assert space.mapped_pages(0, base) == 0

    def test_unmap_decrefs(self, machine):
        space, base = self.make_space(machine, pages=1)
        frame = space.page_table.get(base // self.PAGE).frame
        space.unmap_page(base // self.PAGE)
        assert not machine.phys.contains(frame)

"""The simulated Morello-like machine.

A :class:`Machine` bundles the shared hardware state — configuration,
cost model, clock, counters, physical memory, capability codec, cores —
that every address space, kernel and application in one experiment uses.
Experiments create one Machine per measured configuration, which keeps
runs hermetic and deterministic.
"""

from __future__ import annotations

import random
import weakref
from dataclasses import replace
from typing import Any, Callable, Iterable, List, Optional

from repro import perf as _perf
from repro.chaos.engine import NULL_CHAOS
from repro.cheri.codec import CapabilityCodec
from repro.clock import EventCounters, SimClock
from repro.hw.cpu import Core
from repro.hw.phys import PhysicalMemory
from repro.obs import Observability, session_adopt
from repro.params import DEFAULT_COSTS, DEFAULT_MACHINE, CostModel, MachineConfig
from repro.smp.ipi import IpiBus, tlb_shootdown
from repro.smp.locks import KernelLocks

#: every Machine constructed in this interpreter, weakly held — the
#: test suite's leak fixture walks this to audit kernels created inside
#: one test without threading the machine through every helper
_LIVE_MACHINES: "weakref.WeakSet[Machine]" = weakref.WeakSet()


def live_machines() -> List["Machine"]:
    """The machines still alive in this interpreter (audit hook)."""
    return list(_LIVE_MACHINES)


class Machine:
    """Shared simulated-hardware state for one experiment run."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 costs: Optional[CostModel] = None, seed: int = 0,
                 num_cpus: int = 1, perf: Optional[bool] = None) -> None:
        self.config = config or DEFAULT_MACHINE
        self.costs = costs or DEFAULT_COSTS
        #: resolved host-fast-path flag for everything built on this
        #: machine: ``True``/``False`` pin the vectorized/self-contained
        #: representations, ``None`` resolves the :mod:`repro.perf`
        #: master switch (env ``REPRO_PERF``) once, here — address
        #: spaces and physical memory read this instead of peeking the
        #: global, so one machine never mixes representations
        self.perf = _perf.enabled() if perf is None else bool(perf)
        #: online CPUs actually scheduling work (``num_cpus=1``, the
        #: default, is the pre-SMP machine bit for bit; the config's
        #: ``cores`` stays the bookkeeping core count and grows only
        #: when more CPUs are brought online than it has cores)
        self.num_cpus = max(1, int(num_cpus))
        if self.num_cpus > self.config.cores:
            self.config = replace(self.config, cores=self.num_cpus)
        self.clock = SimClock()
        #: unified observability (disabled by default; see :mod:`repro.obs`)
        self.obs = Observability(self.clock)
        session_adopt(self.obs)
        #: fault injection (permanently-disabled null engine by default;
        #: a :class:`repro.chaos.ChaosEngine` installs itself here via
        #: ``engine.attach(machine)`` — see :mod:`repro.chaos`)
        self.chaos = NULL_CHAOS
        self.counters = EventCounters()
        #: machine-wide translation generation: bumped by every TLB
        #: flush and shootdown acknowledgement so the host-side
        #: page-walk caches (:class:`repro.hw.paging.AddressSpace`)
        #: drop entries exactly when simulated TLB state is invalidated
        self.translation_gen = 0
        self.phys = PhysicalMemory(self.config, self.costs, self.clock,
                                   self.counters, obs=self.obs,
                                   perf=self.perf)
        self.codec = CapabilityCodec()
        #: raw-granule relocation memo (see
        #: :func:`repro.core.relocate._relocate_frame_memoised`); keyed
        #: by (region pair, raw bytes), sound because the codec's
        #: intern table is append-only
        self._reloc_memo: dict = {}
        self.cores: List[Core] = [
            Core(self, core_id) for core_id in range(self.config.cores)
        ]
        #: CPU 0's private TLB (single-CPU call sites and tests use
        #: this alias; each core owns its own instance)
        self.tlb = self.cores[0].tlb
        #: the inter-processor-interrupt bus (see :mod:`repro.smp.ipi`)
        self.ipi = IpiBus(self)
        #: kernel spinlocks (free no-ops while ``num_cpus == 1``)
        self.locks = KernelLocks(self)
        #: CPU the kernel is currently executing on (the SMP executor
        #: flips this around each step)
        self.current_cpu = 0
        #: IRQ-disable nesting depth (see :class:`repro.smp.locks.IrqGuard`)
        self.irq_depth = 0
        #: deterministic randomness source (ASLR etc.)
        self.rng = random.Random(seed)
        #: optional structured-event tracer (see :mod:`repro.trace`)
        self.tracer = None
        #: optional syscall-boundary tap, called as
        #: ``tap(os, proc, name, args, result, error)`` after every
        #: syscall dispatch (see :mod:`repro.conform`); ``None`` keeps
        #: the hot path a single attribute check
        self.syscall_tap: Optional[Callable[..., None]] = None
        #: kernels booted on this machine, weakly referenced
        self._kernels: List["weakref.ref[Any]"] = []
        _LIVE_MACHINES.add(self)

    def register_kernel(self, os: Any) -> None:
        """Record a kernel booted on this machine (weak, audit-only)."""
        self._kernels.append(weakref.ref(os))

    def kernels(self) -> List[Any]:
        """The still-alive kernels booted on this machine."""
        return [os for os in (ref() for ref in self._kernels)
                if os is not None]

    @property
    def cpus(self) -> List[Core]:
        """The online CPUs (the first ``num_cpus`` cores)."""
        return self.cores[:self.num_cpus]

    def tlb_shootdown(self, targets: Iterable[int],
                      initiator: Optional[int] = None,
                      reason: str = "shootdown") -> int:
        """Ack-based cross-core TLB shootdown (see :mod:`repro.smp.ipi`);
        returns the number of recipient CPUs actually interrupted."""
        return tlb_shootdown(self, targets, initiator=initiator,
                             reason=reason)

    def charge(self, ns: float, bucket: Optional[str] = None) -> None:
        """Charge simulated time (convenience passthrough to the clock)."""
        self.clock.advance(ns, bucket)

    def trace(self, event: str, **fields) -> None:
        """Record a structured trace event (no-op without a tracer).

        With observability enabled, each event is also counted under
        ``trace.<event>`` so trace activity shows up in exports without
        an attached :class:`~repro.trace.TraceLog`.
        """
        if self.tracer is not None:
            self.tracer.record(event, **fields)
        if self.obs.enabled:
            self.obs.count(f"trace.{event}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(cores={len(self.cores)}, "
            f"now={self.clock.now_us:.1f}us, "
            f"frames={self.phys.allocated_frames})"
        )

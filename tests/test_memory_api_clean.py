"""The memory API boundary is enforced, not aspirational.

The vectorized engine (docs/ARCHITECTURE.md "Vectorized engine") keeps
two storage representations behind one narrow surface on
:class:`~repro.hw.paging.PageTable`/:class:`~repro.hw.paging.AddressSpace`
and :class:`~repro.hw.phys.PhysicalMemory`/:class:`~repro.hw.phys.Frame`.
That only stays true if no caller outside ``repro.hw`` (and the
layout-owning ``repro.mem``) reaches into the representation: a dict
of PTE objects or a flat chunked array must be a private detail.

This test greps the source tree for the representation attributes;
anything it finds must either move to the public bulk interface
(``mapped_items``/``map_run``/``unmap_range``/``copy_frames``/
``privatize_page``/``tagged_granules``/``snapshot_content``/...) or be
added to the hw/mem layers themselves.
"""

import pathlib
import re

REPO_SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

#: attribute accesses that couple a caller to the storage representation
_FORBIDDEN = re.compile(
    r"\.(_entries\b|_frames\b|_perms\b|_cow\b|tags\b(?!\w))")

#: the layers that own the representations
_ALLOWED_PREFIXES = ("hw/", "mem/")


def _violations():
    found = []
    for path in sorted(REPO_SRC.rglob("*.py")):
        rel = path.relative_to(REPO_SRC).as_posix()
        if rel.startswith(_ALLOWED_PREFIXES):
            continue
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            stripped = line.split("#", 1)[0]
            if _FORBIDDEN.search(stripped):
                found.append(f"src/repro/{rel}:{lineno}: {line.strip()}")
    return found


def test_no_representation_access_outside_hw_and_mem():
    violations = _violations()
    assert not violations, (
        "storage-representation attributes reached from outside "
        "repro.hw/repro.mem — use the public bulk interface instead:\n"
        + "\n".join(violations))

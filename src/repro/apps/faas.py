"""Zygote-based FaaS worker warm-up (paper §5.1, Fig 6).

A MicroPython-like language runtime is initialized once in a *zygote*
μprocess — "imports" build a module table of capability-linked objects
in guest memory — and every request is served by forking the zygote
into a child that runs the function and exits.  Function throughput is
therefore dominated by fork latency (the benchmark performs no I/O),
which is exactly what Fig 6 measures.

The function body is FunctionBench's ``float_operation``: a pure
compute loop of float math.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, List

from repro.cheri.codec import CAP_SIZE
from repro.mem.layout import KiB, MiB, ProgramImage

#: register holding the module-table root across fork
MODULES_REG = "c12"

#: one warm "import": a module object with a name and a function table
_MODULE_HEADER = struct.Struct("<QQ")

#: float_operation's calibrated cost in abstract work units (≈ns):
#: FunctionBench's default does on the order of 10^5 float ops.
FLOAT_OPERATION_UNITS = 500_000

#: other FunctionBench workloads: name -> (compute units, heap bytes
#: touched).  matmul is compute+memory heavy; json_dumps allocates.
FUNCTIONBENCH = {
    "float_operation": (FLOAT_OPERATION_UNITS, 0),
    "matmul": (2_500_000, 256 * KiB),
    "json_dumps": (900_000, 64 * KiB),
    "pyaes": (1_800_000, 16 * KiB),
}


def faas_image() -> ProgramImage:
    """A MicroPython-like runtime image."""
    return ProgramImage(
        name="micropython",
        code_size=320 * KiB,
        rodata_size=96 * KiB,
        data_size=64 * KiB,
        got_entries=1024,
        tls_size=16 * KiB,
        heap_size=1 * MiB,
        mmap_size=128 * KiB,
        stack_size=128 * KiB,
    )


def float_operation(ctx: Any, scale: float = 1.0) -> None:
    """FunctionBench ``float_operation``: pure compute, no syscalls."""
    ctx.compute(FLOAT_OPERATION_UNITS * scale)


def run_function(ctx: Any, name: str, scale: float = 1.0) -> None:
    """Run any FunctionBench workload: compute plus (for the heavier
    ones) a working set allocated and written in guest memory — which
    is what makes the child's pages diverge and costs CoW breaks."""
    try:
        units, working_set = FUNCTIONBENCH[name]
    except KeyError:
        raise ValueError(f"unknown FunctionBench workload {name!r}")
    ctx.compute(units * scale)
    if working_set:
        block = ctx.malloc(working_set)
        page = ctx.os.machine.config.page_size
        stamp = name.encode()
        for offset in range(0, working_set, page):
            ctx.store(block, stamp, offset)


@dataclass
class FunctionResult:
    pid: int
    modules_seen: int
    ok: bool


class ZygoteRuntime:
    """The pre-warmed language runtime."""

    def __init__(self, ctx: Any, module_count: int = 48) -> None:
        self.ctx = ctx
        self.module_count = module_count

    def warm(self) -> None:
        """Initialize the runtime once: load "modules" into guest memory
        (the expensive part a cold start would repeat)."""
        ctx = self.ctx
        table = ctx.malloc(self.module_count * CAP_SIZE)
        for index in range(self.module_count):
            module = ctx.malloc(64)
            name = b"module_%03d" % index
            ctx.store(module, _MODULE_HEADER.pack(index, len(name)))
            ctx.store(module, name, 16)
            ctx.store_cap(table, module, index * CAP_SIZE)
            # parsing/compiling the module costs real time
            ctx.compute(20_000)
        ctx.set_reg(MODULES_REG, table)

    @classmethod
    def attach(cls, ctx: Any) -> "ZygoteRuntime":
        """Child-side: recover the module table via the relocated root."""
        runtime = cls.__new__(cls)
        runtime.ctx = ctx
        table = ctx.reg(MODULES_REG)
        runtime.module_count = table.length // CAP_SIZE
        return runtime

    def modules(self, limit: int = None) -> List[bytes]:
        """Walk the module table (capability loads — the CoPA path)."""
        ctx = self.ctx
        table = ctx.reg(MODULES_REG)
        names = []
        count = self.module_count if limit is None \
            else min(limit, self.module_count)
        for index in range(count):
            module = ctx.load_cap(table, index * CAP_SIZE)
            _idx, name_len = _MODULE_HEADER.unpack(ctx.load(module, 16))
            names.append(ctx.load(module, name_len, 16))
        return names

    def handle_request(self, scale: float = 1.0,
                       function: str = "float_operation") -> FunctionResult:
        """Serve one request: fork the zygote, run the function in the
        child, reap it.  Returns the child's result."""
        child_ctx = self.ctx.fork()
        child_runtime = ZygoteRuntime.attach(child_ctx)
        # touch a couple of modules (what an import reference does)
        names = child_runtime.modules(limit=4)
        run_function(child_ctx, function, scale)
        child_ctx.exit(0)
        self.ctx.wait(child_ctx.pid)
        return FunctionResult(
            pid=child_ctx.pid,
            modules_seen=len(names),
            ok=all(name.startswith(b"module_") for name in names),
        )

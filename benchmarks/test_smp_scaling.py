"""SMP scaling: fork cost and FaaS throughput vs online CPUs (1 -> 8).

Not a paper figure — the paper measures on fixed hardware — but the
quantitative form of its §2.2 lightweightness argument: classic fork
must broadcast TLB-shootdown IPIs to every other online CPU when it
write-protects the parent for CoW, so its per-fork cost *grows* with
core count, while μFork's footprint-bounded fork sends none for a
single-threaded parent and stays flat.  The FaaS series shows the
zygote workload actually harvesting the extra cores.
"""

from conftest import run_once

from repro.smp.runner import run_smp

CPU_COUNTS = (1, 2, 4, 8)
SEED = 7


def _scaling_rows():
    rows = []
    for cpus in CPU_COUNTS:
        faas = run_smp(seed=SEED, num_cpus=cpus, requests=48,
                       workload="faas")
        forks = run_smp(seed=SEED, num_cpus=cpus, requests=16,
                        workload="forkbench")
        systems = forks["systems"]
        rows.append({
            "cpus": cpus,
            "faas_rps": round(faas["throughput_rps"], 1),
            "steals": faas["steals"],
            "ipis": faas["ipi"]["sent"],
            "ufork_us_per_fork": round(
                systems["ufork"]["per_fork_ns"] / 1e3, 1),
            "ufork_shootdown_ipis": systems["ufork"]["shootdown_ipis"],
            "mono_us_per_fork": round(
                systems["monolithic"]["per_fork_ns"] / 1e3, 1),
            "mono_shootdown_ipis": systems["monolithic"]["shootdown_ipis"],
            "fork_gap": round(forks["fork_gap"], 2),
        })
    return rows


def test_smp_scaling(benchmark, record_figure):
    rows = run_once(benchmark, _scaling_rows)
    record_figure(
        "BENCH_smp_scaling", rows,
        "SMP scaling: FaaS throughput and per-fork cost, 1 -> 8 CPUs",
    )
    by_cpus = {row["cpus"]: row for row in rows}

    # FaaS throughput scales with cores; 4 CPUs buy >= 2.5x (acceptance)
    series = [by_cpus[c]["faas_rps"] for c in CPU_COUNTS]
    assert series == sorted(series)
    assert by_cpus[4]["faas_rps"] >= 2.5 * by_cpus[1]["faas_rps"]

    # μFork never broadcasts: zero shootdown IPIs at every core count,
    # per-fork cost essentially flat (only SMP locking overhead on top)
    for cpus in CPU_COUNTS:
        assert by_cpus[cpus]["ufork_shootdown_ipis"] == 0
    assert (by_cpus[8]["ufork_us_per_fork"]
            < 1.10 * by_cpus[1]["ufork_us_per_fork"])

    # monolithic fork broadcasts to every other online CPU: exactly
    # forks x (N - 1) IPIs, so its per-fork cost grows with cores...
    for cpus in CPU_COUNTS:
        assert by_cpus[cpus]["mono_shootdown_ipis"] == 16 * (cpus - 1)
    mono = [by_cpus[c]["mono_us_per_fork"] for c in CPU_COUNTS]
    assert mono == sorted(mono) and mono[-1] > mono[0]

    # ...and the μFork-vs-fork gap widens monotonically across the SMP
    # sizes (at 1 -> 2 CPUs μFork starts paying spinlock overhead while
    # monolithic gains only one shootdown recipient, so the comparison
    # starts from the 2-CPU configuration)
    gaps = [by_cpus[c]["fork_gap"] for c in (2, 4, 8)]
    assert gaps == sorted(gaps) and gaps[-1] > gaps[0]
    assert by_cpus[8]["fork_gap"] > by_cpus[1]["fork_gap"]

"""One cluster shard: a real simulated machine behind a warm pool.

A :class:`Shard` wraps one :class:`repro.api.Session` (its own hermetic
machine, kernel and observability) plus a zygote :class:`WarmPool` of
serving workers.  Two things on the shard are *measured on the real
machine*, never assumed:

* **Calibration** — at boot the shard executes one full
  fork→run→exit→reap cycle per request class on its machine and records
  the simulated nanoseconds each took.  These per-class service times
  are what the cluster's queueing model charges per request, so every
  cluster latency decomposes into documented cluster constants plus
  mechanically measured per-shard work (docs/COSTMODEL.md).
* **Audited requests** — the first ``audit`` requests routed to the
  shard are re-executed for real (same class mix), with the result
  asserted, so the serving model can never drift from what the machine
  actually does.  The shard's ``kernel_state_digest`` fingerprints the
  surviving kernel in the report.

This module imports the full OS stack and is therefore *not*
re-exported from :mod:`repro.cluster`'s light surface.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cluster.trace import CLASSES


class Shard:
    """One machine's worth of serving capacity."""

    def __init__(self, index: int, *, seed: int, workers: int,
                 cpus: int = 1, strategy: str = "copa",
                 audit: int = 0) -> None:
        from repro.api import Session
        from repro.apps.faas import ZygoteRuntime, faas_image

        self.index = index
        self.seed = seed
        self.session = Session(os="ufork", strategy=strategy, cpus=cpus,
                               seed=seed, obs=True).boot()
        self.runtime: Any = None

        def _warm(ctx: Any) -> None:
            runtime = ZygoteRuntime(ctx)
            runtime.warm()
            self.runtime = runtime

        self.pool = self.session.warm_pool(workers, image=faas_image(),
                                           warm=_warm, name=f"zygote{index}")
        self.service_ns: Dict[str, int] = self._calibrate()
        #: service time per klass index, for the runner's hot loop
        self.service_by_klass = [self.service_ns[name] for name in CLASSES]
        self.audit_left = audit
        self.audited = 0
        self.requests = 0

    def _calibrate(self) -> Dict[str, int]:
        """Measure one real request cycle per class, in simulated ns."""
        clock = self.session.machine.clock
        out: Dict[str, int] = {}
        for name in CLASSES:
            before = clock.now_ns
            result = self.runtime.handle_request(function=name)
            assert result.ok, f"calibration request failed on shard " \
                              f"{self.index}: {name}"
            out[name] = clock.now_ns - before
        self.session.machine.obs.count("cluster.shard.calibrations",
                                       len(CLASSES))
        return out

    def observe(self, klass: int) -> None:
        """Account one routed request; re-execute it for real while the
        audit budget lasts."""
        self.requests += 1
        if self.audit_left > 0:
            self.audit_left -= 1
            result = self.runtime.handle_request(function=CLASSES[klass])
            assert result.ok, f"audited request failed on shard " \
                              f"{self.index}: {CLASSES[klass]}"
            self.audited += 1
            self.session.machine.obs.count("cluster.shard.audited")

    def stats(self) -> Dict[str, Any]:
        """The per-shard section of the ``repro.cluster/v1`` report."""
        import hashlib

        from repro.chaos.runner import kernel_state_digest
        from repro.obs import to_json

        machine = self.session.machine
        return {
            "shard": self.index,
            "seed": self.seed,
            "requests": self.requests,
            "audited": self.audited,
            "workers": len(self.pool),
            "calibration_ns": dict(self.service_ns),
            "simulated_ns": machine.clock.now_ns,
            "forks": machine.counters.get("fork"),
            "kernel_state_digest": kernel_state_digest(self.session.os),
            "obs_export_sha256": hashlib.sha256(
                to_json(machine.obs.export()).encode("utf-8")).hexdigest(),
        }

"""Tests for pipes, message queues, sockets, FD tables and scheduling."""

import pytest

from repro.errors import (
    BadFileDescriptor,
    BrokenPipe,
    InvalidArgument,
    WouldBlock,
)
from repro.kernel.fdtable import FDTable, FileDescription
from repro.kernel.ipc import MessageQueue, Pipe
from repro.kernel.net import NetworkStack
from repro.kernel.sched import Scheduler
from repro.kernel.task import Process, TaskState


class TestPipe:
    def test_write_read_roundtrip(self, machine):
        pipe = Pipe(machine)
        assert pipe.write(b"hello") == 5
        assert pipe.read(5) == b"hello"

    def test_read_empty_would_block(self, machine):
        with pytest.raises(WouldBlock):
            Pipe(machine).read(1)

    def test_partial_read(self, machine):
        pipe = Pipe(machine)
        pipe.write(b"abcdef")
        assert pipe.read(2) == b"ab"
        assert pipe.read(100) == b"cdef"

    def test_capacity_backpressure(self, machine):
        pipe = Pipe(machine, capacity=4)
        assert pipe.write(b"123456") == 4  # short write
        with pytest.raises(WouldBlock):
            pipe.write(b"x")
        pipe.read(2)
        assert pipe.write(b"xy") == 2

    def test_eof_after_writer_close(self, machine):
        pipe = Pipe(machine)
        pipe.write(b"last")
        pipe.write_open = False
        assert pipe.read(10) == b"last"
        assert pipe.read(10) == b""  # EOF

    def test_broken_pipe_when_no_readers(self, machine):
        pipe = Pipe(machine)
        pipe.read_open = False
        with pytest.raises(BrokenPipe):
            pipe.write(b"x")

    def test_pipe_ends_as_fd_objects(self, machine):
        pipe = Pipe(machine)
        read_end, write_end = pipe.read_end(), pipe.write_end()
        desc = FileDescription(write_end)
        write_end.write(desc, b"via fd")
        assert read_end.read(FileDescription(read_end), 6) == b"via fd"
        with pytest.raises(InvalidArgument):
            read_end.write(desc, b"nope")
        with pytest.raises(InvalidArgument):
            write_end.read(desc, 1)

    def test_last_close_propagates(self, machine):
        pipe = Pipe(machine)
        end = pipe.write_end()
        desc = FileDescription(end)
        desc.decref()
        assert not pipe.write_open


class TestMessageQueue:
    def test_fifo_within_priority(self, machine):
        queue = MessageQueue(machine)
        queue.send(b"one")
        queue.send(b"two")
        assert queue.receive() == b"one"
        assert queue.receive() == b"two"

    def test_priority_ordering(self, machine):
        queue = MessageQueue(machine)
        queue.send(b"low", priority=0)
        queue.send(b"high", priority=9)
        assert queue.receive() == b"high"

    def test_empty_would_block(self, machine):
        with pytest.raises(WouldBlock):
            MessageQueue(machine).receive()

    def test_full_would_block(self, machine):
        queue = MessageQueue(machine, max_messages=1)
        queue.send(b"x")
        with pytest.raises(WouldBlock):
            queue.send(b"y")

    def test_oversized_message_rejected(self, machine):
        queue = MessageQueue(machine, max_size=4)
        with pytest.raises(InvalidArgument):
            queue.send(b"too big")


class TestNetwork:
    def test_connect_accept_exchange(self, machine):
        net = NetworkStack(machine)
        net.listen(80)
        client = net.connect(80)
        server = net.listener(80).accept()
        client.send(b"ping")
        assert server.recv(10) == b"ping"
        server.send(b"pong")
        assert client.recv(10) == b"pong"

    def test_connect_refused_without_listener(self, machine):
        with pytest.raises(BrokenPipe):
            NetworkStack(machine).connect(99)

    def test_accept_empty_would_block(self, machine):
        net = NetworkStack(machine)
        listener = net.listen(80)
        with pytest.raises(WouldBlock):
            listener.accept()

    def test_backlog_limit(self, machine):
        net = NetworkStack(machine)
        net.listen(80, backlog=2)
        net.connect(80)
        net.connect(80)
        with pytest.raises(WouldBlock):
            net.connect(80)

    def test_port_in_use(self, machine):
        net = NetworkStack(machine)
        net.listen(80)
        with pytest.raises(InvalidArgument):
            net.listen(80)

    def test_recv_after_close_is_eof(self, machine):
        net = NetworkStack(machine)
        net.listen(80)
        client = net.connect(80)
        server = net.listener(80).accept()
        client.send(b"bye")
        client.close()
        assert server.recv(10) == b"bye"
        assert server.recv(10) == b""

    def test_send_after_close_broken(self, machine):
        net = NetworkStack(machine)
        net.listen(80)
        client = net.connect(80)
        server = net.listener(80).accept()
        server.close()
        with pytest.raises(BrokenPipe):
            server.send(b"x")

    def test_network_charges_device_latency(self, machine):
        net = NetworkStack(machine)
        net.listen(80)
        client = net.connect(80)
        before = machine.clock.now_ns
        client.send(b"x" * 1000)
        assert machine.clock.now_ns - before >= machine.costs.net_packet_ns


class TestFDTable:
    def test_install_get_close(self):
        table = FDTable()
        desc = FileDescription(object())
        fd = table.install(desc)
        assert table.get(fd) is desc
        table.close(fd)
        with pytest.raises(BadFileDescriptor):
            table.get(fd)

    def test_fd_numbers_start_at_3(self):
        table = FDTable()
        assert table.install(FileDescription(object())) == 3
        assert table.install(FileDescription(object())) == 4

    def test_lowest_free_fd_reused(self):
        table = FDTable()
        fd3 = table.install(FileDescription(object()))
        table.install(FileDescription(object()))
        table.close(fd3)
        assert table.install(FileDescription(object())) == 3

    def test_dup_shares_description(self):
        table = FDTable()
        desc = FileDescription(object())
        fd = table.install(desc)
        dup_fd = table.dup(fd)
        assert table.get(dup_fd) is desc
        assert desc.refcount == 2

    def test_close_bad_fd(self):
        with pytest.raises(BadFileDescriptor):
            FDTable().close(42)

    def test_fork_copy_shares_offsets(self, machine):
        table = FDTable()
        desc = FileDescription(object())
        fd = table.install(desc)
        child = table.fork_copy(machine)
        child.get(fd).offset = 100
        assert table.get(fd).offset == 100  # same description

    def test_fork_copy_charges_per_fd(self, machine):
        table = FDTable()
        for _ in range(5):
            table.install(FileDescription(object()))
        before = machine.clock.now_ns
        table.fork_copy(machine)
        assert machine.clock.now_ns - before >= 5 * machine.costs.fd_dup_ns

    def test_last_close_callback(self):
        closed = []

        class Obj:
            def on_last_close(self, desc):
                closed.append(True)

        table = FDTable()
        desc = FileDescription(Obj())
        fd = table.install(desc)
        dup_fd = table.dup(fd)
        table.close(fd)
        assert not closed
        table.close(dup_fd)
        assert closed == [True]


class TestScheduler:
    def _task(self):
        proc = Process(1, "p")
        return proc.add_task()

    def test_switch_charges_sas_cost(self, machine):
        sched = Scheduler(machine, same_address_space=True)
        task = self._task()
        before = machine.clock.now_ns
        sched.switch_to(task)
        assert machine.clock.now_ns - before == \
            int(machine.costs.context_switch_sas_ns)
        assert machine.counters.get("tlb_flush") == 0

    def test_switch_across_spaces_flushes_tlb(self, machine):
        sched = Scheduler(machine, same_address_space=False)
        sched.switch_to(self._task())
        assert machine.counters.get("tlb_flush") == 1

    def test_switch_to_current_is_free(self, machine):
        sched = Scheduler(machine, same_address_space=True)
        task = self._task()
        sched.switch_to(task)
        before = machine.clock.now_ns
        sched.switch_to(task)
        assert machine.clock.now_ns == before

    def test_round_robin_yield(self, machine):
        sched = Scheduler(machine, same_address_space=True)
        task_a, task_b = self._task(), self._task()
        sched.add(task_a)
        sched.add(task_b)
        sched.switch_to(task_a)
        assert sched.yield_current() is task_b
        assert sched.yield_current() is task_a

    def test_block_and_wake(self, machine):
        sched = Scheduler(machine, same_address_space=True)
        task = self._task()
        sched.add(task)
        sched.block(task)
        assert task.state is TaskState.BLOCKED
        assert sched.pick_next() is None
        sched.wake(task)
        assert task.state is TaskState.RUNNABLE
        assert sched.pick_next() is task

"""Thin re-export shim: the group-isolation helper was promoted to
:mod:`repro.conform.isolated` so the exploration farm
(:mod:`repro.conform.farm`) can spawn its workers with it.  Tests keep
importing from here; the implementation lives in ``src``.
"""

from __future__ import annotations

from repro.conform.isolated import (  # noqa: F401
    REPO_SRC,
    IsolatedProcess,
    IsolatedResult,
    run_isolated,
)

__all__ = ["REPO_SRC", "IsolatedProcess", "IsolatedResult", "run_isolated"]

"""Tests for the repro.perf bench harness and the shared report writer.

The full benchmark suite is slow; these tests run one small benchmark
end to end (pipe ping-pong with a tiny transfer count exercises the
same driver machinery) and unit-test the gate/determinism logic on
synthetic reports.
"""

import json

import pytest

from repro.harness import reportio
from repro.perf import bench


# ---------------------------------------------------------------------------
# reportio: the one canonical JSON writer
# ---------------------------------------------------------------------------

class TestReportIO:
    def test_canonical_form(self):
        text = reportio.dumps_report({"b": 1, "a": [2, 3]})
        # sorted keys, two-space indent, trailing newline — the exact
        # bytes every golden report in the repo was written with
        assert text == '{\n  "a": [\n    2,\n    3\n  ],\n  "b": 1\n}\n'

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "report.json"
        doc = {"schema": "x/v1", "rows": [{"n": 1}]}
        reportio.write_report(doc, str(path))
        assert reportio.load_report(str(path)) == doc
        # parent directories are created on demand
        assert path.parent.is_dir()

    def test_write_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        reportio.write_report({"z": 0, "a": 1}, str(a))
        reportio.write_report({"a": 1, "z": 0}, str(b))
        assert a.read_bytes() == b.read_bytes()


# ---------------------------------------------------------------------------
# the bench driver
# ---------------------------------------------------------------------------

def _tiny_pingpong():
    return bench._bench_pipe_pingpong(transfers=8, chunk=512)


class TestRunBenchmarks:
    @pytest.fixture(scope="class")
    def report(self):
        # run one real benchmark through the real driver, scaled down
        original = bench.BENCHMARKS["pipe_pingpong"]
        bench.BENCHMARKS["pipe_pingpong"] = _tiny_pingpong
        try:
            return bench.run_benchmarks(names=["pipe_pingpong"],
                                        verbose=False)
        finally:
            bench.BENCHMARKS["pipe_pingpong"] = original

    def test_schema_and_shape(self, report):
        assert report["schema"] == bench.SCHEMA
        (row,) = report["benchmarks"]
        assert row["name"] == "pipe_pingpong"
        assert row["config"] == {"transfers": 8, "chunk": 512}
        assert row["invariant"] > 0
        host = row["host"]
        assert set(host) == {"baseline_s", "optimized_s", "speedup"}
        assert host["baseline_s"] > 0 and host["optimized_s"] > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            bench.run_benchmarks(names=["nope"])

    def test_determinism_modulo_wallclock(self, report):
        # a second run must agree byte for byte once wall-clock fields
        # are stripped: the invariant digests the simulated results
        original = bench.BENCHMARKS["pipe_pingpong"]
        bench.BENCHMARKS["pipe_pingpong"] = _tiny_pingpong
        try:
            again = bench.run_benchmarks(names=["pipe_pingpong"],
                                         verbose=False)
        finally:
            bench.BENCHMARKS["pipe_pingpong"] = original
        first = reportio.dumps_report(bench.strip_wallclock(report))
        second = reportio.dumps_report(bench.strip_wallclock(again))
        assert first == second

    def test_strip_wallclock_drops_only_host_fields(self, report):
        stable = bench.strip_wallclock(report)
        assert "host_meta" not in stable
        assert all("host" not in row for row in stable["benchmarks"])
        assert [row["name"] for row in stable["benchmarks"]] == \
            [row["name"] for row in report["benchmarks"]]
        # json-serializable without help
        json.dumps(stable)


class TestCheckGate:
    @staticmethod
    def _report(baseline_s, optimized_s):
        return {"schema": bench.SCHEMA, "benchmarks": [{
            "name": "synthetic", "config": {}, "invariant": 1,
            "host": {"baseline_s": baseline_s,
                     "optimized_s": optimized_s,
                     "speedup": baseline_s / optimized_s},
        }]}

    def test_passes_within_ratio(self):
        assert bench.check_gate(self._report(1.0, 0.85)) == []
        assert bench.check_gate(self._report(1.0, 0.4)) == []

    def test_gate_requires_outright_speedup(self):
        # MAX_RATIO < 1: merely matching the baseline now fails
        assert bench.MAX_RATIO < 1.0
        failures = bench.check_gate(self._report(1.0, 1.0))
        assert len(failures) == 1
        assert "synthetic" in failures[0]

    def test_fails_beyond_ratio(self):
        failures = bench.check_gate(self._report(1.0, 1.3))
        assert len(failures) == 1
        assert "synthetic" in failures[0]

    def test_custom_ratio(self):
        assert bench.check_gate(self._report(1.0, 1.05),
                                max_ratio=1.01) != []

    def test_cross_run_ratio_is_looser_than_gate(self):
        # run-to-run drift (different machines, different load) needs
        # headroom the within-run gate must not have
        assert bench.CROSS_RUN_RATIO > 1.0 > bench.MAX_RATIO


class TestDiffReports:
    @staticmethod
    def _report(name, baseline_s, optimized_s):
        return {"schema": bench.SCHEMA, "benchmarks": [{
            "name": name, "config": {}, "invariant": 1,
            "host": {"baseline_s": baseline_s,
                     "optimized_s": optimized_s,
                     "speedup": round(baseline_s / optimized_s, 3)},
        }]}

    def test_pairs_by_name(self):
        diff = bench.diff_reports(self._report("a", 1.0, 0.5),
                                  self._report("a", 1.0, 0.25))
        assert diff["schema"] == "repro.perf.diff/v1"
        (row,) = diff["benchmarks"]
        assert row["name"] == "a"
        assert row["before"]["optimized_s"] == 0.5
        assert row["after"]["optimized_s"] == 0.25
        assert row["speedup_delta"] == 2.0
        assert row["optimized_ratio"] == 0.5

    def test_added_and_removed_benchmarks_survive(self):
        diff = bench.diff_reports(self._report("old", 1.0, 0.5),
                                  self._report("new", 1.0, 0.5))
        rows = {row["name"]: row for row in diff["benchmarks"]}
        assert rows["old"]["after"] is None
        assert rows["new"]["before"] is None
        assert "speedup_delta" not in rows["old"]


class TestCrossModeInvariant:
    def test_divergence_is_fatal(self, monkeypatch):
        # a "benchmark" whose simulated result depends on the perf mode
        # must crash the driver, not produce a report
        from repro import perf

        def _mode_dependent():
            return (1 if perf.ENABLED else 2), {}

        monkeypatch.setitem(bench.BENCHMARKS, "diverge", _mode_dependent)
        with pytest.raises(AssertionError, match="diverged"):
            bench.run_benchmarks(names=["diverge"], verbose=False)

"""One experiment function per table/figure of the paper's evaluation.

Every function boots fresh machines for each measured configuration
(hermetic, deterministic runs), drives the real kernel + workload
simulation, and returns a list of row dicts that the benchmarks print
and EXPERIMENTS.md records.

Default database sweeps are scaled down from the paper's 100 KB–100 MB
to keep benchmark wall time reasonable; pass ``FULL_DB_SIZES`` to
reproduce the paper's exact sweep.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps import unixbench
from repro.apps.faas import ZygoteRuntime, faas_image
from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.apps.nginx import MiniNginx, WrkClient, nginx_image
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.baselines import MonolithicOS, VMCloneOS
from repro.core import CopyStrategy, IsolationConfig, UForkOS
from repro.machine import Machine
from repro.mem.layout import KiB, MiB

DEFAULT_DB_SIZES: Tuple[int, ...] = (100 * KiB, 1 * MiB, 10 * MiB)
FULL_DB_SIZES: Tuple[int, ...] = (100 * KiB, 1 * MiB, 10 * MiB, 100 * MiB)

NS_PER_US = 1_000
NS_PER_MS = 1_000_000


# ---------------------------------------------------------------------------
# Shared drivers
# ---------------------------------------------------------------------------

def _boot_redis(os_cls, db_bytes: int, value_size: int,
                **os_kwargs) -> Tuple[Any, MiniRedis]:
    os_ = os_cls(machine=Machine(), **os_kwargs)
    nbuckets = max(64, min(4096, db_bytes // value_size * 2))
    proc = os_.spawn(redis_image(db_bytes), "redis")
    store = MiniRedis(GuestContext(os_, proc), nbuckets=nbuckets)
    populate(store, db_bytes, value_size=value_size)
    return os_, store


def _redis_run(os_cls, db_bytes: int, value_size: int = 100 * KiB,
               **os_kwargs):
    """One BGSAVE measurement on a fresh machine."""
    _os, store = _boot_redis(os_cls, db_bytes, value_size, **os_kwargs)
    return store.bgsave("/dump.rdb")


# ---------------------------------------------------------------------------
# Figure 3: Redis DB overall save times (ms)
# ---------------------------------------------------------------------------

def fig3_redis_save(sizes: Sequence[int] = DEFAULT_DB_SIZES,
                    value_size: int = 100 * KiB) -> List[Dict[str, Any]]:
    rows = []
    for size in sizes:
        ufork = _redis_run(UForkOS, size, value_size,
                           copy_strategy=CopyStrategy.COPA,
                           isolation=IsolationConfig.fault())
        cheribsd = _redis_run(MonolithicOS, size, value_size)
        rows.append({
            "db_size": size,
            "ufork_ms": ufork.save_total_ns / NS_PER_MS,
            "cheribsd_ms": cheribsd.save_total_ns / NS_PER_MS,
            "speedup": cheribsd.save_total_ns / max(1, ufork.save_total_ns),
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 4: Redis fork latency (μs), including the strategy ablation
# and the cost of TOCTTOU protection
# ---------------------------------------------------------------------------

def fig4_redis_fork_latency(sizes: Sequence[int] = DEFAULT_DB_SIZES,
                            value_size: int = 100 * KiB
                            ) -> List[Dict[str, Any]]:
    rows = []
    for size in sizes:
        copa = _redis_run(UForkOS, size, value_size,
                          copy_strategy=CopyStrategy.COPA,
                          isolation=IsolationConfig.fault())
        coa = _redis_run(UForkOS, size, value_size,
                         copy_strategy=CopyStrategy.COA,
                         isolation=IsolationConfig.fault())
        full = _redis_run(UForkOS, size, value_size,
                          copy_strategy=CopyStrategy.FULL_COPY,
                          isolation=IsolationConfig.fault())
        tocttou = _redis_run(UForkOS, size, value_size,
                             copy_strategy=CopyStrategy.COPA,
                             isolation=IsolationConfig.full())
        cheribsd = _redis_run(MonolithicOS, size, value_size)
        rows.append({
            "db_size": size,
            "ufork_copa_us": copa.fork_latency_ns / NS_PER_US,
            "ufork_coa_us": coa.fork_latency_ns / NS_PER_US,
            "ufork_full_us": full.fork_latency_ns / NS_PER_US,
            "ufork_tocttou_us": tocttou.fork_latency_ns / NS_PER_US,
            "cheribsd_us": cheribsd.fork_latency_ns / NS_PER_US,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 5: Redis forked-process memory consumption (MB)
# ---------------------------------------------------------------------------

def fig5_redis_memory(sizes: Sequence[int] = DEFAULT_DB_SIZES,
                      value_size: int = 100 * KiB) -> List[Dict[str, Any]]:
    rows = []
    for size in sizes:
        copa = _redis_run(UForkOS, size, value_size,
                          copy_strategy=CopyStrategy.COPA,
                          isolation=IsolationConfig.fault())
        coa = _redis_run(UForkOS, size, value_size,
                         copy_strategy=CopyStrategy.COA,
                         isolation=IsolationConfig.fault())
        full = _redis_run(UForkOS, size, value_size,
                          copy_strategy=CopyStrategy.FULL_COPY,
                          isolation=IsolationConfig.fault())
        cheribsd = _redis_run(MonolithicOS, size, value_size)
        rows.append({
            "db_size": size,
            "ufork_copa_mb": copa.child_extra_bytes / MiB,
            "ufork_coa_mb": coa.child_extra_bytes / MiB,
            "ufork_full_mb": full.child_extra_bytes / MiB,
            "cheribsd_mb": cheribsd.child_extra_bytes / MiB,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 6: FaaS function throughput (functions/s) on 1-3 cores
# ---------------------------------------------------------------------------

def _measure_faas_profile(os_cls, samples: int = 12,
                          **os_kwargs) -> Tuple[int, int]:
    """Measure (coordinator fork cost, child execute+exit cost) on the
    real kernel simulation; returns averages in ns."""
    os_ = os_cls(machine=Machine(), **os_kwargs)
    runtime = ZygoteRuntime(GuestContext(os_, os_.spawn(faas_image(),
                                                        "zygote")))
    runtime.warm()
    runtime.handle_request()  # warm the fork paths
    fork_total = child_total = 0
    clock = os_.machine.clock
    for _ in range(samples):
        with clock.measure() as fork_watch:
            child_ctx = runtime.ctx.fork()
        with clock.measure() as child_watch:
            child_runtime = ZygoteRuntime.attach(child_ctx)
            child_runtime.modules(limit=4)
            from repro.apps.faas import float_operation
            float_operation(child_ctx)
            child_ctx.exit(0)
        runtime.ctx.wait(child_ctx.pid)
        fork_total += fork_watch.elapsed_ns
        child_total += child_watch.elapsed_ns
    return fork_total // samples, child_total // samples


def fig6_faas_throughput(core_counts: Sequence[int] = (1, 2, 3),
                         window_s: float = 10.0) -> List[Dict[str, Any]]:
    from repro.sim import simulate_fork_pipeline
    window_ns = int(window_s * 1e9)
    profiles = {
        "ufork": _measure_faas_profile(
            UForkOS, copy_strategy=CopyStrategy.COPA,
            isolation=IsolationConfig.fault()),
        "ufork_tocttou": _measure_faas_profile(
            UForkOS, copy_strategy=CopyStrategy.COPA,
            isolation=IsolationConfig.full()),
        "cheribsd": _measure_faas_profile(MonolithicOS),
    }
    rows = []
    for cores in core_counts:
        row: Dict[str, Any] = {"cores": cores}
        for name, (fork_ns, child_ns) in profiles.items():
            result = simulate_fork_pipeline(fork_ns, child_ns, cores,
                                            duration_ns=window_ns)
            row[f"{name}_per_s"] = result.throughput_per_s
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 7: Nginx throughput (requests/s)
# ---------------------------------------------------------------------------

def _measure_nginx_profile(os_cls, samples: int = 30,
                           **os_kwargs) -> Tuple[int, int]:
    """Measure per-request (cpu_ns, io_ns) on the real kernel sim."""
    os_ = os_cls(machine=Machine(), **os_kwargs)
    master = GuestContext(os_, os_.spawn(nginx_image(), "nginx"))
    server = MiniNginx(master)
    server.fork_workers(1)
    wrk = WrkClient(GuestContext(os_, os_.spawn(nginx_image(), "wrk")))
    # warm-up
    fd = wrk.issue()
    server.serve_one(server.workers[0])
    wrk.complete(fd)
    cpu_total = io_total = 0
    for _ in range(samples):
        fd = wrk.issue()
        stats = server.serve_one(server.workers[0])
        wrk.complete(fd)
        cpu_total += stats.cpu_ns
        io_total += stats.io_wait_ns
    return cpu_total // samples, io_total // samples


def fig7_nginx_throughput(worker_counts: Sequence[int] = (1, 2, 3),
                          window_s: float = 10.0) -> List[Dict[str, Any]]:
    from repro.sim import simulate_closed_workers
    window_ns = int(window_s * 1e9)
    ufork = _measure_nginx_profile(
        UForkOS, copy_strategy=CopyStrategy.COPA,
        isolation=IsolationConfig.fault())
    ufork_tocttou = _measure_nginx_profile(
        UForkOS, copy_strategy=CopyStrategy.COPA,
        isolation=IsolationConfig.full())
    cheribsd = _measure_nginx_profile(MonolithicOS)

    rows = []
    for workers in worker_counts:
        row: Dict[str, Any] = {"workers": workers}
        # μFork: single core (immature SMP; big kernel lock, §4.5/§5.1)
        row["ufork_1core_per_s"] = simulate_closed_workers(
            ufork[0], ufork[1], workers, cores=1, duration_ns=window_ns,
            kernel_lock_fraction=0.35,
        ).throughput_per_s
        row["ufork_tocttou_1core_per_s"] = simulate_closed_workers(
            ufork_tocttou[0], ufork_tocttou[1], workers, cores=1,
            duration_ns=window_ns, kernel_lock_fraction=0.35,
        ).throughput_per_s
        # CheriBSD restricted to one core, and free to scale
        row["cheribsd_1core_per_s"] = simulate_closed_workers(
            cheribsd[0], cheribsd[1], workers, cores=1,
            duration_ns=window_ns,
        ).throughput_per_s
        row["cheribsd_multicore_per_s"] = simulate_closed_workers(
            cheribsd[0], cheribsd[1], workers, cores=workers,
            duration_ns=window_ns,
        ).throughput_per_s
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 8: hello-world fork latency and per-process memory
# ---------------------------------------------------------------------------

def fig8_hello_fork(samples: int = 10) -> List[Dict[str, Any]]:
    rows = []
    systems = (
        ("ufork", UForkOS, dict(copy_strategy=CopyStrategy.COPA,
                                isolation=IsolationConfig.fault())),
        ("cheribsd", MonolithicOS, {}),
        ("nephele", VMCloneOS, {}),
    )
    for name, os_cls, kwargs in systems:
        os_ = os_cls(machine=Machine(), **kwargs)
        parent = GuestContext(os_, os_.spawn(hello_world_image(), "hello"))
        # warm-up fork
        warm = parent.fork()
        warm.exit(0)
        parent.wait(warm.pid)
        total = 0
        memory = 0.0
        for _ in range(samples):
            with os_.machine.clock.measure() as watch:
                child = parent.fork()
            total += watch.elapsed_ns
            memory += os_.memory_of(child.proc)
            child.exit(0)
            parent.wait(child.pid)
        rows.append({
            "system": name,
            "fork_latency_us": total / samples / NS_PER_US,
            "memory_mb": memory / samples / MiB,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 9: Unixbench Spawn and Context1
# ---------------------------------------------------------------------------

def fig9_unixbench(spawn_iterations: int = 1000,
                   context1_target: int = 100_000,
                   measured_fraction: float = 0.1) -> List[Dict[str, Any]]:
    """Spawn and Context1 execution times.

    ``measured_fraction`` runs that fraction of the iterations on the
    real kernel simulation and scales linearly (both benchmarks are
    strictly linear in iteration count); pass 1.0 for a full run.
    """
    rows = []
    spawn_n = max(10, int(spawn_iterations * measured_fraction))
    ctx1_n = max(100, int(context1_target * measured_fraction))
    for name, os_cls, kwargs in (
        ("ufork", UForkOS, dict(copy_strategy=CopyStrategy.COPA,
                                isolation=IsolationConfig.fault())),
        ("cheribsd", MonolithicOS, {}),
    ):
        os_ = os_cls(machine=Machine(), **kwargs)
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "bench"))
        spawn_result = unixbench.spawn(ctx, iterations=spawn_n)
        spawn_ms = (spawn_result.total_ns / spawn_n * spawn_iterations
                    / NS_PER_MS)

        os2 = os_cls(machine=Machine(), **kwargs)
        ctx2 = GuestContext(os2, os2.spawn(hello_world_image(), "bench"))
        ctx1_result = unixbench.context1(ctx2, target=ctx1_n)
        ctx1_ms = (ctx1_result.total_ns / ctx1_n * context1_target
                   / NS_PER_MS)
        rows.append({
            "system": name,
            "spawn_ms": spawn_ms,
            "context1_ms": ctx1_ms,
        })
    return rows


# ---------------------------------------------------------------------------
# §5.2 CoPA vs CoA vs full copy (single-size ablation)
# ---------------------------------------------------------------------------

def copa_ablation(db_bytes: int = 10 * MiB,
                  value_size: int = 100 * KiB) -> List[Dict[str, Any]]:
    rows = []
    for name, strategy in (
        ("full_copy", CopyStrategy.FULL_COPY),
        ("coa", CopyStrategy.COA),
        ("copa", CopyStrategy.COPA),
    ):
        metrics = _redis_run(UForkOS, db_bytes, value_size,
                             copy_strategy=strategy,
                             isolation=IsolationConfig.fault())
        rows.append({
            "strategy": name,
            "fork_latency_us": metrics.fork_latency_ns / NS_PER_US,
            "memory_mb": metrics.child_extra_bytes / MiB,
            "save_ms": metrics.save_total_ns / NS_PER_MS,
            "page_copies": metrics.page_copies,
        })
    return rows

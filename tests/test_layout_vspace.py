"""Tests for program layout and virtual-area reservation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import OutOfVirtualSpace
from repro.mem.layout import ProgramImage, SegmentMap
from repro.mem.vspace import VirtualAreaAllocator

PAGE = 4096
MiB = 1024 * 1024


class TestProgramImage:
    def test_segment_order_matches_figure1(self):
        names = [seg.name for seg in ProgramImage("p").segments()]
        assert names == ["code", "rodata", "data", "got", "tls", "heap",
                         "mmap", "stack"]

    def test_got_size_minimum_one_page(self):
        image = ProgramImage("p", got_entries=4)
        assert image.got_size == PAGE

    def test_got_size_scales_with_entries(self):
        image = ProgramImage("p", got_entries=1024)
        assert image.got_size == 1024 * 16

    def test_region_size_page_aligned(self):
        image = ProgramImage("p", code_size=100, rodata_size=1)
        assert image.region_size(PAGE) % PAGE == 0

    def test_cap_bearing_segments(self):
        holds = {seg.name for seg in ProgramImage("p").segments()
                 if seg.holds_caps}
        assert holds == {"data", "got", "heap", "mmap", "stack"}


class TestSegmentMap:
    def test_segments_contiguous_and_aligned(self):
        image = ProgramImage("p", code_size=5000, heap_size=3 * PAGE)
        layout = SegmentMap(image, region_base=0x100000, page_size=PAGE)
        previous_top = 0x100000
        for spec, base, size in layout.iter_segments():
            assert base == previous_top
            assert base % PAGE == 0
            assert size % PAGE == 0
            previous_top = base + size
        assert layout.region_top == previous_top

    def test_region_size_matches_image(self):
        image = ProgramImage("p")
        layout = SegmentMap(image, 0x200000, PAGE)
        assert layout.region_size == image.region_size(PAGE)

    def test_segment_of(self):
        layout = SegmentMap(ProgramImage("p"), 0x100000, PAGE)
        assert layout.segment_of(layout.base("heap")) == "heap"
        assert layout.segment_of(layout.top("heap") - 1) == "heap"
        with pytest.raises(KeyError):
            layout.segment_of(layout.region_top)

    def test_contains(self):
        layout = SegmentMap(ProgramImage("p"), 0x100000, PAGE)
        assert layout.contains(0x100000)
        assert not layout.contains(0x100000 - 1)
        assert not layout.contains(layout.region_top)

    def test_rebased_preserves_offsets(self):
        layout = SegmentMap(ProgramImage("p"), 0x100000, PAGE)
        moved = layout.rebased(0x900000)
        delta = 0x900000 - 0x100000
        for name in ("code", "got", "heap", "stack"):
            assert moved.base(name) == layout.base(name) + delta

    def test_span(self):
        layout = SegmentMap(ProgramImage("p"), 0x100000, PAGE)
        base, top = layout.span("got")
        assert top - base == layout.size("got")


class TestVirtualAreaAllocator:
    def make(self, size=64 * MiB, aslr=None):
        return VirtualAreaAllocator(0x1000000, size, PAGE, aslr_rng=aslr)

    def test_reserve_returns_aligned_area(self):
        vsa = self.make()
        base = vsa.reserve(100)
        assert base % PAGE == 0
        assert base >= vsa.window_base

    def test_reservations_do_not_overlap(self):
        vsa = self.make()
        areas = [(vsa.reserve(3 * PAGE), 3 * PAGE) for _ in range(10)]
        areas.sort()
        for (base_a, size_a), (base_b, _) in zip(areas, areas[1:]):
            assert base_a + size_a <= base_b

    def test_release_and_reuse(self):
        vsa = self.make(size=4 * PAGE)
        base = vsa.reserve(4 * PAGE)
        with pytest.raises(OutOfVirtualSpace):
            vsa.reserve(PAGE)
        vsa.release(base)
        assert vsa.reserve(4 * PAGE) == base

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            self.make().release(0x1000000)

    def test_exhaustion_raises(self):
        vsa = self.make(size=8 * PAGE)
        vsa.reserve(6 * PAGE)
        with pytest.raises(OutOfVirtualSpace):
            vsa.reserve(3 * PAGE)

    def test_coalescing_after_release(self):
        vsa = self.make(size=8 * PAGE)
        a = vsa.reserve(2 * PAGE)
        b = vsa.reserve(2 * PAGE)
        c = vsa.reserve(2 * PAGE)
        vsa.release(a)
        vsa.release(c)
        vsa.release(b)
        assert vsa.free_extents() == [(vsa.window_base, 8 * PAGE)]
        assert vsa.fragmentation() == 0.0

    def test_fragmentation_metric(self):
        vsa = self.make(size=8 * PAGE)
        a = vsa.reserve(2 * PAGE)
        vsa.reserve(2 * PAGE)
        vsa.release(a)  # free: 2-page hole + 4-page tail
        assert 0.0 < vsa.fragmentation() < 1.0
        assert vsa.largest_free() == 4 * PAGE
        assert vsa.total_free() == 6 * PAGE

    def test_aslr_randomizes_base(self):
        bases = set()
        for seed in range(8):
            vsa = self.make(aslr=random.Random(seed))
            bases.add(vsa.reserve(4 * PAGE))
        assert len(bases) > 1

    def test_aslr_reservations_still_disjoint(self):
        vsa = self.make(size=1024 * PAGE, aslr=random.Random(7))
        areas = sorted((vsa.reserve(8 * PAGE), 8 * PAGE) for _ in range(20))
        for (base_a, size_a), (base_b, _) in zip(areas, areas[1:]):
            assert base_a + size_a <= base_b

    @given(sizes=st.lists(st.integers(1, 16), min_size=1, max_size=30))
    def test_prop_reserve_release_restores_window(self, sizes):
        vsa = VirtualAreaAllocator(0, 4096 * 4096, 4096)
        bases = []
        for pages in sizes:
            bases.append(vsa.reserve(pages * 4096))
        for base in bases:
            vsa.release(base)
        assert vsa.free_extents() == [(0, 4096 * 4096)]

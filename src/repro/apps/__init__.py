"""Guest applications: the workloads the paper evaluates.

Each application is written against :class:`~repro.apps.guest.GuestContext`,
the OS-agnostic user-space API, and keeps its mutable state in simulated
guest memory — so running one across a fork genuinely exercises μFork's
relocation and copy strategies.
"""

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image, run_hello
from repro.apps.redis import MiniRedis, redis_image
from repro.apps.faas import ZygoteRuntime, faas_image, float_operation
from repro.apps.nginx import MiniNginx, nginx_image
from repro.apps.qmail import MiniQmail, qmail_image
from repro.apps import unixbench

__all__ = [
    "GuestContext",
    "hello_world_image",
    "run_hello",
    "MiniRedis",
    "redis_image",
    "ZygoteRuntime",
    "faas_image",
    "float_operation",
    "MiniNginx",
    "nginx_image",
    "MiniQmail",
    "qmail_image",
    "unixbench",
]

"""Host-performance switchboard for the simulator's hot paths.

The reproduction reports *simulated* nanoseconds, but the ROADMAP also
demands the simulator itself "run as fast as the hardware allows" —
*host* time.  This package controls the host-side fast paths:

* the generation-stamped page-walk cache in
  :class:`repro.hw.paging.AddressSpace` (invalidated by PTE writes and
  TLB flushes/shootdowns);
* the memoised capability encode/decode in
  :class:`repro.cheri.codec.CapabilityCodec`;
* the batched granule-tag clear/scan in :class:`repro.hw.phys.Frame`;
* the syscall dispatch table in :class:`repro.kernel.base.AbstractOS`.

Every fast path is **host-time only**: with optimisations on or off,
the simulated clock, every counter, every golden export and every
schedule decision are byte-identical.  The bench harness
(:mod:`repro.perf.bench`) relies on that to measure honest
before/after host-time deltas — it runs each microbenchmark once under
:func:`perf_disabled` (the pre-optimisation code paths, kept intact)
and once with the fast paths enabled, and asserts the simulated
results match exactly.

The flag is read at two granularities, both cheap:

* **construction-time snapshot** — ``AddressSpace``, ``CapabilityCodec``
  and ``AbstractOS`` capture :func:`enabled` when built, so their hot
  paths pay no per-access flag check.  Toggling affects machines built
  *afterwards* (the bench builds a fresh machine per mode).
* **module-global check** — :class:`~repro.hw.phys.Frame` has no
  machine reference, so its tag batching consults ``ENABLED`` live.

``REPRO_PERF=0`` in the environment disables every fast path for a
whole process (escape hatch for bisecting host-side bugs).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: master switch consulted by the hot paths (see module docstring)
ENABLED: bool = os.environ.get("REPRO_PERF", "1") != "0"


def enabled() -> bool:
    """Are the host fast paths currently on?"""
    return ENABLED


def set_enabled(value: bool) -> bool:
    """Flip the master switch; returns the previous value."""
    global ENABLED
    previous = ENABLED
    ENABLED = bool(value)
    return previous


@contextmanager
def perf_disabled() -> Iterator[None]:
    """Run a block on the pre-optimisation code paths (bench baseline)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def perf_enabled() -> Iterator[None]:
    """Force the fast paths on inside a block (bench measured side)."""
    previous = set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)


__all__ = [
    "ENABLED",
    "enabled",
    "set_enabled",
    "perf_disabled",
    "perf_enabled",
]

"""Memory-copy strategies: full copy, Copy-on-Access, Copy-on-Pointer-Access.

Traditional CoW cannot be applied as-is by μFork (§3.8): a page the
child merely *reads* may contain absolute memory references that still
point into the parent, so it must be copied and relocated before the
child can load them.  The three strategies the paper evaluates:

* ``FULL_COPY`` — copy + relocate every parent page synchronously at
  fork (the 23.2 ms / 144 MB upper bound in §5.2);
* ``COA`` — share pages but mark the child's mappings inaccessible:
  *any* child access (and any parent write) triggers copy + relocation;
* ``COPA`` — share pages read-only, using CHERI's fault-on-capability-
  load page bit: parent/child writes and child *capability loads*
  trigger copy + relocation, but plain data reads stay shared.

The strategies are implemented as fork-time page-table setup plus a
page-fault handler; the records live in PTE ``note`` slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Tuple

from repro import perf as _perf
from repro.core.relocate import (
    RegionPair,
    relocate_copied_frames,
    relocate_frame,
)
from repro.hw.paging import AccessKind, AddressSpace, PagePerm


class CopyStrategy(Enum):
    """How a forked child's memory is materialized."""

    FULL_COPY = "full"
    COA = "coa"
    COPA = "copa"


@dataclass(slots=True)
class ShareNote:
    """PTE annotation for a page shared between parent and child."""

    #: "parent" or "child" — which side of the fork this PTE belongs to
    role: str
    strategy: CopyStrategy
    regions: RegionPair
    #: permissions to restore once the page becomes private
    orig_perms: PagePerm


#: share-permission memo: IntFlag arithmetic is pure but surprisingly
#: slow, and fork-time sharing runs it once per page; the handful of
#: distinct (strategy, perms) pairs makes a tiny permanent memo
_CHILD_PERMS_MEMO: Dict[Tuple[CopyStrategy, int], PagePerm] = {}
_PARENT_PERMS_MEMO: Dict[int, PagePerm] = {}

#: fault-kind → counter-name memo (f-string hoisted off the fault path)
_CHILD_BREAK_COUNTER: Dict[AccessKind, str] = {}


def child_share_perms(strategy: CopyStrategy,
                      orig_perms: PagePerm) -> PagePerm:
    """Page permissions for the child's mapping of a shared page."""
    if _perf.ENABLED:
        key = (strategy, int(orig_perms))
        cached = _CHILD_PERMS_MEMO.get(key)
        if cached is None:
            cached = _child_share_perms(strategy, orig_perms)
            _CHILD_PERMS_MEMO[key] = cached
        return cached
    return _child_share_perms(strategy, orig_perms)


def _child_share_perms(strategy: CopyStrategy,
                       orig_perms: PagePerm) -> PagePerm:
    if strategy is CopyStrategy.COA:
        # fully inaccessible: any access faults
        return PagePerm.NONE
    if strategy is CopyStrategy.COPA:
        # readable/executable, but no writes and no capability loads
        return orig_perms & ~(PagePerm.WRITE | PagePerm.LOAD_CAP)
    raise ValueError(f"no sharing under {strategy}")


def parent_share_perms(orig_perms: PagePerm) -> PagePerm:
    """Parent keeps reading (including its own capabilities) but writes
    must fault to preserve the child's snapshot."""
    if _perf.ENABLED:
        key = int(orig_perms)
        cached = _PARENT_PERMS_MEMO.get(key)
        if cached is None:
            cached = orig_perms & ~PagePerm.WRITE
            _PARENT_PERMS_MEMO[key] = cached
        return cached
    return orig_perms & ~PagePerm.WRITE


def setup_shared_page(space: AddressSpace, parent_vpn: int, child_vpn: int,
                      strategy: CopyStrategy, regions: RegionPair) -> None:
    """Fork-time setup for one page under CoA/CoPA."""
    machine = space.machine
    parent_pte = space.page_table.get(parent_vpn)
    orig = parent_pte.note.orig_perms if isinstance(parent_pte.note, ShareNote) \
        else parent_pte.perms

    # Child maps the parent's frame at the mirrored address.
    space.map_page(
        child_vpn, parent_pte.frame,
        child_share_perms(strategy, orig), incref=True,
        note=ShareNote("child", strategy, regions, orig),
    )
    machine.charge(machine.costs.pte_bulk_share_ns, "fork_map")
    if strategy is CopyStrategy.COA:
        machine.charge(machine.costs.pte_coa_extra_ns, "fork_map")

    # Parent loses write permission (lazily restored on its next write).
    parent_pte.perms = parent_share_perms(orig)
    if not isinstance(parent_pte.note, ShareNote):
        parent_pte.note = ShareNote("parent", strategy, regions, orig)
    machine.charge(machine.costs.pte_protect_ns, "fork_protect")


def setup_shared_pages(space: AddressSpace, items, delta_pages: int,
                       strategy: CopyStrategy, regions: RegionPair,
                       newly_shared: list) -> None:
    """Bulk fork-time sharing setup (the vectorized copy_pages path).

    ``items`` are ``(vpn, frame, perms_int, note)`` tuples, vpn
    ascending.  Charge-for-charge and state-for-state equivalent to
    calling :func:`setup_shared_page` per page: runs of consecutive
    vpns with equal original permissions become one ``map_run`` on the
    child side (sharing a single interned :class:`ShareNote` — notes
    are never mutated, only replaced), parent protection is applied
    in place, and the per-page PTE charges are batched as sum-equal
    totals.  The caller guarantees the PTE costs are integral, no
    tracer is attached, and chaos is off.

    Parent vpns newly write-protected are appended to ``newly_shared``
    as ints (fork rollback resolves them through the space).
    """
    count = len(items)
    if not count:
        return
    machine = space.machine
    costs = machine.costs
    child_notes: Dict[int, ShareNote] = {}
    parent_notes: Dict[int, ShareNote] = {}
    map_run = space.map_run
    protect_run = space.protect_run
    set_note_many = space.set_note_many
    index = 0
    while index < count:
        vpn, _frame, perms_int, note = items[index]
        orig_int = int(note.orig_perms) if isinstance(note, ShareNote) \
            else perms_int
        end = index + 1
        while end < count:
            nvpn, _nframe, nperms, nnote = items[end]
            if nvpn != vpn + (end - index):
                break
            norig = int(nnote.orig_perms) if isinstance(nnote, ShareNote) \
                else nperms
            if norig != orig_int:
                break
            end += 1
        run = items[index:end]
        orig = PagePerm(orig_int)
        child_note = child_notes.get(orig_int)
        if child_note is None:
            child_note = ShareNote("child", strategy, regions, orig)
            child_notes[orig_int] = child_note
        map_run(vpn + delta_pages, [item[1] for item in run],
                child_share_perms(strategy, orig), incref=True,
                note=child_note)
        parent_perms = parent_share_perms(orig)
        parent_note = parent_notes.get(orig_int)
        if parent_note is None:
            parent_note = ShareNote("parent", strategy, regions, orig)
            parent_notes[orig_int] = parent_note
        protect_run(vpn, end - index, parent_perms)
        unnoted = [parent_vpn
                   for parent_vpn, _pframe, _pperms, pnote in run
                   if not isinstance(pnote, ShareNote)]
        if unnoted:
            set_note_many(unnoted, parent_note)
            newly_shared.extend(unnoted)
        index = end
    machine.charge(int(costs.pte_bulk_share_ns) * count, "fork_map")
    if strategy is CopyStrategy.COA:
        machine.charge(int(costs.pte_coa_extra_ns) * count, "fork_map")
    machine.charge(int(costs.pte_protect_ns) * count, "fork_protect")


def copy_page_for_child(space: AddressSpace, child_vpn: int,
                        src_frame: int, perms: PagePerm,
                        regions: RegionPair,
                        map_new: bool = False) -> None:
    """Copy + relocate one page into the child (eager or on fault)."""
    machine = space.machine
    new_frame = machine.phys.copy_frame(src_frame, preserve_tags=True)
    relocate_frame(machine, machine.phys.frame(new_frame), regions)
    if map_new:
        space.map_page(child_vpn, new_frame, perms)
        machine.charge(machine.costs.pte_bulk_share_ns, "fork_map")
    else:
        space.replace_frame(child_vpn, new_frame)
        space.protect_page(child_vpn, perms)
    machine.counters.add("fork_page_copies")
    machine.obs.count("core.strategies.eager_page_copies" if map_new
                      else "core.strategies.fault_page_copies")
    machine.trace("fork_page_copy", vpn=child_vpn,
                  eager=map_new)


def handle_fork_fault(space: AddressSpace, vaddr: int,
                      kind: AccessKind) -> bool:
    """Page-fault handler implementing the lazy halves of CoA/CoPA.

    Returns True when the fault was a fork-sharing fault and has been
    resolved (the access should be retried).
    """
    machine = space.machine
    vpn = vaddr // machine.config.page_size
    note = space.note_of(vpn)
    if not isinstance(note, ShareNote):
        return False

    if note.role == "parent":
        if kind is not AccessKind.WRITE:
            return False  # parent reads never fault under either strategy
        _make_private(space, vpn, relocate=False, note=note)
        machine.counters.add("fork_parent_cow_break")
        if machine.tracer is not None or machine.obs.enabled:
            machine.obs.count(
                f"core.strategies.{note.strategy.value}.break.parent.write")
            machine.trace("cow_break", role="parent", vpn=vpn)
        return True

    # child side: writes always break; reads/exec/cap-loads depend on strategy
    if note.strategy is CopyStrategy.COPA and kind is AccessKind.READ:
        return False  # CoPA allows plain reads; this fault is something else
    if kind is AccessKind.CAP_LOAD and machine.chaos.enabled and \
            machine.chaos.should_fire("core.strategies.cap_fault_storm"):
        # storm: the capability-load fault spuriously re-fires a few
        # times before the break sticks; each repeat costs a full fault.
        # Enough storms push UForkOS down the CoPA→CoA→eager ladder.
        for _ in range(3):
            machine.charge(machine.costs.page_fault_ns, "page_fault")
            machine.obs.count("core.strategies.cap_fault_storm_repeats")
        machine.chaos.note_recovery("core.strategies.cap_fault_storm")
    _make_private(space, vpn, relocate=True, note=note)
    counter = _CHILD_BREAK_COUNTER.get(kind)
    if counter is None:
        counter = f"fork_child_break_{kind.name.lower()}"
        _CHILD_BREAK_COUNTER[kind] = counter
    machine.counters.add(counter)
    if machine.tracer is not None or machine.obs.enabled:
        machine.obs.count(f"core.strategies.{note.strategy.value}"
                          f".break.child.{kind.name.lower()}")
        machine.trace("cow_break", role="child", vpn=vpn,
                      kind=kind.name.lower())
    return True


def handle_fork_write_run(space: AddressSpace, vpns) -> bool:
    """Bulk CoW break for a run of write-blocked pages — the lookahead
    :meth:`AddressSpace.write_run` offers before per-fault dispatch.

    Commits only when EVERY vpn is a clean ShareNote write-break whose
    restored permissions allow the write; anything else (foreign notes,
    genuinely read-only pages, imminent frame exhaustion, chaos, a
    tracer, non-integral costs) returns False with no state touched,
    and the per-op loop reproduces the exact fault/exception sequence.

    Simulated-identical to faulting the pages one at a time in order:
    fault and page-copy charges are batched as sum-equal pre-rounded
    advances; frame allocation and refcount evolution follow the same
    vpn order (no frame can be freed mid-run — every frame this path
    decrefs is still referenced by the other side of the share); the
    counters and observability records are pure sums plus a last-value
    gauge.
    """
    machine = space.machine
    if not _perf.ENABLED or machine.tracer is not None \
            or machine.chaos.enabled or machine.num_cpus > 1:
        return False  # SMP per-op dispatch serializes on the fault lock
    costs = machine.costs
    config = machine.config
    fault_ns = costs.page_fault_ns
    scan_ns = costs.page_scan_ns(config.page_size, config.granule)
    per_cap = costs.cap_relocate_ns
    if fault_ns != int(fault_ns) or scan_ns != int(scan_ns) \
            or per_cap != int(per_cap):
        return False
    req = AccessKind.WRITE._req_bits
    note_of = space.note_of
    breaks = []
    for vpn in vpns:
        note = note_of(vpn)
        if not isinstance(note, ShareNote):
            return False
        if (int(note.orig_perms) & req) != req:
            return False  # the write still faults after the break
        breaks.append((vpn, note))
    phys = machine.phys
    frame_of = space.frame_of
    refcount = phys.refcount
    pending: Dict[int, int] = {}
    copies = []  # (vpn, note, src_frame)
    solos = []   # (vpn, note, frame) — already sole owner, no copy
    for vpn, note in breaks:
        frame = frame_of(vpn)
        if refcount(frame) - pending.get(frame, 0) > 1:
            pending[frame] = pending.get(frame, 0) + 1
            copies.append((vpn, note, frame))
        else:
            solos.append((vpn, note, frame))
    if copies and phys.free_frames() < len(copies):
        return False  # per-op dispatch reproduces the exact mid-OOM state
    count = len(breaks)
    machine.charge(int(fault_ns) * count, "page_fault")
    counters = machine.counters
    counters.add(AccessKind.WRITE._fault_counter, count)
    obs = machine.obs
    obs_on = obs.enabled
    if obs_on:
        obs.count(AccessKind.WRITE._fault_obs, count)
        obs.count("trace.page_fault", count)
    if copies:
        dsts = phys.copy_frames([item[2] for item in copies],
                                preserve_tags=True)
        counters.add("fork_page_copies", len(copies))
        # child-role copies still hold parent-region capabilities:
        # relocate per region pair through the fork content memo
        by_regions: Dict[RegionPair, Tuple[list, list]] = {}
        for (vpn, note, src), dst in zip(copies, dsts):
            if note.role == "child":
                group = by_regions.setdefault(note.regions, ([], []))
                group[0].append(src)
                group[1].append(dst)
        for regions, (srcs, dst_group) in by_regions.items():
            relocate_copied_frames(machine, phys, srcs, dst_group,
                                   regions)
        privatize = space.privatize_page
        decref = phys.decref
        for (vpn, note, src), dst in zip(copies, dsts):
            decref(src)  # never frees: the share's peer still holds it
            privatize(vpn, note.orig_perms, dst, decref_old=False)
    for vpn, note, frame in solos:
        if note.role == "child":
            # last sharer: private already, but may still hold
            # parent-region capabilities needing relocation
            relocate_frame(machine, phys.frame(frame), note.regions)
        space.privatize_page(vpn, note.orig_perms)
    parent_breaks = sum(1 for _vpn, note in breaks
                        if note.role == "parent")
    child_breaks = count - parent_breaks
    if parent_breaks:
        counters.add("fork_parent_cow_break", parent_breaks)
    if child_breaks:
        counters.add("fork_child_break_write", child_breaks)
    if obs_on:
        tallies: Dict[str, int] = {}
        for _vpn, note in breaks:
            side = "parent" if note.role == "parent" else "child"
            key = (f"core.strategies.{note.strategy.value}"
                   f".break.{side}.write")
            tallies[key] = tallies.get(key, 0) + 1
        for key, value in tallies.items():
            obs.count(key, value)
        obs.count("trace.cow_break", count)
    return True


def _make_private(space: AddressSpace, vpn: int,
                  relocate: bool, note: ShareNote) -> None:
    """Give this mapping a private frame (copying if still shared) and
    restore its original permissions."""
    machine = space.machine
    phys = machine.phys
    frame = space.frame_of(vpn)
    if phys.refcount(frame) > 1:
        new_frame = phys.cow_copy(frame)
        if relocate:
            relocate_frame(machine, phys.frame(new_frame), note.regions)
        space.privatize_page(vpn, note.orig_perms, new_frame)
        machine.counters.add("fork_page_copies")
        return
    if relocate:
        # Last sharer (peer exited/copied): the frame is now private but
        # may still hold parent-region capabilities needing relocation.
        relocate_frame(machine, phys.frame(frame), note.regions)
    space.privatize_page(vpn, note.orig_perms)


def resolve_all_pending(space: AddressSpace, region_base: int,
                        region_top: int) -> int:
    """Force-resolve every still-shared *child-role* page of a region.

    μFork calls this on a process about to fork again while some of its
    own pages are still shared with *its* parent: stabilizing the image
    first keeps relocation a single-hop rebase.
    """
    machine = space.machine
    page = machine.config.page_size
    lo = region_base // page
    hi = (region_top + page - 1) // page
    resolved = 0
    for vpn, note in space.noted_items():
        if lo <= vpn < hi and isinstance(note, ShareNote) \
                and note.role == "child":
            machine.charge(machine.costs.page_fault_ns, "page_fault")
            _make_private(space, vpn, relocate=True, note=note)
            resolved += 1
    if resolved:
        machine.obs.count("core.strategies.resolved_pending_pages",
                          resolved)
    return resolved


def iter_share_notes(space: AddressSpace):
    """Yield ``(vpn, pte, note)`` for every still-shared page.

    Audit hook for the conformance invariants: a consistent kernel
    never leaves a :class:`ShareNote` whose frame has been freed, whose
    role is unknown, or whose restored permissions would be *narrower*
    than the current ones (sharing only ever removes permissions).

    Both representations yield ascending vpn order: the flat table
    serves the walk from its exact sparse note dict, the
    self-contained table from a full (sorted) page-table scan — the
    audited set is identical either way.
    """
    for vpn, note in space.noted_items():
        if isinstance(note, ShareNote):
            pte = space.page_table.get(vpn)
            if pte is not None:
                yield vpn, pte, note

"""MonolithicOS: the CheriBSD-like multi-address-space baseline.

The paper compares μFork against "a classical POSIX fork on a
CHERI-enabled FreeBSD" (§5).  The behaviours that matter to the
comparison, all modeled mechanistically:

* each process owns an **address space**; fork duplicates the page
  table entry-by-entry (cost scales with mapped pages — the Fig 4
  growth) and marks writable pages copy-on-write;
* no relocation is ever needed — parent and child share virtual
  addresses — so plain CoW is safe (the child reads shared pages
  freely);
* syscalls **trap** (higher fixed entry cost than sealed-gate entry),
  and context switches across address spaces flush the TLB;
* processes link against **shared libraries**: text pages shared
  machine-wide, plus per-process private pages for relocations/PLT and
  dynamic-linker state (why a minimal CheriBSD process is heavier in
  Fig 8);
* the pure-capability userland **allocator re-touches a fraction of the
  used heap in the child** after fork (arena and revocation-bitmap
  bookkeeping).  The paper itself flags this: a forked Redis child
  consumes 56 MB on CheriBSD vs 7 MB on aarch64 Linux, "likely
  something which can be reduced with further optimization" (§5.1).
  The fraction is a documented calibration knob.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.cheri.capability import Capability, Perm
from repro.core.relocate import record_flow
from repro.core.uprocess import (
    init_image_contents,
    initial_registers,
    make_heap_allocator,
    map_image_segments,
)
from repro.hw.paging import AccessKind, AddressSpace, PagePerm
from repro.kernel.base import AbstractOS, SharedMemoryObject
from repro.kernel.fdtable import FDTable
from repro.kernel.syscalls import IsolationConfig
from repro.kernel.task import Process
from repro.machine import Machine
from repro.mem.layout import ProgramImage, SegmentMap

#: every process is loaded at the same base address (no relocation ever)
PROCESS_BASE = 0x0000_0000_0040_0000

#: shared-library text/rodata mapped into every process (libc & friends)
SHARED_LIB_PAGES = 80
#: per-process private library state: GOT/PLT relocations, ld-elf data,
#: locale tables, jemalloc bootstrap arenas
PRIVATE_LIB_PAGES = 28


def handle_cow_fault(space: AddressSpace, vaddr: int,
                     kind: AccessKind) -> bool:
    """Classic copy-on-write break (no relocation: same VA both sides)."""
    if kind is not AccessKind.WRITE:
        return False
    machine = space.machine
    # PTE state is shared between parent and child; on SMP the break
    # runs under the fault spinlock (free at 1 CPU).
    with machine.locks.fault.held():
        vpn = vaddr // machine.config.page_size
        pte = space.page_table.get(vpn)
        if pte is None or not pte.cow:
            return False
        if machine.phys.refcount(pte.frame) > 1:
            new_frame = machine.phys.copy_frame(pte.frame, preserve_tags=True)
            space.replace_frame(vpn, new_frame)
            machine.counters.add("cow_page_copies")
        machine.obs.count("baselines.monolithic.cow_breaks")
        pte.perms |= PagePerm.WRITE
        pte.cow = False
        return True


class MonolithicOS(AbstractOS):
    """CheriBSD-like baseline."""

    kind = "cheribsd"

    KERNEL_PROC_OVERHEAD = 96 * 1024

    #: fraction of used heap pages the child's allocator re-touches
    #: after fork (see module docstring)
    allocator_child_touch_fraction = 0.55

    #: fixed fork-path cost; subclasses (lighter kernels) may override
    FORK_FIXED_ATTR = "monolithic_fork_fixed_ns"
    #: whether processes link shared libraries (unikernel-style
    #: subclasses are statically linked)
    MAPS_LIBRARIES = True

    def __init__(self, machine: Optional[Machine] = None,
                 isolation: Optional[IsolationConfig] = None,
                 trapless_syscalls: bool = False) -> None:
        super().__init__(
            machine=machine,
            trapless_syscalls=trapless_syscalls,
            isolation=isolation or IsolationConfig.full(),
            same_address_space=False,
        )
        self.kernel_root = Capability.root(self.machine.config.va_size)
        #: shared library frames (allocated on first spawn, refcounted
        #: into every process)
        self._lib_frames: List[int] = []
        #: the syscall gate concept does not exist here; processes trap
        self.syscall_gate = None

    # ------------------------------------------------------------------
    # AbstractOS interface
    # ------------------------------------------------------------------

    def space_of(self, proc: Process) -> AddressSpace:
        return proc.space

    def spawn(self, image: ProgramImage, name: str) -> Process:
        machine = self.machine
        page = machine.config.page_size

        space = AddressSpace(machine, f"as-{name}")
        space.fault_handler = handle_cow_fault
        layout = SegmentMap(image, PROCESS_BASE, page)

        proc = Process(self.pids.allocate(), name)
        proc.space = space
        proc.layout = layout
        proc.fdtable = FDTable()

        map_image_segments(machine, space, layout)
        if self.MAPS_LIBRARIES:
            lib_top = self._map_libraries(space, layout.region_top)
        else:
            lib_top = layout.region_top
        proc.region_base = layout.region_base
        proc.region_top = lib_top

        region_cap = (
            self.kernel_root
            .set_bounds(layout.region_base, lib_top - layout.region_base)
            .without_perms(Perm.SYSTEM | Perm.SEAL | Perm.UNSEAL)
            .with_cursor(layout.region_base)
        )
        init_image_contents(machine, space, layout, region_cap)
        proc.allocator = make_heap_allocator(machine, space, layout,
                                             region_cap)

        task = proc.add_task()
        for reg_name, value in initial_registers(layout, region_cap).items():
            task.registers.set(reg_name, value)
        self.procs.add(proc)
        self.sched.add(task)
        record_flow(machine, "spawn", 0, proc.pid,
                    proc.region_base, proc.region_top)
        return proc

    def _map_libraries(self, space: AddressSpace, base: int) -> int:
        """Map shared-library text (machine-wide frames) plus private
        library data pages; returns the new region top."""
        machine = self.machine
        page = machine.config.page_size
        if not self._lib_frames:
            self._lib_frames = [
                machine.phys.alloc(zero=True, charge=False)
                for _ in range(SHARED_LIB_PAGES)
            ]
        vpn = base // page
        for frame in self._lib_frames:
            space.map_page(vpn, frame, PagePerm.rx(), incref=True)
            vpn += 1
        for _ in range(PRIVATE_LIB_PAGES):
            frame = machine.phys.alloc(zero=True, charge=False)
            space.map_page(vpn, frame, PagePerm.rwc())
            vpn += 1
        return vpn * page

    # ------------------------------------------------------------------
    # fork: page-table duplication + classic CoW
    # ------------------------------------------------------------------

    def fork(self, proc: Process) -> Process:
        """Classic fork: duplicate the page table entry-by-entry and
        mark writable pages CoW.  Observability: phases run inside
        ``fixed`` / ``pte_copy`` / ``registers`` / ``allocator`` spans
        under the caller's ``syscall.fork`` span."""
        machine = self.machine
        with machine.locks.fork.held():
            return self._fork_locked(proc)

    def _fork_locked(self, proc: Process) -> Process:
        machine = self.machine
        obs = machine.obs
        with obs.span("fixed"):
            machine.charge(getattr(machine.costs, self.FORK_FIXED_ATTR),
                           "fork_fixed")

        child = Process(self.pids.allocate(), proc.name, parent=proc)
        child.layout = proc.layout
        child.region_base = proc.region_base
        child.region_top = proc.region_top
        child.fdtable = proc.fdtable.fork_copy(machine)
        from repro.kernel import signals as _signals
        child.signal_state = _signals.signal_state(proc).fork_copy()

        child_space = AddressSpace(machine, f"as-{proc.name}-{child.pid}")
        child_space.fault_handler = handle_cow_fault
        shm_vpns = getattr(proc, "shm_vpns", set())
        with obs.span("pte_copy"):
            for vpn, pte in list(proc.space.page_table.entries()):
                machine.charge(machine.costs.pte_copy_ns, "fork_pte_copy")
                writable = bool(pte.perms & PagePerm.WRITE)
                if vpn in shm_vpns:
                    # MAP_SHARED memory survives fork shared and
                    # writable on both sides (POSIX): same frames, no
                    # copy-on-write
                    child_space.map_page(vpn, pte.frame, pte.perms,
                                         incref=True)
                elif writable:
                    # mark both sides CoW
                    pte.perms &= ~PagePerm.WRITE
                    pte.cow = True
                    child_space.map_page(vpn, pte.frame,
                                         pte.perms, incref=True, cow=True)
                else:
                    child_space.map_page(vpn, pte.frame, pte.perms,
                                         incref=True, cow=pte.cow)
        child.space = child_space
        # shared-memory bindings carry over (same VAs: no rebase needed)
        child.shm_vpns = set(shm_vpns)
        child.shm_bindings = list(getattr(proc, "shm_bindings", []))
        child.mmap_offset = getattr(proc, "mmap_offset", 0)

        # §2.2: the monolithic kernel tracks no per-process CPU
        # footprint, so after write-protecting the parent's pages it
        # must conservatively broadcast the shootdown to every other
        # online CPU — the cost that makes classic fork scale with core
        # count while μFork's footprint-bounded variant does not.
        if machine.num_cpus > 1:
            machine.tlb_shootdown(range(machine.num_cpus),
                                  reason="fork_cow")

        # registers copy verbatim: identical virtual addresses
        task = child.add_task()
        with obs.span("registers"):
            task.registers.copy_from(proc.main_task().registers)

        with obs.span("allocator"):
            child.allocator = type(proc.allocator)(
                machine, child_space, proc.allocator.heap_cap,
                max_blocks=proc.allocator.max_blocks,
            )
            child.allocator.attach_lazy()
        #: deferred allocator arena re-touch (runs when the child starts)
        child._pending_allocator_touch = True

        self.procs.add(child)
        self.sched.add(task)
        machine.counters.add("fork")
        obs.count("baselines.monolithic.forks")
        record_flow(machine, "fork", proc.pid, child.pid,
                    child.region_base, child.region_top, "monolithic")
        return child

    def syscall(self, proc: Process, name: str, *args: Any,
                gate: Optional[Capability] = None) -> Any:
        if getattr(proc, "_pending_allocator_touch", False):
            proc._pending_allocator_touch = False
            self._child_allocator_touch(proc)
        return super().syscall(proc, name, *args, gate=gate)

    def _child_allocator_touch(self, proc: Process) -> None:
        """The pure-capability allocator's post-fork bookkeeping: write
        to a fraction of the used heap pages, breaking their CoW."""
        machine = self.machine
        page = machine.config.page_size
        allocator = proc.allocator
        used = allocator.used_bytes()
        used_pages = used // page
        touch = int(used_pages * self.allocator_child_touch_fraction)
        if touch <= 0:
            return
        data_base = allocator.data_base
        touched = 0
        for step in range(touch):
            index = step * used_pages // touch
            vpn = (data_base + index * page) // page
            pte = proc.space.page_table.get(vpn)
            if pte is None or not pte.cow:
                continue
            # the allocator writes bookkeeping words into the page: one
            # CoW fault + private copy (tag-preserving, like hardware)
            machine.charge(machine.costs.page_fault_ns, "page_fault")
            if machine.phys.refcount(pte.frame) > 1:
                new_frame = machine.phys.copy_frame(pte.frame,
                                                    preserve_tags=True)
                proc.space.replace_frame(vpn, new_frame)
                machine.counters.add("cow_page_copies")
            pte.perms |= PagePerm.WRITE
            pte.cow = False
            touched += 1
        machine.counters.add("allocator_touch_pages", touched)
        machine.obs.count("baselines.monolithic.allocator_touch_pages",
                          touched)

    # ------------------------------------------------------------------
    # Exit / metrics
    # ------------------------------------------------------------------

    def _teardown_memory(self, proc: Process) -> None:
        machine = self.machine
        machine.charge(machine.costs.monolithic_exit_ns, "exit")
        for vpn in list(proc.space.page_table.vpns()):
            proc.space.unmap_page(vpn)

    def memory_of(self, proc: Process) -> float:
        return (
            proc.space.resident_bytes(0, self.machine.config.va_size,
                                      proportional=True)
            + self.KERNEL_PROC_OVERHEAD
        )

    def private_bytes(self, proc: Process) -> int:
        page = self.machine.config.page_size
        total = 0
        for _vpn, pte in proc.space.page_table.entries():
            if self.machine.phys.refcount(pte.frame) == 1:
                total += page
        return total

    # ------------------------------------------------------------------
    # Shared memory
    # ------------------------------------------------------------------

    def _map_shared(self, proc: Process, shm: SharedMemoryObject) -> Capability:
        page = self.machine.config.page_size
        offset = getattr(proc, "mmap_offset", 0)
        window_base, window_top = proc.layout.span("mmap")
        base = window_base + offset
        size = shm.size_pages * page
        if base + size > window_top:
            from repro.errors import OutOfMemory
            raise OutOfMemory("mmap window exhausted")
        proc.mmap_offset = offset + size
        vpns = []
        for index, frame in enumerate(shm.frames):
            vpn = base // page + index
            proc.space.map_page(vpn, frame, PagePerm.rwc(), incref=True)
            vpns.append(vpn)
        if not hasattr(proc, "shm_vpns"):
            proc.shm_vpns = set()
            proc.shm_bindings = []
        proc.shm_vpns.update(vpns)
        proc.shm_bindings.append((base - window_base, shm))
        # like the SASOS kernels, shared windows are a capability
        # firewall: data flows, tagged authority does not
        return (
            self.kernel_root
            .set_bounds(base, size)
            .with_cursor(base)
            .and_perms(Perm.data_rw())
            .without_perms(Perm.LOAD_CAP | Perm.STORE_CAP)
        )

"""The per-machine observability facade and the global session.

An :class:`Observability` instance hangs off every
:class:`~repro.machine.Machine` as ``machine.obs``.  It is **disabled by
default**: instrumentation points throughout the simulator call
``machine.obs.count/gauge_set/observe/span`` unconditionally, and while
disabled each call is a single attribute check (the same contract as
``machine.trace``) that records nothing.  Nothing in this module ever
advances the simulated clock, so enabling observability cannot change
any simulated result.

When enabled, the facade installs itself as the clock's observer: every
``clock.advance(ns, bucket)`` is mirrored as a ``time.<bucket>`` counter
and attributed to the innermost open span, which is how the span tree's
total stays equal to the observed clock time.

Usage::

    machine = Machine()
    machine.obs.enable()
    ... run a workload ...
    machine.obs.registry.counters()["time.page_copy"]
    print(machine.obs.format_report())
    machine.obs.export()            # the JSON schema in docs/OBSERVABILITY.md

or, to observe every machine an experiment creates::

    with obs_session() as session:
        rows = fig8_hello_fork()
    session.export()                # merged across all machines
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanNode, SpanTree, format_span_tree

SCHEMA = "repro.obs/v1"


class _NullSpan:
    """The shared no-op context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: opens a tree node on enter, records its simulated
    duration into the ``span.<path>`` histogram on exit."""

    __slots__ = ("_obs", "_name", "_node", "_start_ns")

    def __init__(self, obs: "Observability", name: str) -> None:
        self._obs = obs
        self._name = name

    def __enter__(self) -> "_Span":
        self._node = self._obs.span_tree.open(self._name)
        self._start_ns = self._obs.clock.now_ns
        return self

    def __exit__(self, *exc: Any) -> None:
        elapsed = self._obs.clock.now_ns - self._start_ns
        self._obs.span_tree.close(self._node)
        self._obs.registry.histogram(f"span.{self._node.path}") \
            .observe(elapsed)


class Observability:
    """Metrics registry + span profiler for one machine.

    All recording methods are no-ops while ``enabled`` is False, and
    none of them ever charges simulated time.
    """

    def __init__(self, clock: Optional[Any] = None,
                 enabled: bool = False) -> None:
        self.clock = clock
        self.registry = MetricsRegistry()
        self.span_tree = SpanTree()
        self.enabled = False
        #: clock reading when observation started (export invariant:
        #: ``span tree total == clock_ns - enabled_at_ns``)
        self.enabled_at_ns = 0
        if enabled:
            self.enable()

    # -- switching -------------------------------------------------------

    def enable(self) -> "Observability":
        """Start observing (idempotent); hooks the clock observer."""
        if self.clock is None:
            raise RuntimeError("cannot enable an Observability built "
                               "without a clock")
        if not self.enabled:
            self.enabled = True
            self.enabled_at_ns = self.clock.now_ns
            self.clock.observer = self._on_advance
        return self

    def disable(self) -> None:
        """Stop observing; recorded data stays readable."""
        if self.enabled:
            self.enabled = False
            self.clock.observer = None

    # -- recording (all no-ops while disabled) ---------------------------

    def _on_advance(self, ns: int, bucket: Optional[str]) -> None:
        self.span_tree.attribute(ns)
        if bucket is not None:
            self.registry.counter(f"time.{bucket}").inc(ns)

    def span(self, name: str):
        """Open a profiling span; nanoseconds advanced inside are
        attributed to it (see :mod:`repro.obs.spans`)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def count(self, name: str, n: int = 1) -> None:
        """Increment the counter ``name`` by ``n``."""
        if self.enabled:
            self.registry.counter(name).inc(n)

    def gauge_set(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value``."""
        if self.enabled:
            self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        if self.enabled:
            self.registry.histogram(name).observe(value)

    # -- reporting -------------------------------------------------------

    def export(self) -> Dict:
        """The machine's full observability state as a JSON-ready dict
        (schema documented in docs/OBSERVABILITY.md)."""
        clock_ns = self.clock.now_ns if self.clock is not None else 0
        return {
            "schema": SCHEMA,
            "clock_ns": clock_ns,
            "observed_ns": clock_ns - self.enabled_at_ns,
            "metrics": self.registry.export(),
            "spans": self.span_tree.root.export(),
        }

    def format_report(self) -> str:
        """Human-readable span breakdown plus counter/gauge listing."""
        lines = [format_span_tree(self.span_tree.root)]
        counters = self.registry.counters()
        if counters:
            lines.append("")
            width = max(len(name) for name in counters)
            lines.extend(f"{name:<{width}}  {value:,}"
                         for name, value in counters.items())
        gauges = self.registry.gauges()
        if gauges:
            lines.append("")
            width = max(len(name) for name in gauges)
            lines.extend(f"{name:<{width}}  {value:,}"
                         for name, value in gauges.items())
        return "\n".join(lines)

    def reset(self) -> None:
        """Discard all recorded data (observation state unchanged)."""
        self.registry.reset()
        self.span_tree.reset()
        if self.clock is not None:
            self.enabled_at_ns = self.clock.now_ns


#: the permanently disabled instance used where no machine exists yet
NULL_OBS = Observability(clock=None, enabled=False)


# ---------------------------------------------------------------------------
# Global sessions: observe every Machine created inside a with-block
# ---------------------------------------------------------------------------

_ACTIVE_SESSION: Optional["ObsSession"] = None


class ObsSession:
    """Collects (and auto-enables) the machines created while active.

    Experiments boot one hermetic machine per measured configuration;
    a session lets the harness observe all of them and export one
    merged per-figure sidecar (see :func:`merge_exports`).
    """

    def __init__(self) -> None:
        self.observabilities: List[Observability] = []

    def adopt(self, obs: Observability) -> None:
        obs.enable()
        self.observabilities.append(obs)

    def export(self) -> Dict:
        from repro.obs.export import merge_exports
        return merge_exports([obs.export() for obs in self.observabilities])


@contextmanager
def obs_session() -> Iterator[ObsSession]:
    """Observe every machine created inside the block."""
    global _ACTIVE_SESSION
    previous = _ACTIVE_SESSION
    session = ObsSession()
    _ACTIVE_SESSION = session
    try:
        yield session
    finally:
        _ACTIVE_SESSION = previous


def session_adopt(obs: Observability) -> None:
    """Machine construction hook: enlist in the active session, if any."""
    if _ACTIVE_SESSION is not None:
        _ACTIVE_SESSION.adopt(obs)

"""Plain-text rendering of experiment results.

Each experiment returns a list of row dicts; these helpers render them
as the aligned tables EXPERIMENTS.md and the benchmark output use.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_value(row.get(col, "")) for col in columns]
             for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(cell.rjust(widths[i])
                               for i, cell in enumerate(line)))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, Any]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None) -> None:
    print(format_table(rows, columns, title))


def human_size(num_bytes: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(num_bytes) < 1024:
            return f"{num_bytes:.0f}{unit}"
        num_bytes /= 1024
    return f"{num_bytes:.1f}TB"

"""Transactional-restore tier: kill restore at every phase boundary and
prove the target kernel is exactly as it was — no leaked frames, VA
reservations, PIDs, PTEs or half-populated fd tables — then show the
very same blob restores once the chaos clears (retriability).

The corruption matrix at the bottom is the adversarial half
(docs/SECURITY.md): every manifest field and payload byte-region is
tampered with in turn, and each tampered blob must fail restore with a
*typed* error — never restore, and never perturb the target kernel."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.chaos import ChaosEngine, FaultMix, InjectedRestoreFailure
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.snapshot import checkpoint, restore
from repro.snapshot.engine import SnapshotError
from repro.snapshot.format import (MAGIC, SnapshotFormatError, decode,
                                   dumps_manifest)

ABORT_POINTS = [
    "core.snapshot.abort.reserve",
    "core.snapshot.abort.pages",
    "core.snapshot.abort.registers",
    "core.snapshot.abort.allocator",
]


def make_blob(seed=7):
    """A donor machine produces the blob, then is torn down."""
    machine = Machine(seed=seed)
    os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "donor"))
    cap = ctx.malloc(128)
    ctx.store(cap, b"precious snapshot state")
    ctx.store_cap(cap, cap, offset=48)
    ctx.set_reg("c19", cap)
    blob = checkpoint(os_, ctx.proc)
    ctx.exit(0)
    return blob


def boot_target(spec, seed=7):
    machine = Machine(seed=seed)
    machine.obs.enable()
    engine = ChaosEngine(seed=seed, mix=FaultMix.parse(spec))
    engine.attach(machine)
    with engine.paused():
        os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "resident"))
    return os_, ctx, engine


def kernel_snapshot(os_):
    """Everything a leaky restore could perturb."""
    machine = os_.machine
    ptes = {
        vpn: (pte.frame, pte.perms, machine.phys.refcount(pte.frame))
        for vpn, pte in os_.space.page_table.entries()
    }
    return {
        "frames": machine.phys.allocated_frames,
        "ptes": ptes,
        "reserved": sorted(os_.vspace.reserved_areas()),
        "alive_pids": sorted(p.pid for p in os_.procs.alive()),
    }


@pytest.mark.parametrize("point", ABORT_POINTS,
                         ids=lambda p: p.rsplit(".", 1)[-1])
def test_abort_at_every_boundary_leaks_nothing(point):
    blob = make_blob()
    os_, ctx, engine = boot_target(spec=f"{point}=1.0")
    before = kernel_snapshot(os_)

    with pytest.raises(InjectedRestoreFailure):
        restore(os_, blob)

    assert kernel_snapshot(os_) == before
    assert os_.machine.counters.snapshot().get("restore_rollbacks") == 1
    counters = os_.machine.obs.registry.counters()
    assert counters["core.snapshot.restore_rollbacks"] == 1
    assert engine.recovered.get(point) == 1

    # with the chaos cleared, the very same blob restores and runs
    engine.disable()
    restored = GuestContext(os_, restore(os_, blob))
    cap = restored.reg("c19")
    assert restored.load(cap, 23) == b"precious snapshot state"
    assert restored.load_cap(cap, offset=48).base == cap.base
    restored.exit(0)
    ctx.exit(0)


def test_alloc_failure_mid_page_loop_rolls_back():
    """Frame exhaustion *inside* the page-materialization loop (not at a
    phase boundary) also rolls back fully, and surfaces wrapped as the
    retriable InjectedRestoreFailure."""
    blob = make_blob()
    os_, ctx, engine = boot_target(spec="default=0.0")
    before = kernel_snapshot(os_)
    engine.mix = FaultMix.parse("hw.phys.alloc_fail=0.2")

    with pytest.raises(InjectedRestoreFailure) as excinfo:
        restore(os_, blob)
    assert excinfo.value.__cause__ is not None
    assert excinfo.value.retriable

    engine.mix = FaultMix.parse("default=0.0")
    assert kernel_snapshot(os_) == before
    ctx.exit(0)


def test_disabled_chaos_restores_bit_identically():
    """With injection disabled, the instrumented restore path must be
    byte-identical to a run on a chaos-free machine."""
    blob = make_blob()

    def run(attach_engine):
        machine = Machine(seed=7)
        machine.obs.enable()
        if attach_engine:
            ChaosEngine(seed=7, mix=FaultMix.parse("default=0.5"),
                        enabled=False).attach(machine)
        os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
        restored = GuestContext(os_, restore(os_, blob))
        cap = restored.reg("c19")
        assert restored.load(cap, 23) == b"precious snapshot state"
        restored.exit(0)
        from repro.obs import to_json
        return to_json(machine.obs.export())

    assert run(attach_engine=False) == run(attach_engine=True)


# ---------------------------------------------------------------------------
# The corruption matrix: tampered blobs fail typed, roll back fully
# ---------------------------------------------------------------------------

def _reencode(blob, mutate):
    """Decode, let ``mutate`` deface the manifest/payload, re-assemble.

    Assembles the blob by hand (not through ``encode``, which has its
    own validation) — an attacker gets to write arbitrary bytes."""
    import struct

    manifest, payload = decode(blob)
    payload = bytearray(payload)
    out = mutate(manifest, payload)
    if out is not None:
        manifest, payload = out
    body = dumps_manifest(manifest)
    return MAGIC + struct.pack("<I", len(body)) + body + bytes(payload)


def _set_schema(m, _p):
    m["schema"] = "repro.snapshot/v999"


def _drop_page_field(m, _p):
    del m["pages"][0]["vpn"]


def _widen_cap_length(m, _p):
    for entry in m["pages"]:
        if entry["caps"]:
            entry["caps"][0][2] += 1 << 32
            return
    raise AssertionError("blob has no capability records to tamper")


def _grant_cap_system(m, _p):
    from repro.cheri.capability import Perm
    for entry in m["pages"]:
        if entry["caps"]:
            entry["caps"][0][4] |= int(Perm.SYSTEM)
            return
    raise AssertionError("blob has no capability records to tamper")


def _escape_cap_region(m, _p):
    for entry in m["pages"]:
        if entry["caps"]:
            entry["caps"][0][1] = m["region_top"]
            return
    raise AssertionError("blob has no capability records to tamper")


def _forge_register_sentry(m, _p):
    from repro.cheri.capability import OTYPE_SENTRY
    for record in m["registers"]:
        if record[1] == "cap" and record[-1]:
            record[6] = OTYPE_SENTRY    # a sentry the kernel never sealed
            return
    raise AssertionError("blob has no valid capability register record")


def _truncate_payload(m, p):
    return m, p[:-1]


def _extend_payload(m, p):
    return m, p + b"\x00"


CORRUPTIONS = [
    ("magic", SnapshotFormatError,
     lambda blob: b"\x00" + blob[1:]),
    ("manifest-length", SnapshotFormatError,
     lambda blob: blob[:8] + b"\xff\xff\xff\x0f" + blob[12:]),
    ("manifest-json", SnapshotFormatError,
     lambda blob: blob[:12] + b"\xff" + blob[13:]),
    ("schema", SnapshotFormatError,
     lambda blob: _reencode(blob, _set_schema)),
    ("page-record-field", SnapshotFormatError,
     lambda blob: _reencode(blob, _drop_page_field)),
    ("cap-length-widened", SnapshotFormatError,
     lambda blob: _reencode(blob, _widen_cap_length)),
    ("cap-system-perm", SnapshotFormatError,
     lambda blob: _reencode(blob, _grant_cap_system)),
    ("cap-escapes-region", SnapshotFormatError,
     lambda blob: _reencode(blob, _escape_cap_region)),
    ("register-sentry-forged", SnapshotFormatError,
     lambda blob: _reencode(blob, _forge_register_sentry)),
    ("payload-truncated", SnapshotFormatError,
     lambda blob: _reencode(blob, _truncate_payload)),
    ("payload-extended", SnapshotFormatError,
     lambda blob: _reencode(blob, _extend_payload)),
    ("geometry-granule", SnapshotError,
     lambda blob: _reencode(
         blob, lambda m, _p: m.__setitem__("granule", 8))),
    # a lying page_size is caught even earlier: the payload no longer
    # matches what the manifest promises, so decode refuses the blob
    ("geometry-page-size", SnapshotFormatError,
     lambda blob: _reencode(
         blob, lambda m, _p: m.__setitem__("page_size", 1024))),
]


@pytest.mark.parametrize("label,error,corrupt",
                         CORRUPTIONS, ids=[c[0] for c in CORRUPTIONS])
def test_tampered_blob_fails_typed_and_rolls_back(label, error, corrupt):
    """Each corruption must surface as its declared error type, mint no
    authority, and leave the target kernel bit-exactly untouched."""
    blob = make_blob()
    tampered = corrupt(blob)
    assert tampered != blob
    os_, ctx, _engine = boot_target(spec="default=0.0")
    before = kernel_snapshot(os_)

    with pytest.raises(error):
        restore(os_, tampered)

    assert kernel_snapshot(os_) == before
    # the pristine blob still restores on the very same target
    restored = GuestContext(os_, restore(os_, blob))
    cap = restored.reg("c19")
    assert restored.load(cap, 23) == b"precious snapshot state"
    restored.exit(0)
    ctx.exit(0)


def test_incremental_apply_rejects_tampered_caps_too():
    """``restore_into`` (the cluster-migration path) runs the same
    upfront manifest validation as a full restore: a capability record
    granting SYSTEM never reaches the target μprocess."""
    from repro.snapshot import checkpoint
    from repro.snapshot.engine import restore_into

    machine = Machine(seed=7)
    os_ = UForkOS(machine=machine, copy_strategy=CopyStrategy.COPA)
    ctx = GuestContext(os_, os_.spawn(hello_world_image(), "zygote"))
    donor = ctx.fork()
    buf = donor.malloc(64)
    donor.store(buf, b"divergent")
    blob = checkpoint(os_, donor.proc, incremental=True)
    target = ctx.fork()
    before = kernel_snapshot(os_)

    with pytest.raises(SnapshotFormatError):
        restore_into(os_, target.proc,
                     _reencode(blob, _grant_cap_system))

    assert kernel_snapshot(os_) == before
    assert restore_into(os_, target.proc, blob) >= 1
    donor.exit(0)
    target.exit(0)


def test_geometry_error_carries_einval():
    blob = _reencode(make_blob(),
                     lambda m, _p: m.__setitem__("granule", 8))
    os_, ctx, _engine = boot_target(spec="default=0.0")
    with pytest.raises(SnapshotError) as excinfo:
        restore(os_, blob)
    assert excinfo.value.errno_name == "EINVAL"
    ctx.exit(0)

#!/usr/bin/env python3
"""Nginx multi-worker deployment: fork for concurrency.

Reproduces the paper's Nginx use-case (U5): the master forks long-
lived workers that share the listening socket and serve requests.
Shows a real request flowing through the simulated socket stack, then
the modeled worker-count throughput of Fig 7.

Run:  python examples/nginx_workers.py
"""

from repro.api import Session
from repro.apps.nginx import MiniNginx, WrkClient, nginx_image
from repro.harness.experiments import fig7_nginx_throughput
from repro.harness.report import print_table


def main() -> None:
    session = Session(os="ufork", seed=0).boot()
    master = session.spawn(nginx_image(), "nginx")
    server = MiniNginx(master)
    workers = server.fork_workers(3)
    print(f"master pid={master.pid} forked "
          f"{len(workers)} workers: {[w.pid for w in workers]}")
    print("workers inherited the listening socket via the duplicated "
          "fd table\n")

    wrk = WrkClient(session.spawn(nginx_image(), "wrk"))
    for index, worker in enumerate(workers):
        fd = wrk.issue()
        stats = server.serve_one(worker)
        response = wrk.complete(fd)
        print(f"worker {worker.pid} served request {index}: "
              f"{len(response)}B response, "
              f"{stats.cpu_ns / 1000:.1f} us cpu + "
              f"{stats.io_wait_ns / 1000:.1f} us io wait")

    server.shutdown()
    print("\nworkers reaped; modeled throughput (Fig 7):")
    print_table(fig7_nginx_throughput())
    print("\nExtra workers help even on one core — they yield during "
          "device I/O (paper: +15.6% from 1 to 3 workers).")


if __name__ == "__main__":
    main()

"""Per-process file descriptor tables.

POSIX fork duplicates the parent's descriptor table: the child's fds
refer to the *same open file descriptions* (shared offsets, shared pipe
ends).  :meth:`FDTable.fork_copy` reproduces that, charging the per-fd
duplication cost that contributes to fork latency.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import BadFileDescriptor


class FileDescription:
    """An open file description (the thing fds point at).

    ``obj`` is the underlying kernel object; it must provide
    ``read(n) -> bytes`` / ``write(data) -> int`` as applicable and may
    provide ``on_last_close()``.  The description refcount counts fds
    (across processes) referring to it.
    """

    def __init__(self, obj: Any, readable: bool = True,
                 writable: bool = True) -> None:
        self.obj = obj
        self.readable = readable
        self.writable = writable
        self.offset = 0
        self.refcount = 1

    def incref(self) -> None:
        self.refcount += 1
        retain = getattr(self.obj, "on_incref", None)
        if retain is not None:
            retain(self)

    def decref(self) -> None:
        self.refcount -= 1
        if self.refcount == 0:
            closer = getattr(self.obj, "on_last_close", None)
            if closer is not None:
                closer(self)
        elif self.refcount < 0:  # pragma: no cover - invariant guard
            raise AssertionError("file description refcount underflow")


class FDTable:
    """fd → :class:`FileDescription`."""

    def __init__(self, first_fd: int = 3) -> None:
        self._slots: Dict[int, FileDescription] = {}
        self._first_fd = first_fd

    # -- basic operations ------------------------------------------------

    def install(self, desc: FileDescription) -> int:
        fd = self._first_fd
        while fd in self._slots:
            fd += 1
        self._slots[fd] = desc
        return fd

    def get(self, fd: int) -> FileDescription:
        desc = self._slots.get(fd)
        if desc is None:
            raise BadFileDescriptor(f"bad fd {fd}")
        return desc

    def close(self, fd: int) -> None:
        desc = self._slots.pop(fd, None)
        if desc is None:
            raise BadFileDescriptor(f"close of bad fd {fd}")
        desc.decref()

    def dup(self, fd: int) -> int:
        desc = self.get(fd)
        desc.incref()
        return self.install(desc)

    def dup2(self, oldfd: int, newfd: int) -> int:
        """POSIX dup2: make ``newfd`` refer to ``oldfd``'s description.

        If ``newfd`` is open it is closed first (silently); if the two
        are equal and ``oldfd`` is valid, this is a no-op returning
        ``newfd`` — both per the spec."""
        if newfd < 0:
            raise BadFileDescriptor(f"bad target fd {newfd}")
        desc = self.get(oldfd)
        if oldfd == newfd:
            return newfd
        desc.incref()
        previous = self._slots.pop(newfd, None)
        if previous is not None:
            previous.decref()
        self._slots[newfd] = desc
        return newfd

    def close_all(self) -> None:
        for fd in list(self._slots):
            self.close(fd)

    # -- fork support ---------------------------------------------------------

    def fork_copy(self, machine: Any) -> "FDTable":
        """Duplicate for a forked child (shared descriptions).

        Description refcounts are shared across processes, so on SMP the
        copy runs under the fd-table spinlock (free at 1 CPU)."""
        child = FDTable(self._first_fd)
        with machine.locks.fdtable.held():
            for fd, desc in self._slots.items():
                desc.incref()
                child._slots[fd] = desc
                machine.charge(machine.costs.fd_dup_ns, "fd_dup")
        return child

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, fd: int) -> bool:
        return fd in self._slots

    def items(self) -> Iterator[Tuple[int, FileDescription]]:
        return iter(self._slots.items())

#!/usr/bin/env python3
"""Anatomy of a μFork: where the microseconds go.

Uses the simulated clock's attribution buckets and the structured
tracer to break one fork down into its mechanism costs — the numbers
behind Figs 4 and 8 — at three database sizes.

Run:  python examples/fork_anatomy.py
"""

from repro.api import Session
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.mem.layout import KiB, MiB
from repro.trace import attach_tracer

BUCKETS = (
    ("fork_fixed", "fixed path (VA reserve, task, PID, registers)"),
    ("fd_dup", "fd table duplication"),
    ("fork_map", "child page-table mapping (bulk share)"),
    ("fork_protect", "parent write-protection"),
    ("page_copy", "eager page copies (GOT + allocator metadata)"),
    ("reloc_scan", "tag scans of copied pages"),
    ("reloc_cap", "capability rewrites"),
    ("page_zero", "page zeroing"),
)


def dissect(db_bytes: int) -> None:
    session = Session(os="ufork", strategy="copa",
                      isolation="fault", seed=0).boot()
    tracer = attach_tracer(session.machine)
    store = MiniRedis(
        session.spawn(redis_image(db_bytes), "redis"),
        nbuckets=max(64, db_bytes // (100 * KiB) * 2),
    )
    populate(store, db_bytes, value_size=100 * KiB)

    clock = session.machine.clock
    clock.reset_buckets()
    tracer.clear()
    with clock.measure() as watch:
        child = store.ctx.fork()

    print(f"\nRedis database {db_bytes // KiB} KB — fork took "
          f"{watch.elapsed_us:.1f} us:")
    accounted = 0
    for bucket, label in BUCKETS:
        ns = clock.bucket_ns(bucket)
        accounted += ns
        if ns:
            share = 100 * ns / watch.elapsed_ns
            print(f"  {ns / 1000:9.1f} us  {share:5.1f}%  {label}")
    other = watch.elapsed_ns - accounted
    if other > 0:
        print(f"  {other / 1000:9.1f} us  {100 * other / watch.elapsed_ns:5.1f}%  (other)")
    eager = tracer.count("fork_page_copy", eager=True)
    relocated = sum(e.get("caps") for e in tracer.query("relocate_frame"))
    print(f"  -> {eager} pages copied eagerly, "
          f"{relocated} capabilities relocated at fork time")

    child.exit(0)
    store.ctx.wait(child.pid)


def main() -> None:
    print("μFork cost anatomy (CoPA strategy).  The fixed path dominates"
          "\nsmall processes; bulk page-table mapping grows with the heap;"
          "\neager copies stay bounded to GOT + allocator metadata.")
    for size in (100 * KiB, 1 * MiB, 10 * MiB):
        dissect(size)


if __name__ == "__main__":
    main()

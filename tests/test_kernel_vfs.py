"""Tests for the ramdisk VFS."""

import pytest

from repro.errors import (
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.kernel.vfs import (
    O_APPEND,
    O_CREAT,
    O_TRUNC,
    O_WRONLY,
    RamDisk,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
)


class FakeDesc:
    def __init__(self):
        self.offset = 0


@pytest.fixture
def ramdisk(machine):
    return RamDisk(machine)


class TestOpenCreate:
    def test_create_and_read_back(self, ramdisk):
        handle = ramdisk.open("/f", O_CREAT | O_WRONLY)
        desc = FakeDesc()
        handle.write(desc, b"hello")
        desc2 = FakeDesc()
        handle2 = ramdisk.open("/f")
        assert handle2.read(desc2, 100) == b"hello"

    def test_open_missing_without_creat(self, ramdisk):
        with pytest.raises(FileNotFound):
            ramdisk.open("/missing")

    def test_trunc_clears_content(self, ramdisk):
        handle = ramdisk.open("/f", O_CREAT)
        handle.write(FakeDesc(), b"data")
        ramdisk.open("/f", O_TRUNC)
        assert ramdisk.stat_size("/f") == 0

    def test_append_mode(self, ramdisk):
        handle = ramdisk.open("/f", O_CREAT | O_APPEND)
        handle.write(FakeDesc(), b"one")
        handle.write(FakeDesc(), b"two")
        assert ramdisk.open("/f").read(FakeDesc(), 10) == b"onetwo"

    def test_open_directory_fails(self, ramdisk):
        ramdisk.mkdir("/d")
        with pytest.raises(IsADirectory):
            ramdisk.open("/d")

    def test_bad_path(self, ramdisk):
        with pytest.raises(InvalidArgument):
            ramdisk.open("///", O_CREAT)


class TestReadWriteSeek:
    def test_partial_reads_advance_offset(self, ramdisk):
        handle = ramdisk.open("/f", O_CREAT)
        handle.write(FakeDesc(), b"abcdefgh")
        desc = FakeDesc()
        assert handle.read(desc, 3) == b"abc"
        assert handle.read(desc, 3) == b"def"
        assert handle.read(desc, 3) == b"gh"
        assert handle.read(desc, 3) == b""

    def test_write_beyond_end_zero_fills(self, ramdisk):
        handle = ramdisk.open("/f", O_CREAT)
        desc = FakeDesc()
        handle.seek(desc, 4, SEEK_SET)
        handle.write(desc, b"xx")
        assert ramdisk.open("/f").read(FakeDesc(), 10) == b"\x00" * 4 + b"xx"

    def test_seek_modes(self, ramdisk):
        handle = ramdisk.open("/f", O_CREAT)
        handle.write(FakeDesc(), b"0123456789")
        desc = FakeDesc()
        assert handle.seek(desc, 4, SEEK_SET) == 4
        assert handle.seek(desc, 2, SEEK_CUR) == 6
        assert handle.seek(desc, -1, SEEK_END) == 9
        with pytest.raises(InvalidArgument):
            handle.seek(desc, 0, 99)
        with pytest.raises(InvalidArgument):
            handle.seek(desc, -100, SEEK_SET)

    def test_io_charges_time(self, ramdisk, machine):
        handle = ramdisk.open("/f", O_CREAT)
        before = machine.clock.now_ns
        handle.write(FakeDesc(), b"x" * 10_000)
        elapsed = machine.clock.now_ns - before
        assert elapsed >= 10_000 * machine.costs.io_copy_ns_per_byte


class TestDirectoryOps:
    def test_mkdir_and_nested_files(self, ramdisk):
        ramdisk.mkdir("/a")
        ramdisk.mkdir("/a/b")
        ramdisk.open("/a/b/f", O_CREAT)
        assert ramdisk.listdir("/a/b") == ["f"]
        assert ramdisk.exists("/a/b/f")

    def test_mkdir_existing_fails(self, ramdisk):
        ramdisk.mkdir("/a")
        with pytest.raises(FileExists):
            ramdisk.mkdir("/a")

    def test_unlink(self, ramdisk):
        ramdisk.open("/f", O_CREAT)
        ramdisk.unlink("/f")
        assert not ramdisk.exists("/f")
        with pytest.raises(FileNotFound):
            ramdisk.unlink("/f")

    def test_unlink_directory_fails(self, ramdisk):
        ramdisk.mkdir("/d")
        with pytest.raises(IsADirectory):
            ramdisk.unlink("/d")

    def test_rename_atomic_replace(self, ramdisk):
        a = ramdisk.open("/a", O_CREAT)
        a.write(FakeDesc(), b"new")
        b = ramdisk.open("/b", O_CREAT)
        b.write(FakeDesc(), b"old")
        ramdisk.rename("/a", "/b")
        assert not ramdisk.exists("/a")
        assert ramdisk.open("/b").read(FakeDesc(), 10) == b"new"

    def test_rename_missing_fails(self, ramdisk):
        with pytest.raises(FileNotFound):
            ramdisk.rename("/nope", "/x")

    def test_listdir_root(self, ramdisk):
        ramdisk.open("/z", O_CREAT)
        ramdisk.open("/a", O_CREAT)
        assert ramdisk.listdir("/") == ["a", "z"]

    def test_listdir_file_fails(self, ramdisk):
        ramdisk.open("/f", O_CREAT)
        with pytest.raises(NotADirectory):
            ramdisk.listdir("/f")

    def test_walk_through_file_fails(self, ramdisk):
        ramdisk.open("/f", O_CREAT)
        with pytest.raises(NotADirectory):
            ramdisk.open("/f/sub", O_CREAT)

    def test_stat_size(self, ramdisk):
        handle = ramdisk.open("/f", O_CREAT)
        handle.write(FakeDesc(), b"12345")
        assert ramdisk.stat_size("/f") == 5

"""Tagged physical memory.

Physical memory is a pool of page-sized :class:`Frame` objects.  Each
frame carries, next to its data bytes, one validity-tag bit per 16-byte
granule — the CHERI tagged memory μFork's relocation scan relies on
(§3.4, building block 3).  The tag invariants enforced here:

* a granule's tag is set only by a legitimate capability store;
* **any** raw byte store overlapping a granule clears its tag;
* copying a frame through the kernel's capability-aware copy preserves
  tags; byte-wise copies do not.

Frames are reference counted so copy-on-write style sharing (all three
μFork strategies, and the monolithic baseline's classic CoW) can be
accounted precisely — the proportional-resident-set numbers in Figs 5
and 8 come straight from these refcounts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import perf as _perf
from repro.cheri.capability import Capability
from repro.cheri.codec import CAP_SIZE, CapabilityCodec
from repro.clock import EventCounters, SimClock
from repro.errors import AlignmentFault, OutOfMemory
from repro.params import CostModel, MachineConfig

#: shared immutable zero-run used for batched tag clears
_ZEROS = bytes(4096)


class Frame:
    """One physical page: data bytes plus per-granule validity tags."""

    __slots__ = ("data", "tags", "refcount")

    def __init__(self, page_size: int, granules: int) -> None:
        self.data = bytearray(page_size)
        self.tags = bytearray(granules)
        self.refcount = 1

    # -- byte access ---------------------------------------------------

    def read(self, offset: int, size: int) -> bytes:
        return bytes(self.data[offset:offset + size])

    def write(self, offset: int, data: bytes) -> None:
        """Raw byte store: clears tags of every overlapped granule.

        The batched path (:mod:`repro.perf`) clears the whole
        overlapped granule run with one C-level slice store instead of
        a Python loop; the cleared set is identical.
        """
        self.data[offset:offset + len(data)] = data
        first = offset // CAP_SIZE
        last = (offset + len(data) - 1) // CAP_SIZE
        if _perf.ENABLED:
            count = last + 1 - first
            if count > 0:
                self.tags[first:last + 1] = \
                    _ZEROS[:count] if count <= len(_ZEROS) else bytes(count)
            return
        for granule in range(first, last + 1):
            self.tags[granule] = 0

    # -- capability access -----------------------------------------------

    def load_cap(self, offset: int, codec: CapabilityCodec) -> Capability:
        if offset % CAP_SIZE:
            raise AlignmentFault(f"capability load at offset {offset:#x}")
        raw = bytes(self.data[offset:offset + CAP_SIZE])
        valid = bool(self.tags[offset // CAP_SIZE])
        return codec.decode(raw, valid)

    def store_cap(self, offset: int, cap: Capability,
                  codec: CapabilityCodec) -> None:
        if offset % CAP_SIZE:
            raise AlignmentFault(f"capability store at offset {offset:#x}")
        self.data[offset:offset + CAP_SIZE] = codec.encode(cap)
        self.tags[offset // CAP_SIZE] = 1 if cap.valid else 0

    def tagged_granules(self) -> List[int]:
        """Offsets of granules currently holding valid capabilities.

        The batched path scans with ``bytearray.find`` (a C memchr
        loop) instead of a Python ``enumerate`` pass — on the common
        mostly-untagged frame this is the relocation scan's hot loop.
        """
        if _perf.ENABLED:
            out: List[int] = []
            find = self.tags.find
            index = find(1)
            while index >= 0:
                out.append(index * CAP_SIZE)
                index = find(1, index + 1)
            return out
        return [
            index * CAP_SIZE
            for index, tag in enumerate(self.tags)
            if tag
        ]

    def copy_from(self, other: "Frame", preserve_tags: bool = True) -> None:
        """Copy another frame's contents (kernel capability-aware copy)."""
        self.data[:] = other.data
        if preserve_tags:
            self.tags[:] = other.tags
        elif _perf.ENABLED:
            count = len(self.tags)
            self.tags[:] = _ZEROS[:count] if count <= len(_ZEROS) \
                else bytes(count)
        else:
            for index in range(len(self.tags)):
                self.tags[index] = 0


class PhysicalMemory:
    """Frame allocator with refcounting and allocation accounting.

    Observability: allocation/copy/free events are counted under
    ``hw.phys.*`` and the live frame count is kept in the
    ``hw.phys.allocated_frames`` gauge (see docs/OBSERVABILITY.md).
    """

    def __init__(self, config: MachineConfig, costs: CostModel,
                 clock: SimClock, counters: EventCounters,
                 obs=None) -> None:
        from repro.chaos.engine import NULL_CHAOS
        from repro.obs import NULL_OBS
        self._config = config
        self._costs = costs
        self._clock = clock
        self._counters = counters
        self._obs = obs if obs is not None else NULL_OBS
        #: fault injection hook (ChaosEngine.attach replaces the null)
        self.chaos = NULL_CHAOS
        self._frames: Dict[int, Frame] = {}
        self._free: List[int] = []
        self._next_frame = 1
        self._capacity_frames = config.dram_bytes // config.page_size

    # -- allocation ------------------------------------------------------

    def alloc(self, zero: bool = True, charge: bool = True) -> int:
        """Allocate one frame; returns its frame number."""
        if len(self._frames) >= self._capacity_frames:
            raise OutOfMemory("physical memory exhausted")
        if self.chaos.enabled and self.chaos.should_fire("hw.phys.alloc_fail"):
            from repro.chaos.faults import InjectedAllocFailure
            raise InjectedAllocFailure("injected frame-allocation failure")
        if self._free:
            number = self._free.pop()
        else:
            number = self._next_frame
            self._next_frame += 1
        self._frames[number] = Frame(
            self._config.page_size, self._config.granules_per_page
        )
        if zero and charge:
            self._clock.advance(self._costs.page_zero_ns, "page_zero")
        self._counters.add("frames_allocated")
        if self._obs.enabled:
            self._obs.count("hw.phys.frames_allocated")
            self._obs.gauge_set("hw.phys.allocated_frames",
                                len(self._frames))
        return number

    def frame(self, number: int) -> Frame:
        frame = self._frames.get(number)
        if frame is None:
            raise KeyError(f"no such frame {number}")
        return frame

    def incref(self, number: int) -> None:
        self.frame(number).refcount += 1

    def decref(self, number: int) -> None:
        frame = self.frame(number)
        frame.refcount -= 1
        if frame.refcount == 0:
            del self._frames[number]
            self._free.append(number)
            self._counters.add("frames_freed")
            if self._obs.enabled:
                self._obs.count("hw.phys.frames_freed")
                self._obs.gauge_set("hw.phys.allocated_frames",
                                    len(self._frames))
        elif frame.refcount < 0:  # pragma: no cover - invariant guard
            raise AssertionError(f"frame {number} refcount underflow")

    def refcount(self, number: int) -> int:
        return self.frame(number).refcount

    # -- kernel copy -------------------------------------------------------

    def copy_frame(self, src: int, preserve_tags: bool = True,
                   charge: bool = True) -> int:
        """Allocate a new frame and copy ``src`` into it."""
        dst = self.alloc(zero=False, charge=False)
        self.frame(dst).copy_from(self.frame(src), preserve_tags)
        if charge:
            self._clock.advance(
                self._costs.page_copy_ns(self._config.page_size), "page_copy"
            )
        if preserve_tags and self.chaos.enabled and \
                self.chaos.should_fire("hw.phys.tag_clear"):
            self._recover_tag_clear(src, dst, charge)
        self._counters.add("frames_copied")
        self._obs.count("hw.phys.frames_copied")
        return dst

    def _recover_tag_clear(self, src: int, dst: int, charge: bool) -> None:
        """Injected spurious tag loss on a tag-preserving copy: the copy
        engine dropped the validity bits.  The kernel's verify-after-copy
        compares tag vectors and redoes the copy when they differ (a
        frame with no tags loses nothing, so nothing to recover)."""
        dst_frame = self.frame(dst)
        for index in range(len(dst_frame.tags)):
            dst_frame.tags[index] = 0
        src_frame = self.frame(src)
        if bytes(dst_frame.tags) != bytes(src_frame.tags):
            dst_frame.copy_from(src_frame, preserve_tags=True)
            if charge:
                self._clock.advance(
                    self._costs.page_copy_ns(self._config.page_size),
                    "page_copy"
                )
            self.chaos.note_recovery("hw.phys.tag_clear")

    # -- accounting -----------------------------------------------------------

    @property
    def allocated_frames(self) -> int:
        return len(self._frames)

    @property
    def allocated_bytes(self) -> int:
        return len(self._frames) * self._config.page_size

    def contains(self, number: int) -> bool:
        return number in self._frames

"""Determinism tier: one seed fully determines a chaos run — the fault
schedule, the obs export, and the final kernel state — and a disabled
engine changes nothing at all."""

import json
import pathlib

from repro.chaos.runner import kernel_state_digest, run_chaos

SEED = 7
ITERATIONS = 80
MIX = "default=0.05"


def test_same_seed_identical_everything(tmp_path):
    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    one = run_chaos(seed=SEED, iterations=ITERATIONS, mix=MIX,
                    obs_dir=str(dir_a))
    two = run_chaos(seed=SEED, iterations=ITERATIONS, mix=MIX,
                    obs_dir=str(dir_b))

    assert one == two                     # schedule, digest, counts: all of it
    assert one["injected"] > 0            # and the run was not trivially calm

    for name in (f"chaos-{SEED}.obs.json", f"chaos-{SEED}.chaos.json"):
        assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes()


def test_sidecars_are_valid_and_self_consistent(tmp_path):
    summary = run_chaos(seed=SEED, iterations=ITERATIONS, mix=MIX,
                        obs_dir=str(tmp_path))
    obs_doc = json.loads(
        (tmp_path / f"chaos-{SEED}.obs.json").read_text())
    from repro.obs import validate_export
    validate_export(obs_doc)
    chaos_doc = json.loads(
        (tmp_path / f"chaos-{SEED}.chaos.json").read_text())
    assert chaos_doc["run"] == summary
    engine_record = chaos_doc["engine"]
    assert engine_record["schema"] == "repro.chaos/v1"
    assert engine_record["fired"] == summary["injected_by_point"]
    # every injection the engine logged is counted in the obs export
    counters = obs_doc["metrics"]["counters"]
    for point, fired in engine_record["fired"].items():
        assert counters[f"chaos.injected.{point}"] == fired


def test_different_seed_different_run():
    one = run_chaos(seed=SEED, iterations=ITERATIONS, mix=MIX)
    two = run_chaos(seed=SEED + 1, iterations=ITERATIONS, mix=MIX)
    assert one["kernel_state_digest"] != two["kernel_state_digest"]
    assert one["injected_by_point"] != two["injected_by_point"]


def test_workload_survives_every_iteration():
    summary = run_chaos(seed=SEED, iterations=ITERATIONS, mix=MIX)
    assert sum(summary["ops"].values()) \
        + sum(summary["op_failures"].values()) == ITERATIONS
    assert summary["alive_processes"] == 1          # only the parent remains
    assert summary["recovered"] > 0


def test_disabled_injection_is_invisible():
    """Acceptance: mix rate 0 (schedule never fires) must be
    indistinguishable from running the instrumented stack without any
    injected behaviour — same digest, same obs export hash."""
    calm = run_chaos(seed=SEED, iterations=40, mix="default=0.0")
    assert calm["injected"] == 0
    assert calm["op_failures"] == {}

    again = run_chaos(seed=SEED, iterations=40, mix="default=0.0")
    assert calm["kernel_state_digest"] == again["kernel_state_digest"]
    assert calm["obs_export_sha256"] == again["obs_export_sha256"]


def test_kernel_state_digest_sees_leaks():
    """The digest is the leak detector: it must change when kernel
    state differs (here: an extra allocated frame)."""
    from repro.core import IsolationConfig, UForkOS
    from repro.machine import Machine

    os_ = UForkOS(machine=Machine(), isolation=IsolationConfig.fault())
    before = kernel_state_digest(os_)
    assert before == kernel_state_digest(os_)       # stable when idle
    os_.machine.phys.alloc()                        # "leak" one frame
    assert kernel_state_digest(os_) != before

"""repro.obs — the unified observability layer.

One instrumented stack for everything the reproduction can measure: a
metrics **registry** (monotonic counters, gauges, fixed-log-bucket
histograms), **span**-based profiling that attributes simulated time
hierarchically, and a **JSON exporter** — replacing ad-hoc spelunking
through ``SimClock.buckets`` and ``TraceLog`` with one documented
contract (``docs/OBSERVABILITY.md``).

Every :class:`~repro.machine.Machine` carries a disabled-by-default
:class:`Observability` as ``machine.obs``; instrumentation points in
``hw``, ``kernel``, ``core`` and the baselines call it unconditionally
at one-attribute-check cost.  Nothing here ever advances the simulated
clock: enabling observability cannot change a simulated result.

Usage::

    from repro import Machine, UForkOS
    machine = Machine()
    machine.obs.enable()
    ... run a workload ...
    machine.obs.registry.counters()["hw.paging.fault.cap_load"]
    print(machine.obs.format_report())       # hierarchical breakdown

    from repro.obs import obs_session
    with obs_session() as session:           # observe a whole experiment
        rows = fig8_hello_fork()
    session.export()                         # merged JSON-ready dict

``python -m repro.harness obs-report`` prints the same breakdown for
the Figure 8 hello-fork workload from the command line.
"""

from repro.obs.export import (
    merge_exports,
    to_json,
    validate_export,
    write_export,
)
from repro.obs.facade import (
    NULL_OBS,
    SCHEMA,
    Observability,
    ObsSession,
    obs_session,
    session_adopt,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    check_metric_name,
)
from repro.obs.spans import SpanNode, SpanTree, format_span_tree

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "Observability",
    "ObsSession",
    "SCHEMA",
    "SpanNode",
    "SpanTree",
    "check_metric_name",
    "format_span_tree",
    "merge_exports",
    "obs_session",
    "session_adopt",
    "to_json",
    "validate_export",
    "write_export",
]

"""Cross-OS integration: the transparency requirement (R2) as
observable-equality checks between μFork and the baselines."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.apps.redis import MiniRedis, populate, redis_image
from repro.apps.unixbench import context1, spawn as ub_spawn
from repro.baselines import MonolithicOS, VMCloneOS
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine
from repro.mem.layout import KiB, MiB

ALL_OS = [UForkOS, MonolithicOS, VMCloneOS]


class TestRedisEquivalence:
    def _dump_on(self, os_cls) -> bytes:
        os_ = os_cls(machine=Machine())
        proc = os_.spawn(redis_image(1 * MiB), "redis")
        store = MiniRedis(GuestContext(os_, proc), nbuckets=64)
        for index in range(25):
            store.set(b"key-%03d" % index, bytes([index]) * (100 + index))
        store.delete(b"key-007")
        store.set(b"key-003", b"overwritten")
        store.bgsave("/dump.rdb")
        return bytes(os_.ramdisk.open("/dump.rdb").node.data)

    def test_dump_bytes_identical_across_oses(self):
        """The same workload produces byte-identical snapshots on every
        OS: fork semantics are fully transparent to the application."""
        dumps = {os_cls.__name__: self._dump_on(os_cls)
                 for os_cls in ALL_OS}
        reference = dumps["UForkOS"]
        assert dumps["MonolithicOS"] == reference
        assert dumps["VMCloneOS"] == reference

    def test_dump_on_every_strategy_identical(self):
        dumps = set()
        for strategy in CopyStrategy:
            os_ = UForkOS(machine=Machine(), copy_strategy=strategy)
            proc = os_.spawn(redis_image(1 * MiB), "redis")
            store = MiniRedis(GuestContext(os_, proc), nbuckets=64)
            populate(store, 256 * KiB, value_size=32 * KiB)
            store.bgsave("/d.rdb")
            dumps.add(bytes(os_.ramdisk.open("/d.rdb").node.data))
        assert len(dumps) == 1


class TestMicrobenchEquivalence:
    @pytest.mark.parametrize("os_cls", ALL_OS)
    def test_spawn_functional_everywhere(self, os_cls):
        os_ = os_cls(machine=Machine())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "bench"))
        result = ub_spawn(ctx, iterations=5)
        assert result.iterations == 5
        assert os_.process_count() == 1

    @pytest.mark.parametrize("os_cls", [UForkOS, MonolithicOS])
    def test_context1_counter_correct_everywhere(self, os_cls):
        os_ = os_cls(machine=Machine())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "bench"))
        result = context1(ctx, target=40)
        assert result.final_value >= 40


class TestMixedWorkload:
    def test_redis_and_nginx_coexist_on_one_sasos(self):
        """Several multiprocess applications share the single address
        space without interference."""
        from repro.apps.nginx import MiniNginx, WrkClient, nginx_image
        os_ = UForkOS(machine=Machine())

        redis_proc = os_.spawn(redis_image(1 * MiB), "redis")
        store = MiniRedis(GuestContext(os_, redis_proc), nbuckets=64)
        store.set(b"config", b"workers=2")

        master = GuestContext(os_, os_.spawn(nginx_image(), "nginx"))
        server = MiniNginx(master, port=8080)
        server.fork_workers(2)
        wrk = WrkClient(GuestContext(os_, os_.spawn(nginx_image(), "wrk")),
                        port=8080)

        # interleave: snapshot while serving requests
        fd = wrk.issue()
        metrics = store.bgsave("/snap.rdb")
        server.serve_one(server.workers[0])
        assert wrk.complete(fd).startswith(b"HTTP/1.1 200")
        assert metrics.bytes_written > 0
        assert store.get(b"config") == b"workers=2"

        dump = MiniRedis.parse_dump(
            bytes(os_.ramdisk.open("/snap.rdb").node.data)
        )
        assert dump == {b"config": b"workers=2"}
        server.shutdown()

"""repro.smp: the simulated multi-core machine.

Turns the single-CPU machine into an N-core SMP simulator:

* :mod:`repro.smp.ipi` — an explicit inter-processor-interrupt bus and
  the ack-based cross-core TLB-shootdown protocol whose cost scales
  with the number of online CPUs (the f(N) term the paper's
  lightweightness argument hinges on, §2.2);
* :mod:`repro.smp.locks` — the minimal kernel locking discipline
  (spinlocks + IRQ-disable guards) serializing fork, CoW fault
  handling, and the fd table;
* :mod:`repro.smp.sched` — per-CPU run queues with CPU-affinity masks
  and a deterministic work-stealing load balancer;
* :mod:`repro.smp.exec` — the per-CPU-timeline executor that runs
  synchronous driver code as a parallel schedule;
* :mod:`repro.smp.runner` — the FaaS / nginx-workers scaling workloads
  behind ``python -m repro.harness smp`` (imports the full OS stack,
  so it is intentionally *not* re-exported here).

Everything here is inert on a 1-CPU machine: ``Machine()`` defaults to
``num_cpus=1``, where spinlocks charge nothing, no IPI is ever sent,
and every shootdown has zero recipients — existing goldens stay
bit-identical.
"""

from repro.smp.exec import SmpExecutor
from repro.smp.ipi import IpiBus, tlb_shootdown
from repro.smp.locks import IrqGuard, KernelLocks, SpinLock
from repro.smp.sched import SmpScheduler

__all__ = [
    "IpiBus",
    "IrqGuard",
    "KernelLocks",
    "SmpExecutor",
    "SmpScheduler",
    "SpinLock",
    "tlb_shootdown",
]

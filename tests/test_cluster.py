"""The cluster layer: pools, shards, batching, migration, the report.

Functional contract of :mod:`repro.cluster` (docs/CLUSTER.md).  The
determinism half lives in tests/test_cluster_determinism.py; this file
checks that the pieces *do the right thing*: warm pools really fork and
reap on the kernel, shard calibration measures real cycles, batches
dispatch under the window/size policy, migration moves capacity, and
the ``repro.cluster/v1`` report is internally consistent.
"""

import json

import pytest

from repro.cluster import (
    Batcher,
    CLASSES,
    ClusterCosts,
    DEFAULT_CLUSTER_COSTS,
    ConsistentHashRing,
    run_cluster,
)

SMALL_RUN = dict(seed=9, shards=2, workers=2, requests=1_200,
                 keys=96, users=3_000, audit=2)


class TestClusterCosts:
    def test_derived_helpers_match_constants(self):
        costs = DEFAULT_CLUSTER_COSTS
        assert costs.per_request_overhead_ns == (
            costs.lb_route_ns + costs.wire_ns_per_byte
            * (costs.request_bytes + costs.response_bytes))
        assert costs.per_batch_overhead_ns == \
            costs.net_hop_ns + costs.batch_dispatch_ns
        assert costs.migration_ns(0) == costs.migration_fixed_ns
        assert costs.migration_ns(4_096) == \
            costs.migration_fixed_ns + 4_096 * costs.wire_ns_per_byte

    def test_scaled_overrides_and_freezes(self):
        costs = ClusterCosts().scaled(net_hop_ns=1)
        assert costs.net_hop_ns == 1
        with pytest.raises(Exception):
            costs.net_hop_ns = 2

    def test_all_constants_are_integers(self):
        from dataclasses import asdict
        assert all(isinstance(v, int)
                   for v in asdict(DEFAULT_CLUSTER_COSTS).values())


class TestBatcher:
    def test_size_dispatch_closes_at_triggering_arrival(self):
        batcher = Batcher(shards=1, window_ns=10_000, max_batch=2)
        assert list(batcher.add(0, 100, 0)) == []
        ((batch, close_ns),) = batcher.add(0, 150, 1)
        assert close_ns == 150
        assert batch.members == [(100, 0), (150, 1)]

    def test_window_dispatch_closes_at_timer_deadline(self):
        batcher = Batcher(shards=1, window_ns=1_000, max_batch=99)
        list(batcher.add(0, 100, 0))
        ((batch, close_ns),) = batcher.add(0, 9_999, 0)
        assert close_ns == 100 + 1_000
        assert len(batch.members) == 1
        # the late arrival opened a fresh batch
        ((tail, tail_close),) = batcher.flush()
        assert tail.members == [(9_999, 0)]
        assert tail_close == 9_999 + 1_000

    def test_shards_batch_independently(self):
        batcher = Batcher(shards=2, window_ns=1_000, max_batch=2)
        list(batcher.add(0, 10, 0))
        assert list(batcher.add(1, 20, 0)) == []   # other shard: no close
        assert len(list(batcher.flush())) == 2

    def test_accounting(self):
        batcher = Batcher(shards=1, window_ns=1_000, max_batch=3)
        for arrival in (1, 2, 3, 4):
            list(batcher.add(0, arrival, 0))
        list(batcher.flush())
        assert batcher.batches == 2
        assert batcher.held_requests == 4
        assert batcher.max_size == 3
        assert batcher.mean_size_ppm() == 2_000_000


class TestRingValidation:
    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(shards=0)
        with pytest.raises(ValueError):
            ConsistentHashRing(shards=1, vnodes=0)

    def test_single_shard_owns_everything(self):
        assert set(ConsistentHashRing(shards=1).shard_map(256)) == {0}


class TestWarmPool:
    def test_forks_are_real_and_reaps_are_real(self):
        from repro.api import Session

        session = Session(os="ufork", seed=21, obs=True).boot()
        pool = session.warm_pool(2)
        assert session.machine.counters.get("fork") == 2
        pids = {worker.pid for worker in pool.workers}
        assert len(pids) == 2 and pool.zygote.pid not in pids

        retired = pool.retire()
        assert retired in pids
        assert len(pool) == 1
        counters = session.obs_export()["metrics"]["counters"]
        assert counters["cluster.pool.forked"] == 2
        assert counters["cluster.pool.retired"] == 1

    def test_warm_runs_once_before_forks(self):
        from repro.api import Session

        calls = []
        session = Session(os="ufork", seed=22).boot()
        pool = session.warm_pool(3, warm=calls.append)
        assert calls == [pool.zygote]

    def test_size_must_be_positive(self):
        from repro.api import Session

        with pytest.raises(ValueError):
            Session(os="ufork", seed=23).warm_pool(0)

    def test_divergent_bytes_grow_with_private_writes(self):
        from repro.api import Session

        session = Session(os="ufork", seed=24).boot()
        pool = session.warm_pool(1)
        worker = pool.workers[-1]
        before = pool.divergent_bytes(worker)
        page = session.machine.config.page_size
        buf = worker.malloc(4 * page)
        worker.store(buf, b"x" * (4 * page))
        assert pool.divergent_bytes(worker) > before


class TestShard:
    def test_calibration_measures_every_class(self):
        from repro.cluster.shard import Shard

        shard = Shard(0, seed=31, workers=1, audit=1)
        assert set(shard.service_ns) == set(CLASSES)
        assert all(ns > 0 for ns in shard.service_ns.values())
        assert shard.service_by_klass == \
            [shard.service_ns[name] for name in CLASSES]

    def test_audit_budget_is_respected(self):
        from repro.cluster.shard import Shard

        shard = Shard(0, seed=32, workers=1, audit=2)
        for klass in (0, 0, 0, 0):
            shard.observe(klass)
        assert shard.audited == 2
        assert shard.requests == 4
        stats = shard.stats()
        assert stats["audited"] == 2
        assert stats["forks"] >= 1 + len(CLASSES) + 2
        assert len(stats["kernel_state_digest"]) == 64


class TestMigration:
    def test_migrate_moves_one_worker_between_real_shards(self):
        from repro.cluster.migrate import migrate_worker
        from repro.cluster.shard import Shard

        source = Shard(0, seed=41, workers=2)
        target = Shard(1, seed=42, workers=1)
        record = migrate_worker(source, target, DEFAULT_CLUSTER_COSTS)
        assert len(source.pool) == 1
        assert len(target.pool) == 2
        assert record["from"] == 0 and record["to"] == 1
        assert record["ns"] == DEFAULT_CLUSTER_COSTS.migration_ns(
            record["divergent_bytes"])
        counters = source.session.obs_export()["metrics"]["counters"]
        assert counters["cluster.migrate.out"] == 1

    def test_migration_transfers_the_workers_divergent_state(self):
        """The replacement on the target shard is not a fresh fork: it
        carries the migrated worker's private pages (shipped as an
        incremental repro.snapshot/v1 blob) and its registers, with
        every capability re-minted for the target machine."""
        from repro.cluster.migrate import migrate_worker
        from repro.cluster.shard import Shard

        source = Shard(0, seed=43, workers=1)
        target = Shard(1, seed=44, workers=1)
        worker = source.pool.workers[-1]
        cap = worker.malloc(64)
        worker.store(cap, b"migrated worker state")
        worker.store_cap(cap, cap.add(8), offset=32)
        worker.set_reg("c19", cap)
        divergent = source.pool.divergent_bytes(worker)

        record = migrate_worker(source, target, DEFAULT_CLUSTER_COSTS)
        assert record["divergent_bytes"] == divergent > 0

        twin = target.pool.workers[-1]
        tcap = twin.reg("c19")
        assert twin.load(tcap, 21) == b"migrated worker state"
        inner = twin.load_cap(tcap, offset=32)
        assert inner.valid and inner.base == tcap.base
        assert inner.cursor - tcap.cursor == 8
        counters = target.session.obs_export()["metrics"]["counters"]
        assert counters["cluster.migrate.in"] == 1
        assert counters["core.snapshot.pages_applied"] >= 1


class TestRunClusterReport:
    def test_report_is_internally_consistent(self):
        report = run_cluster(**SMALL_RUN)
        assert report["schema"] == "repro.cluster/v1"
        assert report["requests"] == SMALL_RUN["requests"]
        assert sum(report["balancer"]["shard_load"]) == report["requests"]
        latency = report["latency_ns"]
        assert latency["min"] <= latency["p50"] <= latency["p99"] \
            <= latency["p999"] <= latency["max"]
        assert latency["min"] > 0
        assert report["makespan_ns"] >= latency["max"]
        assert report["batches"]["count"] > 0
        assert report["batches"]["mean_size_ppm"] >= 1_000_000
        assert len(report["per_shard"]) == SMALL_RUN["shards"]
        for shard in report["per_shard"]:
            assert shard["audited"] == SMALL_RUN["audit"]
        assert report["obs"]["schema"] == "repro.obs/v1"
        assert report["obs"]["metrics"]["counters"][
            "cluster.shard.calibrations"] == \
            SMALL_RUN["shards"] * len(CLASSES)
        json.dumps(report)  # JSON-ready, no stray types

    def test_report_is_all_integers_where_it_matters(self):
        report = run_cluster(**SMALL_RUN)
        assert all(isinstance(v, int)
                   for v in report["latency_ns"].values())
        assert isinstance(report["makespan_ns"], int)
        assert isinstance(report["throughput_rps"], int)

    def test_migrations_move_worker_counts(self):
        report = run_cluster(seed=42, shards=2, workers=2,
                             requests=30_000, keys=512, users=5_000,
                             audit=0)
        workers = [s["workers"] for s in report["per_shard"]]
        assert sum(workers) == 4
        if report["migrations"]:       # capacity followed the load
            assert max(workers) > 2
            for record in report["migrations"]:
                assert record["from"] != record["to"]
                assert record["ns"] >= \
                    DEFAULT_CLUSTER_COSTS.migration_fixed_ns

    def test_validation(self):
        with pytest.raises(ValueError):
            run_cluster(shards=0)
        with pytest.raises(ValueError):
            run_cluster(workers=0)

    def test_obs_dir_sidecars_match_reportio(self, tmp_path):
        from repro.harness.reportio import dumps_report, load_report
        from repro.obs import validate_export

        report = run_cluster(obs_dir=str(tmp_path), **SMALL_RUN)
        sidecar = tmp_path / f"cluster-{SMALL_RUN['seed']}.cluster.json"
        assert load_report(str(sidecar)) == report
        assert sidecar.read_text(encoding="utf-8") == \
            dumps_report(report)
        obs_path = tmp_path / f"cluster-{SMALL_RUN['seed']}.obs.json"
        with open(obs_path, encoding="utf-8") as handle:
            validate_export(json.load(handle))


class TestClusterCLI:
    def test_subcommand_prints_summary_and_writes_json(self, tmp_path,
                                                       capsys):
        from repro.harness.__main__ import main

        json_path = tmp_path / "cluster.json"
        assert main(["cluster", "--seed", "9", "--shards", "2",
                     "--workers", "2", "--requests", "1200",
                     "--keys", "96", "--users", "3000",
                     "--audit", "2", "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "cluster run: shards=2" in out
        with open(json_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema"] == "repro.cluster/v1"
        assert document == run_cluster(**SMALL_RUN)

    def test_foreign_flags_rejected(self):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["cluster", "--depth-bound", "3"])

"""μprocess migration and virtual-address-space compaction.

Paper §6 ("Fragmentation") notes that long-running systems forking many
μprocesses could fragment the VA window, and sketches "compacting the
virtual address space periodically" as future work.  This module
implements that: because μFork already knows how to find and rebase
every absolute reference via tags, *moving* a live μprocess is the same
machinery as forking one — minus the duplicate.

``migrate`` moves one μprocess to a freshly reserved area:

* private pages are remapped to the new address and relocated in place;
* pages still shared with a forked child are *copied* (the child keeps
  the original frame, whose capabilities its own fork-time note knows
  how to relocate), exactly like a parent-side CoW break;
* MAP_SHARED pages are remapped without relocation (their frames are
  shared by design);
* the register file is relocated like a forked child's.

``compact`` walks live μprocesses in address order migrating each to
the lowest-fitting hole, squeezing out fragmentation.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.core.relocate import (RegionPair, record_flow, relocate_frame,
                                 relocate_registers)
from repro.core.strategies import ShareNote, resolve_all_pending
from repro.cheri.capability import Perm
from repro.kernel.task import Process


def migrate(os: Any, proc: Process) -> int:
    """Move ``proc`` to a newly reserved contiguous area.

    Returns the new region base.  The old area is released.  Capability
    values previously read out of registers/memory by user code are
    stale afterwards (as with a compacting GC); code must re-derive
    pointers from its (relocated) registers.
    """
    machine = os.machine
    page = machine.config.page_size
    machine.charge(machine.costs.ufork_fixed_ns, "migrate_fixed")

    # Stabilize: pages still shared *from our parent* are resolved so
    # every capability reachable from this μprocess points into it.
    resolve_all_pending(os.space, proc.region_base, proc.region_top)

    old_base, old_top = proc.region_base, proc.region_top
    size = old_top - old_base
    new_base = os.vspace.reserve(size)
    regions = RegionPair(parent_base=old_base, parent_top=old_top,
                         child_base=new_base, child_top=new_base + size)
    delta_pages = (new_base - old_base) // page
    shm_vpns = getattr(proc, "shm_vpns", set())

    moved = []
    for vpn in range(old_base // page, old_top // page):
        pte = os.space.page_table.get(vpn)
        if pte is None:
            continue
        new_vpn = vpn + delta_pages
        if vpn in shm_vpns:
            # shared memory: same frame, new address, no relocation
            os.space.map_page(new_vpn, pte.frame, pte.perms, incref=True)
            machine.charge(machine.costs.pte_copy_ns, "migrate_pte")
            moved.append(vpn)
            continue
        shared = machine.phys.refcount(pte.frame) > 1
        note = pte.note if isinstance(pte.note, ShareNote) else None
        perms = note.orig_perms if note is not None else pte.perms
        if shared:
            # a forked child still depends on the original frame: take a
            # private copy for the migrated parent (CoW-break style)
            new_frame = machine.phys.copy_frame(pte.frame,
                                                preserve_tags=True)
            machine.counters.add("migrate_page_copies")
        else:
            new_frame = pte.frame
            machine.phys.incref(new_frame)  # balanced by unmap below
            machine.charge(machine.costs.pte_copy_ns, "migrate_pte")
        relocate_frame(machine, machine.phys.frame(new_frame), regions)
        os.space.map_page(new_vpn, new_frame, perms)
        moved.append(vpn)

    for vpn in moved:
        os.space.unmap_page(vpn)
    os.vspace.release(old_base)

    # post-move phase: identity and roots
    proc.layout = proc.layout.rebased(new_base)
    proc.region_base = new_base
    proc.region_top = new_base + size
    proc.shm_vpns = {vpn + delta_pages for vpn in shm_vpns}
    delta = new_base - old_base
    proc.lib_caps = {
        name: cap.rebased(delta)
        for name, cap in getattr(proc, "lib_caps", {}).items()
    }
    for task in proc.tasks:
        relocate_registers(machine, task.registers, regions)

    heap_cap = (
        os.kernel_root
        .set_bounds(proc.layout.base("heap"), proc.layout.size("heap"))
        .with_cursor(proc.layout.base("heap"))
        .and_perms(Perm.data_rw())
    )
    proc.allocator = type(proc.allocator)(
        machine, os.space, heap_cap, max_blocks=proc.allocator.max_blocks,
    )
    proc.allocator.attach_lazy()
    machine.counters.add("migrations")
    machine.trace("migrate", pid=proc.pid, old_base=old_base,
                  new_base=new_base, pages=len(moved))
    record_flow(machine, "migrate", proc.pid, proc.pid,
                proc.region_base, proc.region_top)
    return new_base


def compact(os: Any) -> List[Tuple[int, int, int]]:
    """Compact the μprocess window: migrate live μprocesses, lowest
    first, into the lowest holes.  Returns [(pid, old_base, new_base)]
    for every μprocess that moved."""
    moves: List[Tuple[int, int, int]] = []
    for proc in sorted(os.procs.alive(), key=lambda p: p.region_base):
        old_base = proc.region_base
        # first-fit reservation returns the lowest hole; if that is not
        # below us, we are already packed — undo and continue.
        size = proc.region_size
        probe = os.vspace.reserve(size)
        os.vspace.release(probe)
        if probe >= old_base:
            continue
        new_base = migrate(os, proc)
        moves.append((proc.pid, old_base, new_base))
    return moves

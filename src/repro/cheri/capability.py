"""The CHERI capability value type.

A :class:`Capability` is an immutable fat pointer: an address (cursor)
plus the bounds ``[base, base+length)`` and permissions of the object it
refers to.  The two properties μFork's security argument rests on are
enforced here:

* **monotonicity** — every deriving operation (:meth:`set_bounds`,
  :meth:`and_perms`) can only shrink authority; attempts to grow it raise
  :class:`~repro.errors.MonotonicityFault`;
* **unforgeability** — capabilities in simulated memory are only valid
  when their granule's tag is set; any byte store clears the tag (see
  :mod:`repro.hw.phys`).  A capability object whose ``valid`` flag is
  False cannot authorize anything.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntFlag

from repro import perf as _perf
from repro.errors import (
    BoundsFault,
    MonotonicityFault,
    PermissionFault,
    SealFault,
    TagFault,
)

#: object type of an unsealed capability
OTYPE_UNSEALED = -1
#: object type of a "sentry" (sealed entry) capability: invoking it jumps
#: to a fixed target and unseals it, the mechanism behind μFork's
#: trapless system calls (§4.4)
OTYPE_SENTRY = -2


class Perm(IntFlag):
    """Capability permission bits (subset of the Morello set)."""

    NONE = 0
    LOAD = 1 << 0
    STORE = 1 << 1
    EXECUTE = 1 << 2
    LOAD_CAP = 1 << 3
    STORE_CAP = 1 << 4
    SEAL = 1 << 5
    UNSEAL = 1 << 6
    #: authorizes privileged (system-register) operations; user
    #: capabilities never carry it (§4.4, second principle)
    SYSTEM = 1 << 7
    GLOBAL = 1 << 8

    @classmethod
    def data_rw(cls) -> "Perm":
        if _perf.ENABLED:
            return _PERM_DATA_RW
        return cls.LOAD | cls.STORE | cls.LOAD_CAP | cls.STORE_CAP | cls.GLOBAL

    @classmethod
    def data_ro(cls) -> "Perm":
        if _perf.ENABLED:
            return _PERM_DATA_RO
        return cls.LOAD | cls.LOAD_CAP | cls.GLOBAL

    @classmethod
    def code(cls) -> "Perm":
        if _perf.ENABLED:
            return _PERM_CODE
        return cls.LOAD | cls.EXECUTE | cls.GLOBAL

    @classmethod
    def all_perms(cls) -> "Perm":
        if _perf.ENABLED:
            return _PERM_ALL
        value = cls.NONE
        for perm in cls:
            value |= perm
        return value


#: the composite permission sets are pure constants, but IntFlag ``|``
#: pays member-resolution machinery on every call; the :mod:`repro.perf`
#: path returns these precomputed (identical) values instead
_PERM_DATA_RW = (Perm.LOAD | Perm.STORE | Perm.LOAD_CAP | Perm.STORE_CAP
                 | Perm.GLOBAL)
_PERM_DATA_RO = Perm.LOAD | Perm.LOAD_CAP | Perm.GLOBAL
_PERM_CODE = Perm.LOAD | Perm.EXECUTE | Perm.GLOBAL
_PERM_ALL = (Perm.LOAD | Perm.STORE | Perm.EXECUTE | Perm.LOAD_CAP
             | Perm.STORE_CAP | Perm.SEAL | Perm.UNSEAL | Perm.SYSTEM
             | Perm.GLOBAL)


def _fast_cap(base: int, length: int, cursor: int, perms: "Perm",
              otype: int, valid: bool) -> "Capability":
    """Build a :class:`Capability` bypassing the frozen-dataclass
    ``__init__`` (six Python-level ``object.__setattr__`` calls) with a
    single C-level ``__dict__.update`` — indistinguishable from normal
    construction (same eq/hash/repr, still frozen) but ~40% faster.
    Used only on :mod:`repro.perf` fast paths."""
    cap = object.__new__(Capability)
    cap.__dict__.update(base=base, length=length, cursor=cursor,
                        perms=perms, otype=otype, valid=valid)
    return cap


@dataclass(frozen=True)
class Capability:
    """An immutable CHERI capability."""

    base: int
    length: int
    cursor: int
    perms: Perm
    otype: int = OTYPE_UNSEALED
    valid: bool = True

    # -- constructors ---------------------------------------------------

    @classmethod
    def root(cls, size: int) -> "Capability":
        """The almighty root capability the machine boots with."""
        return cls(base=0, length=size, cursor=0, perms=Perm.all_perms())

    @classmethod
    def null(cls) -> "Capability":
        return cls(base=0, length=0, cursor=0, perms=Perm.NONE, valid=False)

    # -- basic queries ----------------------------------------------------

    @property
    def top(self) -> int:
        return self.base + self.length

    @property
    def is_sealed(self) -> bool:
        return self.otype != OTYPE_UNSEALED

    @property
    def is_sentry(self) -> bool:
        return self.otype == OTYPE_SENTRY

    @property
    def offset(self) -> int:
        return self.cursor - self.base

    def in_bounds(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.top

    def spans(self, base: int, top: int) -> bool:
        """True if this capability's bounds lie entirely inside [base, top)."""
        return base <= self.base and self.top <= top

    def has_perm(self, perm: Perm) -> bool:
        if _perf.ENABLED:
            bits = perm._value_
            return (self.perms._value_ & bits) == bits
        return (self.perms & perm) == perm

    # -- deriving (monotonic) operations ------------------------------------

    def _require_mutable(self) -> None:
        if self.is_sealed:
            raise SealFault(f"cannot modify sealed capability {self!r}")

    def with_cursor(self, cursor: int) -> "Capability":
        """Move the cursor.  Out-of-bounds cursors are representable (as
        on Morello); the fault happens at dereference time.

        The :mod:`repro.perf` path constructs the result directly —
        ``dataclasses.replace`` pays field introspection per call and
        cursor moves are the most frequent derive in guest code.
        """
        self._require_mutable()
        if _perf.ENABLED:
            return _fast_cap(self.base, self.length, cursor,
                             self.perms, self.otype, self.valid)
        return replace(self, cursor=cursor)

    def add(self, offset: int) -> "Capability":
        return self.with_cursor(self.cursor + offset)

    def set_bounds(self, base: int, length: int) -> "Capability":
        """Shrink bounds to ``[base, base+length)``; growing faults."""
        self._require_mutable()
        if length < 0:
            raise BoundsFault(f"negative capability length {length}")
        if base < self.base or base + length > self.top:
            raise MonotonicityFault(
                f"set_bounds [{base:#x},{base + length:#x}) exceeds "
                f"[{self.base:#x},{self.top:#x})"
            )
        cursor = min(max(self.cursor, base), base + length)
        if _perf.ENABLED:
            return _fast_cap(base, length, cursor, self.perms,
                             self.otype, self.valid)
        return replace(self, base=base, length=length, cursor=cursor)

    def and_perms(self, perms: Perm) -> "Capability":
        """Intersect permissions (can only clear bits)."""
        self._require_mutable()
        if _perf.ENABLED:
            return _fast_cap(self.base, self.length, self.cursor,
                             self.perms & perms, self.otype, self.valid)
        return replace(self, perms=self.perms & perms)

    def without_perms(self, perms: Perm) -> "Capability":
        self._require_mutable()
        if _perf.ENABLED:
            return _fast_cap(self.base, self.length, self.cursor,
                             self.perms & ~perms, self.otype, self.valid)
        return replace(self, perms=self.perms & ~perms)

    def invalidated(self) -> "Capability":
        """Return the same bit pattern with the tag cleared."""
        if _perf.ENABLED:
            return _fast_cap(self.base, self.length, self.cursor,
                             self.perms, self.otype, False)
        return replace(self, valid=False)

    # -- sealing ---------------------------------------------------------

    def sealed(self, otype: int) -> "Capability":
        if self.is_sealed:
            raise SealFault("capability is already sealed")
        if otype == OTYPE_UNSEALED:
            raise SealFault("cannot seal with the unsealed otype")
        if _perf.ENABLED:
            return _fast_cap(self.base, self.length, self.cursor,
                             self.perms, otype, self.valid)
        return replace(self, otype=otype)

    def unsealed(self) -> "Capability":
        if not self.is_sealed:
            raise SealFault("capability is not sealed")
        if _perf.ENABLED:
            return _fast_cap(self.base, self.length, self.cursor,
                             self.perms, OTYPE_UNSEALED, self.valid)
        return replace(self, otype=OTYPE_UNSEALED)

    # -- checked dereference ------------------------------------------------

    def check_access(self, perm: Perm, size: int = 1, addr: int | None = None) -> int:
        """Validate a dereference; returns the effective address.

        Raises the same fault classes Morello would deliver: tag, seal,
        permission, then bounds.
        """
        if _perf.ENABLED:
            # same checks, same order, same fault classes — inlined to
            # skip the has_perm/in_bounds/property call overhead on the
            # per-access hot path
            if not self.valid:
                raise TagFault(
                    f"dereference of untagged capability {self!r}")
            if self.otype != OTYPE_UNSEALED:
                raise SealFault(
                    f"dereference of sealed capability {self!r}")
            bits = perm._value_
            if (self.perms._value_ & bits) != bits:
                raise PermissionFault(
                    f"capability lacks {perm!r}: has {self.perms!r}")
            effective = self.cursor if addr is None else addr
            if not (self.base <= effective
                    and effective + size <= self.base + self.length):
                raise BoundsFault(
                    f"access [{effective:#x},{effective + size:#x}) "
                    f"outside [{self.base:#x},{self.top:#x})")
            return effective
        if not self.valid:
            raise TagFault(f"dereference of untagged capability {self!r}")
        if self.is_sealed:
            raise SealFault(f"dereference of sealed capability {self!r}")
        if not self.has_perm(perm):
            raise PermissionFault(
                f"capability lacks {perm!r}: has {self.perms!r}"
            )
        effective = self.cursor if addr is None else addr
        if not self.in_bounds(effective, size):
            raise BoundsFault(
                f"access [{effective:#x},{effective + size:#x}) outside "
                f"[{self.base:#x},{self.top:#x})"
            )
        return effective

    # -- relocation support (μFork §4.2) -------------------------------------

    def rebased(self, delta: int) -> "Capability":
        """Shift base and cursor by ``delta``.

        This is a *kernel-only* operation: it is not monotonic and models
        the relocation the μFork kernel (which holds the root capability)
        performs when copying a page into the child μprocess.
        """
        if _perf.ENABLED:
            return _fast_cap(self.base + delta, self.length,
                             self.cursor + delta, self.perms,
                             self.otype, self.valid)
        return replace(
            self, base=self.base + delta, cursor=self.cursor + delta
        )

    def clamped_to(self, base: int, top: int) -> "Capability":
        """Restrict bounds to intersect [base, top) (kernel-only)."""
        new_base = max(self.base, base)
        new_top = min(self.top, top)
        if new_top < new_base:
            new_base = new_top = base
        if _perf.ENABLED:
            return _fast_cap(new_base, new_top - new_base, self.cursor,
                             self.perms, self.otype, self.valid)
        return replace(self, base=new_base, length=new_top - new_base)

    def __repr__(self) -> str:
        seal = "" if not self.is_sealed else f" sealed:{self.otype}"
        tag = "" if self.valid else " INVALID"
        return (
            f"Cap[{self.base:#x}+{self.length:#x} @{self.cursor:#x} "
            f"{self.perms!r}{seal}{tag}]"
        )

"""Tests for per-process signals (paper §4.5 kernel state)."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.baselines import MonolithicOS
from repro.core import UForkOS
from repro.errors import InvalidArgument, NoSuchProcess
from repro.kernel.signals import (
    SIG_IGN,
    SIGCHLD,
    SIGKILL,
    SIGTERM,
    SIGUSR1,
)
from repro.machine import Machine


def boot(os_cls=UForkOS):
    os_ = os_cls(machine=Machine())
    return os_, GuestContext(os_, os_.spawn(hello_world_image(), "app"))


class TestKill:
    def test_sigkill_terminates_immediately(self):
        os_, ctx = boot()
        victim = ctx.fork()
        ctx.syscall("kill", victim.pid, SIGKILL)
        assert not victim.proc.alive
        assert victim.proc.exit_status == 128 + SIGKILL

    def test_sigkill_cannot_be_caught(self):
        os_, ctx = boot()
        victim = ctx.fork()
        with pytest.raises(InvalidArgument):
            victim.syscall("signal", SIGKILL, lambda proc, sig: None)

    def test_sigterm_default_terminates_at_next_syscall(self):
        os_, ctx = boot()
        victim = ctx.fork()
        ctx.syscall("kill", victim.pid, SIGTERM)
        assert victim.proc.alive  # queued, not yet delivered
        with pytest.raises(NoSuchProcess):
            victim.syscall("getpid")  # delivery at kernel boundary
        assert victim.proc.exit_status == 128 + SIGTERM

    def test_sigterm_can_be_ignored(self):
        os_, ctx = boot()
        victim = ctx.fork()
        victim.syscall("signal", SIGTERM, SIG_IGN)
        ctx.syscall("kill", victim.pid, SIGTERM)
        assert victim.syscall("getpid") == victim.pid
        assert victim.proc.alive

    def test_bad_signal_rejected(self):
        os_, ctx = boot()
        with pytest.raises(InvalidArgument):
            ctx.syscall("kill", ctx.pid, 99)

    def test_kill_unknown_pid(self):
        os_, ctx = boot()
        with pytest.raises(NoSuchProcess):
            ctx.syscall("kill", 424242, SIGTERM)


class TestHandlers:
    def test_user_handler_runs_on_delivery(self):
        os_, ctx = boot()
        received = []
        ctx.syscall("signal", SIGUSR1,
                    lambda proc, sig: received.append((proc.pid, sig)))
        ctx.syscall("kill", ctx.pid, SIGUSR1)
        ctx.syscall("getpid")  # boundary crossing delivers
        assert received == [(ctx.pid, SIGUSR1)]

    def test_sigchld_queued_on_child_exit(self):
        from repro.kernel.signals import signal_state
        os_, ctx = boot()
        child = ctx.fork()
        child.exit(0)
        # observed kernel-side: the next kernel entry would deliver it
        # (and the default SIGCHLD disposition discards it)
        assert SIGCHLD in signal_state(ctx.proc).pending
        ctx.syscall("getpid")
        assert SIGCHLD not in signal_state(ctx.proc).pending

    def test_sigchld_handler_drives_reaping(self):
        os_, ctx = boot()
        reaped = []

        def on_chld(proc, sig):
            pid, status = os_.sys_waitpid(proc)
            reaped.append((pid, status))

        ctx.syscall("signal", SIGCHLD, on_chld)
        child = ctx.fork()
        child.exit(5)
        ctx.syscall("getpid")
        assert reaped == [(child.pid, 5)]

    def test_handlers_inherited_across_fork(self):
        os_, ctx = boot()
        hits = []
        ctx.syscall("signal", SIGUSR1, lambda proc, sig: hits.append(proc.pid))
        child = ctx.fork()
        child.syscall("kill", child.pid, SIGUSR1)
        child.syscall("getpid")
        assert hits == [child.pid]

    def test_pending_signals_not_inherited(self):
        os_, ctx = boot()
        # ignore SIGUSR1 so the queued signal can't terminate the parent
        # at the fork boundary (its POSIX default disposition)
        ctx.syscall("signal", SIGUSR1, SIG_IGN)
        ctx.syscall("kill", ctx.pid, SIGUSR1)  # queued on the parent
        child = ctx.fork()
        assert child.syscall("sigpending") == []

    def test_sigusr1_default_disposition_terminates(self):
        """POSIX: the default action for SIGUSR1/SIGUSR2 is to
        terminate the process (it is *not* ignored)."""
        os_, ctx = boot()
        victim = ctx.fork()
        ctx.syscall("kill", victim.pid, SIGUSR1)
        with pytest.raises(NoSuchProcess):
            victim.syscall("getpid")
        assert victim.proc.exit_status == 128 + SIGUSR1

    @pytest.mark.parametrize("os_cls", [UForkOS, MonolithicOS])
    def test_signals_work_on_both_oses(self, os_cls):
        os_, ctx = boot(os_cls)
        hits = []
        ctx.syscall("signal", SIGUSR1, lambda proc, sig: hits.append(sig))
        ctx.syscall("kill", ctx.pid, SIGUSR1)
        ctx.syscall("getpid")
        assert hits == [SIGUSR1]

    def test_delivery_charges_domain_switch(self):
        os_, ctx = boot()
        ctx.syscall("signal", SIGUSR1, lambda proc, sig: None)
        ctx.syscall("kill", ctx.pid, SIGUSR1)
        bucket_before = os_.machine.clock.bucket_ns("signal_delivery")
        ctx.syscall("getpid")
        assert os_.machine.clock.bucket_ns("signal_delivery") > bucket_before

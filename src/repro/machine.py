"""The simulated Morello-like machine.

A :class:`Machine` bundles the shared hardware state — configuration,
cost model, clock, counters, physical memory, capability codec, cores —
that every address space, kernel and application in one experiment uses.
Experiments create one Machine per measured configuration, which keeps
runs hermetic and deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.chaos.engine import NULL_CHAOS
from repro.cheri.codec import CapabilityCodec
from repro.clock import EventCounters, SimClock
from repro.hw.cpu import Core
from repro.hw.phys import PhysicalMemory
from repro.hw.tlb import TLB
from repro.obs import Observability, session_adopt
from repro.params import DEFAULT_COSTS, DEFAULT_MACHINE, CostModel, MachineConfig


class Machine:
    """Shared simulated-hardware state for one experiment run."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 costs: Optional[CostModel] = None, seed: int = 0) -> None:
        self.config = config or DEFAULT_MACHINE
        self.costs = costs or DEFAULT_COSTS
        self.clock = SimClock()
        #: unified observability (disabled by default; see :mod:`repro.obs`)
        self.obs = Observability(self.clock)
        session_adopt(self.obs)
        #: fault injection (permanently-disabled null engine by default;
        #: a :class:`repro.chaos.ChaosEngine` installs itself here via
        #: ``engine.attach(machine)`` — see :mod:`repro.chaos`)
        self.chaos = NULL_CHAOS
        self.counters = EventCounters()
        self.phys = PhysicalMemory(self.config, self.costs, self.clock,
                                   self.counters, obs=self.obs)
        self.codec = CapabilityCodec()
        self.tlb = TLB(self)
        self.cores: List[Core] = [
            Core(self, core_id) for core_id in range(self.config.cores)
        ]
        #: deterministic randomness source (ASLR etc.)
        self.rng = random.Random(seed)
        #: optional structured-event tracer (see :mod:`repro.trace`)
        self.tracer = None

    def charge(self, ns: float, bucket: Optional[str] = None) -> None:
        """Charge simulated time (convenience passthrough to the clock)."""
        self.clock.advance(ns, bucket)

    def trace(self, event: str, **fields) -> None:
        """Record a structured trace event (no-op without a tracer).

        With observability enabled, each event is also counted under
        ``trace.<event>`` so trace activity shows up in exports without
        an attached :class:`~repro.trace.TraceLog`.
        """
        if self.tracer is not None:
            self.tracer.record(event, **fields)
        if self.obs.enabled:
            self.obs.count(f"trace.{event}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Machine(cores={len(self.cores)}, "
            f"now={self.clock.now_us:.1f}us, "
            f"frames={self.phys.allocated_frames})"
        )

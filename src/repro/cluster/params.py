"""The cluster-layer cost model (simulated nanoseconds).

`repro.params.CostModel` prices everything that happens *inside* one
machine; this module prices what happens *between* machines — the
network hops, batching overheads and cross-shard migration costs the
cluster layer charges on top of per-shard service times.  Every
simulated-ns figure a ``repro.cluster/v1`` report contains is derivable
from these constants plus the per-shard calibration the runner performs
on real machines (see docs/COSTMODEL.md, "The cluster cost model").

All constants are integers so cluster arithmetic stays exact and the
reports stay byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ClusterCosts:
    """Simulated-ns costs of the cluster fabric.

    The per-request latency decomposition (docs/COSTMODEL.md)::

        latency(r) = lb_route_ns
                   + wire_ns_per_byte * (request_bytes + response_bytes)
                   + (close(b) - arrival(r))          # batch hold
                   + net_hop_ns + batch_dispatch_ns   # amortized: 1/batch
                   + queue_wait(shard worker)
                   + service_ns(class)                # calibrated, per shard
                   + net_hop_ns                       # response hop

    and cross-shard migration::

        migration_ns(bytes) = migration_fixed_ns + bytes * wire_ns_per_byte
    """

    #: one network traversal between the balancer and a shard (median
    #: intra-datacenter RTT/2 for a small RPC)
    net_hop_ns: int = 50_000
    #: per-request balancer work: header parse + consistent-hash lookup
    lb_route_ns: int = 400
    #: per-dispatched-batch fixed cost (one sendmsg + NIC doorbell),
    #: amortized over every request in the batch
    batch_dispatch_ns: int = 8_000
    #: serialized payload cost on the wire (~1 GB/s effective)
    wire_ns_per_byte: int = 1
    #: request envelope size (headers + arguments)
    request_bytes: int = 512
    #: response envelope size
    response_bytes: int = 1_024
    #: the balancer holds an open batch at most this long before the
    #: flush timer fires
    batch_window_ns: int = 200_000
    #: a batch dispatches immediately once it holds this many requests
    max_batch: int = 32
    #: cross-shard μprocess migration fixed path: quiesce the worker,
    #: two control-plane round trips, re-fork from the target's zygote
    migration_fixed_ns: int = 2_000_000

    def scaled(self, **overrides: int) -> "ClusterCosts":
        """Return a copy with individual constants overridden."""
        return replace(self, **overrides)

    # -- derived helpers ------------------------------------------------

    @property
    def per_request_overhead_ns(self) -> int:
        """The costs every request pays regardless of batching:
        balancer routing plus both payloads on the wire."""
        return self.lb_route_ns + self.wire_ns_per_byte * (
            self.request_bytes + self.response_bytes)

    @property
    def per_batch_overhead_ns(self) -> int:
        """The costs one dispatched batch pays exactly once: the
        request-path network hop plus the dispatch fixed cost."""
        return self.net_hop_ns + self.batch_dispatch_ns

    def migration_ns(self, divergent_bytes: int) -> int:
        """Cost of migrating one worker μprocess whose CoW-divergent
        state is ``divergent_bytes`` (docs/CLUSTER.md: everything else
        re-forks from the target shard's local zygote)."""
        return self.migration_fixed_ns + (divergent_bytes
                                          * self.wire_ns_per_byte)


DEFAULT_CLUSTER_COSTS = ClusterCosts()

"""Differential conformance: the whole corpus against the host kernel.

Every scenario runs once on the real host (``os.fork`` in a sandboxed
subprocess, serialized child-subtree-first) and then on the simulated
kernel under each fork strategy at 1, 2 and 4 CPUs; the logical traces
must be identical.  This is the repo's external ground truth — a diff
here means the simulated kernel's POSIX semantics drifted from POSIX,
not from our own expectations of it.
"""

from __future__ import annotations

import pytest

from repro.conform.dsl import diff_traces
from repro.conform.host import run_host
from repro.conform.scenarios import corpus
from repro.conform.simrun import STRATEGIES, run_sim

SCENARIOS = corpus()
_HOST_CACHE = {}


def host_trace(scenario):
    """One host-oracle subprocess per scenario for the whole module."""
    if scenario.name not in _HOST_CACHE:
        _HOST_CACHE[scenario.name] = run_host(scenario)
    return _HOST_CACHE[scenario.name]


def test_corpus_is_large_enough():
    assert len(SCENARIOS) >= 25
    names = [scenario.name for scenario in SCENARIOS]
    assert len(names) == len(set(names))


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("scenario", SCENARIOS,
                         ids=lambda s: s.name)
def test_scenario_matches_host(scenario, strategy):
    reference = host_trace(scenario)
    for cpus in (1, 2, 4):
        trace, _meta = run_sim(scenario, strategy=strategy,
                               num_cpus=cpus, seed=1)
        diffs = diff_traces(trace, reference)
        assert not diffs, (
            f"{scenario.name} [{strategy} c{cpus}] diverges from host:\n"
            + "\n".join(diffs))


def test_sim_traces_identical_across_seeds():
    """The sim side is deterministic: the seed feeds the machine, not
    the scenario semantics."""
    scenario = SCENARIOS[0]
    first, _ = run_sim(scenario, strategy="copa", num_cpus=2, seed=1)
    second, _ = run_sim(scenario, strategy="copa", num_cpus=2, seed=99)
    assert first == second

"""Tests for μprocess migration and VA compaction (paper §6 extension)."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.apps.redis import MiniRedis
from repro.cheri.regfile import DDC
from repro.core import CopyStrategy, UForkOS
from repro.machine import Machine


def boot(**kwargs):
    return UForkOS(machine=Machine(), **kwargs)


def spawn(os_, name="app"):
    return GuestContext(os_, os_.spawn(hello_world_image(), name))


class TestMigrate:
    def test_migrate_moves_region(self):
        os_ = boot()
        ctx = spawn(os_)
        filler = spawn(os_)  # occupies the space below after ctx moves
        old_base = ctx.proc.region_base
        new_base = os_.migrate(ctx.proc)
        assert new_base != old_base
        assert ctx.proc.region_base == new_base

    def test_state_survives_migration(self):
        os_ = boot()
        ctx = spawn(os_)
        head = ctx.malloc(32)
        inner = ctx.malloc(32)
        ctx.store_cap(head, inner)
        ctx.store(inner, b"\x00" * 16)
        ctx.store(inner, b"migrated-data", 16)
        ctx.set_reg("c9", head)

        os_.migrate(ctx.proc)

        # re-derive from the relocated register (like after a fork)
        new_head = ctx.reg("c9")
        assert ctx.proc.region_base <= new_head.base < ctx.proc.region_top
        new_inner = ctx.load_cap(new_head)
        assert ctx.load(new_inner, 13, 16) == b"migrated-data"

    def test_registers_relocated(self):
        os_ = boot()
        ctx = spawn(os_)
        old_ddc = ctx.reg(DDC)
        os_.migrate(ctx.proc)
        new_ddc = ctx.reg(DDC)
        assert new_ddc.base == ctx.proc.region_base
        assert new_ddc.length == old_ddc.length

    def test_allocator_usable_after_migration(self):
        os_ = boot()
        ctx = spawn(os_)
        ctx.malloc(64)
        os_.migrate(ctx.proc)
        fresh = ctx.malloc(32)
        ctx.store(fresh, b"post-migrate")
        assert ctx.load(fresh, 12) == b"post-migrate"
        assert ctx.proc.allocator.block_count() >= 2

    def test_old_va_released(self):
        os_ = boot()
        ctx = spawn(os_)
        free_before = os_.vspace.total_free()
        os_.migrate(ctx.proc)
        assert os_.vspace.total_free() == free_before

    def test_migrating_parent_preserves_child_snapshot(self):
        """Shared pages are copied for the mover; the forked child's
        lazy relocation still sees the original frames."""
        os_ = boot(copy_strategy=CopyStrategy.COPA)
        parent = spawn(os_)
        buf = parent.malloc(32)
        parent.store(buf, b"snapshot")
        parent.set_reg("c9", buf)
        child = parent.fork()

        os_.migrate(parent.proc)

        # parent still works through relocated register
        parent_buf = parent.reg("c9")
        assert parent.load(parent_buf, 8) == b"snapshot"
        parent.store(parent_buf, b"mutated!")

        # child's view is the pre-fork snapshot, untouched by the move
        child_buf = child.reg("c9")
        assert child.load(child_buf, 8) == b"snapshot"

    def test_no_parent_region_caps_survive_migration(self):
        os_ = boot()
        ctx = spawn(os_)
        chain = ctx.malloc(32)
        ctx.store_cap(chain, ctx.malloc(16))
        ctx.set_reg("c9", chain)
        old_base, old_top = ctx.proc.region_base, ctx.proc.region_top
        os_.migrate(ctx.proc)
        page = os_.machine.config.page_size
        for vpn in range(ctx.proc.region_base // page,
                         ctx.proc.region_top // page):
            pte = os_.space.page_table.get(vpn)
            if pte is None:
                continue
            frame = os_.machine.phys.frame(pte.frame)
            for offset in frame.tagged_granules():
                cap = frame.load_cap(offset, os_.machine.codec)
                if cap.valid and not cap.is_sentry:
                    assert not (old_base <= cap.base < old_top)


class TestCompact:
    def test_compaction_reduces_fragmentation(self):
        os_ = boot()
        contexts = [spawn(os_, f"p{i}") for i in range(6)]
        # exit every other process: holes appear
        for ctx in contexts[::2]:
            ctx.exit(0)
        survivors = contexts[1::2]
        assert os_.vspace.fragmentation() > 0
        moves = os_.compact()
        assert moves  # something moved
        assert os_.vspace.fragmentation() == 0.0

    def test_survivors_functional_after_compaction(self):
        os_ = boot()
        contexts = [spawn(os_, f"p{i}") for i in range(4)]
        for ctx in contexts:
            buf = ctx.malloc(32)
            ctx.store(buf, b"pid-%02d" % ctx.pid)
            ctx.set_reg("c9", buf)
        contexts[0].exit(0)
        contexts[2].exit(0)
        os_.compact()
        for ctx in (contexts[1], contexts[3]):
            buf = ctx.reg("c9")
            assert ctx.load(buf, 6) == b"pid-%02d" % ctx.pid

    def test_compact_noop_when_packed(self):
        os_ = boot()
        spawn(os_)
        spawn(os_)
        assert os_.compact() == []

    def test_redis_survives_compaction(self):
        """A capability-dense application keeps working after a move."""
        from repro.apps.redis import redis_image
        from repro.mem.layout import MiB
        os_ = boot()
        # the hole must be at least as large as the Redis region for
        # first-fit compaction to move Redis down into it
        hole = GuestContext(os_, os_.spawn(redis_image(1 * MiB), "hole"))
        proc = os_.spawn(redis_image(1 * MiB), "redis")
        store = MiniRedis(GuestContext(os_, proc), nbuckets=64)
        for index in range(30):
            store.set(b"k%02d" % index, b"value-%02d" % index)
        hole.exit(0)
        moves = os_.compact()
        assert any(pid == proc.pid for pid, _old, _new in moves)
        # the store must be re-attached (its cached caps are stale)
        store = MiniRedis.attach(GuestContext(os_, proc))
        for index in range(30):
            assert store.get(b"k%02d" % index) == b"value-%02d" % index

"""Absolute-memory-reference relocation (paper §4.2).

When μFork copies a page from the parent's area into the child's, the
copy is scanned in 16-byte (capability-granule) steps.  Granules whose
validity tag is set hold capabilities; any capability that points into
the parent's region — or whose bounds would let the child reach outside
its own region — is rebased by ``child_base - parent_base`` and its
bounds clamped to the child's region.  Sealed sentry capabilities (the
trapless syscall gates) are the one sanctioned cross-region reference
and are preserved.  Anything else pointing outside both regions is
invalidated, which is how μFork guarantees capabilities never leak
across μprocesses (§4.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro import perf as _perf
from repro.cheri.capability import Capability
from repro.cheri.codec import CAP_SIZE
from repro.cheri.regfile import RegisterFile
from repro.hw.phys import Frame

#: the per-machine raw-relocation memo is dropped wholesale at this size
_RELOC_MEMO_CAP = 65536

#: the per-machine whole-page content memo (fork's fused copy+relocate
#: path) is dropped wholesale at this size
_PAGE_MEMO_CAP = 4096

#: memo-miss sentinel (``None`` is a legitimate cached value)
_MISSING = object()


@dataclass(frozen=True)
class RegionPair:
    """Source (parent) and destination (child) region spans."""

    parent_base: int
    parent_top: int
    child_base: int
    child_top: int

    @property
    def delta(self) -> int:
        return self.child_base - self.parent_base

    def in_parent(self, addr: int) -> bool:
        return self.parent_base <= addr < self.parent_top

    def in_child(self, addr: int) -> bool:
        return self.child_base <= addr < self.child_top


def relocate_cap(cap: Capability, regions: RegionPair) -> Capability:
    """Return the relocated form of one capability (or ``cap`` itself
    when no change is needed).

    Rules, in order:

    1. invalid capabilities are left alone (no authority to leak);
    2. sealed sentries (syscall gates) are preserved — they are the
       sanctioned kernel entry point and cannot be modified anyway;
    3. capabilities already confined to the child's region are fine;
    4. capabilities pointing into the parent's region are rebased by
       the region delta and clamped to the child's region;
    5. anything else would leak authority outside the μprocess and is
       invalidated.
    """
    if not cap.valid:
        return cap
    if cap.is_sentry:
        return cap
    if regions.in_child(cap.base) and cap.top <= regions.child_top:
        return cap
    if regions.in_parent(cap.base) or regions.in_parent(cap.cursor):
        moved = cap.rebased(regions.delta)
        if moved.base < regions.child_base or moved.top > regions.child_top:
            moved = moved.clamped_to(regions.child_base, regions.child_top)
        return moved
    return cap.invalidated()


def relocate_frame(machine: Any, frame: Frame, regions: RegionPair) -> int:
    """Scan one (already copied) frame and relocate its capabilities.

    Charges the tag scan plus one relocation cost per rewritten
    capability; returns the number of capabilities relocated.
    """
    config = machine.config
    machine.charge(
        machine.costs.page_scan_ns(config.page_size, config.granule),
        "reloc_scan",
    )
    obs = machine.obs
    if obs.enabled:
        obs.count("core.relocate.frames_scanned")
        obs.count("hw.phys.tag_granules_scanned",
                  config.page_size // config.granule)
    if _perf.ENABLED:
        relocated = _relocate_frame_memoised(machine, frame, regions)
    else:
        relocated = 0
        for offset in frame.tagged_granules():
            cap = frame.load_cap(offset, machine.codec)
            moved = relocate_cap(cap, regions)
            if moved is not cap:
                frame.store_cap(offset, moved, machine.codec)
                machine.charge(machine.costs.cap_relocate_ns, "reloc_cap")
                relocated += 1
    if relocated:
        machine.counters.add("caps_relocated", relocated)
        obs.count("core.relocate.caps_relocated", relocated)
        machine.trace("relocate_frame", caps=relocated)
    return relocated


def relocate_frames(machine: Any, frames: List[Frame],
                    regions: RegionPair) -> int:
    """Relocate a batch of already-copied frames (fork's bulk path).

    Simulated-identical to calling :func:`relocate_frame` once per
    frame: the per-frame page-scan charge and sweep counts are batched
    into single sum-equal updates when the scan cost is integral (the
    charges round identically per frame, and counters/metrics record
    pure sums).  Falls back to the per-frame loop whenever batching
    could be observable (tracer attached, non-integral scan cost, or
    :mod:`repro.perf` disabled).
    """
    count = len(frames)
    if count == 0:
        return 0
    config = machine.config
    scan_ns = machine.costs.page_scan_ns(config.page_size, config.granule)
    if not _perf.ENABLED or machine.tracer is not None or \
            scan_ns != int(scan_ns):
        total = 0
        for frame in frames:
            total += relocate_frame(machine, frame, regions)
        return total
    machine.charge(int(scan_ns) * count, "reloc_scan")
    obs = machine.obs
    obs_enabled = obs.enabled
    if obs_enabled:
        obs.count("core.relocate.frames_scanned", count)
        obs.count("hw.phys.tag_granules_scanned",
                  (config.page_size // config.granule) * count)
    counters = machine.counters
    total = 0
    for frame in frames:
        relocated = _relocate_frame_memoised(machine, frame, regions)
        if relocated:
            counters.add("caps_relocated", relocated)
            if obs_enabled:
                obs.count("core.relocate.caps_relocated", relocated)
                obs.count("trace.relocate_frame")
            total += relocated
    return total


def relocate_copied_frames(machine: Any, phys: Any, srcs: List[int],
                           dsts: List[int], regions: RegionPair) -> int:
    """Relocate fork-copied frames through a whole-page content memo.

    ``dsts[i]`` holds a fresh tag-preserving copy of ``srcs[i]``.
    Simulated-identical to :func:`relocate_frames` over the destination
    frames; the extra lever is a memo keyed on the *source* frame's
    ``(number, version)`` plus the region pair.  A source page that has
    not been written since the last fork over the same region pair
    relocates to exactly the same destination bytes, so the memo replays
    the post-relocation page content (data + tags) instead of rescanning
    granules — the common case for a fork server whose image is stable
    across forks.

    Charge/counter parity: the per-frame scan charge and sweep counts
    are batched exactly as in :func:`relocate_frames`; memo-hit frames
    batch their ``cap_relocate_ns`` charges into one sum-equal advance
    (integral cost pre-checked — non-integral costs, an attached tracer
    or disabled perf all take the per-frame path).
    """
    count = len(dsts)
    if count == 0:
        return 0
    config = machine.config
    scan_ns = machine.costs.page_scan_ns(config.page_size, config.granule)
    per_cap = machine.costs.cap_relocate_ns
    if not _perf.ENABLED or machine.tracer is not None or \
            scan_ns != int(scan_ns) or per_cap != int(per_cap):
        total = 0
        for dst in dsts:
            total += relocate_frame(machine, phys.frame(dst), regions)
        return total
    memo = getattr(machine, "_page_memo", None)
    if memo is None:
        memo = machine._page_memo = {}
    region_key = (regions.parent_base, regions.parent_top,
                  regions.child_base, regions.child_top)
    machine.charge(int(scan_ns) * count, "reloc_scan")
    obs = machine.obs
    obs_enabled = obs.enabled
    if obs_enabled:
        obs.count("core.relocate.frames_scanned", count)
        obs.count("hw.phys.tag_granules_scanned",
                  (config.page_size // config.granule) * count)
    counters = machine.counters
    frame_of = phys.frame
    total = 0
    caps_batched = 0
    for src, dst in zip(srcs, dsts):
        src_frame = frame_of(src)
        dst_frame = frame_of(dst)
        key = (region_key, src, src_frame.version)
        entry = memo.get(key, _MISSING)
        if entry is _MISSING:
            relocated = _relocate_frame_memoised(machine, dst_frame, regions)
            if len(memo) >= _PAGE_MEMO_CAP:
                memo.clear()
            if relocated:
                memo[key] = (*dst_frame.snapshot_content(), relocated)
            else:
                memo[key] = 0
        elif entry != 0:
            data_bytes, tags_bytes, relocated = entry
            dst_frame.restore_content(data_bytes, tags_bytes)
            caps_batched += relocated
        else:
            relocated = 0
        if relocated:
            counters.add("caps_relocated", relocated)
            if obs_enabled:
                obs.count("core.relocate.caps_relocated", relocated)
                obs.count("trace.relocate_frame")
            total += relocated
    if caps_batched:
        machine.charge(int(per_cap) * caps_batched, "reloc_cap")
    return total


def _relocate_frame_memoised(machine: Any, frame: Frame,
                             regions: RegionPair) -> int:
    """The :mod:`repro.perf` scan: memoises relocation at the raw-bytes
    level so repeated forks over a stable region pair skip the
    decode → relocate → encode chain per capability.

    Soundness: a granule's 16 raw bytes plus the region pair fully
    determine the relocation outcome — decode is a pure lookup in the
    codec's append-only intern table, :func:`relocate_cap` is a pure
    function, and encode of an interned capability is stable.  The one
    unstable case (raw bytes naming a not-yet-interned meta id, which
    decodes invalid today but could decode valid after more interning)
    is never memoised; it cannot occur for *tagged* granules anyway,
    since only a legitimate ``store_cap`` sets a tag.

    The simulated charge stream is identical to the plain loop: one
    ``cap_relocate_ns`` per rewritten capability, batched into a single
    ``advance`` only when the cost is integral (sum-equal is then
    bit-equal, and the observability layer records pure sums).
    """
    memo = machine._reloc_memo
    region_key = (regions.parent_base, regions.parent_top,
                  regions.child_base, regions.child_top)
    codec = machine.codec
    data = frame.data
    relocated = 0
    for offset in frame.tagged_granules():
        raw = bytes(data[offset:offset + CAP_SIZE])
        key = (region_key, raw)
        entry = memo.get(key, _MISSING)
        if entry is _MISSING:
            cap = codec.decode(raw, True)
            moved = relocate_cap(cap, regions)
            if moved is cap:
                entry = None
            else:
                entry = (codec.encode(moved),
                         1 if moved.valid else 0)
            if cap.valid:
                if len(memo) >= _RELOC_MEMO_CAP:
                    memo.clear()
                memo[key] = entry
        if entry is not None:
            new_raw, new_tag = entry
            frame.write_granule(offset, new_raw, new_tag)
            relocated += 1
    if relocated:
        per_cap = machine.costs.cap_relocate_ns
        if per_cap == int(per_cap):
            machine.charge(per_cap * relocated, "reloc_cap")
        else:  # non-integral cost: per-cap rounding must be preserved
            for _ in range(relocated):
                machine.charge(per_cap, "reloc_cap")
    return relocated


def relocate_registers(machine: Any, registers: RegisterFile,
                       regions: RegionPair) -> int:
    """Relocate capability-valued registers for the child (§3.5 step 2).

    Tags extend to register values, so integers are left untouched.
    """
    relocated = 0
    for name, cap in list(registers.cap_registers()):
        moved = relocate_cap(cap, regions)
        if moved is not cap:
            registers.set(name, moved)
            machine.charge(machine.costs.cap_relocate_ns, "reloc_reg")
            relocated += 1
    if relocated:
        machine.obs.count("core.relocate.registers_relocated", relocated)
    return relocated


# ---------------------------------------------------------------------------
# Capability-flow provenance log
# ---------------------------------------------------------------------------
#
# Every event that mints or re-mints a μprocess's region authority —
# spawn, fork (one relocate_cap sweep per strategy), migrate/compact,
# snapshot restore — records a compact provenance tuple here.  The
# security auditor (repro.sec.auditor) uses the log to attribute a
# leaked capability to the μprocess it was minted for and to print the
# derivation chain that produced that μprocess's authority.

#: bounded history: old entries age out once a machine has seen this
#: many authority events (reaped μprocesses stop being attributable,
#: which is fine — their authority is dead too)
_FLOW_LOG_CAP = 1024

FlowEvent = Tuple[str, int, int, int, int, str]


def record_flow(machine: Any, event: str, src_pid: int, dst_pid: int,
                region_base: int, region_top: int, detail: str = "") -> None:
    """Append one authority event to the machine's capability-flow log.

    ``event`` is one of ``spawn``/``fork``/``migrate``/``restore``;
    ``src_pid`` is the μprocess the authority derives from (0 for the
    kernel root) and ``dst_pid`` the μprocess it was minted for.
    """
    log = getattr(machine, "_capflow", None)
    if log is None:
        log = deque(maxlen=_FLOW_LOG_CAP)
        machine._capflow = log
    log.append((event, src_pid, dst_pid, region_base, region_top, detail))


def flow_log(machine: Any) -> List[FlowEvent]:
    """The machine's authority events, oldest first."""
    return list(getattr(machine, "_capflow", ()))


def derivation_chain(machine: Any, pid: int, limit: int = 8) -> str:
    """Human-readable derivation chain for one μprocess's authority.

    Walks the flow log newest-first following ``src_pid`` links, e.g.
    ``spawn[0->1] -> fork:copa[1->3]`` — the relocate_cap sweeps that
    produced pid 3's region authority.
    """
    links = []
    cursor = pid
    events = flow_log(machine)
    for _ in range(limit):
        hit = next((e for e in reversed(events) if e[2] == cursor), None)
        if hit is None:
            break
        event, src, dst, _base, _top, detail = hit
        tag = f"{event}:{detail}" if detail else event
        links.append(f"{tag}[{src}->{dst}]")
        if src == 0 or src == cursor:
            break
        cursor = src
    if not links:
        return "unknown provenance"
    return " -> ".join(reversed(links))


def find_unrelocated(machine: Any, frame: Frame,
                     regions: RegionPair) -> list:
    """Debug/verification helper: capabilities in a frame that still
    point into the parent region (should be empty after relocation)."""
    leaks = []
    for offset in frame.tagged_granules():
        cap = frame.load_cap(offset, machine.codec)
        if cap.valid and not cap.is_sentry and regions.in_parent(cap.base):
            leaks.append((offset, cap))
    return leaks

"""The SMP executor: a parallel schedule for synchronous driver code.

The reproduction's drivers (the zygote loop, nginx workers) are plain
synchronous Python, and every kernel primitive charges the one global
:class:`~repro.clock.SimClock`.  The executor layers a *two-level time
model* on top:

* **mechanism time** stays on the global clock — fork phases, faults,
  IPIs, syscalls all charge exactly what they always did;
* **schedule time** lives on per-CPU ``local_ns`` timelines: each
  driver step runs under a stopwatch, and the elapsed mechanism time is
  charged to the executing CPU's timeline.  The run's *makespan* is
  the maximum timeline — which is how N CPUs chewing independent steps
  finish in ~1/N the simulated wall time while every individual cost
  stays identical.

Dispatch is greedy deterministic list scheduling: the CPU with the
earliest local time bids first (lowest id breaks ties), asks the
scheduler for work (local queue, then stealing), and runs one bound
step to completion.  A step may return a number of nanoseconds of
device wait (I/O overlap): that portion holds the *task* but not the
CPU, which is what makes extra nginx workers help even on one core.

Steps re-submitted while running become ready when the submitting step
retires — a forked child cannot start before its fork returned.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.smp.sched import SmpScheduler

#: a driver step: runs guest/kernel code, optionally returns ns of
#: device wait to overlap (None/0 = pure CPU)
Step = Callable[[], Optional[float]]


class SmpExecutor:
    """Run bound task steps across the machine's online CPUs."""

    def __init__(self, os_: Any) -> None:
        self.os = os_
        self.machine = os_.machine
        self.sched = os_.sched
        self._steps: Dict[int, Step] = {}
        self._ready: Dict[int, float] = {}
        self._in_step = False
        self._submitted_in_step: List[int] = []
        self.steps_run = 0
        self.makespan_ns = 0.0

    # -- driver API ------------------------------------------------------

    def submit(self, task: Any, step: Step,
               ready_ns: Optional[float] = None) -> None:
        """Bind ``step`` to ``task`` and enqueue it.

        Called mid-step (a fork handing out child work, a worker
        re-arming itself), the new step becomes ready when the current
        step retires; otherwise at ``ready_ns`` (default: immediately).
        """
        self._steps[task.tid] = step
        if ready_ns is not None:
            self._ready[task.tid] = float(ready_ns)
        elif self._in_step:
            self._submitted_in_step.append(task.tid)
        self.os.sched.add(task)

    def run(self) -> float:
        """Drain every bound step; returns the makespan in ns."""
        machine = self.machine
        cpus = machine.cpus
        while True:
            progressed = False
            for cpu in sorted(cpus, key=lambda c: (c.local_ns, c.core_id)):
                task = self._pick(cpu.core_id)
                if task is None:
                    continue
                self._run_step(cpu, task)
                progressed = True
                break
            if not progressed:
                break
        self.makespan_ns = max((cpu.local_ns for cpu in cpus), default=0.0)
        return self.makespan_ns

    # -- internals -------------------------------------------------------

    def _pick(self, cpu: int) -> Optional[Any]:
        """Next bound task for ``cpu``; unbound tasks (kernel-enqueued
        but never given a driver step) are dropped from the queues so
        they cannot stall the run."""
        while True:
            if isinstance(self.sched, SmpScheduler):
                task = self.sched.pick_for_cpu(cpu)
            else:
                task = self.sched.pick_next()
            if task is None:
                return None
            if task.tid in self._steps:
                return task
            self.sched.remove(task)

    def _run_step(self, cpu: Any, task: Any) -> None:
        machine = self.machine
        start = max(cpu.local_ns, self._ready.pop(task.tid, 0.0))
        if start > cpu.local_ns:
            cpu.idle_ns += start - cpu.local_ns
        step = self._steps.pop(task.tid)
        previous_cpu = machine.current_cpu
        machine.current_cpu = cpu.core_id
        if isinstance(self.sched, SmpScheduler):
            self.sched.switch_to(task, cpu=cpu.core_id)
        else:
            self.sched.switch_to(task)
        task.last_cpu = cpu.core_id
        self._in_step = True
        try:
            with machine.clock.measure() as watch:
                result = step()
        finally:
            self._in_step = False
            machine.current_cpu = previous_cpu
        elapsed = float(watch.elapsed_ns)
        io_ns = float(result) if isinstance(result, (int, float)) else 0.0
        io_ns = min(max(io_ns, 0.0), elapsed)
        busy = elapsed - io_ns
        end = start + elapsed
        cpu.local_ns = start + busy
        cpu.busy_ns += busy
        cpu.steps += 1
        self.steps_run += 1
        # work handed out during the step starts once the step retired;
        # a self-re-submitting task also waits out its own device time
        for tid in self._submitted_in_step:
            self._ready[tid] = end
        self._submitted_in_step.clear()

    # -- metrics ---------------------------------------------------------

    def export_cpu_metrics(self) -> None:
        """Publish per-CPU timeline gauges into the machine's obs
        registry (``smp.cpu<i>.busy_ns`` / ``idle_ns`` / ``steps``)."""
        obs = self.machine.obs
        if not obs.enabled:
            return
        for cpu in self.machine.cpus:
            prefix = f"smp.cpu{cpu.core_id}"
            obs.gauge_set(f"{prefix}.busy_ns", int(cpu.busy_ns))
            obs.gauge_set(f"{prefix}.idle_ns", int(cpu.idle_ns))
            obs.gauge_set(f"{prefix}.steps", cpu.steps)

"""MiniRedis: an in-memory key-value store with fork-based snapshots.

Reproduces the Redis BGSAVE pattern (U2 + U4): the parent forks, the
child serializes the database to the ram-disk while the parent keeps
serving writes, sharing memory copy-on-write style.

Fidelity matters here: the whole database — bucket array, entry
headers, value blocks — lives in **simulated guest memory**, linked by
tagged capabilities.  The child walks it through its *relocated* root
capability, so a correct snapshot is direct evidence that μFork's
relocation works; and the pages the child's capability loads touch are
exactly the pages CoPA copies, which is where the Fig 4/5 numbers come
from.

Entry block layout (one allocation):
  [ 0:16)  next-entry capability (or untagged when end of chain)
  [16:32)  value capability
  [32:40)  key length  (u64)
  [40:48)  value length (u64)
  [48:..)  key bytes
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.cheri.capability import Capability
from repro.errors import InvalidArgument
from repro.cheri.codec import CAP_SIZE
from repro.mem.layout import KiB, MiB, ProgramImage

_LENGTHS = struct.Struct("<QQ")
_ENTRY_HEADER = 48

#: registers holding the database roots across fork
ROOT_REG = "c10"
META_REG = "c11"

RDB_MAGIC = b"MINIRDB1"


def redis_image(db_bytes: int = 16 * MiB) -> ProgramImage:
    """The Redis program image; the static heap is sized to the expected
    database (paper §4.2: build-time-configurable static heap — 136.7 MB
    for the 100 MB database in §5.2)."""
    heap = max(4 * MiB, int(db_bytes * 1.37))
    return ProgramImage(
        name="redis",
        code_size=512 * KiB,
        rodata_size=128 * KiB,
        data_size=64 * KiB,
        got_entries=2048,
        tls_size=16 * KiB,
        heap_size=heap,
        mmap_size=256 * KiB,
        stack_size=64 * KiB,
    )


@dataclass
class SaveMetrics:
    """What one BGSAVE cost (the Fig 3/4/5 measurements)."""

    fork_latency_ns: int
    save_total_ns: int
    child_extra_bytes: int
    child_resident_bytes: float
    page_copies: int
    bytes_written: int


class MiniRedis:
    """The key-value store, bound to one process's GuestContext."""

    def __init__(self, ctx: Any, nbuckets: int = 1024) -> None:
        self.ctx = ctx
        self.nbuckets = nbuckets
        self.buckets = ctx.malloc(nbuckets * CAP_SIZE)
        #: small metadata block: [0:8) item count
        self.meta = ctx.malloc(16)
        ctx.store_u64(self.meta, 0)
        ctx.set_reg(ROOT_REG, self.buckets)
        ctx.set_reg(META_REG, self.meta)

    @classmethod
    def attach(cls, ctx: Any) -> "MiniRedis":
        """Rebuild the store's view from (relocated) root registers —
        what the forked child does."""
        store = cls.__new__(cls)
        store.ctx = ctx
        store.buckets = ctx.reg(ROOT_REG)
        store.meta = ctx.reg(META_REG)
        store.nbuckets = store.buckets.length // CAP_SIZE
        return store

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def set(self, key: bytes, value: bytes) -> None:
        self.ctx.compute(80)
        slot = self._bucket_index(key)
        entry = self._find_entry(key, slot)
        if entry is not None:
            self._replace_value(entry, value)
            return
        value_cap = self.ctx.malloc(max(1, len(value)))
        self.ctx.store(value_cap, value)
        entry_cap = self.ctx.malloc(_ENTRY_HEADER + len(key))
        head = self.ctx.load_cap(self.buckets, slot * CAP_SIZE)
        if head.valid:
            self.ctx.store_cap(entry_cap, head, 0)
        else:
            self.ctx.store(entry_cap, b"\x00" * CAP_SIZE, 0)  # clears tag
        self.ctx.store_cap(entry_cap, value_cap, 16)
        self.ctx.store(entry_cap, _LENGTHS.pack(len(key), len(value)), 32)
        self.ctx.store(entry_cap, key, _ENTRY_HEADER)
        self.ctx.store_cap(self.buckets, entry_cap, slot * CAP_SIZE)
        self._bump_count(+1)

    def get(self, key: bytes) -> Optional[bytes]:
        self.ctx.compute(60)
        entry = self._find_entry(key, self._bucket_index(key))
        if entry is None:
            return None
        _klen, vlen = self._lengths(entry)
        value_cap = self.ctx.load_cap(entry, 16)
        return self.ctx.load(value_cap, vlen)

    def delete(self, key: bytes) -> bool:
        self.ctx.compute(60)
        slot = self._bucket_index(key)
        prev: Optional[Capability] = None
        entry = self._head(slot)
        while entry is not None:
            if self._key_of(entry) == key:
                next_cap = self.ctx.load_cap(entry, 0)
                if prev is None:
                    if next_cap.valid:
                        self.ctx.store_cap(self.buckets, next_cap,
                                           slot * CAP_SIZE)
                    else:
                        self.ctx.store(self.buckets, b"\x00" * CAP_SIZE,
                                       slot * CAP_SIZE)
                elif next_cap.valid:
                    self.ctx.store_cap(prev, next_cap, 0)
                else:
                    self.ctx.store(prev, b"\x00" * CAP_SIZE, 0)
                value_cap = self.ctx.load_cap(entry, 16)
                self.ctx.free(value_cap)
                self.ctx.free(entry)
                self._bump_count(-1)
                return True
            prev, entry = entry, self._next(entry)
        return False

    def exists(self, key: bytes) -> bool:
        self.ctx.compute(40)
        return self._find_entry(key, self._bucket_index(key)) is not None

    def append(self, key: bytes, suffix: bytes) -> int:
        """APPEND: concatenate to an existing value (or create);
        returns the new length."""
        self.ctx.compute(80)
        current = self.get(key)
        value = (current or b"") + suffix
        self.set(key, value)
        return len(value)

    def incr(self, key: bytes, delta: int = 1) -> int:
        """INCR/INCRBY: numeric counter semantics on string values."""
        self.ctx.compute(80)
        current = self.get(key)
        if current is None:
            value = delta
        else:
            try:
                value = int(current) + delta
            except ValueError:
                raise InvalidArgument(
                    f"value at {key!r} is not an integer"
                )
        self.set(key, b"%d" % value)
        return value

    def keys(self) -> List[bytes]:
        """KEYS *: all keys (a full capability-chasing table walk)."""
        return [key for key, _value in self.items()]

    def flushall(self) -> int:
        """FLUSHALL: delete everything; returns the count removed."""
        removed = 0
        for key in self.keys():
            if self.delete(key):
                removed += 1
        return removed

    def size(self) -> int:
        return self.ctx.load_u64(self.meta)

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate all (key, value) pairs (capability-chasing walk)."""
        for slot in range(self.nbuckets):
            entry = self._head(slot)
            while entry is not None:
                klen, vlen = self._lengths(entry)
                key = self.ctx.load(entry, klen, _ENTRY_HEADER)
                value_cap = self.ctx.load_cap(entry, 16)
                yield key, self.ctx.load(value_cap, vlen)
                entry = self._next(entry)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_to(self, path: str) -> int:
        """Serialize the database to the ram-disk (child-side of BGSAVE).

        Writes to a temp file then renames, like Redis' RDB writer.
        Returns bytes written.
        """
        from repro.kernel.vfs import O_CREAT, O_TRUNC, O_WRONLY
        ctx = self.ctx
        machine = ctx.os.machine
        tmp_path = path + ".tmp"
        fd = ctx.syscall("open", tmp_path, O_CREAT | O_TRUNC | O_WRONLY)
        written = 0
        header = RDB_MAGIC + struct.pack("<Q", self.size())
        machine.charge(machine.costs.serialize_ns_per_byte * len(header),
                       "serialize")
        written += ctx.write_bytes(fd, header)
        for key, value in self.items():
            record = _LENGTHS.pack(len(key), len(value)) + key + value
            machine.charge(
                machine.costs.serialize_ns_per_byte * len(record), "serialize"
            )
            written += ctx.write_bytes(fd, record)
        ctx.syscall("close", fd)
        ctx.syscall("rename", tmp_path, path)
        return written

    def load_from(self, path: str) -> int:
        """Restore the database from an RDB file (server restart path).

        Reads the dump through the normal fd interface into guest
        memory and rebuilds the hash table with fresh allocations.
        Returns the number of keys loaded.
        """
        from repro.kernel.vfs import O_RDONLY
        ctx = self.ctx
        size = ctx.syscall("stat", path)
        fd = ctx.syscall("open", path, O_RDONLY)
        raw = ctx.read_bytes(fd, size)
        ctx.syscall("close", fd)
        entries = self.parse_dump(raw)
        for key, value in entries.items():
            self.set(key, value)
        return len(entries)

    @staticmethod
    def parse_dump(raw: bytes) -> dict:
        """Parse an RDB dump back into a dict (verification helper)."""
        if raw[:8] != RDB_MAGIC:
            raise ValueError("bad RDB magic")
        (count,) = struct.unpack_from("<Q", raw, 8)
        offset = 16
        out = {}
        for _ in range(count):
            klen, vlen = _LENGTHS.unpack_from(raw, offset)
            offset += 16
            key = raw[offset:offset + klen]
            offset += klen
            value = raw[offset:offset + vlen]
            offset += vlen
            out[key] = value
        return out

    def bgsave(self, path: str) -> SaveMetrics:
        """Fork a child to snapshot the database (the Fig 3 operation)."""
        ctx = self.ctx
        machine = ctx.os.machine
        frames_before = machine.phys.allocated_frames
        copies_before = machine.counters.get("fork_page_copies")

        with machine.clock.measure() as total:
            with machine.clock.measure() as fork_watch:
                child_ctx = ctx.fork()
            child_store = MiniRedis.attach(child_ctx)
            bytes_written = child_store.save_to(path)
            child_extra = (
                machine.phys.allocated_frames - frames_before
            ) * machine.config.page_size
            child_resident = ctx.os.memory_of(child_ctx.proc)
            child_ctx.exit(0)
            ctx.wait(child_ctx.pid)

        return SaveMetrics(
            fork_latency_ns=fork_watch.elapsed_ns,
            save_total_ns=total.elapsed_ns,
            child_extra_bytes=child_extra,
            child_resident_bytes=child_resident,
            page_copies=(machine.counters.get("fork_page_copies")
                         - copies_before),
            bytes_written=bytes_written,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _bucket_index(self, key: bytes) -> int:
        return zlib.crc32(key) % self.nbuckets

    def _head(self, slot: int) -> Optional[Capability]:
        cap = self.ctx.load_cap(self.buckets, slot * CAP_SIZE)
        return cap if cap.valid else None

    def _next(self, entry: Capability) -> Optional[Capability]:
        cap = self.ctx.load_cap(entry, 0)
        return cap if cap.valid else None

    def _lengths(self, entry: Capability) -> Tuple[int, int]:
        raw = self.ctx.load(entry, 16, 32)
        klen, vlen = _LENGTHS.unpack(raw)
        return klen, vlen

    def _key_of(self, entry: Capability) -> bytes:
        klen, _vlen = self._lengths(entry)
        return self.ctx.load(entry, klen, _ENTRY_HEADER)

    def _find_entry(self, key: bytes, slot: int) -> Optional[Capability]:
        entry = self._head(slot)
        while entry is not None:
            if self._key_of(entry) == key:
                return entry
            entry = self._next(entry)
        return None

    def _replace_value(self, entry: Capability, value: bytes) -> None:
        old_value = self.ctx.load_cap(entry, 16)
        self.ctx.free(old_value)
        value_cap = self.ctx.malloc(max(1, len(value)))
        self.ctx.store(value_cap, value)
        self.ctx.store_cap(entry, value_cap, 16)
        klen, _ = self._lengths(entry)
        self.ctx.store(entry, _LENGTHS.pack(klen, len(value)), 32)

    def _bump_count(self, delta: int) -> None:
        self.ctx.store_u64(self.meta, self.size() + delta)


def populate(store: MiniRedis, total_bytes: int,
             value_size: int = 100 * KiB) -> int:
    """Fill the store with ``total_bytes`` of ``value_size`` values
    (the paper populates 100 KB entries)."""
    count = max(1, total_bytes // value_size)
    for index in range(count):
        key = b"key:%08d" % index
        value = bytes([index % 251]) * value_size
        store.set(key, value)
    return count

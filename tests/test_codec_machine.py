"""Tests for the capability codec, the Machine container, and the cost
model's derived helpers."""

import struct

import pytest

from repro.cheri.capability import Capability, Perm
from repro.cheri.codec import CAP_SIZE, CapabilityCodec
from repro.machine import Machine
from repro.params import CostModel, MachineConfig


class TestCodec:
    def make_cap(self, cursor=0x2010):
        return Capability(base=0x2000, length=0x100, cursor=cursor,
                          perms=Perm.data_rw())

    def test_roundtrip(self):
        codec = CapabilityCodec()
        cap = self.make_cap()
        raw = codec.encode(cap)
        assert len(raw) == CAP_SIZE
        assert codec.decode(raw, valid=True) == cap

    def test_cursor_visible_as_integer(self):
        """Integer loads of a pointer's bytes observe its address (as on
        hardware): the first 8 bytes are the little-endian cursor."""
        codec = CapabilityCodec()
        raw = codec.encode(self.make_cap(cursor=0xDEAD))
        (cursor,) = struct.unpack_from("<Q", raw, 0)
        assert cursor == 0xDEAD

    def test_untagged_decode_is_invalid(self):
        codec = CapabilityCodec()
        raw = codec.encode(self.make_cap())
        decoded = codec.decode(raw, valid=False)
        assert not decoded.valid
        assert decoded.cursor == self.make_cap().cursor

    def test_forged_metadata_yields_powerless_cap(self):
        """An attacker fabricating bytes with a bogus metadata index
        gets a permissionless, invalid value — unforgeability."""
        codec = CapabilityCodec()
        forged = struct.pack("<QQ", 0x4000, 999_999)
        decoded = codec.decode(forged, valid=True)
        assert not decoded.valid
        assert decoded.perms == Perm.NONE

    def test_metadata_interned(self):
        codec = CapabilityCodec()
        raw_a = codec.encode(self.make_cap(cursor=0x2000))
        raw_b = codec.encode(self.make_cap(cursor=0x2050))
        # same bounds/perms -> same metadata id (second 8 bytes)
        assert raw_a[8:] == raw_b[8:]

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            CapabilityCodec().decode(b"short", valid=True)

    def test_sealed_cap_roundtrips(self):
        codec = CapabilityCodec()
        sealed = self.make_cap().sealed(7)
        assert codec.decode(codec.encode(sealed), valid=True) == sealed


class TestMachine:
    def test_fresh_machines_independent(self):
        a, b = Machine(), Machine()
        a.clock.advance(100)
        a.phys.alloc()
        assert b.clock.now_ns == 0
        assert b.phys.allocated_frames == 0

    def test_cores_match_config(self):
        machine = Machine(config=MachineConfig(cores=2))
        assert len(machine.cores) == 2

    def test_charge_passthrough(self):
        machine = Machine()
        machine.charge(42, "bucket")
        assert machine.clock.now_ns == 42
        assert machine.clock.bucket_ns("bucket") == 42

    def test_seeded_rng_deterministic(self):
        assert Machine(seed=7).rng.random() == Machine(seed=7).rng.random()

    def test_custom_cost_model(self):
        costs = CostModel.morello().scaled(page_zero_ns=1.0)
        machine = Machine(costs=costs)
        before = machine.clock.now_ns
        machine.phys.alloc(zero=True)
        assert machine.clock.now_ns - before == 1


class TestCostModel:
    def test_morello_is_default(self):
        assert CostModel.morello() == CostModel()

    def test_scaled_overrides_one_field(self):
        scaled = CostModel.morello().scaled(trap_syscall_ns=9.0)
        assert scaled.trap_syscall_ns == 9.0
        assert scaled.sealed_syscall_ns == \
            CostModel.morello().sealed_syscall_ns

    def test_page_cost_helpers(self):
        costs = CostModel.morello()
        assert costs.page_copy_ns(4096) == \
            pytest.approx(4096 * costs.memcpy_ns_per_byte)
        assert costs.page_scan_ns(4096, 16) == \
            pytest.approx(256 * costs.tag_scan_ns_per_granule)

    def test_machine_config_helpers(self):
        config = MachineConfig()
        assert config.granules_per_page == 256
        assert config.page_of(0x1234) == 1
        assert config.page_base(0x1234) == 0x1000
        assert config.va_size == 1 << 48

"""repro.cluster — a sharded multi-machine cluster of Session shards.

The scale-out layer above the stable facade: N independent
:class:`repro.api.Session` machines ("shards") behind a deterministic
consistent-hash load balancer with request batching, per-shard zygote
warm pools (μFork's fast fork as the capacity primitive), and
cross-shard worker migration for rebalancing hot shards.  Traffic comes
from a seed-deterministic planet-scale trace synthesizer (Zipf key
popularity, diurnal waves, flash crowds over millions of simulated
users); results merge every shard's ``repro.obs/v1`` export into one
``repro.cluster/v1`` report with p50/p99/p999 latency and makespan,
byte-identical across same-seed runs.

The full contract is ``docs/CLUSTER.md``; the cost constants are
documented in ``docs/COSTMODEL.md`` ("The cluster cost model")::

    from repro.cluster import run_cluster

    report = run_cluster(seed=42, shards=2, workers=2, requests=20_000)
    report["latency_ns"]["p99"], report["makespan_ns"]

This package's import surface is light (no OS stack): the heavy
machinery lives in :mod:`repro.cluster.runner` / ``.shard`` and is
imported lazily by :func:`run_cluster`.
"""

from repro.cluster.balancer import (
    Batcher,
    ConsistentHashRing,
    remap_fraction_ppm,
)
from repro.cluster.params import DEFAULT_CLUSTER_COSTS, ClusterCosts
from repro.cluster.trace import (
    CLASSES,
    RECORD,
    TraceConfig,
    slot_counts,
    synthesize,
    trace_digest,
)

__all__ = [
    "Batcher",
    "CLASSES",
    "ClusterCosts",
    "ConsistentHashRing",
    "DEFAULT_CLUSTER_COSTS",
    "RECORD",
    "TraceConfig",
    "format_summary",
    "remap_fraction_ppm",
    "run_cluster",
    "slot_counts",
    "synthesize",
    "trace_digest",
]


def run_cluster(**kwargs):
    """Lazy forwarder to :func:`repro.cluster.runner.run_cluster` (keeps
    ``import repro.cluster`` free of the OS stack)."""
    from repro.cluster.runner import run_cluster as _run

    return _run(**kwargs)


def format_summary(report):
    """Lazy forwarder to :func:`repro.cluster.runner.format_summary`."""
    from repro.cluster.runner import format_summary as _format

    return _format(report)

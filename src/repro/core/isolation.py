"""μFork isolation mechanisms (paper §3.6, §4.3, §4.4).

Builds the CHERI-specific pieces on top of the generic syscall layer:

* **sealed syscall gates** — sentry capabilities that are the only way
  into the kernel, giving trapless (fast) entry with restricted entry
  points;
* **privileged-instruction confinement** — μprocess capabilities never
  carry the SYSTEM permission, so MSR/MRS-class operations fault;
* **capability assignment** — deriving each μprocess's bounded root
  capabilities from the kernel's root so no μprocess can reach outside
  its region.
"""

from __future__ import annotations

from typing import Any

from repro.cheri.capability import Capability, OTYPE_SENTRY, Perm
from repro.errors import PrivilegeViolation

# Re-exported so `repro.core` exposes the paper's parameterized
# isolation next to the copy strategies.
from repro.kernel.syscalls import IsolationConfig, IsolationLevel  # noqa: F401


def make_syscall_gate(kernel_code_cap: Capability,
                      gate_addr: int) -> Capability:
    """Create the sealed sentry capability for kernel entry.

    The gate targets the fixed syscall-handler address; sealing makes it
    unforgeable and unmodifiable — invoking it is the only way a
    μprocess can transfer control into the kernel (§4.4 principle 1).
    """
    gate = (
        kernel_code_cap
        .set_bounds(gate_addr, 16)
        .with_cursor(gate_addr)
        .and_perms(Perm.LOAD | Perm.EXECUTE | Perm.GLOBAL)
    )
    return gate.sealed(OTYPE_SENTRY)


def derive_uprocess_roots(kernel_root: Capability, region_base: int,
                          region_size: int) -> Capability:
    """Derive a μprocess's region capability from the kernel root.

    The result is bounded to the μprocess's contiguous area and carries
    no SYSTEM permission — the key security invariant of §4.2.
    """
    region = kernel_root.set_bounds(region_base, region_size)
    region = region.without_perms(Perm.SYSTEM | Perm.SEAL | Perm.UNSEAL)
    return region.with_cursor(region_base)


def check_privileged(cap: Capability, operation: str = "msr") -> None:
    """Gate privileged (system-register) operations on the SYSTEM
    permission (§4.4 principle 2).

    The kernel's capabilities carry SYSTEM; μprocess capabilities never
    do, so user code attempting e.g. ``MSR``/``MRS`` faults without any
    need for instruction scanning.
    """
    if not cap.valid or not cap.has_perm(Perm.SYSTEM):
        raise PrivilegeViolation(
            f"privileged operation {operation!r} without SYSTEM permission"
        )


def assert_confined(cap: Capability, region_base: int,
                    region_top: int) -> bool:
    """True if a capability cannot reach outside [region_base, region_top).

    Sentries are exempt (they cannot be dereferenced, only invoked).
    """
    if not cap.valid:
        return True
    if cap.is_sentry:
        return True
    return region_base <= cap.base and cap.top <= region_top

"""Host-time microbenchmarks for the :mod:`repro.perf` hot paths.

Each microbenchmark drives the *same deterministic workload* twice on
fresh machines: once with every :mod:`repro.perf` optimisation disabled
(:func:`repro.perf.perf_disabled` — bit-for-bit the pre-optimisation
code paths) and once with them enabled.  Because the optimisations are
host-time only, both runs must land on the **identical simulated
nanosecond count** — the bench asserts this, so a speedup that changed
any simulated result fails loudly instead of silently corrupting the
paper's numbers.

The report (``BENCH_hotpath.json``, schema ``repro.perf/v1``) keeps
every wall-clock-dependent field inside per-benchmark ``host`` objects
and the top-level ``host_meta`` object; everything else is a pure
function of the seed, so two runs are byte-identical modulo those
fields (tests/test_bench.py checks exactly this).

CI gate: :func:`check_gate` fails when the optimised run exceeds
``max_ratio`` × the baseline on any benchmark.  With the vectorized
engine the bound is below 1: the optimised path must actually *beat*
the self-contained baseline on every benchmark, not merely avoid
regressing (current ratios run 0.19–0.75; the bound leaves noise
margin over the weakest).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Tuple

from repro import perf as _perf

#: report schema identifier
SCHEMA = "repro.perf/v1"

#: CI regression bound: optimised wall time may not exceed
#: ``baseline * MAX_RATIO`` — below 1.0, so the vectorized engine must
#: beat the self-contained baseline outright on every benchmark
MAX_RATIO = 0.90

#: cross-*run* drift bound for ``bench --check``: today's optimised
#: time may not exceed ``CROSS_RUN_RATIO`` × a previous report's.
#: Separate from (and looser than) :data:`MAX_RATIO`, which compares
#: within one run on one machine and so tolerates no machine noise.
CROSS_RUN_RATIO = 1.5


# ---------------------------------------------------------------------------
# Workloads — each returns (simulated_ns, config_dict)
# ---------------------------------------------------------------------------

def _bench_fork_full_copy(forks: int = 12,
                          db_bytes: int = 512 * 1024
                          ) -> Tuple[int, Dict[str, Any]]:
    """Repeated FULL_COPY forks of a populated Redis image.

    Every fork copies and *relocates* the whole region: the per-page
    tag scan in :meth:`repro.hw.phys.Frame.tagged_granules` and the
    page-walk cache in :class:`repro.hw.paging.AddressSpace` are the
    hot paths exercised.
    """
    from repro.apps.guest import GuestContext
    from repro.apps.redis import MiniRedis, populate, redis_image
    from repro.core import CopyStrategy, IsolationConfig, UForkOS
    from repro.machine import Machine

    os_ = UForkOS(machine=Machine(),
                  copy_strategy=CopyStrategy.FULL_COPY,
                  isolation=IsolationConfig.fault())
    proc = os_.spawn(redis_image(db_bytes), "redis")
    store = MiniRedis(GuestContext(os_, proc), nbuckets=256)
    populate(store, db_bytes, value_size=4096)
    parent = GuestContext(os_, proc)
    for _ in range(forks):
        child = parent.fork()
        child.exit(0)
        parent.wait(child.pid)
    return os_.machine.clock.now_ns, {
        "forks": forks, "db_bytes": db_bytes, "strategy": "full",
    }


def _bench_fault_storm(rounds: int = 6, pages: int = 192,
                       rewrites: int = 8) -> Tuple[int, Dict[str, Any]]:
    """CoPA page-fault storm with post-break write bursts.

    Each round forks, then dirties every parent page — each first write
    faults: frame copy (batched tag clear), PTE replace and a re-walk —
    and then re-writes the now-private pages ``rewrites`` more times,
    the way a fork server keeps using the pages it just broke.  The
    fault handler's whole stack *and* the page-walk/TLB cache layer are
    both on the measured path.
    """
    from repro.apps.guest import GuestContext
    from repro.core import CopyStrategy, IsolationConfig, UForkOS
    from repro.machine import Machine
    from repro.mem.layout import ProgramImage

    os_ = UForkOS(machine=Machine(),
                  copy_strategy=CopyStrategy.COPA,
                  isolation=IsolationConfig.fault())
    page = os_.machine.config.page_size
    # right-sized image: the heap holds the storm buffer plus allocator
    # metadata, and nothing else inflates load time
    image = ProgramImage(name="storm", got_entries=64,
                         heap_size=(pages + 64) * page)
    proc = os_.spawn(image, "storm")
    parent = GuestContext(os_, proc)
    buf = parent.malloc(pages * page)
    seed_bytes = b"\xA5" * 64
    dirty_bytes = b"\x5A" * 64
    burst_bytes = b"\x3C" * 64
    # the driver uses the guest batch primitive (store_run) so the
    # measurement is the simulator's per-store cost, not the benchmark
    # harness's; with perf disabled store_run degrades to the plain
    # per-store loop, keeping both modes on the same simulated stream
    store_run = parent.store_run
    offsets = [index * page for index in range(pages)]
    store_run(buf, seed_bytes, offsets)
    for _ in range(rounds):
        child = parent.fork()
        store_run(buf, dirty_bytes, offsets)
        for _ in range(rewrites):
            store_run(buf, burst_bytes, offsets)
        child.exit(0)
        parent.wait(child.pid)
    return os_.machine.clock.now_ns, {
        "rounds": rounds, "pages": pages, "rewrites": rewrites,
        "strategy": "copa",
    }


def _bench_pipe_pingpong(transfers: int = 400, chunk: int = 4096
                         ) -> Tuple[int, Dict[str, Any]]:
    """4 KiB pipe round-trips through the full syscall path.

    Exercises syscall dispatch, entry accounting and the user-buffer
    copies that resolve every page through the address space.
    """
    from repro.apps.guest import GuestContext
    from repro.apps.hello import hello_world_image
    from repro.core import CopyStrategy, IsolationConfig, UForkOS
    from repro.machine import Machine

    os_ = UForkOS(machine=Machine(),
                  copy_strategy=CopyStrategy.COPA,
                  isolation=IsolationConfig.fault())
    proc = os_.spawn(hello_world_image(), "pingpong")
    guest = GuestContext(os_, proc)
    read_fd, write_fd = guest.syscall("pipe")
    payload = bytes(range(256)) * (chunk // 256)
    for _ in range(transfers):
        guest.write_bytes(write_fd, payload)
        guest.read_bytes(read_fd, chunk)
    return os_.machine.clock.now_ns, {
        "transfers": transfers, "chunk": chunk,
    }


def _bench_conform_explorer(budget: int = 24
                            ) -> Tuple[int, Dict[str, Any]]:
    """A slice of the differential conformance explorer (no host
    oracle): scheduler picks, syscall dispatch and fork/exit churn
    across many short simulated runs.  The invariant is a digest of
    the *whole* conformance report, so any perf-mode divergence in any
    cell or explored schedule trips the cross-mode assertion."""
    import hashlib

    from repro.conform.runner import run_conform

    scenarios = ["pipe-hello", "wait-exit-status"]
    report = run_conform(seed=7, cpus=[1], strategies=["full", "copa"],
                         depth_bound=2, budget=budget,
                         scenario_names=scenarios, host=False)
    digest = hashlib.sha256(
        json.dumps(report, sort_keys=True).encode("utf-8")).hexdigest()
    return int(digest[:15], 16), {
        "budget": budget, "strategies": ["full", "copa"],
        "scenarios": scenarios,
    }


def _bench_snapshot_restore(cycles: int = 4
                            ) -> Tuple[int, Dict[str, Any]]:
    """The FaaS cold-start triathlon (:mod:`repro.apps.coldstart`):
    cold boot vs zygote fork vs snapshot restore, then ``cycles``
    further restores of the same blob hammering the checkpoint/restore
    hot paths (page serialization, tag scans, capability re-minting).
    The invariant folds every simulated interval and the blob length
    together, so a perf-mode divergence anywhere in the snapshot engine
    trips the cross-mode assertion."""
    from repro.apps.coldstart import coldstart_comparison, make_zygote_blob
    from repro.apps.guest import GuestContext
    from repro.core import CopyStrategy, UForkOS
    from repro.machine import Machine
    from repro.snapshot import restore

    comparison = coldstart_comparison(seed=7)
    blob = make_zygote_blob(seed=7)
    os_ = UForkOS(machine=Machine(seed=9),
                  copy_strategy=CopyStrategy.COPA)
    for _ in range(cycles):
        GuestContext(os_, restore(os_, blob)).exit(0)
    simulated = (os_.machine.clock.now_ns
                 + comparison["cold_boot_ns"]
                 + comparison["zygote_fork_ns"]
                 + comparison["snapshot_restore_ns"]
                 + comparison["blob_bytes"])
    return simulated, {
        "cycles": cycles, "blob_pages": comparison["blob_pages"],
        "function": comparison["function"],
    }


#: benchmark registry: name → workload
BENCHMARKS: Dict[str, Callable[[], Tuple[int, Dict[str, Any]]]] = {
    "fork_full_copy": _bench_fork_full_copy,
    "fault_storm": _bench_fault_storm,
    "pipe_pingpong": _bench_pipe_pingpong,
    "conform_explorer": _bench_conform_explorer,
    "snapshot_restore": _bench_snapshot_restore,
}


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------

def _timed(workload: Callable[[], Tuple[int, Dict[str, Any]]]
           ) -> Tuple[float, int, Dict[str, Any]]:
    started = time.perf_counter()
    simulated, config = workload()
    return time.perf_counter() - started, simulated, config


def run_benchmarks(names: List[str] = None,
                   verbose: bool = True) -> Dict[str, Any]:
    """Run each benchmark in both modes and build the report dict."""
    chosen = names or list(BENCHMARKS)
    unknown = [name for name in chosen if name not in BENCHMARKS]
    if unknown:
        raise KeyError(f"unknown benchmark(s): {unknown}; "
                       f"choose from {list(BENCHMARKS)}")
    rows = []
    for name in chosen:
        workload = BENCHMARKS[name]
        # untimed warm-up: pays one-time host costs (module imports,
        # bytecode compilation) so neither timed run is charged for them
        with _perf.perf_disabled():
            workload()
        with _perf.perf_disabled():
            base_s, base_sim, config = _timed(workload)
        with _perf.perf_enabled():
            opt_s, opt_sim, _ = _timed(workload)
        if base_sim != opt_sim:
            raise AssertionError(
                f"{name}: simulated results diverged across perf modes "
                f"({base_sim} disabled vs {opt_sim} enabled) — a perf "
                f"optimisation changed simulated behavior")
        row = {
            "name": name,
            "config": config,
            #: deterministic integer digest of the run's *simulated*
            #: results — the simulated clock for machine benches, a
            #: report digest for the explorer; equal across perf modes
            "invariant": base_sim,
            "host": {
                "baseline_s": round(base_s, 6),
                "optimized_s": round(opt_s, 6),
                "speedup": round(base_s / opt_s, 3) if opt_s else 0.0,
            },
        }
        rows.append(row)
        if verbose:
            print(f"  {name:<20} baseline {base_s:7.3f}s   "
                  f"optimized {opt_s:7.3f}s   "
                  f"speedup {row['host']['speedup']:5.2f}x")
    return {
        "schema": SCHEMA,
        "benchmarks": rows,
        "host_meta": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }


def strip_wallclock(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report with every wall-clock-dependent field removed — the
    part two runs of the same build must reproduce byte-for-byte."""
    stable = {key: value for key, value in report.items()
              if key != "host_meta"}
    stable["benchmarks"] = [
        {key: value for key, value in row.items() if key != "host"}
        for row in report["benchmarks"]
    ]
    return stable


def check_gate(report: Dict[str, Any],
               max_ratio: float = MAX_RATIO) -> List[str]:
    """Regression gate: the failures list is empty when every
    optimised run stays within ``max_ratio`` × its baseline."""
    failures = []
    for row in report["benchmarks"]:
        host = row["host"]
        if host["optimized_s"] > host["baseline_s"] * max_ratio:
            failures.append(
                f"{row['name']}: optimized {host['optimized_s']:.3f}s "
                f"exceeds baseline {host['baseline_s']:.3f}s "
                f"x {max_ratio}")
    return failures


def diff_reports(before: Dict[str, Any],
                 after: Dict[str, Any]) -> Dict[str, Any]:
    """Per-benchmark before/after host-time comparison of two reports.

    The CI bench job uploads this as its review artifact: for every
    benchmark present in either report it records both runs' host
    times and the speedup delta, so a PR's effect on the hot paths is
    readable without re-running anything.  Benchmarks present on only
    one side are kept with the other side ``None`` (added/removed
    benchmarks are part of the diff, not an error).
    """
    prior = {row["name"]: row for row in before.get("benchmarks", [])}
    current = {row["name"]: row for row in after.get("benchmarks", [])}
    names = list(dict.fromkeys([*prior, *current]))
    rows = []
    for name in names:
        old = prior.get(name)
        new = current.get(name)
        row: Dict[str, Any] = {
            "name": name,
            "before": None if old is None else dict(old["host"]),
            "after": None if new is None else dict(new["host"]),
        }
        if old is not None and new is not None:
            row["speedup_delta"] = round(
                new["host"]["speedup"] - old["host"]["speedup"], 3)
            row["optimized_ratio"] = round(
                new["host"]["optimized_s"] / old["host"]["optimized_s"], 3)
        rows.append(row)
    return {"schema": "repro.perf.diff/v1", "benchmarks": rows}


def write_report(report: Dict[str, Any], path: str) -> None:
    """Persist in the canonical harness report form (single shared
    writer: :mod:`repro.harness.reportio`)."""
    from repro.harness.reportio import write_report as _write
    _write(report, path)

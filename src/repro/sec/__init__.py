"""``repro.sec``: the adversarial capability-security suite.

Three pieces (docs/SECURITY.md):

* :mod:`repro.sec.attacks` — the attack corpus: adversarial guest
  programs that try to forge, widen, replay, or leak capabilities
  across μprocess boundaries;
* :mod:`repro.sec.auditor` — the capability-flow auditor: at any trap
  or preemption point, no live register or tagged granule may hold a
  capability whose provenance crosses a μprocess boundary (wired into
  the conform explorer/farm via ``check_invariants``);
* :mod:`repro.sec.runner` — the matrix runner behind
  ``python -m repro.harness sec``, emitting the byte-stable
  ``repro.sec/v1`` report.

The package root stays import-light (no OS stack): the conform
invariant hook imports :mod:`repro.sec.auditor` on its hot path.
"""

from repro.sec.attacks import (ATTACKS, Attack, AttackDefeated, AttackEnv,
                               SASOS_STRATEGIES, STRATEGIES)
from repro.sec.auditor import audit_cap_flow, provenance_of

__all__ = [
    "ATTACKS",
    "Attack",
    "AttackDefeated",
    "AttackEnv",
    "SASOS_STRATEGIES",
    "STRATEGIES",
    "audit_cap_flow",
    "provenance_of",
]

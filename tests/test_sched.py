"""Scheduler-queue hardening: removal is idempotent and torn-down tasks
can never be resurrected into the run queue (the chaos tier removes and
blocks blindly during mid-operation teardown)."""

from repro.kernel.sched import Scheduler
from repro.kernel.task import Process, TaskState
from repro.machine import Machine


def make_task():
    proc = Process(pid=100, name="victim")
    return proc.add_task()


def make_sched():
    return Scheduler(Machine(), same_address_space=True)


class TestIdempotentRemoval:
    def test_remove_of_never_enqueued_task_is_noop(self):
        sched = make_sched()
        task = make_task()
        sched.remove(task)                 # must not raise
        assert sched.runnable_count == 0

    def test_double_remove_is_noop(self):
        sched = make_sched()
        task = make_task()
        sched.add(task)
        sched.remove(task)
        sched.remove(task)
        assert sched.runnable_count == 0

    def test_block_of_never_enqueued_task_is_safe(self):
        sched = make_sched()
        task = make_task()
        sched.block(task)                  # must not raise
        assert task.state is TaskState.BLOCKED
        assert sched.runnable_count == 0

    def test_remove_clears_current(self):
        sched = make_sched()
        task = make_task()
        sched.add(task)
        sched.switch_to(task)
        assert sched.current is task
        sched.remove(task)
        assert sched.current is None


class TestNoResurrection:
    def test_block_after_exit_does_not_resurrect(self):
        sched = make_sched()
        task = make_task()
        task.state = TaskState.EXITED
        sched.block(task)
        assert task.state is TaskState.EXITED     # not demoted to BLOCKED
        sched.wake(task)
        assert task.state is TaskState.EXITED     # and wake can't revive it
        assert sched.runnable_count == 0

    def test_add_refuses_exited_task(self):
        sched = make_sched()
        task = make_task()
        task.state = TaskState.EXITED
        sched.add(task)
        assert sched.runnable_count == 0

    def test_process_exit_marks_tasks_exited(self):
        from repro.apps.guest import GuestContext
        from repro.apps.hello import hello_world_image
        from repro.core import IsolationConfig, UForkOS

        os_ = UForkOS(machine=Machine(),
                      isolation=IsolationConfig.fault())
        ctx = GuestContext(os_, os_.spawn(hello_world_image(), "app"))
        task = ctx.proc.main_task()
        ctx.exit(0)
        assert task.state is TaskState.EXITED
        os_.sched.block(task)              # late blind block: still EXITED
        assert task.state is TaskState.EXITED
        os_.sched.add(task)                # and it cannot re-enter the queue
        assert all(t is not task for t in os_.sched._runnable)

"""The deterministic, seed-driven fault-injection engine.

A :class:`ChaosEngine` decides, at every registered injection point,
whether the fault fires — from nothing but ``(seed, point, hit_index)``.
The draw is a keyed hash, so the schedule is a pure function of the
seed and the sequence of point hits: the same seed over the same
workload replays every injection bit-identically, adding a new point
never perturbs another point's schedule, and any failure reproduces
from its seed alone.

Machines carry a permanently disabled :data:`NULL_CHAOS` by default
(the same contract as ``machine.obs``): every site guards on
``machine.chaos.enabled``, one attribute check, and a disabled engine
never fires, never charges simulated time, and never records a metric
— figures with injection off are bit-identical to a build without
chaos at all.

Usage::

    machine = Machine(seed=7)
    engine = ChaosEngine(seed=7, mix=FaultMix.parse("default=0.05"))
    engine.attach(machine)
    ... run a workload ...
    engine.fired                  # point -> injection count
    engine.export()               # JSON-ready repro.chaos/v1 dict
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.chaos.faults import (
    INJECTION_POINTS,
    InjectedInterrupt,
    InjectedSyscallNoMem,
    InjectedWouldBlock,
)

SCHEMA = "repro.chaos/v1"

#: spurious cap-load-fault storms tolerated per degradation tier; at
#: ``DEGRADE_AFTER`` storms CoPA falls back to CoA, at twice that to
#: eager full copy (see docs/CHAOS.md)
DEGRADE_AFTER = 6


def _draw(seed: int, point: str, index: int) -> float:
    """Deterministic uniform draw in [0, 1) for one point hit."""
    data = f"{seed}:{point}:{index}".encode()
    digest = hashlib.blake2b(data, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


def deterministic_draw(seed: int, point: str, index: int = 0) -> float:
    """The engine's keyed-hash draw, exposed for other deterministic
    machinery (the conformance explorer orders its schedule frontier
    with it): a pure function of ``(seed, point, index)``, uniform in
    [0, 1), stable across platforms and Python versions."""
    return _draw(seed, point, index)


class FaultMix:
    """Per-point firing rates: ``pattern=rate`` pairs.

    Patterns are exact point names, ``prefix.*`` wildcards, or the
    special key ``default`` (the baseline rate for every point).  The
    most specific match wins: exact > longest wildcard > default.

    >>> mix = FaultMix.parse("default=0.01,core.ufork.abort.*=0.2")
    >>> mix.rate_for("core.ufork.abort.reserve")
    0.2
    """

    def __init__(self, rates: Optional[Dict[str, float]] = None,
                 default: float = 0.0) -> None:
        self.default = default
        self._exact: Dict[str, float] = {}
        self._prefixes: List[Tuple[str, float]] = []
        for pattern, rate in (rates or {}).items():
            self._add(pattern, rate)

    def _add(self, pattern: str, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate for {pattern!r} must be in [0, 1], "
                             f"got {rate}")
        if pattern == "default":
            self.default = rate
        elif pattern.endswith(".*"):
            prefix = pattern[:-1]  # keep the trailing dot
            if not any(name.startswith(prefix) for name in INJECTION_POINTS):
                raise ValueError(f"fault-mix pattern {pattern!r} matches "
                                 f"no registered injection point")
            self._prefixes.append((prefix, rate))
            self._prefixes.sort(key=lambda item: -len(item[0]))
        else:
            if pattern not in INJECTION_POINTS:
                raise ValueError(f"fault-mix names unknown injection "
                                 f"point {pattern!r}")
            self._exact[pattern] = rate

    @classmethod
    def parse(cls, spec: str) -> "FaultMix":
        """Parse ``pattern=rate,pattern=rate,...`` (docs/CHAOS.md)."""
        mix = cls()
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"fault-mix entry {part!r} is not "
                                 f"'pattern=rate'")
            pattern, _, rate = part.partition("=")
            mix._add(pattern.strip(), float(rate))
        return mix

    def rate_for(self, point: str) -> float:
        rate = self._exact.get(point)
        if rate is not None:
            return rate
        for prefix, prefix_rate in self._prefixes:
            if point.startswith(prefix):
                return prefix_rate
        return self.default

    def to_spec(self) -> str:
        """A canonical, re-parseable spec string (export stability)."""
        parts = [f"default={self.default!r}"]
        parts += [f"{prefix}*={rate!r}"
                  for prefix, rate in sorted(self._prefixes)]
        parts += [f"{name}={rate!r}"
                  for name, rate in sorted(self._exact.items())]
        return ",".join(parts)


class ChaosEngine:
    """Seed-driven fault injection with full accounting.

    ``hits`` counts how often each point was consulted, ``fired`` how
    often it injected, ``recovered`` how often a survival path reported
    success — all exported, and mirrored as ``chaos.*`` observability
    counters so chaos runs are attributable in ``repro.obs`` sidecars.
    """

    def __init__(self, seed: int, mix: Optional[FaultMix] = None,
                 enabled: bool = True,
                 degrade_after: int = DEGRADE_AFTER) -> None:
        self.seed = seed
        self.mix = mix or FaultMix()
        self.enabled = enabled
        self.degrade_after = degrade_after
        self.machine: Optional[Any] = None
        self.hits: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}
        self.recovered: Dict[str, int] = {}
        #: replayable injection log: (point, hit_index) in firing order
        self.injections: List[Tuple[str, int]] = []

    # -- lifecycle -------------------------------------------------------

    def attach(self, machine: Any) -> "ChaosEngine":
        """Install as ``machine.chaos`` (and on its physical memory,
        which holds no machine reference)."""
        self.machine = machine
        machine.chaos = self
        machine.phys.chaos = self
        return self

    def enable(self) -> "ChaosEngine":
        self.enabled = True
        return self

    def disable(self) -> None:
        self.enabled = False

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Suspend injection inside the block (setup/teardown code)."""
        previous = self.enabled
        self.enabled = False
        try:
            yield
        finally:
            self.enabled = previous

    # -- the schedule ----------------------------------------------------

    def should_fire(self, point: str) -> bool:
        """Consult the schedule at one injection point (counts the hit)."""
        if point not in INJECTION_POINTS:
            raise ValueError(f"unregistered injection point {point!r}")
        if not self.enabled:
            return False
        index = self.hits.get(point, 0) + 1
        self.hits[point] = index
        rate = self.mix.rate_for(point)
        if rate <= 0.0 or _draw(self.seed, point, index) >= rate:
            return False
        self.fired[point] = self.fired.get(point, 0) + 1
        self.injections.append((point, index))
        self._count(f"chaos.injected.{point}")
        if self.machine is not None:
            self.machine.trace("chaos_inject", point=point, hit=index)
        return True

    def note_recovery(self, point: str) -> None:
        """A survival path absorbed the most recent fault at ``point``."""
        self.recovered[point] = self.recovered.get(point, 0) + 1
        self._count(f"chaos.recovered.{point}")

    def _count(self, name: str, n: int = 1) -> None:
        if self.machine is not None:
            self.machine.obs.count(name, n)

    # -- syscall faults --------------------------------------------------

    def syscall_fault(self, name: str) -> Optional[Exception]:
        """The fault (if any) to inject at one syscall entry."""
        if self.should_fire("kernel.syscall.eintr"):
            return InjectedInterrupt(f"injected EINTR entering {name!r}")
        if self.should_fire("kernel.syscall.enomem"):
            return InjectedSyscallNoMem(
                f"injected transient ENOMEM entering {name!r}")
        if self.should_fire("kernel.syscall.eagain"):
            return InjectedWouldBlock(f"injected EAGAIN entering {name!r}")
        return None

    # -- graceful degradation -------------------------------------------

    def degrade_tiers(self) -> int:
        """How many strategy tiers to fall back (0, 1 or 2), based on
        how many capability-load fault storms have been injected.

        μFork's strategies form a ladder CoPA → CoA → eager copy: each
        rung trades fork-time cost for fewer lazy faults, so under a
        fault storm the cheapest-but-laziest strategy is the most
        exposed and falling down the ladder restores forward progress
        (docs/CHAOS.md)."""
        if not self.enabled:
            return 0
        storms = self.fired.get("core.strategies.cap_fault_storm", 0)
        return min(storms // self.degrade_after, 2)

    # -- export ----------------------------------------------------------

    def export(self) -> Dict:
        """JSON-ready injection record (deterministic for one seed)."""
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "mix": self.mix.to_spec(),
            "hits": dict(sorted(self.hits.items())),
            "fired": dict(sorted(self.fired.items())),
            "recovered": dict(sorted(self.recovered.items())),
            "injections": [list(entry) for entry in self.injections],
        }


class NullChaos:
    """The permanently disabled engine every machine starts with."""

    enabled = False
    seed = None

    def should_fire(self, point: str) -> bool:  # pragma: no cover - guard
        return False

    def note_recovery(self, point: str) -> None:  # pragma: no cover
        return None

    def syscall_fault(self, name: str):  # pragma: no cover - guarded
        return None

    def degrade_tiers(self) -> int:
        return 0

    @contextmanager
    def paused(self):
        """No-op pause (drop-in for :meth:`ChaosEngine.paused`)."""
        yield


NULL_CHAOS = NullChaos()

"""Tests for the Unixbench-style Spawn and Context1 microbenchmarks."""

import pytest

from repro.apps import unixbench
from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.baselines import MonolithicOS
from repro.core import UForkOS
from repro.machine import Machine


def boot(os_cls=UForkOS):
    os_ = os_cls(machine=Machine())
    return os_, GuestContext(os_, os_.spawn(hello_world_image(), "bench"))


class TestSpawn:
    def test_spawn_runs_and_reaps(self):
        os_, ctx = boot()
        result = unixbench.spawn(ctx, iterations=20)
        assert result.iterations == 20
        assert result.total_ns > 0
        assert os_.process_count() == 1

    def test_spawn_no_frame_leak(self):
        os_, ctx = boot()
        unixbench.spawn(ctx, iterations=3)
        frames_after_warm = os_.machine.phys.allocated_frames
        unixbench.spawn(ctx, iterations=10)
        assert os_.machine.phys.allocated_frames == frames_after_warm

    def test_per_fork_rate_ufork_vs_monolithic(self):
        rates = {}
        for os_cls in (UForkOS, MonolithicOS):
            os_, ctx = boot(os_cls)
            rates[os_cls] = unixbench.spawn(ctx, iterations=25).per_fork_us
        # paper Fig 9: 56 ms vs 198 ms for 1000 iterations
        assert rates[UForkOS] < rates[MonolithicOS]

    def test_per_fork_us_near_calibration(self):
        os_, ctx = boot(UForkOS)
        result = unixbench.spawn(ctx, iterations=50)
        # hello-world μFork fork+exit should be tens of μs (paper: 54 μs
        # fork; 56 μs per spawn iteration)
        assert 20 < result.per_fork_us < 150


class TestContext1:
    def test_counter_reaches_target(self):
        os_, ctx = boot()
        result = unixbench.context1(ctx, target=50)
        assert result.final_value >= 50
        assert result.total_ns > 0
        assert os_.process_count() == 1

    def test_context_switches_charged(self):
        os_, ctx = boot()
        before = os_.machine.counters.get("context_switch")
        unixbench.context1(ctx, target=10)
        switches = os_.machine.counters.get("context_switch") - before
        assert switches >= 20  # two per iteration

    def test_monolithic_pays_tlb_flushes(self):
        os_, ctx = boot(MonolithicOS)
        before = os_.machine.counters.get("tlb_flush")
        unixbench.context1(ctx, target=10)
        assert os_.machine.counters.get("tlb_flush") - before >= 20

    def test_sasos_never_flushes_tlb(self):
        os_, ctx = boot(UForkOS)
        unixbench.context1(ctx, target=10)
        assert os_.machine.counters.get("tlb_flush") == 0

    def test_ipc_faster_on_single_address_space(self):
        per_iter = {}
        for os_cls in (UForkOS, MonolithicOS):
            os_, ctx = boot(os_cls)
            per_iter[os_cls] = unixbench.context1(
                ctx, target=200
            ).per_iteration_us
        # paper Fig 9: 245 ms vs 419 ms at 100k iterations
        assert per_iter[UForkOS] < per_iter[MonolithicOS]

"""MiniQmail: a privilege-separated mail pipeline (paper U3).

qmail is the paper's example of fork-for-privilege-separation (§2.1,
§3.6): mutually distrusting components run as separate processes so a
compromise of the network-facing parser cannot touch the trusted
delivery agent or the mail store.

The pipeline here:

* **qmail-smtpd** — *untrusted*: forked from the master, parses raw
  SMTP-ish input from a socket; runs with FULL isolation (argument
  validation + TOCTTOU) because its input is attacker-controlled;
* **queue** — a POSIX message queue carrying accepted messages;
* **qmail-local** — *trusted*: forked from the master, drains the
  queue and appends to per-user mailbox files on the ram-disk.

The security property the tests assert: a malicious smtpd (modeling a
compromised parser) cannot read the mail store, reach qmail-local's
memory, or forge kernel entry — the μFork isolation story end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import WouldBlock
from repro.mem.layout import KiB, ProgramImage

SMTP_PORT = 25
MAILDIR = "/var/mail"

#: parse/validate cost per message (abstract units)
PARSE_UNITS = 8_000
DELIVER_UNITS = 3_000


def qmail_image() -> ProgramImage:
    return ProgramImage(
        name="qmail",
        code_size=96 * KiB,
        rodata_size=32 * KiB,
        data_size=16 * KiB,
        got_entries=256,
        tls_size=4 * KiB,
        heap_size=256 * KiB,
        mmap_size=64 * KiB,
        stack_size=32 * KiB,
    )


@dataclass
class Delivery:
    user: bytes
    body: bytes


class MiniQmail:
    """The master process: owns the listener and forks the components."""

    def __init__(self, ctx: Any, port: int = SMTP_PORT) -> None:
        self.ctx = ctx
        self.port = port
        self.listen_fd = ctx.syscall("listen", port)
        self.queue = ctx.syscall("mq_open", "/qmail-queue")
        self.smtpd: Optional[Any] = None
        self.local: Optional[Any] = None

    def start(self) -> None:
        """Fork the privilege-separated components (U3)."""
        self.ctx.syscall("mkdir", "/var")
        self.ctx.syscall("mkdir", MAILDIR)
        self.smtpd = self.ctx.fork()   # untrusted, network facing
        self.local = self.ctx.fork()   # trusted, owns the mail store

    # ------------------------------------------------------------------
    # qmail-smtpd: untrusted input parsing
    # ------------------------------------------------------------------

    def smtpd_handle_one(self) -> Tuple[bool, bytes]:
        """Accept a connection, parse one message, enqueue if valid.

        Returns (accepted, reply)."""
        smtpd = self.smtpd
        conn_fd = smtpd.syscall("accept", self.listen_fd)
        raw = smtpd.recv_bytes(conn_fd, 4096)
        smtpd.compute(PARSE_UNITS)
        accepted, reply, record = self._parse(raw)
        if accepted:
            smtpd.syscall("mq_send", self.queue, record)
        smtpd.send_bytes(conn_fd, reply)
        smtpd.syscall("close", conn_fd)
        return accepted, reply

    @staticmethod
    def _parse(raw: bytes) -> Tuple[bool, bytes, bytes]:
        """A deliberately strict parser: ``RCPT:<user>\\nDATA:<body>``."""
        if not raw.startswith(b"RCPT:") or b"\nDATA:" not in raw:
            return False, b"550 rejected\r\n", b""
        header, body = raw.split(b"\nDATA:", 1)
        user = header[len(b"RCPT:"):].strip()
        if not user or not user.isalnum():
            return False, b"550 bad mailbox\r\n", b""
        return True, b"250 queued\r\n", user + b"\x00" + body

    # ------------------------------------------------------------------
    # qmail-local: trusted delivery
    # ------------------------------------------------------------------

    def local_deliver_all(self) -> List[Delivery]:
        """Drain the queue into per-user mailbox files."""
        from repro.kernel.vfs import O_APPEND, O_CREAT, O_WRONLY
        local = self.local
        delivered: List[Delivery] = []
        while True:
            try:
                record = local.syscall("mq_receive", self.queue)
            except WouldBlock:
                break
            user, body = record.split(b"\x00", 1)
            local.compute(DELIVER_UNITS)
            path = f"{MAILDIR}/{user.decode()}"
            fd = local.syscall("open", path, O_CREAT | O_WRONLY | O_APPEND)
            local.write_bytes(fd, body + b"\n---\n")
            local.syscall("close", fd)
            delivered.append(Delivery(user=user, body=body))
        return delivered

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def mailbox(self, user: str) -> bytes:
        """Read a user's mailbox (master/test view)."""
        ramdisk = self.ctx.os.ramdisk
        handle = ramdisk.open(f"{MAILDIR}/{user}")
        return bytes(handle.node.data)

    def shutdown(self) -> None:
        for component in (self.smtpd, self.local):
            if component is not None and component.proc.alive:
                component.exit(0)
                self.ctx.wait(component.pid)


def send_mail(client_ctx: Any, user: bytes, body: bytes,
              port: int = SMTP_PORT) -> int:
    """Client side: push one message; returns the connection fd (the
    reply is read after smtpd handles it)."""
    fd = client_ctx.syscall("connect", port)
    client_ctx.send_bytes(fd, b"RCPT:" + user + b"\nDATA:" + body)
    return fd

"""Stress and failure-injection tests: deep fork chains, wide fan-out,
resource exhaustion, and recovery behaviour."""

import pytest

from repro.apps.guest import GuestContext
from repro.apps.hello import hello_world_image
from repro.core import CopyStrategy, UForkOS
from repro.errors import (
    NoChildProcess,
    OutOfMemory,
    OutOfVirtualSpace,
)
from repro.machine import Machine
from repro.mem.layout import KiB, ProgramImage
from repro.params import MachineConfig


def boot(**kwargs):
    return UForkOS(machine=Machine(), **kwargs)


def spawn(os_, name="app"):
    return GuestContext(os_, os_.spawn(hello_world_image(), name))


class TestDeepAndWide:
    @pytest.mark.parametrize("strategy", list(CopyStrategy))
    def test_fork_chain_ten_generations(self, strategy):
        """Each generation forks the next; the original heap block must
        survive ten relocations intact."""
        os_ = boot(copy_strategy=strategy)
        ctx = spawn(os_)
        buf = ctx.malloc(32)
        ctx.store(buf, b"generation-zero")
        ctx.set_reg("c9", buf)
        chain = [ctx]
        for _ in range(10):
            chain.append(chain[-1].fork())
        leaf = chain[-1]
        assert leaf.load(leaf.reg("c9"), 15) == b"generation-zero"
        # every generation has a distinct region
        bases = {c.proc.region_base for c in chain}
        assert len(bases) == len(chain)
        for child, parent in zip(reversed(chain[1:]), reversed(chain[:-1])):
            child.exit(0)
            parent.wait(child.pid)

    def test_wide_fanout_thirty_children(self):
        os_ = boot()
        zygote = spawn(os_)
        buf = zygote.malloc(16)
        zygote.store(buf, b"shared-zygote")
        zygote.set_reg("c9", buf)
        children = [zygote.fork() for _ in range(30)]
        for child in children:
            assert child.load(child.reg("c9"), 13) == b"shared-zygote"
        for child in children:
            child.exit(0)
            zygote.wait(child.pid)
        assert os_.process_count() == 1

    def test_interleaved_fork_exit_no_leaks(self):
        os_ = boot()
        ctx = spawn(os_)
        ctx.fork().exit(0)
        ctx.wait()
        frames_baseline = os_.machine.phys.allocated_frames
        va_baseline = os_.vspace.total_free()
        for _ in range(25):
            child = ctx.fork()
            grandchild = child.fork()
            grandchild.exit(0)
            child.wait(grandchild.pid)
            child.exit(0)
            ctx.wait(child.pid)
        assert os_.machine.phys.allocated_frames == frames_baseline
        assert os_.vspace.total_free() == va_baseline


class TestResourceExhaustion:
    def test_fork_bomb_hits_va_limit(self):
        """A fork bomb runs out of contiguous VA, not into corruption."""
        from repro.core import ufork as ufork_mod
        os_ = boot()
        # shrink the μprocess window to make exhaustion reachable
        from repro.mem.vspace import VirtualAreaAllocator
        image = hello_world_image()
        page = os_.machine.config.page_size
        region = image.region_size(page)
        os_.vspace = VirtualAreaAllocator(
            ufork_mod.UPROC_WINDOW_BASE, 4 * region, page
        )
        ctx = GuestContext(os_, os_.spawn(image, "bomb"))
        survivors = [ctx]
        with pytest.raises(OutOfVirtualSpace):
            while True:
                survivors.append(survivors[-1].fork())
        # the system is still functional: reap everything
        assert len(survivors) >= 3
        for proc_ctx in reversed(survivors[1:]):
            proc_ctx.exit(0)
        assert survivors[0].syscall("getpid") == survivors[0].pid

    def test_dram_exhaustion_under_full_copy(self):
        config = MachineConfig(dram_bytes=24 * 1024 * 1024)
        os_ = UForkOS(machine=Machine(config=config),
                      copy_strategy=CopyStrategy.FULL_COPY)
        image = ProgramImage("big", heap_size=8 * 1024 * KiB)
        ctx = GuestContext(os_, os_.spawn(image, "big"))
        with pytest.raises(OutOfMemory):
            for _ in range(10):
                ctx.fork()

    def test_guest_heap_exhaustion_recoverable(self):
        os_ = boot()
        ctx = spawn(os_)
        blocks = []
        with pytest.raises(OutOfMemory):
            while True:
                blocks.append(ctx.malloc(4096))
        # free one block and allocation works again
        ctx.free(blocks.pop())
        again = ctx.malloc(4096)
        ctx.store(again, b"recovered")
        assert ctx.load(again, 9) == b"recovered"

    def test_wait_without_children(self):
        os_ = boot()
        ctx = spawn(os_)
        with pytest.raises(NoChildProcess):
            ctx.wait()

    def test_wait_for_wrong_pid(self):
        os_ = boot()
        ctx = spawn(os_)
        child = ctx.fork()
        child.exit(0)
        with pytest.raises(NoChildProcess):
            ctx.wait(child.pid + 999)
        assert ctx.wait(child.pid) == (child.pid, 0)


class TestSnapshotUnderChurn:
    @pytest.mark.parametrize("strategy",
                             [CopyStrategy.COA, CopyStrategy.COPA])
    def test_allocator_churn_after_fork(self, strategy):
        """Parent mallocs/frees aggressively post-fork; the child's
        allocator view (shared metadata pages) stays the snapshot."""
        os_ = boot(copy_strategy=strategy)
        parent = spawn(os_)
        kept = parent.malloc(64)
        parent.store(kept, b"kept-block")
        parent.set_reg("c9", kept)
        child = parent.fork()
        blocks_at_fork = child.proc.allocator.block_count()

        # parent churns its heap
        churn = [parent.malloc(48) for _ in range(20)]
        for block in churn[::2]:
            parent.free(block)

        # the child's allocator still sees the fork-time state
        assert child.proc.allocator.block_count() == blocks_at_fork
        assert child.load(child.reg("c9"), 10) == b"kept-block"
        # and can allocate independently
        mine = child.malloc(32)
        child.store(mine, b"child-new")
        assert child.load(mine, 9) == b"child-new"

    def test_double_exit_is_idempotent(self):
        os_ = boot()
        ctx = spawn(os_)
        child = ctx.fork()
        child.exit(3)
        os_._exit_process(child.proc, 99)  # second exit: no effect
        assert child.proc.exit_status == 3

"""Figure 7: Nginx throughput with 1-3 workers.

Paper: restricted to a single core, μFork serves 9% more requests than
CheriBSD; μFork gains 15.6% going from 1 to 3 workers on one core
(workers yield during I/O); CheriBSD unrestricted wins by scaling over
multiple cores; TOCTTOU protection costs 6.5% on average.
"""

from conftest import run_once

from repro.harness.experiments import fig7_nginx_throughput


def test_fig7_nginx_throughput(benchmark, record_figure):
    rows = run_once(benchmark, fig7_nginx_throughput,
                    worker_counts=(1, 2, 3))
    record_figure(
        "fig7_nginx_throughput", rows,
        "Figure 7: Nginx throughput (requests/s)",
    )
    by_workers = {row["workers"]: row for row in rows}

    # single-core, single-worker: μFork ahead of CheriBSD (paper: +9%)
    advantage = (by_workers[1]["ufork_1core_per_s"]
                 / by_workers[1]["cheribsd_1core_per_s"]) - 1
    assert 0.03 < advantage < 0.25

    # more workers help even on one core (paper: +15.6% from 1 to 3)
    gain = (by_workers[3]["ufork_1core_per_s"]
            / by_workers[1]["ufork_1core_per_s"]) - 1
    assert 0.05 < gain < 0.35

    # CheriBSD free to use multiple cores wins (paper's expected result)
    assert by_workers[3]["cheribsd_multicore_per_s"] > \
        by_workers[3]["ufork_1core_per_s"]

    # TOCTTOU cost on this syscall-heavy workload (paper: 6.5%)
    cost = 1 - (by_workers[1]["ufork_tocttou_1core_per_s"]
                / by_workers[1]["ufork_1core_per_s"])
    assert 0.02 < cost < 0.15

"""Tests for the extended MiniRedis command set and FunctionBench
workload variants."""

import pytest

from repro.apps.faas import FUNCTIONBENCH, ZygoteRuntime, faas_image
from repro.apps.guest import GuestContext
from repro.apps.redis import MiniRedis, redis_image
from repro.core import UForkOS
from repro.errors import InvalidArgument
from repro.machine import Machine
from repro.mem.layout import MiB


def boot_store():
    os_ = UForkOS(machine=Machine())
    proc = os_.spawn(redis_image(1 * MiB), "redis")
    return os_, MiniRedis(GuestContext(os_, proc), nbuckets=64)


class TestExtendedCommands:
    def test_exists(self):
        _os, store = boot_store()
        store.set(b"k", b"v")
        assert store.exists(b"k")
        assert not store.exists(b"nope")

    def test_append_creates_and_extends(self):
        _os, store = boot_store()
        assert store.append(b"log", b"one ") == 4
        assert store.append(b"log", b"two") == 7
        assert store.get(b"log") == b"one two"
        assert store.size() == 1

    def test_incr_semantics(self):
        _os, store = boot_store()
        assert store.incr(b"hits") == 1
        assert store.incr(b"hits") == 2
        assert store.incr(b"hits", 10) == 12
        assert store.get(b"hits") == b"12"

    def test_incr_non_numeric_rejected(self):
        _os, store = boot_store()
        store.set(b"name", b"alice")
        with pytest.raises(InvalidArgument):
            store.incr(b"name")

    def test_keys_and_flushall(self):
        _os, store = boot_store()
        for index in range(10):
            store.set(b"k%d" % index, b"v")
        assert sorted(store.keys()) == sorted(
            b"k%d" % index for index in range(10)
        )
        assert store.flushall() == 10
        assert store.size() == 0
        assert store.keys() == []

    def test_counter_survives_fork(self):
        """INCR on the parent post-fork does not move the child's view:
        the counter bytes live in snapshotted guest memory."""
        _os, store = boot_store()
        store.incr(b"c")  # 1
        child_ctx = store.ctx.fork()
        child_store = MiniRedis.attach(child_ctx)
        store.incr(b"c")  # parent: 2
        assert store.get(b"c") == b"2"
        assert child_store.get(b"c") == b"1"
        child_ctx.exit(0)
        store.ctx.wait(child_ctx.pid)


class TestFunctionBenchVariants:
    def boot(self):
        os_ = UForkOS(machine=Machine())
        runtime = ZygoteRuntime(
            GuestContext(os_, os_.spawn(faas_image(), "zygote"))
        )
        runtime.warm()
        return os_, runtime

    @pytest.mark.parametrize("function", sorted(FUNCTIONBENCH))
    def test_each_workload_runs(self, function):
        os_, runtime = self.boot()
        result = runtime.handle_request(function=function)
        assert result.ok
        assert os_.process_count() == 1

    def test_unknown_workload_rejected(self):
        from repro.apps.faas import run_function
        os_, runtime = self.boot()
        child = runtime.ctx.fork()
        with pytest.raises(ValueError):
            run_function(child, "no_such_benchmark")

    def test_heavier_workloads_cost_more(self):
        os_, runtime = self.boot()
        costs = {}
        for function in ("float_operation", "matmul"):
            with os_.machine.clock.measure() as watch:
                runtime.handle_request(function=function)
            costs[function] = watch.elapsed_ns
        assert costs["matmul"] > 2 * costs["float_operation"]

    def test_working_set_workloads_break_more_pages(self):
        """matmul's working set writes force CoW breaks float_operation
        never pays — visible in the page-copy counter."""
        copies = {}
        for function in ("float_operation", "matmul"):
            os_, runtime = self.boot()
            runtime.handle_request(function=function)  # warm
            before = os_.machine.counters.get("fork_page_copies")
            runtime.handle_request(function=function)
            copies[function] = (
                os_.machine.counters.get("fork_page_copies") - before
            )
        assert copies["matmul"] > copies["float_operation"]

"""Page tables, address spaces, and fault dispatch.

An :class:`AddressSpace` is a page table bound to the machine's physical
memory.  The SASOS owns exactly one (kernel and every μprocess live in
it); the monolithic baseline creates one per process.

Faults are the extension point that makes the μFork copy strategies
work: when an access violates page permissions (or hits an unmapped
page) the address space charges the fault cost and calls the registered
fault handler.  CoW, CoA and CoPA are all implemented as fault handlers
(:mod:`repro.core.strategies`); the dedicated *capability-load* access
kind models CHERI's fault-on-capability-load page permission that CoPA
requires (§4.2).

Two page-table representations back the same caller surface
(docs/ARCHITECTURE.md "Vectorized engine"):

* :class:`FlatPageTable` (the default, ``REPRO_PERF=1``): PTE state
  lives in dense per-chunk parallel arrays — an ``array('q')`` of frame
  numbers, a ``bytearray`` of permission bits and a ``bytearray`` of
  CoW marks, :data:`CHUNK` vpns per chunk — with the free-form ``note``
  slot in a sparse side dict.  :meth:`PageTable.get` hands out interned
  write-through :class:`_PteView` objects so existing ``pte.perms = x``
  call sites keep working, while the bulk operations
  (:meth:`AddressSpace.mapped_items` / :meth:`AddressSpace.map_run` /
  :meth:`AddressSpace.unmap_range`) and the inlined walk fast paths
  touch the arrays directly.
* :class:`PageTable` (``REPRO_PERF=0``): the original sparse
  vpn → :class:`PTE` dict, kept intact as the bench baseline.

Iteration over either table is *stable*: entries come out in ascending
vpn order, so walks, teardown frees and audits behave identically no
matter which representation (or insertion history) produced the table.

Callers outside :mod:`repro.hw` must stay on the public surface —
``get``/``entries``/``map_page``/``mapped_items``/... — and never touch
``_entries`` or the chunk arrays; ``tests/test_memory_api_clean.py``
enforces that contract by grep.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from enum import Enum, IntFlag, auto
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import perf as _perf
from repro.cheri.capability import Capability
from repro.cheri.codec import CAP_SIZE
from repro.errors import (
    ProtectionError,
    UnmappedAddressError,
)
from repro.hw.phys import _ZEROS, Frame


class PagePerm(IntFlag):
    """Page-table permission bits."""

    NONE = 0
    READ = 1 << 0
    WRITE = 1 << 1
    EXEC = 1 << 2
    #: CHERI page permission: when absent, *loading a capability* from
    #: the page faults even though plain data loads succeed.  This is
    #: the hardware hook CoPA is built on.
    LOAD_CAP = 1 << 3

    @classmethod
    def rwc(cls) -> "PagePerm":
        if _perf.ENABLED:
            return _PAGE_RWC
        return cls.READ | cls.WRITE | cls.LOAD_CAP

    @classmethod
    def read_only(cls) -> "PagePerm":
        if _perf.ENABLED:
            return _PAGE_RO
        return cls.READ | cls.LOAD_CAP

    @classmethod
    def rx(cls) -> "PagePerm":
        if _perf.ENABLED:
            return _PAGE_RX
        return cls.READ | cls.EXEC | cls.LOAD_CAP


#: precomputed composite page-permission constants (pure values; the
#: :mod:`repro.perf` path skips IntFlag ``|`` member resolution)
_PAGE_RWC = PagePerm.READ | PagePerm.WRITE | PagePerm.LOAD_CAP
_PAGE_RO = PagePerm.READ | PagePerm.LOAD_CAP
_PAGE_RX = PagePerm.READ | PagePerm.EXEC | PagePerm.LOAD_CAP


class AccessKind(Enum):
    READ = auto()
    WRITE = auto()
    EXEC = auto()
    #: a capability (tagged, 16-byte) load — distinct so the CoPA
    #: fault-on-capability-load bit can be modeled
    CAP_LOAD = auto()

    @property
    def is_write(self) -> bool:
        return self is AccessKind.WRITE


_REQUIRED_PERM = {
    AccessKind.READ: PagePerm.READ,
    AccessKind.WRITE: PagePerm.WRITE,
    AccessKind.EXEC: PagePerm.EXEC,
    AccessKind.CAP_LOAD: PagePerm.READ | PagePerm.LOAD_CAP,
}

#: plain-int view of the required-permission masks — the cached walk
#: compares raw bits to skip IntFlag instantiation on every access
_REQUIRED_BITS = {kind: int(mask) for kind, mask in _REQUIRED_PERM.items()}

_ACCESS_NAME = {
    AccessKind.READ: "read",
    AccessKind.WRITE: "write",
    AccessKind.EXEC: "exec",
    AccessKind.CAP_LOAD: "cap_load",
}

# Per-member attributes precomputed for the repro.perf fast paths: an
# attribute load skips both the Enum.__hash__ dict probe and the
# per-fault f-string formatting; the values are identical to what the
# slow path computes.
for _kind in AccessKind:
    _kind._req_bits = _REQUIRED_BITS[_kind]
    _kind._nm = _ACCESS_NAME[_kind]
    _kind._fault_counter = f"fault_{_ACCESS_NAME[_kind]}"
    _kind._fault_obs = f"hw.paging.fault.{_ACCESS_NAME[_kind]}"
del _kind

#: raw permission-bit masks for the two byte-access kinds, hoisted for
#: the inline walk-cache probes in :meth:`AddressSpace.read`/``write``
_READ_BITS = AccessKind.READ._req_bits
_WRITE_BITS = AccessKind.WRITE._req_bits


@dataclass(slots=True)
class PTE:
    """One page-table entry."""

    frame: int
    perms: PagePerm
    #: classic copy-on-write marker (monolithic baseline)
    cow: bool = False
    #: free-form slot for the owning OS (μFork strategies stash the
    #: fork-sharing record here)
    note: Any = None


class PageTable:
    """A sparse vpn → PTE map (no multi-level radix detail needed).

    The ``REPRO_PERF=0`` representation; iteration is vpn-sorted (see
    module docstring).
    """

    def __init__(self) -> None:
        self._entries: Dict[int, PTE] = {}

    def get(self, vpn: int) -> Optional[PTE]:
        return self._entries.get(vpn)

    def set(self, vpn: int, pte: PTE) -> None:
        self._entries[vpn] = pte

    def remove(self, vpn: int) -> PTE:
        return self._entries.pop(vpn)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[Tuple[int, PTE]]:
        entries = self._entries
        return iter((vpn, entries[vpn]) for vpn in sorted(entries))

    def vpns(self) -> Iterator[int]:
        return iter(sorted(self._entries))


#: vpns per chunk of the flat representation (2^9 → a chunk covers 2 MiB
#: of VA at 4 KiB pages, one dict probe per chunk on the walk)
CHUNK_SHIFT = 9
CHUNK = 1 << CHUNK_SHIFT
_CHUNK_MASK = CHUNK - 1

#: template for freshly created chunks: every slot unmapped
_EMPTY_FRAMES = array("q", [-1]) * CHUNK


class _PteView:
    """A write-through PTE facade over one :class:`FlatPageTable` slot.

    Mutating ``view.perms``/``view.frame``/``view.cow``/``view.note``
    writes straight into the chunk arrays, so caller code written
    against the :class:`PTE` dataclass works unchanged.  Views are
    interned per vpn (one live object per mapped page, like one ``PTE``
    per mapped page before) and detached on unmap.
    """

    __slots__ = ("_table", "_vpn", "_chunk", "_index")

    def __init__(self, table: "FlatPageTable", vpn: int) -> None:
        self._table = table
        self._vpn = vpn
        self._chunk = vpn >> CHUNK_SHIFT
        self._index = vpn & _CHUNK_MASK

    @property
    def frame(self) -> int:
        return self._table._frames[self._chunk][self._index]

    @frame.setter
    def frame(self, value: int) -> None:
        self._table._frames[self._chunk][self._index] = value

    @property
    def perms(self) -> PagePerm:
        return PagePerm(self._table._perms[self._chunk][self._index])

    @perms.setter
    def perms(self, value: PagePerm) -> None:
        self._table._perms[self._chunk][self._index] = int(value)

    @property
    def cow(self) -> bool:
        return bool(self._table._cow[self._chunk][self._index])

    @cow.setter
    def cow(self, value: bool) -> None:
        self._table._cow[self._chunk][self._index] = 1 if value else 0

    @property
    def note(self) -> Any:
        return self._table._notes.get(self._vpn)

    @note.setter
    def note(self, value: Any) -> None:
        if value is None:
            self._table._notes.pop(self._vpn, None)
        else:
            self._table._notes[self._vpn] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"_PteView(vpn={self._vpn:#x}, frame={self.frame}, "
                f"perms={self.perms!r}, cow={self.cow})")


class FlatPageTable:
    """Dense chunked parallel-array page table (``REPRO_PERF=1``).

    Same public surface as :class:`PageTable`; state lives in per-chunk
    parallel arrays (see module docstring) that the address-space fast
    paths and bulk operations index directly.
    """

    def __init__(self) -> None:
        self._frames: Dict[int, array] = {}
        self._perms: Dict[int, bytearray] = {}
        self._cow: Dict[int, bytearray] = {}
        self._notes: Dict[int, Any] = {}
        self._views: Dict[int, _PteView] = {}
        self._chunk_len: Dict[int, int] = {}
        self._len = 0

    # -- chunk plumbing ---------------------------------------------------

    def _chunk_for(self, chunk_id: int) -> array:
        frames = self._frames.get(chunk_id)
        if frames is None:
            frames = self._frames[chunk_id] = array("q", _EMPTY_FRAMES)
            self._perms[chunk_id] = bytearray(CHUNK)
            self._cow[chunk_id] = bytearray(CHUNK)
            self._chunk_len[chunk_id] = 0
        return frames

    def _drop_slot(self, chunk_id: int, index: int, vpn: int) -> None:
        self._frames[chunk_id][index] = -1
        self._perms[chunk_id][index] = 0
        self._cow[chunk_id][index] = 0
        self._notes.pop(vpn, None)
        self._views.pop(vpn, None)
        self._len -= 1
        remaining = self._chunk_len[chunk_id] - 1
        if remaining:
            self._chunk_len[chunk_id] = remaining
        else:
            del self._frames[chunk_id]
            del self._perms[chunk_id]
            del self._cow[chunk_id]
            del self._chunk_len[chunk_id]

    # -- PageTable surface ------------------------------------------------

    def get(self, vpn: int) -> Optional[_PteView]:
        frames = self._frames.get(vpn >> CHUNK_SHIFT)
        if frames is None or frames[vpn & _CHUNK_MASK] < 0:
            return None
        view = self._views.get(vpn)
        if view is None:
            view = self._views[vpn] = _PteView(self, vpn)
        return view

    def set(self, vpn: int, pte: Any) -> None:
        chunk_id = vpn >> CHUNK_SHIFT
        index = vpn & _CHUNK_MASK
        frames = self._chunk_for(chunk_id)
        if frames[index] < 0:
            self._len += 1
            self._chunk_len[chunk_id] += 1
        frames[index] = pte.frame
        self._perms[chunk_id][index] = int(pte.perms)
        self._cow[chunk_id][index] = 1 if pte.cow else 0
        if pte.note is None:
            self._notes.pop(vpn, None)
        else:
            self._notes[vpn] = pte.note

    def remove(self, vpn: int) -> PTE:
        chunk_id = vpn >> CHUNK_SHIFT
        index = vpn & _CHUNK_MASK
        frames = self._frames.get(chunk_id)
        if frames is None or frames[index] < 0:
            raise KeyError(vpn)
        snapshot = PTE(
            frame=frames[index],
            perms=PagePerm(self._perms[chunk_id][index]),
            cow=bool(self._cow[chunk_id][index]),
            note=self._notes.get(vpn),
        )
        self._drop_slot(chunk_id, index, vpn)
        return snapshot

    def __contains__(self, vpn: int) -> bool:
        frames = self._frames.get(vpn >> CHUNK_SHIFT)
        return frames is not None and frames[vpn & _CHUNK_MASK] >= 0

    def __len__(self) -> int:
        return self._len

    def entries(self) -> Iterator[Tuple[int, _PteView]]:
        for chunk_id in sorted(self._frames):
            frames = self._frames[chunk_id]
            base = chunk_id << CHUNK_SHIFT
            for index in range(CHUNK):
                if frames[index] >= 0:
                    vpn = base + index
                    yield vpn, self.get(vpn)

    def vpns(self) -> Iterator[int]:
        for chunk_id in sorted(self._frames):
            frames = self._frames[chunk_id]
            base = chunk_id << CHUNK_SHIFT
            for index in range(CHUNK):
                if frames[index] >= 0:
                    yield base + index


#: fault handler: (space, vaddr, kind) -> True if resolved (retry access)
FaultHandler = Callable[["AddressSpace", int, AccessKind], bool]


class AddressSpace:
    """A page table plus access methods with fault dispatch.

    ``machine`` is any object exposing ``config``, ``costs``, ``clock``,
    ``counters``, ``phys`` and ``codec`` (see :class:`repro.machine.Machine`).
    The representation (flat vs dict, see module docstring) follows the
    machine's resolved ``perf`` flag; machines built by other harnesses
    without the attribute fall back to the :mod:`repro.perf` master
    switch.
    """

    def __init__(self, machine: Any, name: str = "as") -> None:
        self.machine = machine
        self.name = name
        perf = getattr(machine, "perf", None)
        self._perf: bool = _perf.enabled() if perf is None else bool(perf)
        self.page_table = FlatPageTable() if self._perf else PageTable()
        self.fault_handler: Optional[FaultHandler] = None
        #: optional bulk CoW-break hook for :meth:`write_run`: called as
        #: ``hook(space, vpns)`` with the run's write-blocked vpns in
        #: first-occurrence order; returns True when it broke them all
        #: (False leaves state untouched — per-fault dispatch follows)
        self.write_break_hook: Optional[Any] = None
        self._page_size = machine.config.page_size
        #: host-side page-walk cache: vpn -> (chunk perms bytearray,
        #: slot index, Frame).  Entries are only trusted while the
        #: generation stamp matches, the *live* permission byte is
        #: re-checked on every hit (so permission narrowing — CoW/CoPA
        #: sharing — can never be bypassed), and every single-vpn table
        #: edit (map/unmap/replace_frame) pops exactly its own entry.
        #: See :mod:`repro.perf`.
        self._walk_cache: Dict[int, Tuple[bytearray, int, Frame]] = {}
        #: generation of the cached entries: the machine-wide TLB
        #: flush/shootdown generation (cross-core invalidations clear
        #: the whole cache)
        self._walk_stamp = -1
        #: size -> int(round(memcpy_ns_per_byte * size)); sound because
        #: ``machine.costs`` is a frozen dataclass assigned once at
        #: machine construction
        self._charge_memo: Dict[int, int] = {}
        #: pre-rounded fault charge (None until first fault; -1 when
        #: ``page_fault_ns`` is non-integral and must round per call)
        self._fault_int: Optional[int] = None

    # -- mapping ------------------------------------------------------------

    def map_page(self, vpn: int, frame: int, perms: PagePerm,
                 incref: bool = False, cow: bool = False,
                 note: Any = None) -> Any:
        table = self.page_table
        if self._perf:
            chunk_id = vpn >> CHUNK_SHIFT
            index = vpn & _CHUNK_MASK
            frames = table._chunk_for(chunk_id)
            if frames[index] >= 0:
                raise ValueError(f"vpn {vpn:#x} already mapped in {self.name}")
            if incref:
                self.machine.phys.incref(frame)
            frames[index] = frame
            table._perms[chunk_id][index] = int(perms)
            table._cow[chunk_id][index] = 1 if cow else 0
            if note is not None:
                table._notes[vpn] = note
            table._len += 1
            table._chunk_len[chunk_id] += 1
            self._walk_cache.pop(vpn, None)
            return table.get(vpn)
        if vpn in table:
            raise ValueError(f"vpn {vpn:#x} already mapped in {self.name}")
        if incref:
            self.machine.phys.incref(frame)
        pte = PTE(frame=frame, perms=perms, cow=cow, note=note)
        table.set(vpn, pte)
        # single-vpn edit: only this translation can change, so the walk
        # cache drops exactly this entry instead of a full generation
        # bump (which would clear the whole cache on every CoW break)
        self._walk_cache.pop(vpn, None)
        return pte

    def unmap_page(self, vpn: int, decref: bool = True) -> int:
        pte = self.page_table.remove(vpn)
        if decref:
            self.machine.phys.decref(pte.frame)
        self._walk_cache.pop(vpn, None)
        return pte.frame

    def protect_page(self, vpn: int, perms: PagePerm) -> None:
        if self._perf:
            table = self.page_table
            chunk_id = vpn >> CHUNK_SHIFT
            index = vpn & _CHUNK_MASK
            frames = table._frames.get(chunk_id)
            if frames is None or frames[index] < 0:
                raise KeyError(f"vpn {vpn:#x} not mapped")
            # in-place permission write: cached walk entries alias this
            # byte, so narrowing takes effect on their very next probe
            table._perms[chunk_id][index] = int(perms)
            return
        pte = self.page_table.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        pte.perms = perms

    def protect_run(self, start_vpn: int, count: int,
                    perms: PagePerm) -> None:
        """:meth:`protect_page` for ``count`` consecutive vpns.

        Charge-free, like :meth:`protect_page`.  Validate-all-then-
        write in both representations — an unmapped vpn anywhere in
        the run raises before any permission changes, keeping the two
        modes state-identical even on errors; the flat representation
        then applies each chunk's span as one slice write.
        """
        if not self._perf:
            table = self.page_table
            ptes = []
            for vpn in range(start_vpn, start_vpn + count):
                pte = table.get(vpn)
                if pte is None:
                    raise KeyError(f"vpn {vpn:#x} not mapped")
                ptes.append(pte)
            for pte in ptes:
                pte.perms = perms
            return
        table = self.page_table
        spans = []
        vpn = start_vpn
        remaining = count
        while remaining > 0:
            chunk_id = vpn >> CHUNK_SHIFT
            index = vpn & _CHUNK_MASK
            take = min(remaining, CHUNK - index)
            frames = table._frames.get(chunk_id)
            if frames is None or min(frames[index:index + take]) < 0:
                bad = next(v for v in range(vpn, vpn + take)
                           if frames is None
                           or frames[v & _CHUNK_MASK] < 0)
                raise KeyError(f"vpn {bad:#x} not mapped")
            spans.append((chunk_id, index, take))
            vpn += take
            remaining -= take
        value = int(perms)
        for chunk_id, index, take in spans:
            table._perms[chunk_id][index:index + take] = \
                bytes([value]) * take

    def replace_frame(self, vpn: int, frame: int, decref_old: bool = True) -> None:
        """Point an existing mapping at a different frame (CoW break)."""
        if self._perf:
            table = self.page_table
            frames = table._frames.get(vpn >> CHUNK_SHIFT)
            index = vpn & _CHUNK_MASK
            if frames is None or frames[index] < 0:
                raise KeyError(f"vpn {vpn:#x} not mapped")
            if decref_old:
                self.machine.phys.decref(frames[index])
            frames[index] = frame
            # the cached tuple holds the *old* Frame object; drop this vpn
            self._walk_cache.pop(vpn, None)
            return
        pte = self.page_table.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        if decref_old:
            self.machine.phys.decref(pte.frame)
        pte.frame = frame
        # the cached tuple holds the *old* Frame object; drop this vpn
        self._walk_cache.pop(vpn, None)

    def privatize_page(self, vpn: int, perms: PagePerm,
                       new_frame: Optional[int] = None,
                       decref_old: bool = True) -> None:
        """CoW-break fusion: optionally repoint ``vpn`` at ``new_frame``
        (decref'ing the old frame unless the caller already settled the
        refcount), restore ``perms`` and clear the share note —
        :meth:`replace_frame` + :meth:`protect_page` + :meth:`set_note`
        semantics in one slot visit, because the fault path runs this
        once per broken page.
        """
        if self._perf:
            table = self.page_table
            chunk_id = vpn >> CHUNK_SHIFT
            index = vpn & _CHUNK_MASK
            frames = table._frames.get(chunk_id)
            if frames is None or frames[index] < 0:
                raise KeyError(f"vpn {vpn:#x} not mapped")
            if new_frame is not None:
                if decref_old:
                    self.machine.phys.decref(frames[index])
                frames[index] = new_frame
                # the cached tuple holds the *old* Frame object; install
                # the new translation (walk-cache entries are charge-free
                # — :meth:`resolve` — so this only skips a redundant
                # walk, never a simulated charge)
                if self.machine.translation_gen == self._walk_stamp:
                    self._walk_cache[vpn] = (
                        table._perms[chunk_id], index,
                        self.machine.phys.frame(new_frame))
                else:
                    self._walk_cache.pop(vpn, None)
            # in-place permission write: cached walk entries alias this
            # byte (see :meth:`protect_page`)
            table._perms[chunk_id][index] = int(perms)
            table._notes.pop(vpn, None)
            return
        if new_frame is not None:
            self.replace_frame(vpn, new_frame, decref_old=decref_old)
        self.protect_page(vpn, perms)
        self.set_note(vpn, None)

    # -- bulk mapping interface (docs/ARCHITECTURE.md "Vectorized engine") --

    def mapped_items(self, lo_vpn: int, hi_vpn: int
                     ) -> List[Tuple[int, int, int, bool, Any]]:
        """All mappings with ``lo_vpn <= vpn < hi_vpn``, ascending.

        Returns ``(vpn, frame, perms_int, cow, note)`` tuples — the raw
        PTE state, no view/PTE objects — so walkers (fork, snapshot,
        audit) can sweep a region without per-page ``get`` calls.
        """
        out: List[Tuple[int, int, int, bool, Any]] = []
        if self._perf:
            table = self.page_table
            chunks = table._frames
            notes = table._notes
            lo_chunk = lo_vpn >> CHUNK_SHIFT
            hi_chunk = (hi_vpn + _CHUNK_MASK) >> CHUNK_SHIFT
            if hi_chunk - lo_chunk > len(chunks):
                span = sorted(c for c in chunks
                              if lo_chunk <= c < hi_chunk)
            else:
                span = [c for c in range(lo_chunk, hi_chunk) if c in chunks]
            for chunk_id in span:
                frames = chunks[chunk_id]
                perms = table._perms[chunk_id]
                cow = table._cow[chunk_id]
                base = chunk_id << CHUNK_SHIFT
                start = max(lo_vpn - base, 0)
                stop = min(hi_vpn - base, CHUNK)
                for index in range(start, stop):
                    frame = frames[index]
                    if frame >= 0:
                        vpn = base + index
                        out.append((vpn, frame, perms[index],
                                    bool(cow[index]), notes.get(vpn)))
            return out
        for vpn, pte in self.page_table.entries():
            if lo_vpn <= vpn < hi_vpn:
                out.append((vpn, pte.frame, int(pte.perms), pte.cow,
                            pte.note))
        return out

    def map_run(self, start_vpn: int, frames: Sequence[int], perms: PagePerm,
                incref: bool = False, cow: bool = False,
                note: Any = None) -> None:
        """Map ``frames`` at consecutive vpns from ``start_vpn``.

        Equivalent to ``map_page`` per frame with the same arguments
        (including the already-mapped check); the flat representation
        fills the chunk arrays with slice stores.
        """
        count = len(frames)
        if count == 0:
            return
        if not self._perf:
            for offset, frame in enumerate(frames):
                self.map_page(start_vpn + offset, frame, perms,
                              incref=incref, cow=cow, note=note)
            return
        table = self.page_table
        perms_int = int(perms)
        cow_int = 1 if cow else 0
        phys = self.machine.phys
        position = 0
        vpn = start_vpn
        while position < count:
            chunk_id = vpn >> CHUNK_SHIFT
            index = vpn & _CHUNK_MASK
            take = min(CHUNK - index, count - position)
            chunk_frames = table._chunk_for(chunk_id)
            if chunk_frames[index:index + take].count(-1) != take:
                for slot in range(index, index + take):
                    if chunk_frames[slot] >= 0:
                        raise ValueError(
                            f"vpn {(chunk_id << CHUNK_SHIFT) + slot:#x} "
                            f"already mapped in {self.name}")
            if incref:
                for frame in frames[position:position + take]:
                    phys.incref(frame)
            chunk_frames[index:index + take] = array(
                "q", frames[position:position + take])
            table._perms[chunk_id][index:index + take] = \
                bytes([perms_int]) * take
            if cow_int:
                table._cow[chunk_id][index:index + take] = b"\x01" * take
            if note is not None:
                notes = table._notes
                for offset in range(take):
                    notes[vpn + offset] = note
            table._len += take
            table._chunk_len[chunk_id] += take
            cache_pop = self._walk_cache.pop
            for offset in range(take):
                cache_pop(vpn + offset, None)
            vpn += take
            position += take

    def unmap_range(self, lo_vpn: int, hi_vpn: int,
                    decref: bool = True) -> int:
        """Unmap every mapping in [lo, hi); returns the count.

        Frames are released in ascending vpn order — the same free-list
        order the per-page ``unmap_page`` loop produces.
        """
        items = self.mapped_items(lo_vpn, hi_vpn)
        if not items:
            return 0
        if self._perf:
            table = self.page_table
            chunks = table._frames
            all_perms = table._perms
            all_cow = table._cow
            chunk_len = table._chunk_len
            notes_pop = table._notes.pop
            views_pop = table._views.pop
            cache_pop = self._walk_cache.pop
            count = len(items)
            position = 0
            while position < count:
                vpn = items[position][0]
                chunk_id = vpn >> CHUNK_SHIFT
                index = vpn & _CHUNK_MASK
                # longest run of consecutive vpns inside this chunk
                end = position + 1
                limit = min(position + (CHUNK - index), count)
                expect = vpn + 1
                while end < limit and items[end][0] == expect:
                    end += 1
                    expect += 1
                take = end - position
                chunks[chunk_id][index:index + take] = \
                    _EMPTY_FRAMES[:take]
                all_perms[chunk_id][index:index + take] = _ZEROS[:take]
                all_cow[chunk_id][index:index + take] = _ZEROS[:take]
                for gone in range(vpn, expect):
                    notes_pop(gone, None)
                    views_pop(gone, None)
                    cache_pop(gone, None)
                table._len -= take
                remaining = chunk_len[chunk_id] - take
                if remaining:
                    chunk_len[chunk_id] = remaining
                else:
                    del chunks[chunk_id]
                    del all_perms[chunk_id]
                    del all_cow[chunk_id]
                    del chunk_len[chunk_id]
                position = end
            if decref:
                self.machine.phys.decref_many(
                    [item[1] for item in items])
            return count
        for vpn, _frame, _perms, _cow, _note in items:
            self.unmap_page(vpn, decref=decref)
        return len(items)

    # -- single-slot accessors (fault-path helpers, no view objects) -------

    def frame_of(self, vpn: int) -> Optional[int]:
        """The frame mapped at ``vpn``, or None."""
        if self._perf:
            frames = self.page_table._frames.get(vpn >> CHUNK_SHIFT)
            if frames is None:
                return None
            frame = frames[vpn & _CHUNK_MASK]
            return frame if frame >= 0 else None
        pte = self.page_table.get(vpn)
        return None if pte is None else pte.frame

    def note_of(self, vpn: int) -> Any:
        """The note stored at ``vpn`` (None when absent/unmapped)."""
        if self._perf:
            return self.page_table._notes.get(vpn)
        pte = self.page_table.get(vpn)
        return None if pte is None else pte.note

    def set_note(self, vpn: int, note: Any) -> None:
        """Attach/replace/clear (``None``) the note of a mapped vpn."""
        if self._perf:
            table = self.page_table
            frames = table._frames.get(vpn >> CHUNK_SHIFT)
            if frames is None or frames[vpn & _CHUNK_MASK] < 0:
                raise KeyError(f"vpn {vpn:#x} not mapped")
            if note is None:
                table._notes.pop(vpn, None)
            else:
                table._notes[vpn] = note
            return
        pte = self.page_table.get(vpn)
        if pte is None:
            raise KeyError(f"vpn {vpn:#x} not mapped")
        pte.note = note

    def set_note_many(self, vpns: Sequence[int], note: Any) -> None:
        """:meth:`set_note` for each vpn.

        Validate-all-then-write in both representations: an unmapped
        vpn anywhere in the batch raises before any note is touched,
        so the two modes stay state-identical even on errors.
        """
        if not self._perf:
            table = self.page_table
            ptes = []
            for vpn in vpns:
                pte = table.get(vpn)
                if pte is None:
                    raise KeyError(f"vpn {vpn:#x} not mapped")
                ptes.append(pte)
            for pte in ptes:
                pte.note = note
            return
        table = self.page_table
        chunks = table._frames
        for vpn in vpns:
            frames = chunks.get(vpn >> CHUNK_SHIFT)
            if frames is None or frames[vpn & _CHUNK_MASK] < 0:
                raise KeyError(f"vpn {vpn:#x} not mapped")
        notes = table._notes
        if note is None:
            for vpn in vpns:
                notes.pop(vpn, None)
        else:
            for vpn in vpns:
                notes[vpn] = note

    def noted_items(self) -> List[Tuple[int, Any]]:
        """All (vpn, note) pairs with a non-None note, ascending vpn."""
        if self._perf:
            return sorted(self.page_table._notes.items())
        return [(vpn, pte.note) for vpn, pte in self.page_table.entries()
                if pte.note is not None]

    # -- translation with fault dispatch ---------------------------------------

    def _vpn(self, vaddr: int) -> int:
        return vaddr // self._page_size

    def resolve(self, vaddr: int, kind: AccessKind,
                privileged: bool = False) -> Tuple[Frame, int]:
        """Translate an address, dispatching faults at most once.

        With :mod:`repro.perf` enabled, successful walks are served
        from a generation-stamped cache: one dict probe plus a raw
        permission-bit check against the live chunk byte.  The stamp
        folds in the machine's TLB flush/shootdown generation, so any
        cross-core invalidation drops every cached translation before
        it can be reused — simulated semantics (fault dispatch order,
        SMP shootdown behaviour) are identical with the cache on or
        off.
        """
        page_size = self._page_size
        vpn = vaddr // page_size
        if self._perf:
            stamp = self.machine.translation_gen
            if stamp != self._walk_stamp:
                self._walk_cache.clear()
                self._walk_stamp = stamp
            else:
                hit = self._walk_cache.get(vpn)
                if hit is not None:
                    perms, index, frame = hit
                    if privileged:
                        return frame, vaddr % page_size
                    bits = kind._req_bits
                    if (perms[index] & bits) == bits:
                        return frame, vaddr % page_size
            table = self.page_table
            chunk_id = vpn >> CHUNK_SHIFT
            index = vpn & _CHUNK_MASK
            for attempt in (0, 1):
                frames = table._frames.get(chunk_id)
                if frames is not None and frames[index] >= 0:
                    if privileged:
                        # only perm-complete walks are cached: a
                        # privileged bypass must never satisfy a later
                        # user access
                        return (self.machine.phys.frame(frames[index]),
                                vaddr % page_size)
                    perms = table._perms[chunk_id]
                    bits = kind._req_bits
                    if (perms[index] & bits) == bits:
                        frame = self.machine.phys.frame(frames[index])
                        self._walk_cache[vpn] = (perms, index, frame)
                        return frame, vaddr % page_size
                if attempt == 1:
                    break
                if not self._dispatch_fault(vaddr, kind):
                    break
            if vpn not in table:
                raise UnmappedAddressError(vaddr, kind._nm)
            raise ProtectionError(vaddr, kind._nm)
        for attempt in (0, 1):
            pte = self.page_table.get(vpn)
            if pte is not None:
                if privileged:
                    frame = self.machine.phys.frame(pte.frame)
                    return frame, vaddr % page_size
                required = _REQUIRED_PERM[kind]
                granted = (pte.perms & required) == required
                if granted:
                    frame = self.machine.phys.frame(pte.frame)
                    return frame, vaddr % page_size
            if attempt == 1:
                break
            if not self._dispatch_fault(vaddr, kind):
                break
        if self.page_table.get(vpn) is None:
            raise UnmappedAddressError(vaddr, _ACCESS_NAME[kind])
        raise ProtectionError(vaddr, _ACCESS_NAME[kind])

    def _dispatch_fault(self, vaddr: int, kind: AccessKind) -> bool:
        """Charge the fault and hand it to the registered handler.

        Observable as ``hw.paging.fault.<kind>`` counters — the
        ``cap_load`` kind counts CoPA's fault-on-capability-load traps.
        """
        machine = self.machine
        if self._perf:
            clock = machine.clock
            ns_int = self._fault_int
            if ns_int is None:
                fault_ns = machine.costs.page_fault_ns
                ns_int = int(fault_ns) if fault_ns == int(fault_ns) else -1
                self._fault_int = ns_int
            if ns_int >= 0 and clock.observer is None:
                # pre-rounded integral charge: bit-equal to ``advance``
                clock._now_ns += ns_int
                buckets = clock.buckets
                buckets["page_fault"] = \
                    buckets.get("page_fault", 0) + ns_int
            else:
                clock.advance(machine.costs.page_fault_ns, "page_fault")
            machine.counters.add(kind._fault_counter)
            if machine.tracer is not None or machine.obs.enabled:
                machine.obs.count(kind._fault_obs)
                machine.trace("page_fault", vaddr=vaddr, kind=kind._nm,
                              space=self.name)
        else:
            machine.clock.advance(machine.costs.page_fault_ns, "page_fault")
            machine.counters.add(f"fault_{_ACCESS_NAME[kind]}")
            machine.obs.count(f"hw.paging.fault.{_ACCESS_NAME[kind]}")
            machine.trace("page_fault", vaddr=vaddr, kind=_ACCESS_NAME[kind],
                          space=self.name)
        if self.fault_handler is None:
            return False
        return self.fault_handler(self, vaddr, kind)

    # -- byte access ------------------------------------------------------------

    def read(self, vaddr: int, size: int, privileged: bool = False,
             charge: bool = True) -> bytes:
        """Read bytes (may span pages)."""
        if self._perf:
            offset = vaddr % self._page_size
            if offset + size <= self._page_size:
                # single-page fast path: no accumulator, one frame read.
                # The walk-cache probe, the frame read and the clock
                # charge are all inlined (bit-identical to the layered
                # path: same stamp + raw perm-bit checks as the hit
                # path in :meth:`resolve`, same memcpy charge rounded
                # through the memo); any miss falls back to resolve.
                machine = self.machine
                frame = None
                if machine.translation_gen == self._walk_stamp:
                    hit = self._walk_cache.get(vaddr // self._page_size)
                    if hit is not None:
                        perms, index, frame = hit
                        if not privileged and \
                                (perms[index] & _READ_BITS) != _READ_BITS:
                            frame = None
                if frame is None:
                    frame, offset = self.resolve(vaddr, AccessKind.READ,
                                                 privileged)
                data = bytes(frame.data[offset:offset + size])
                if charge:
                    ns_int = self._charge_memo.get(size)
                    if ns_int is None:
                        ns_int = int(round(
                            machine.costs.memcpy_ns_per_byte * size))
                        self._charge_memo[size] = ns_int
                    clock = machine.clock
                    clock._now_ns += ns_int
                    buckets = clock.buckets
                    buckets["mem_read"] = buckets.get("mem_read", 0) + ns_int
                    if clock.observer is not None:
                        clock.observer(ns_int, "mem_read")
                return data
        out = bytearray()
        remaining = size
        addr = vaddr
        while remaining > 0:
            frame, offset = self.resolve(addr, AccessKind.READ, privileged)
            chunk = min(remaining, self._page_size - offset)
            out += frame.read(offset, chunk)
            addr += chunk
            remaining -= chunk
        if charge:
            self.machine.clock.advance(
                self.machine.costs.memcpy_ns_per_byte * size, "mem_read"
            )
        return bytes(out)

    def write(self, vaddr: int, data: bytes, privileged: bool = False,
              charge: bool = True) -> None:
        """Write bytes (may span pages); clears tags of touched granules."""
        if self._perf:
            offset = vaddr % self._page_size
            size = len(data)
            if offset + size <= self._page_size:
                # single-page fast path: skips the loop bookkeeping and
                # the per-chunk payload copy the spanning path makes.
                # Walk-cache probe, byte store + batched tag clear
                # (same cleared set as :meth:`Frame.write`) and the
                # memoised memcpy charge are all inlined, as in
                # :meth:`read`.
                machine = self.machine
                frame = None
                if machine.translation_gen == self._walk_stamp:
                    hit = self._walk_cache.get(vaddr // self._page_size)
                    if hit is not None:
                        perms, index, frame = hit
                        if not privileged and \
                                (perms[index] & _WRITE_BITS) != _WRITE_BITS:
                            frame = None
                if frame is None:
                    frame, offset = self.resolve(vaddr, AccessKind.WRITE,
                                                 privileged)
                frame.version += 1
                frame.data[offset:offset + size] = data
                first = offset // CAP_SIZE
                count = (offset + size - 1) // CAP_SIZE + 1 - first
                if count > 0:
                    frame.tags[first:first + count] = \
                        _ZEROS[:count] if count <= len(_ZEROS) \
                        else bytes(count)
                if charge:
                    ns_int = self._charge_memo.get(size)
                    if ns_int is None:
                        ns_int = int(round(
                            machine.costs.memcpy_ns_per_byte * size))
                        self._charge_memo[size] = ns_int
                    clock = machine.clock
                    clock._now_ns += ns_int
                    buckets = clock.buckets
                    buckets["mem_write"] = buckets.get("mem_write", 0) + ns_int
                    if clock.observer is not None:
                        clock.observer(ns_int, "mem_write")
                return
        self._write_layered(vaddr, data, privileged, charge)

    def write_run(self, vaddrs: Sequence[int], data: bytes,
                  privileged: bool = False) -> None:
        """``write(vaddr, data)`` for each address, charges batched.

        Simulated-identical to the per-call loop: each address gets the
        same walk/fault dispatch in sequence order and the same cleared
        tag set; only the memcpy charge is batched, as the exact sum of
        the identical per-call rounded charges.  Falls back to per-call
        :meth:`write` whenever batching could be observable (slow
        representation, or a clock observer attributing charges to an
        open profiling span).
        """
        machine = self.machine
        if not self._perf or machine.clock.observer is not None:
            for vaddr in vaddrs:
                self.write(vaddr, data, privileged)
            return
        size = len(data)
        page_size = self._page_size
        ns_int = self._charge_memo.get(size)
        if ns_int is None:
            ns_int = int(round(machine.costs.memcpy_ns_per_byte * size))
            self._charge_memo[size] = ns_int
        cache_get = self._walk_cache.get
        # one shot at the bulk CoW-break hook per run: on the first
        # blocked store, the rest of the run is classified and — when
        # every blocked page is a clean sharing break — broken in one
        # vectorized pass instead of one fault dispatch per page
        hook = None if privileged else self.write_break_hook
        count = 0
        check_perms = not privileged
        write_bits = _WRITE_BITS
        cap_size = CAP_SIZE
        zeros = _ZEROS
        zeros_len = len(_ZEROS)
        # the stamp can only move inside fault dispatch (hook/resolve),
        # so it is re-checked after those instead of per store
        stamp_ok = machine.translation_gen == self._walk_stamp
        for position, vaddr in enumerate(vaddrs):
            offset = vaddr % page_size
            if offset + size > page_size:
                # page-spanning store: the layered path (charges itself)
                self.write(vaddr, data, privileged)
                stamp_ok = machine.translation_gen == self._walk_stamp
                continue
            frame = None
            if stamp_ok:
                hit = cache_get(vaddr // page_size)
                if hit is not None:
                    perms, index, frame = hit
                    if check_perms and \
                            (perms[index] & write_bits) != write_bits:
                        frame = None
            if frame is None:
                if hook is not None:
                    run_hook, hook = hook, None
                    blocked = self._blocked_write_vpns(vaddrs, position,
                                                       size)
                    if blocked:
                        machine.irq_depth += 1
                        try:
                            run_hook(self, blocked)
                        finally:
                            machine.irq_depth -= 1
                frame, offset = self.resolve(vaddr, AccessKind.WRITE,
                                             privileged)
                stamp_ok = machine.translation_gen == self._walk_stamp
            frame.version += 1
            frame.data[offset:offset + size] = data
            first = offset // cap_size
            tag_count = (offset + size - 1) // cap_size + 1 - first
            if tag_count > 0:
                frame.tags[first:first + tag_count] = \
                    zeros[:tag_count] if tag_count <= zeros_len \
                    else bytes(tag_count)
            count += 1
        if count:
            total = ns_int * count
            clock = machine.clock
            clock._now_ns += total
            buckets = clock.buckets
            buckets["mem_write"] = buckets.get("mem_write", 0) + total

    def _blocked_write_vpns(self, vaddrs: Sequence[int], start: int,
                            size: int) -> Optional[List[int]]:
        """Distinct vpns (first-occurrence order) in ``vaddrs[start:]``
        whose current mapping blocks an unprivileged write.

        Purely a read-only probe for the bulk-break hook.  Returns None
        (caller falls back to per-fault dispatch) when the tail holds a
        page-spanning store or an unmapped page — cases whose faults
        must fire per-op, in sequence order.
        """
        table = self.page_table
        chunks = table._frames
        perms_map = table._perms
        page_size = self._page_size
        seen = set()
        out: List[int] = []
        for vaddr in vaddrs[start:]:
            if vaddr % page_size + size > page_size:
                return None
            vpn = vaddr // page_size
            if vpn in seen:
                continue
            seen.add(vpn)
            chunk_id = vpn >> CHUNK_SHIFT
            index = vpn & _CHUNK_MASK
            frames = chunks.get(chunk_id)
            if frames is None or frames[index] < 0:
                return None
            if (perms_map[chunk_id][index] & _WRITE_BITS) != _WRITE_BITS:
                out.append(vpn)
        return out

    def _write_layered(self, vaddr: int, data: bytes, privileged: bool,
                       charge: bool) -> None:
        offset_in_data = 0
        addr = vaddr
        remaining = len(data)
        while remaining > 0:
            frame, offset = self.resolve(addr, AccessKind.WRITE, privileged)
            chunk = min(remaining, self._page_size - offset)
            frame.write(offset, data[offset_in_data:offset_in_data + chunk])
            addr += chunk
            offset_in_data += chunk
            remaining -= chunk
        if charge:
            self.machine.clock.advance(
                self.machine.costs.memcpy_ns_per_byte * len(data), "mem_write"
            )

    # -- capability access ----------------------------------------------------------

    def load_cap(self, vaddr: int, privileged: bool = False) -> Capability:
        """Load one capability granule (subject to the CoPA fault bit)."""
        kind = AccessKind.CAP_LOAD
        frame, offset = self.resolve(vaddr, kind, privileged)
        return frame.load_cap(offset, self.machine.codec)

    def store_cap(self, vaddr: int, cap: Capability,
                  privileged: bool = False) -> None:
        frame, offset = self.resolve(vaddr, AccessKind.WRITE, privileged)
        frame.store_cap(offset, cap, self.machine.codec)

    # -- accounting -----------------------------------------------------------------

    def resident_bytes(self, lo_vaddr: int, hi_vaddr: int,
                       proportional: bool = True) -> float:
        """Resident set of the VA range [lo, hi).

        With ``proportional`` (the paper's metric, §5.2) each mapped page
        contributes ``page_size / frame_refcount`` so memory shared with
        another process is split between its sharers.
        """
        lo_vpn = lo_vaddr // self._page_size
        hi_vpn = (hi_vaddr + self._page_size - 1) // self._page_size
        total = 0.0
        refcount = self.machine.phys.refcount
        for _vpn, frame, _perms, _cow, _note in \
                self.mapped_items(lo_vpn, hi_vpn):
            if proportional:
                total += self._page_size / refcount(frame)
            else:
                total += self._page_size
        return total

    def mapped_pages(self, lo_vaddr: int, hi_vaddr: int) -> int:
        lo_vpn = lo_vaddr // self._page_size
        hi_vpn = (hi_vaddr + self._page_size - 1) // self._page_size
        return len(self.mapped_items(lo_vpn, hi_vpn))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name!r}, pages={len(self.page_table)})"


# re-export for convenience
__all__ = [
    "AccessKind",
    "AddressSpace",
    "FaultHandler",
    "FlatPageTable",
    "PTE",
    "PagePerm",
    "PageTable",
    "CAP_SIZE",
]

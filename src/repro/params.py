"""Machine configuration and the simulated-time cost model.

The cost model is the calibration surface of the reproduction: each
constant is the simulated cost of one primitive hardware or kernel
operation.  Aggregate latencies (fork latency, BGSAVE time, request
throughput) are *emergent* — they fall out of how many primitives a
workload performs — so the shape of every figure follows from mechanism,
while the constants are calibrated so headline numbers land near the
paper's Morello measurements (μFork hello-world fork 54 μs, CheriBSD
197 μs, Nephele 10.7 ms, Unixbench Context1 245 vs 419 ms, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


@dataclass(frozen=True)
class MachineConfig:
    """Physical parameters of the simulated Morello-like machine."""

    page_size: int = 4096
    #: CHERI capability granule: capabilities are 16 bytes and 16-byte
    #: aligned; one validity tag per granule.
    granule: int = 16
    cores: int = 4
    dram_bytes: int = 16 * GiB
    va_bits: int = 48  # usable virtual address bits (of a 64-bit space)

    @property
    def granules_per_page(self) -> int:
        return self.page_size // self.granule

    @property
    def va_size(self) -> int:
        return 1 << self.va_bits

    def page_of(self, vaddr: int) -> int:
        return vaddr // self.page_size

    def page_base(self, vaddr: int) -> int:
        return vaddr - (vaddr % self.page_size)


@dataclass(frozen=True)
class CostModel:
    """Simulated nanosecond costs of primitive operations.

    ``morello()`` returns the default calibration used by all
    experiments.  All values are ns unless the name says otherwise.
    """

    # -- raw memory ----------------------------------------------------
    #: bulk memcpy cost per byte (DRAM bandwidth bound)
    memcpy_ns_per_byte: float = 0.0625
    #: scanning one 16-byte granule of a freshly copied page for a valid
    #: capability tag (the μFork relocation scan, §4.2)
    tag_scan_ns_per_granule: float = 1.5
    #: rewriting one identified capability (rebase + re-bound)
    cap_relocate_ns: float = 12.0
    #: zero-filling a page on demand
    page_zero_ns: float = 180.0

    # -- MMU -----------------------------------------------------------
    #: copying/installing one PTE individually (monolithic fork path)
    pte_copy_ns: float = 55.0
    #: sharing one PTE via the SASOS bulk region-mapping path.  μFork
    #: maps the child onto parent frames in large strides, which is why
    #: its fork latency grows so slowly with the database size (Fig 4).
    pte_bulk_share_ns: float = 5.0
    #: changing the permissions of one PTE (write-protect for CoW/CoPA)
    pte_protect_ns: float = 1.0
    #: extra per-page cost of marking pages fully inaccessible for CoA
    pte_coa_extra_ns: float = 1.0
    #: taking + handling a page fault (trap, walk, handler dispatch)
    page_fault_ns: float = 550.0
    #: full TLB flush (paid on address-space switch in the monolithic OS)
    tlb_flush_ns: float = 400.0

    # -- security-domain transitions ------------------------------------
    #: sealed-capability trapless syscall entry+exit (SASOS, §4.4)
    sealed_syscall_ns: float = 120.0
    #: trap-based syscall entry+exit on the monolithic OS (includes
    #: kernel-crossing mitigation costs)
    trap_syscall_ns: float = 460.0
    #: hypercall from guest to hypervisor (Nephele path)
    hypercall_ns: float = 1_200.0
    #: context switch between threads in one address space (SASOS)
    context_switch_sas_ns: float = 800.0
    #: context switch across address spaces, excluding the TLB flush
    context_switch_mas_ns: float = 450.0

    # -- syscall-layer isolation costs (parameterizable, §3.6/§4.4) -----
    #: validating one syscall argument (range/capability checks)
    syscall_validate_ns: float = 30.0
    #: fixed cost of setting up a TOCTTOU double copy for one buffer
    tocttou_setup_ns: float = 80.0
    #: per-byte cost of copying user buffers into kernel memory and back
    tocttou_copy_ns_per_byte: float = 0.25
    #: TOCTTOU double-copies are paid on *control structures* passed by
    #: reference (paths, iovecs, stat buffers) — bulk I/O payloads are
    #: copied into the kernel exactly once regardless, so the per-buffer
    #: double copy is capped (keeps the Redis cost at the paper's ~2.6%)
    tocttou_max_copy_bytes: int = 4096

    # -- fork machinery --------------------------------------------------
    #: μFork fixed path: reserve child VA, allocate task struct + stack,
    #: generate PID, duplicate fd table, relocate register file, insert
    #: into scheduler.  Calibrated so hello-world fork lands near 54 μs.
    ufork_fixed_ns: float = 50_000.0
    #: duplicating one fd table entry
    fd_dup_ns: float = 120.0
    #: monolithic fork fixed path: proc struct, vmspace/pmap creation,
    #: copying credentials, signal state...  (CheriBSD hello ≈ 197 μs.)
    monolithic_fork_fixed_ns: float = 186_000.0
    #: Iso-Unik-like fixed fork path: lighter task state than a full
    #: monolithic kernel, but page tables must still be created
    isounik_fork_fixed_ns: float = 95_000.0
    #: Nephele fixed path: Xen domain creation + console/device plumbing
    vm_clone_fixed_ns: float = 10_550_000.0
    #: Nephele per-page guest-memory duplication cost
    vm_clone_page_ns: float = 320.0
    #: terminating a μprocess (uFork)
    uexit_ns: float = 1_800.0
    #: fixed path of a μprocess checkpoint: quiesce at the syscall
    #: boundary, walk the region's page table, emit the manifest.
    #: Per-page costs (tag scan, byte copy) are charged on top.
    snapshot_fixed_ns: float = 30_000.0
    #: fixed path of a restore: reserve VA, recreate task + fd state,
    #: re-mint the register file.  Per-page and per-capability costs
    #: reuse page_copy_ns / page_scan_ns / cap_relocate_ns.
    restore_fixed_ns: float = 60_000.0
    #: terminating a process on the monolithic OS (reaping, pmap teardown)
    monolithic_exit_ns: float = 9_000.0

    # -- SMP / cross-core coherence ---------------------------------------
    #: delivering one inter-processor interrupt to one remote core
    ipi_send_ns: float = 900.0
    #: the initiator receiving one acknowledgement from a recipient
    ipi_ack_ns: float = 250.0
    #: ack-timeout detection before a lost IPI is re-sent
    ipi_timeout_ns: float = 5_000.0
    #: uncontended kernel spinlock acquire (one exclusive cacheline
    #: transfer); free on a 1-CPU machine, like CONFIG_SMP=n
    spinlock_ns: float = 60.0
    #: migrating one task between per-CPU run queues (work stealing:
    #: remote queue lock + task-struct cacheline traffic)
    work_steal_ns: float = 350.0

    # -- I/O ------------------------------------------------------------
    #: per-byte cost of moving data through a pipe / ramdisk file
    io_copy_ns_per_byte: float = 0.25
    #: fixed per-operation ramdisk cost (metadata, block lookup)
    ramdisk_op_ns: float = 350.0
    #: simulated network device latency for one loopback packet
    net_packet_ns: float = 2_600.0

    # -- guest allocator ---------------------------------------------------
    #: fixed cost of one malloc (record search + bounds setting)
    malloc_ns: float = 90.0
    #: fixed cost of one free
    free_ns: float = 60.0

    # -- computation ------------------------------------------------------
    #: generic application compute, charged per abstract "work unit"
    compute_ns_per_unit: float = 1.0
    #: serializer cost per byte (Redis RDB encode)
    serialize_ns_per_byte: float = 0.45

    @classmethod
    def morello(cls) -> "CostModel":
        """The default calibration (see module docstring)."""
        return cls()

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with individual constants overridden."""
        return replace(self, **overrides)

    # -- derived helpers --------------------------------------------------

    def page_copy_ns(self, page_size: int) -> float:
        """Cost of copying one page's bytes (no tag scan)."""
        return self.memcpy_ns_per_byte * page_size

    def page_scan_ns(self, page_size: int, granule: int) -> float:
        """Cost of the relocation tag-scan over one page."""
        return self.tag_scan_ns_per_granule * (page_size // granule)

    def shootdown_ns(self, recipients: int) -> float:
        """Cost of one loss-free ack-based TLB-shootdown broadcast to
        ``recipients`` remote CPUs (the docs/COSTMODEL.md formula):
        R × (ipi_send_ns + tlb_flush_ns + ipi_ack_ns).  Zero recipients
        — a 1-CPU machine, or a μprocess whose footprint is the
        initiating CPU alone — costs nothing."""
        return recipients * (self.ipi_send_ns + self.tlb_flush_ns
                             + self.ipi_ack_ns)


DEFAULT_MACHINE = MachineConfig()
DEFAULT_COSTS = CostModel.morello()

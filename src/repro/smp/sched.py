"""Per-CPU run queues with CPU affinity and work stealing.

Replaces the single global round-robin queue on machines with more than
one online CPU (:func:`repro.kernel.sched.make_scheduler` picks).  The
public surface is the same duck type as
:class:`repro.kernel.sched.Scheduler` — ``add`` / ``remove`` / ``block``
/ ``wake`` / ``switch_to`` / ``pick_next`` / ``yield_current`` /
``runnable_count`` / ``current`` — plus the per-CPU entry points the
SMP executor drives (``pick_for_cpu``, ``steal_into``).

Determinism: placement, victim selection and steal order are pure
functions of queue state (least-loaded, lowest-CPU-id tie-break,
oldest-task-first), so one seed fully determines the schedule.

Invariants carried over from the hardened global queue
(tests/test_sched.py) and extended to stealing:

* an EXITED task can never (re-)enter any queue, be woken, or be
  stolen;
* removal is idempotent and clears any per-CPU ``current`` slot;
* a steal never migrates a task whose affinity mask excludes the
  stealing CPU (the property tests fuzz exactly this).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.kernel.task import Task, TaskState


class SmpScheduler:
    """N per-CPU FIFO queues + a deterministic work-stealing balancer."""

    def __init__(self, machine: Any, same_address_space: bool) -> None:
        self.machine = machine
        self.same_address_space = same_address_space
        self.num_cpus = machine.num_cpus
        #: per-CPU FIFO queues as insertion-ordered sets (dicts), so
        #: membership tests and mid-queue removal are O(1) while the
        #: iteration (= dispatch) order stays exactly the old deque's
        self._queues: List[Dict[Task, None]] = [
            {} for _ in range(self.num_cpus)
        ]
        self._current: List[Optional[Task]] = [None] * self.num_cpus
        self.switches = 0
        self.steals = 0
        self.steal_aborts = 0
        #: optional pluggable pick policy (same contract as
        #: :attr:`repro.kernel.sched.Scheduler.decision_source`): called
        #: with the local runnable candidates, returns the task to
        #: dispatch or ``None`` for the FIFO default
        self.decision_source = None

    # -- the single-CPU-compatible view ---------------------------------

    @property
    def current(self) -> Optional[Task]:
        """The task running on the *current* CPU (compatibility with the
        single-queue scheduler's ``current`` attribute)."""
        return self._current[self.machine.current_cpu]

    @current.setter
    def current(self, task: Optional[Task]) -> None:
        self._current[self.machine.current_cpu] = task

    def current_on(self, cpu: int) -> Optional[Task]:
        return self._current[cpu]

    # -- queue management ------------------------------------------------

    def _enqueued(self, task: Task) -> bool:
        return any(task in queue for queue in self._queues)

    def _allowed_cpus(self, task: Task) -> List[int]:
        allowed = [cpu for cpu in range(self.num_cpus)
                   if task.can_run_on(cpu)]
        if not allowed:
            raise ValueError(
                f"task tid={task.tid} affinity {sorted(task.affinity)} "
                f"excludes every online CPU (0..{self.num_cpus - 1})")
        return allowed

    def _load(self, cpu: int) -> int:
        """Queue depth plus occupancy: an idle empty CPU beats a busy
        empty one, so new work wakes idle CPUs first (and pays the
        resched IPI that a real wakeup does)."""
        return 2 * len(self._queues[cpu]) + \
            (1 if self._current[cpu] is not None else 0)

    def _place(self, task: Task) -> int:
        """Deterministic placement: least-loaded allowed CPU; prefer
        the task's last CPU (cache warmth) among the least loaded, then
        the lowest CPU id."""
        allowed = self._allowed_cpus(task)
        min_load = min(self._load(cpu) for cpu in allowed)
        if task.last_cpu in allowed and \
                self._load(task.last_cpu) == min_load:
            return task.last_cpu
        for cpu in allowed:
            if self._load(cpu) == min_load:
                return cpu
        raise AssertionError("unreachable")  # pragma: no cover

    def add(self, task: Task) -> None:
        if task.state is not TaskState.RUNNABLE or self._enqueued(task):
            return
        cpu = self._place(task)
        was_empty = not self._queues[cpu]
        self._queues[cpu][task] = None
        self._observe_depth()
        if cpu != self.machine.current_cpu and was_empty and \
                self._current[cpu] is None:
            # waking an idle remote CPU costs a resched IPI
            self.machine.ipi.send(self.machine.current_cpu, cpu, "resched")

    def remove(self, task: Task) -> None:
        """Idempotent removal from whichever queue holds the task."""
        for queue in self._queues:
            if task in queue:
                del queue[task]
                self._observe_depth()
                break
        for cpu, running in enumerate(self._current):
            if running is task:
                self._current[cpu] = None

    def block(self, task: Task) -> None:
        """Block (never resurrects an EXITED task)."""
        if task.state is not TaskState.EXITED:
            task.state = TaskState.BLOCKED
        self.remove(task)

    def wake(self, task: Task) -> None:
        if task.state is TaskState.BLOCKED:
            task.state = TaskState.RUNNABLE
            self.add(task)

    def _observe_depth(self) -> None:
        obs = self.machine.obs
        if obs.enabled:
            obs.gauge_set("smp.sched.runqueue_depth",
                          sum(len(queue) for queue in self._queues))

    # -- switching -------------------------------------------------------

    def switch_to(self, task: Task, cpu: Optional[int] = None) -> None:
        """Dispatch ``task`` on ``cpu`` (default: the current CPU),
        charging the context-switch cost exactly as the global queue
        does — plus, on a multi-address-space OS, the flush of that
        CPU's *private* TLB."""
        if cpu is None:
            cpu = self.machine.current_cpu
        if task is self._current[cpu]:
            return
        if self.machine.irq_depth > 0:
            raise AssertionError(
                "scheduling while atomic: context switch inside an "
                "IRQ-disabled critical section")
        machine = self.machine
        costs = machine.costs
        if self.same_address_space:
            machine.charge(costs.context_switch_sas_ns, "ctx_switch")
        else:
            machine.charge(costs.context_switch_mas_ns, "ctx_switch")
            machine.cpus[cpu].tlb.flush()
        machine.counters.add("context_switch")
        machine.obs.count("kernel.sched.context_switch")
        self.switches += 1
        previous = self._current[cpu]
        if previous is not None and previous.state is TaskState.RUNNABLE:
            self.add(previous)
        self.remove(task)
        self._current[cpu] = task
        task.last_cpu = cpu

    def pick_next(self, cpu: Optional[int] = None) -> Optional[Task]:
        """Next runnable task for ``cpu``'s local queue (no stealing;
        falls back to any queue so ``yield`` still finds global work)."""
        if cpu is None:
            cpu = self.machine.current_cpu
        local = self._pick_local(cpu)
        if local is not None:
            return local
        for other in range(self.num_cpus):
            if other == cpu:
                continue
            for task in self._queues[other]:
                if task.state is TaskState.RUNNABLE and \
                        task.can_run_on(cpu):
                    return task
        return None

    def _pick_local(self, cpu: int) -> Optional[Task]:
        queue = self._queues[cpu]
        while queue:
            task = next(iter(queue))
            if task.state is TaskState.RUNNABLE:
                break
            del queue[task]
        if not queue:
            return None
        if self.decision_source is not None:
            candidates = [task for task in queue
                          if task.state is TaskState.RUNNABLE]
            chosen = self.decision_source(candidates)
            if chosen is not None:
                return chosen
        return next(iter(queue))

    def queued_tasks(self) -> List[Task]:
        """Every task sitting in any per-CPU queue (audit hook)."""
        return [task for queue in self._queues for task in queue]

    def pick_for_cpu(self, cpu: int) -> Optional[Task]:
        """The executor's dispatch choice: local FIFO first, then steal."""
        task = self._pick_local(cpu)
        if task is not None:
            return task
        return self.steal_into(cpu)

    def steal_into(self, cpu: int) -> Optional[Task]:
        """Steal one task for an idle CPU.

        Victims are scanned most-loaded-first (lowest id breaks ties)
        and the *oldest* waiting task migrates — it has waited longest
        and its cache is coldest.  A task is only taken if RUNNABLE and
        its affinity admits the stealing CPU.  The chaos point
        ``smp.steal.abort`` models losing the victim's queue lock: the
        balancer gives up this round and retries at the next idle tick.
        """
        machine = self.machine
        chaos = machine.chaos
        if chaos.enabled and chaos.should_fire("smp.steal.abort"):
            self.steal_aborts += 1
            machine.obs.count("smp.sched.steal_aborts")
            chaos.note_recovery("smp.steal.abort")
            return None
        victims = sorted(
            (victim for victim in range(self.num_cpus)
             if victim != cpu and self._queues[victim]),
            key=lambda victim: (-len(self._queues[victim]), victim),
        )
        for victim in victims:
            for task in list(self._queues[victim]):
                if task.state is not TaskState.RUNNABLE:
                    del self._queues[victim][task]
                    continue
                if not task.can_run_on(cpu):
                    continue
                del self._queues[victim][task]
                self._queues[cpu][task] = None
                self.steals += 1
                machine.charge(machine.costs.work_steal_ns, "steal")
                machine.obs.count("smp.sched.steals")
                machine.counters.add("work_steal")
                return task
        return None

    def yield_current(self) -> Optional[Task]:
        """Voluntarily yield the current CPU to its next runnable task."""
        task = self.pick_next()
        if task is not None:
            self.switch_to(task)
        return task

    @property
    def runnable_count(self) -> int:
        return sum(
            1 for queue in self._queues for task in queue
            if task.state is TaskState.RUNNABLE
        )

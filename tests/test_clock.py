"""Tests for the simulated clock and counters."""

import pytest

from repro.clock import EventCounters, SimClock, NS_PER_MS, NS_PER_US


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100)
        clock.advance(250)
        assert clock.now_ns == 350

    def test_advance_rounds_fractional_ns(self):
        clock = SimClock()
        clock.advance(0.6)
        assert clock.now_ns == 1

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_unit_conversions(self):
        clock = SimClock()
        clock.advance(2_500_000)
        assert clock.now_us == 2_500_000 / NS_PER_US
        assert clock.now_ms == 2_500_000 / NS_PER_MS
        assert clock.now_s == 0.0025

    def test_buckets_attribute_time(self):
        clock = SimClock()
        clock.advance(100, "fork")
        clock.advance(50, "fork")
        clock.advance(10, "io")
        assert clock.bucket_ns("fork") == 150
        assert clock.bucket_ns("io") == 10
        assert clock.bucket_ns("missing") == 0

    def test_reset_buckets_keeps_time(self):
        clock = SimClock()
        clock.advance(100, "fork")
        clock.reset_buckets()
        assert clock.bucket_ns("fork") == 0
        assert clock.now_ns == 100

    def test_advance_to_only_moves_forward(self):
        clock = SimClock()
        clock.advance_to(500)
        assert clock.now_ns == 500
        clock.advance_to(100)
        assert clock.now_ns == 500

    def test_measure_context_manager(self):
        clock = SimClock()
        with clock.measure() as watch:
            clock.advance(1234)
        assert watch.elapsed_ns == 1234
        clock.advance(100)
        assert watch.elapsed_ns == 1234  # stopped

    def test_stopwatch_nested_intervals(self):
        clock = SimClock()
        with clock.measure() as outer:
            clock.advance(10)
            with clock.measure() as inner:
                clock.advance(5)
        assert inner.elapsed_ns == 5
        assert outer.elapsed_ns == 15

    def test_stopwatch_reads_while_running(self):
        clock = SimClock()
        with clock.measure() as watch:
            clock.advance(7)
            assert watch.elapsed_ns == 7

    def test_stopwatch_unit_properties(self):
        clock = SimClock()
        with clock.measure() as watch:
            clock.advance(3_000_000)
        assert watch.elapsed_us == 3000.0
        assert watch.elapsed_ms == 3.0


class TestEventCounters:
    def test_add_and_get(self):
        counters = EventCounters()
        counters.add("fault")
        counters.add("fault", 2)
        assert counters.get("fault") == 3

    def test_missing_is_zero(self):
        assert EventCounters().get("nothing") == 0

    def test_snapshot_is_a_copy(self):
        counters = EventCounters()
        counters.add("x")
        snap = counters.snapshot()
        counters.add("x")
        assert snap == {"x": 1}

    def test_reset(self):
        counters = EventCounters()
        counters.add("x", 5)
        counters.reset()
        assert counters.get("x") == 0
